//! Differential validation of the schedule-space reductions: on the
//! `exhaustive_small` workloads, sleep-set partial-order reduction and
//! configuration dedup must certify the **identical** set of canonicalized
//! maximal-path histories and the **identical** set of reachable memory
//! snapshots as the naive full DFS — while executing fewer transitions.
//!
//! This is the empirical counterpart of the soundness argument in
//! `hi_spec::explore`'s module docs: the independence relation keeps
//! history events and write-write pairs dependent precisely so that these
//! two sets are preserved, and dedup merges only nodes with identical
//! observable pasts, so its certified path counts must equal the naive
//! ones *exactly*.

use std::collections::BTreeSet;

use hi_concurrent::queue::PositionalQueue;
use hi_concurrent::registers::{HiSet, LockFreeHiRegister, WaitFreeHiRegister};
use hi_concurrent::sim::{Executor, Implementation, MemSnapshot, Workload};
use hi_concurrent::spec::{explore_with, ExploreConfig, ExploreStats, ExploreVisitor};
use hi_core::objects::{QueueOp, RegisterOp, SetOp};
use hi_core::ObjectSpec;

/// Collects the two behavior sets the explorer is supposed to preserve.
struct Collect {
    /// Rendered event sequences of every executed maximal path.
    histories: BTreeSet<String>,
    /// `mem(C)` of every configuration reached by an executed transition.
    snapshots: BTreeSet<MemSnapshot>,
}

impl<S: ObjectSpec, I: Implementation<S>> ExploreVisitor<S, I> for Collect {
    fn on_config(&mut self, exec: &Executor<S, I>) {
        self.snapshots.insert(exec.snapshot());
    }

    fn on_path_end(&mut self, exec: &Executor<S, I>) {
        self.histories
            .insert(format!("{:?}", exec.history().events()));
    }
}

struct Run {
    stats: ExploreStats,
    histories: BTreeSet<String>,
    snapshots: BTreeSet<MemSnapshot>,
}

fn run<S, I>(imp: &I, w: &Workload<S>, cfg: &ExploreConfig) -> Run
where
    S: ObjectSpec,
    I: Implementation<S>,
{
    let mut collect = Collect {
        histories: BTreeSet::new(),
        snapshots: BTreeSet::new(),
    };
    let exec = Executor::new(imp.clone());
    let stats = explore_with(&exec, w, cfg, &mut collect).expect("no valve in these instances");
    Run {
        stats,
        histories: collect.histories,
        snapshots: collect.snapshots,
    }
}

/// Runs one workload under all four strategies and checks the invariants.
/// Returns `(naive, reduced)` for cross-workload aggregation.
fn differential<S, I>(
    name: &str,
    imp: I,
    w: Workload<S>,
    bound: usize,
) -> (ExploreStats, ExploreStats)
where
    S: ObjectSpec,
    I: Implementation<S>,
{
    let naive_cfg = ExploreConfig::naive(bound);
    let sleep_cfg = ExploreConfig {
        sleep_sets: true,
        ..naive_cfg
    };
    let dedup_cfg = ExploreConfig {
        dedup: true,
        ..naive_cfg
    };
    let reduced_cfg = ExploreConfig {
        sleep_sets: true,
        dedup: true,
        ..naive_cfg
    };
    let naive = run(&imp, &w, &naive_cfg);
    let sleep = run(&imp, &w, &sleep_cfg);
    let dedup = run(&imp, &w, &dedup_cfg);
    let reduced = run(&imp, &w, &reduced_cfg);

    assert_eq!(naive.stats.truncated, 0, "{name}: pick a covering bound");
    assert!(naive.stats.paths > 0, "{name}: empty schedule tree");

    // Every strategy certifies the identical behavior sets.
    for (strategy, r) in [
        ("sleep", &sleep),
        ("dedup", &dedup),
        ("sleep+dedup", &reduced),
    ] {
        assert_eq!(
            r.histories, naive.histories,
            "{name}/{strategy}: maximal-path history set differs from naive DFS"
        );
        assert_eq!(
            r.snapshots, naive.snapshots,
            "{name}/{strategy}: reachable snapshot set differs from naive DFS"
        );
    }

    // Dedup merges only identical subtrees, so its *certified* counts must
    // reproduce the naive path counts exactly — memoized multiplicities
    // included.
    assert_eq!(
        dedup.stats.certified_paths, naive.stats.paths,
        "{name}: dedup lost or invented schedules"
    );
    assert_eq!(
        dedup.stats.certified_truncated, naive.stats.truncated,
        "{name}: dedup lost or invented truncated schedules"
    );

    // Reductions never cost transitions.
    assert!(
        sleep.stats.transitions <= naive.stats.transitions,
        "{name}: sleep sets executed more than naive"
    );
    assert!(
        reduced.stats.transitions <= sleep.stats.transitions,
        "{name}: dedup on top of sleep executed more than sleep alone"
    );
    (naive.stats, reduced.stats)
}

#[test]
fn lockfree_register_reductions_preserve_behaviors() {
    let imp = LockFreeHiRegister::new(3, 2);
    let mut w = Workload::new(2);
    w.push(0, RegisterOp::Write(3));
    w.push(1, RegisterOp::Read);
    let (naive, reduced) = differential("lockfree-register", imp, w, 40);
    assert!(
        reduced.transitions < naive.transitions,
        "multi-step register ops must reduce: {} vs {}",
        reduced.transitions,
        naive.transitions
    );
}

#[test]
fn lockfree_register_two_writes_reductions_preserve_behaviors() {
    let imp = LockFreeHiRegister::new(3, 1);
    let mut w = Workload::new(2);
    w.push(0, RegisterOp::Write(3));
    w.push(0, RegisterOp::Write(2));
    w.push(1, RegisterOp::Read);
    let (naive, reduced) = differential("lockfree-register-2w", imp, w, 60);
    assert!(reduced.transitions < naive.transitions);
}

#[test]
fn waitfree_register_reductions_preserve_behaviors() {
    let imp = WaitFreeHiRegister::new(2, 1);
    let mut w = Workload::new(2);
    w.push(0, RegisterOp::Write(2));
    w.push(1, RegisterOp::Read);
    let (naive, reduced) = differential("waitfree-register", imp, w, 64);
    assert!(reduced.transitions < naive.transitions);
    // Note certified counts are NOT compared against naive here: sleep sets
    // prune equivalent schedules outright (they are certified by the
    // explored representative, not counted), so only the dedup-only
    // strategy — checked inside `differential` — reproduces naive counts.
}

#[test]
fn hi_set_reductions_preserve_behaviors() {
    // Single-primitive operations: every step is a history event, so
    // nothing commutes and no two schedules share a history — the reduced
    // exploration must degrade gracefully to the naive one.
    let imp = HiSet::new(3, 2);
    let mut w = Workload::new(2);
    w.push(0, SetOp::Insert(1));
    w.push(0, SetOp::Remove(1));
    w.push(1, SetOp::Insert(2));
    w.push(1, SetOp::Contains(1));
    let (naive, reduced) = differential("hi-set", imp, w, 32);
    assert_eq!(
        reduced.transitions, naive.transitions,
        "single-step ops admit no sound reduction; a difference means the \
         independence relation commutes history events"
    );
    assert_eq!(reduced.certified_paths, naive.paths);
}

#[test]
fn positional_queue_reductions_preserve_behaviors() {
    let imp = PositionalQueue::new(2, 2);
    let mut w = Workload::new(2);
    w.push(0, QueueOp::Enqueue(2));
    w.push(0, QueueOp::Dequeue);
    w.push(1, QueueOp::Peek);
    let (naive, reduced) = differential("positional-queue", imp, w, 48);
    assert!(reduced.transitions < naive.transitions);
}

/// The unbounded reduced strategy (no depth budget, cycles closed by
/// fingerprinting) certifies the same history set as the bounded naive DFS
/// on a wait-free instance, where the bound is known to cover the tree.
#[test]
fn unbounded_reduced_matches_bounded_naive_on_waitfree() {
    let imp = WaitFreeHiRegister::new(2, 1);
    let mut w = Workload::new(2);
    w.push(0, RegisterOp::Write(2));
    w.push(1, RegisterOp::Read);
    let naive = run(&imp, &w, &ExploreConfig::naive(64));
    let reduced = run(&imp, &w, &ExploreConfig::reduced());
    assert_eq!(naive.stats.truncated, 0);
    assert_eq!(reduced.stats.truncated, 0, "no bound, nothing to truncate");
    assert_eq!(reduced.histories, naive.histories);
    assert_eq!(reduced.snapshots, naive.snapshots);
    assert!(reduced.stats.transitions < naive.stats.transitions);
}
