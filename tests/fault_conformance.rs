//! Fault conformance: every scenario in `hi_api::registry()` runs through
//! the generic crash/stall sweep (`Scenario::run_fault_sweep`, i.e.
//! `hi_spec::check_sim_object_faults`) under every seed — each role crashed
//! at sampled points of its own transition count, each role as the sole
//! survivor, each role stalled mid-run — with the declared `Progress` class
//! enforced and the HI audit re-run at the post-crash observation points
//! (the paper's memory-observing adversary).
//!
//! On failure the sweep's rendered diagnostic is written to
//! `target/fault_diagnostics/` and the panic message carries the one-line
//! reproduction command.
//!
//! Set `HI_CONFORMANCE_SEED=<u64>` to add one more seed to every loop — the
//! CI fault-matrix job drives this.

use std::io::Write as _;
use std::path::PathBuf;

use hi_concurrent::api::{registry, repro_command, Progress, Scenario};
use hi_concurrent::spec::FaultSweepReport;

/// Base seeds per scenario, extended by `HI_CONFORMANCE_SEED` if set.
fn seeds() -> Vec<u64> {
    let mut seeds = vec![5, 0xfa17];
    if let Ok(raw) = std::env::var("HI_CONFORMANCE_SEED") {
        let extra: u64 = raw
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("HI_CONFORMANCE_SEED={raw:?} is not a u64: {e}"));
        if !seeds.contains(&extra) {
            seeds.push(extra);
        }
    }
    seeds
}

/// Operations per role in the faulted workloads. Smaller than the fault-free
/// conformance budget: every scenario runs dozens of plans per seed, each a
/// full run plus linearization.
const OPS: usize = 8;

/// Writes the rendered sweep failure where CI uploads artifacts from, then
/// panics with the reproduction command.
fn fail_sweep(scenario: &Scenario, seed: u64, err: &str) -> ! {
    let dir = PathBuf::from("target/fault_diagnostics");
    let path = dir.join(format!(
        "{}-seed{seed}.txt",
        scenario.name.replace('/', "_")
    ));
    let saved = std::fs::create_dir_all(&dir)
        .and_then(|()| {
            let mut f = std::fs::File::create(&path)?;
            writeln!(f, "scenario: {}", scenario.name)?;
            writeln!(f, "seed: {seed}, ops per role: {OPS}")?;
            writeln!(f, "repro: {}", repro_command("fault_conformance", seed))?;
            writeln!(f, "\n{err}")
        })
        .is_ok();
    panic!(
        "{} (fault sweep, seed {seed}): {err}\n  repro: {}{}",
        scenario.name,
        repro_command("fault_conformance", seed),
        if saved {
            format!("\n  diagnostic dump: {}", path.display())
        } else {
            String::new()
        }
    );
}

fn sweep(scenario: &Scenario, seed: u64) -> FaultSweepReport {
    scenario
        .run_fault_sweep(seed, OPS)
        .unwrap_or_else(|e| fail_sweep(scenario, seed, &e))
}

/// The progress class each scenario must declare — the spectrum the fault
/// sweep enforces. Pinned by name so an adapter silently downgrading (or
/// upgrading) its class fails here, not just in whatever sweep behavior
/// changes.
fn expected_progress(name: &str) -> Progress {
    match name {
        // Seqlock updates / a spinning Peek: a crashed mutator can wedge
        // the survivors, and the sweep tolerates (only) that. The sharded
        // table pays per shard: a crash wedges one shard, not the table.
        "queue/positional-t3"
        | "hashtable/robinhood-t8-n3"
        | "hashtable/robinhood-dense-t6-n2"
        | "hashtable/sharded-s4-t8" => Progress::Blocking,
        // Algorithm 5: announce-and-help, with or without release.
        n if n.starts_with("universal/") => Progress::Helping,
        // Algorithm 2's reader retries; a *static* writer cannot starve it.
        "register/lockfree-hi-k5" => Progress::LockFree,
        _ => Progress::WaitFree,
    }
}

#[test]
fn every_scenario_survives_its_crash_and_stall_sweep() {
    for scenario in registry() {
        let n = scenario.roles().num_handles();
        for seed in seeds() {
            let report = sweep(&scenario, seed);
            // The sweep shape the issue demands: at least one crash plan
            // per role (the checker samples several per role plus the
            // sole-survivor plans), and one stall plan per role.
            assert!(
                report.crash_plans >= n,
                "{} (seed {seed}): {} crash plans for {n} roles",
                scenario.name,
                report.crash_plans
            );
            assert_eq!(
                report.stall_plans, n,
                "{} (seed {seed}): one stall plan per role",
                scenario.name
            );
            assert!(
                report.crashed_mid_op > 0,
                "{} (seed {seed}): no crash landed mid-operation — the sweep \
                 never exercised the adversary's interesting points",
                scenario.name
            );
            assert!(
                report.ops > 0,
                "{} (seed {seed}): the faulted runs completed no operations",
                scenario.name
            );
            if scenario.hi_level().auditable() {
                assert!(
                    report.post_crash_hi_points > 0,
                    "{} (seed {seed}): the adversary never examined memory \
                     after a crash",
                    scenario.name
                );
            } else {
                assert_eq!(
                    report.hi_points, 0,
                    "{} (seed {seed}): non-HI scenarios have no observation \
                     points to audit",
                    scenario.name
                );
            }
        }
    }
}

#[test]
fn progress_spectrum_is_declared_and_enforced() {
    // Every class of the spectrum must be represented in the registry —
    // the sweep's per-class enforcement is only as good as the registry's
    // coverage of classes.
    let mut seen = Vec::new();
    let mut blocking_wedges = 0;
    for scenario in registry() {
        let expected = expected_progress(scenario.name);
        assert_eq!(
            scenario.progress(),
            expected,
            "{}: declared progress class drifted",
            scenario.name
        );
        seen.push(expected);
        let report = sweep(&scenario, seeds()[0]);
        match expected {
            Progress::Blocking => {
                blocking_wedges += report.wedged;
                // Every sampled crash inside a hashtable update's seqlock
                // critical section wedges the surviving updaters, so the
                // two table entries pay the class's price at every seed.
                // (The queue's wedge window — mid-dequeue with Peeks left —
                // is narrow; `tests/crash_tolerance.rs` demonstrates it
                // deterministically.)
                if scenario.name.starts_with("hashtable/") {
                    assert!(
                        report.wedged > 0,
                        "{}: a crashed updater must wedge the seqlock \
                         somewhere in the sweep",
                        scenario.name
                    );
                }
            }
            Progress::Helping => {
                assert_eq!(
                    report.wedged, 0,
                    "{}: Helping forbids wedging",
                    scenario.name
                );
                // Exactly-once needs a state decode, which comes with the
                // audit; the no-release ablation is NotHi and has none.
                if scenario.hi_level().auditable() {
                    assert!(
                        report.exactly_once_checks > 0,
                        "{}: Helping plans must run the exactly-once check",
                        scenario.name
                    );
                }
            }
            Progress::WaitFree | Progress::LockFree => {
                assert_eq!(
                    report.wedged, 0,
                    "{}: {:?} forbids wedging",
                    scenario.name, expected
                );
            }
        }
    }
    for class in [
        Progress::WaitFree,
        Progress::LockFree,
        Progress::Helping,
        Progress::Blocking,
    ] {
        assert!(
            seen.contains(&class),
            "no registry scenario declares {class:?} — the sweep's \
             enforcement of that class is untested"
        );
    }
    assert!(
        blocking_wedges > 0,
        "no Blocking scenario wedged: the tolerated-wedge path of the \
         checker is untested"
    );
}

#[test]
fn fault_sweeps_are_deterministic_per_seed() {
    // The sweep is a deterministic function of the seed: workload, schedule
    // and sampled crash points all derive from it, so two sweeps must agree
    // byte-for-byte — the property that makes the repro command a repro.
    for scenario in registry() {
        let a = sweep(&scenario, 23);
        let b = sweep(&scenario, 23);
        assert_eq!(
            a, b,
            "{}: two sweeps under the same seed diverged",
            scenario.name
        );
    }
}
