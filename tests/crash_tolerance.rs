//! Failure injection: in the asynchronous model a crashed process is simply
//! one that never takes another step. Wait-free operations must complete
//! regardless of crashes; lock-free ones may rely on the crashed process's
//! absence of *activity* (a static memory cannot starve a retry loop); and
//! helping structures (Algorithm 5) must complete a crashed process's
//! announced operation exactly once.

use hi_concurrent::queue::PositionalQueue;
use hi_concurrent::registers::{LockFreeHiRegister, WaitFreeHiRegister};
use hi_concurrent::sim::{Executor, Pid};
use hi_concurrent::spec::{linearize, LinOptions};
use hi_concurrent::universal::{CasUniversal, SimUniversal};
use hi_core::objects::{CounterOp, CounterResp, CounterSpec, QueueOp, RegisterOp, RegisterResp};

const W: Pid = Pid(0);
const R: Pid = Pid(1);

/// For every possible crash point of a `Write(v)`, the reader must still
/// complete and the history must linearize (Algorithm 4 *and* Algorithm 2:
/// with the writer static, even the lock-free reader terminates, because a
/// static array always contains a 1).
#[test]
fn register_reader_survives_writer_crash_at_every_point() {
    let k = 4;
    for crash_after in 0..=(2 * k + 4) {
        // Algorithm 2.
        let mut exec = Executor::new(LockFreeHiRegister::new(k, 2));
        exec.invoke(W, RegisterOp::Write(3));
        for _ in 0..crash_after {
            if exec.can_step(W) {
                exec.step(W);
            }
        }
        // Writer crashes here; reader runs alone.
        let resp = exec.run_op_solo(R, RegisterOp::Read, 10_000).unwrap();
        assert!(matches!(resp, RegisterResp::Value(v) if (1..=k).contains(&v)));
        linearize(exec.spec(), exec.history(), &LinOptions::default())
            .unwrap_or_else(|e| panic!("Algorithm 2, crash at {crash_after}: {e}"));

        // Algorithm 4.
        let mut exec = Executor::new(WaitFreeHiRegister::new(k, 2));
        exec.invoke(W, RegisterOp::Write(3));
        for _ in 0..crash_after {
            if exec.can_step(W) {
                exec.step(W);
            }
        }
        let resp = exec.run_op_solo(R, RegisterOp::Read, 10_000).unwrap();
        assert!(matches!(resp, RegisterResp::Value(v) if (1..=k).contains(&v)));
        linearize(exec.spec(), exec.history(), &LinOptions::default())
            .unwrap_or_else(|e| panic!("Algorithm 4, crash at {crash_after}: {e}"));
    }
}

/// Algorithm 5's helping makes it crash-tolerant: crash p0 at *every* point
/// inside an Inc; p1 and p2 keep operating and must (a) complete their own
/// operations and (b) apply p0's announced operation at most once.
#[test]
fn universal_survives_crash_at_every_point() {
    let spec = CounterSpec::new(0, 32, 0);
    // An Inc under this spec takes a bounded number of steps; probe them all.
    for crash_after in 0..40 {
        let imp = SimUniversal::new(spec, 3);
        let mut exec = Executor::new(imp.clone());
        exec.invoke(Pid(0), CounterOp::Inc);
        let mut crashed_mid_op = false;
        for _ in 0..crash_after {
            if exec.can_step(Pid(0)) {
                exec.step(Pid(0));
            }
        }
        if exec.can_step(Pid(0)) {
            crashed_mid_op = true; // p0's op still pending at the crash
        }
        // Survivors run several ops each, all solo-complete (wait-freedom
        // under crashes: nothing p0 holds can block them).
        for round in 0..3 {
            for pid in [1, 2] {
                let op = if round == 1 {
                    CounterOp::Dec
                } else {
                    CounterOp::Inc
                };
                exec.run_op_solo(Pid(pid), op, 10_000).unwrap_or_else(|e| {
                    panic!("survivor p{pid} blocked after crash at {crash_after}: {e}")
                });
            }
        }
        let value = match exec.run_op_solo(Pid(1), CounterOp::Read, 10_000).unwrap() {
            CounterResp::Value(v) => v,
            other => panic!("unexpected {other:?}"),
        };
        // Survivors contributed 2×(+1) + 2×(-1) + 2×(+1) = +2; p0's Inc may
        // or may not have been applied (helped), but never twice.
        assert!(
            value == 2 || value == 3,
            "crash at {crash_after}: value {value} implies lost or duplicated ops"
        );
        if !crashed_mid_op {
            assert_eq!(value, 3, "a completed op must be counted");
        }
        // The full history (with p0's op possibly pending) linearizes.
        linearize(exec.spec(), exec.history(), &LinOptions::default())
            .unwrap_or_else(|e| panic!("crash at {crash_after}: {e}"));
    }
}

/// The CAS baseline is lock-free: a crashed process between read and CAS
/// holds nothing, so survivors proceed.
#[test]
fn cas_universal_survives_mid_op_crash() {
    let imp = CasUniversal::new(CounterSpec::new(0, 8, 0), 2);
    let mut exec = Executor::new(imp);
    exec.invoke(Pid(0), CounterOp::Inc);
    exec.step(Pid(0)); // p0 read the cell, then crashed before its CAS
    for _ in 0..3 {
        exec.run_op_solo(Pid(1), CounterOp::Inc, 100).unwrap();
    }
    assert_eq!(
        exec.run_op_solo(Pid(1), CounterOp::Read, 100).unwrap(),
        CounterResp::Value(3)
    );
}

/// The positional queue's Peek is *not* crash-tolerant: a mutator crash
/// between clearing the front slot and moving the next element up leaves a
/// static memory in which Peek spins forever — the lock-free/wait-free gap,
/// exhibited by a single crash instead of an adversary.
#[test]
fn queue_peek_blocks_on_mutator_crash_mid_dequeue() {
    let mut exec = Executor::new(PositionalQueue::new(3, 3));
    exec.run_op_solo(W, QueueOp::Enqueue(1), 100).unwrap();
    exec.run_op_solo(W, QueueOp::Enqueue(2), 100).unwrap();
    // Dequeue steps: LEN clear, front clear, move, clear-old. Crash after
    // the front clear: slot 0 empty, LEN[0] still 1.
    exec.invoke(W, QueueOp::Dequeue);
    exec.step(W); // LEN[1] <- 0
    exec.step(W); // Q[0][1] <- 0   (front gone, element 2 still in slot 1)
                  // Peek now spins: LEN[0] = 1 but slot 0 stays empty forever.
    exec.invoke(R, QueueOp::Peek);
    for _ in 0..10_000 {
        assert!(
            exec.step(R).is_none(),
            "Peek must not return while the front is in limbo"
        );
    }
    assert!(
        exec.can_step(R),
        "Peek is stuck — the price of lock-freedom under crashes"
    );
}

/// Contrast: crashing the mutator at any point of an *enqueue* cannot block
/// Peek, because enqueue never makes the front slot transiently empty.
#[test]
fn queue_peek_survives_mutator_crash_mid_enqueue() {
    for crash_after in 0..=2 {
        let mut exec = Executor::new(PositionalQueue::new(3, 3));
        exec.run_op_solo(W, QueueOp::Enqueue(2), 100).unwrap();
        exec.invoke(W, QueueOp::Enqueue(3));
        for _ in 0..crash_after {
            if exec.can_step(W) {
                exec.step(W);
            }
        }
        let resp = exec
            .run_op_solo(R, QueueOp::Peek, 10_000)
            .unwrap_or_else(|e| panic!("Peek blocked after enqueue crash at {crash_after}: {e}"));
        assert_eq!(resp, hi_core::objects::QueueResp::Value(2));
    }
}
