//! Failure injection: in the asynchronous model a crashed process is simply
//! one that never takes another step. Wait-free operations must complete
//! regardless of crashes; lock-free ones may rely on the crashed process's
//! absence of *activity* (a static memory cannot starve a retry loop); and
//! helping structures (Algorithm 5) must complete a crashed process's
//! announced operation exactly once.
//!
//! Since the generic fault layer landed, these are regressions *of that
//! API*: crash plans ([`FaultPlan`]) realized by the [`Faulty`] scheduler
//! combinator, single plans checked by [`run_fault_plan`] (progress
//! enforcement + truncated-history linearization + post-crash HI audit),
//! and scripted corner cases driven by `run_workload_with_faults`. The
//! full per-scenario sweep lives in `tests/fault_conformance.rs`.

use hi_concurrent::queue::PositionalQueue;
use hi_concurrent::registers::{LockFreeHiRegister, WaitFreeHiRegister};
use hi_concurrent::sim::{
    run_workload_with_faults, Executor, FaultPlan, Faulty, Pid, RunError, Scripted, Workload,
};
use hi_concurrent::spec::{linearize, run_fault_plan, FaultSweepConfig, LinOptions};
use hi_concurrent::universal::{CasUniversal, SimUniversal};
use hi_core::objects::{CounterOp, CounterResp, CounterSpec, QueueOp, QueueResp};

const W: Pid = Pid(0);
const R: Pid = Pid(1);

/// A small per-plan config: the seed fixes the workload and base schedule.
fn cfg(seed: u64) -> FaultSweepConfig {
    FaultSweepConfig::new(seed, 6, 200_000)
}

/// For every possible crash point of the writer, the reader must still
/// complete and the truncated history must linearize (Algorithm 4 *and*
/// Algorithm 2: with the writer static, even the lock-free reader
/// terminates, because a static array always contains a 1). One
/// `FaultPlan::crash` per point, all enforcement inside `run_fault_plan`:
/// the declared classes (LockFree / WaitFree) forbid wedging, and the HI
/// audit re-runs at the post-crash observation points — the adversary's
/// memory snapshot.
#[test]
fn register_reader_survives_writer_crash_at_every_point() {
    let k = 4;
    let mut mid_op_crashes = 0;
    for crash_after in 0..=(2 * k + 4) {
        let plan = FaultPlan::crash(W, crash_after);

        // Algorithm 2 (reader lock-free).
        let obj = LockFreeHiRegister::new(k, 1);
        let outcome = run_fault_plan(&obj, &plan, &cfg(9), 200_000)
            .unwrap_or_else(|e| panic!("Algorithm 2, crash at {crash_after}: {e}"));
        assert!(outcome.completed, "lock-free survivors must drain");
        mid_op_crashes += usize::from(outcome.crashed_mid_op);

        // Algorithm 4 (wait-free).
        let obj = WaitFreeHiRegister::new(k, 1);
        let outcome = run_fault_plan(&obj, &plan, &cfg(9), 200_000)
            .unwrap_or_else(|e| panic!("Algorithm 4, crash at {crash_after}: {e}"));
        assert!(outcome.completed, "wait-free survivors must drain");
    }
    assert!(
        mid_op_crashes > 0,
        "the sweep must land at least one crash mid-write"
    );
}

/// Algorithm 5's helping makes it crash-tolerant: crash p0 at *every* point
/// of its transition count; the survivors must complete (Helping forbids
/// wedging), and — the class's tooth — the final memory must decode to a
/// state some linearization of the truncated history reaches, so p0's
/// announced operation is applied exactly once, never twice and never
/// dropped after a completed response.
#[test]
fn universal_survives_crash_at_every_point() {
    let spec = CounterSpec::new(0, 32, 0);
    let mut mid_op_crashes = 0;
    let mut exactly_once_checks = 0;
    for crash_after in 0..40 {
        let obj = SimUniversal::new(spec, 3);
        let plan = FaultPlan::crash(Pid(0), crash_after);
        let outcome = run_fault_plan(&obj, &plan, &cfg(11), 200_000)
            .unwrap_or_else(|e| panic!("crash at {crash_after}: {e}"));
        assert!(outcome.completed, "helping survivors must drain");
        mid_op_crashes += usize::from(outcome.crashed_mid_op);
        exactly_once_checks += usize::from(outcome.exactly_once_checked);
    }
    assert!(mid_op_crashes > 0, "some crash must land mid-op");
    assert!(
        exactly_once_checks > 0,
        "Helping plans must run the state-targeted linearization"
    );
}

/// The CAS baseline is lock-free: a crashed process between read and CAS
/// holds nothing, so survivors proceed. Scripted through the fault runner:
/// p0 invokes an Inc and takes one step (the read), then its crash point
/// hits; p1 drains three Incs and a Read against the static memory.
#[test]
fn cas_universal_survives_mid_op_crash() {
    let imp = CasUniversal::new(CounterSpec::new(0, 8, 0), 2);
    let mut exec = Executor::new(imp);
    let workload: Workload<CounterSpec> = Workload::from_vecs(vec![
        vec![CounterOp::Inc],
        vec![
            CounterOp::Inc,
            CounterOp::Inc,
            CounterOp::Inc,
            CounterOp::Read,
        ],
    ]);
    // p0 first (invoke + read step), then the crash freezes it mid-op.
    let mut faulty = Faulty::new(Scripted::runs(&[(0, 2)]), FaultPlan::crash(Pid(0), 2), 2);
    run_workload_with_faults(&mut exec, workload, &mut faulty, |_e, _f| {}, 10_000)
        .expect("survivor must drain against the static crashed peer");
    assert!(faulty.crashed(Pid(0)));
    assert!(exec.can_step(Pid(0)), "p0's Inc is frozen mid-op");
    let read = exec
        .history()
        .records()
        .into_iter()
        .rev()
        .find(|r| r.op == CounterOp::Read)
        .expect("p1's Read completed");
    assert_eq!(
        read.resp,
        Some(CounterResp::Value(3)),
        "p0's un-CASed Inc must not be visible"
    );
    linearize(exec.spec(), exec.history(), &LinOptions::default()).unwrap();
}

/// The positional queue's Peek is *not* crash-tolerant: crash the mutator
/// at every one of its transitions through an Enqueue/Enqueue/Dequeue
/// script. Some crash points wedge the reader forever (mid-dequeue, the
/// front slot in limbo — the lock-free/wait-free gap the queue's declared
/// `Progress::Blocking` tolerates); the rest must drain and linearize.
#[test]
fn queue_peek_blocks_on_mutator_crash_mid_dequeue() {
    let mut wedged_points = 0;
    let mut drained_points = 0;
    for crash_after in 0..=12 {
        let mut exec = Executor::new(PositionalQueue::new(3, 3));
        let workload: Workload<_> = Workload::from_vecs(vec![
            vec![QueueOp::Enqueue(1), QueueOp::Enqueue(2), QueueOp::Dequeue],
            vec![QueueOp::Peek],
        ]);
        // The mutator runs its whole script first (until the crash point
        // freezes it); the peeker goes afterwards.
        let mut faulty = Faulty::new(
            Scripted::runs(&[(0, 16)]),
            FaultPlan::crash(W, crash_after),
            2,
        );
        match run_workload_with_faults(&mut exec, workload, &mut faulty, |_e, _f| {}, 20_000) {
            Ok(()) => {
                drained_points += 1;
                linearize(exec.spec(), exec.history(), &LinOptions::default())
                    .unwrap_or_else(|e| panic!("crash at {crash_after}: {e}"));
            }
            Err(RunError::StepLimit { .. }) => {
                wedged_points += 1;
                assert!(
                    exec.can_step(R),
                    "crash at {crash_after}: only a spinning Peek may exhaust the budget"
                );
            }
        }
    }
    assert!(
        wedged_points > 0,
        "some mid-dequeue crash must wedge Peek — the price of lock-freedom under crashes"
    );
    assert!(drained_points > 0, "most crash points must drain");
}

/// Contrast: crashing the mutator at any point of an *enqueue* cannot block
/// Peek, because enqueue never makes the front slot transiently empty. The
/// first enqueue completes (3 mutator transitions), the crash sweeps the
/// second; Peek must return the committed front element every time.
#[test]
fn queue_peek_survives_mutator_crash_mid_enqueue() {
    for crash_after in 3..=6 {
        let mut exec = Executor::new(PositionalQueue::new(3, 3));
        let workload: Workload<_> = Workload::from_vecs(vec![
            vec![QueueOp::Enqueue(2), QueueOp::Enqueue(3)],
            vec![QueueOp::Peek],
        ]);
        let mut faulty = Faulty::new(
            Scripted::runs(&[(0, 8)]),
            FaultPlan::crash(W, crash_after),
            2,
        );
        run_workload_with_faults(&mut exec, workload, &mut faulty, |_e, _f| {}, 20_000)
            .unwrap_or_else(|e| panic!("Peek blocked after enqueue crash at {crash_after}: {e}"));
        let peek = exec
            .history()
            .records()
            .into_iter()
            .find(|r| r.op == QueueOp::Peek)
            .expect("Peek ran");
        assert_eq!(
            peek.resp,
            Some(QueueResp::Value(2)),
            "crash at {crash_after}: the committed front element must be visible"
        );
        linearize(exec.spec(), exec.history(), &LinOptions::default()).unwrap();
    }
}
