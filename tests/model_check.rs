//! Registry-wide exhaustive certification: every scenario's downsized sim
//! instance goes through the schedule-space model checker
//! (`hi_spec::check_sim_object_exhaustive`) — *all* schedules of a short
//! role-mirrored workload, HI-audited at every reachable permitted
//! configuration against one shared canonical map, linearized at every
//! distinct maximal path, with sleep-set partial-order reduction and
//! configuration dedup keeping the tree tractable.
//!
//! Each certification writes its `ExhaustiveReport` as one JSON object to
//! `target/modelcheck/` (plus a combined `summary.json`), which CI uploads
//! as an artifact. Failures print a `HI_CONFORMANCE_SEED`-style one-line
//! repro, like every other seeded suite.

use std::fs;
use std::path::PathBuf;

use hi_concurrent::api::{registry, repro_command, ExhaustiveConfig, ExhaustiveReport};

/// Base seed of the lane. The explorer quantifies over *schedules*, so the
/// seed only picks the workload's operation values; one seed per CI run is
/// enough, and the conformance seed matrix can widen it.
fn seed() -> u64 {
    match std::env::var("HI_CONFORMANCE_SEED") {
        Ok(raw) => raw
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("HI_CONFORMANCE_SEED={raw:?} is not a u64: {e}")),
        Err(_) => 7,
    }
}

/// Operations per process. Exploration is exponential in this; 2 per
/// process already yields thousands-to-millions of schedules per scenario.
const OPS_PER_PID: usize = 2;

fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/modelcheck");
    fs::create_dir_all(&dir).expect("create target/modelcheck");
    dir
}

fn certify(seed: u64) -> Vec<(&'static str, ExhaustiveReport)> {
    let cfg = ExhaustiveConfig::new(seed, OPS_PER_PID);
    registry()
        .iter()
        .map(|s| {
            let report = s.check_exhaustive(&cfg).unwrap_or_else(|e| {
                panic!(
                    "exhaustive certification of {} ({}) failed: {e}\nrepro: {}",
                    s.name,
                    s.small_params(),
                    repro_command("model_check", seed)
                )
            });
            (s.name, report)
        })
        .collect()
}

/// The headline lane: all scenarios certify, with sane stats, and the
/// per-scenario reports land in `target/modelcheck/`.
#[test]
fn registry_certifies_exhaustively() {
    let seed = seed();
    let dir = artifact_dir();
    let mut summary = String::from("[\n");
    for (i, (name, report)) in certify(seed).into_iter().enumerate() {
        let s = &report.stats;
        assert!(s.paths > 0, "{name}: no maximal path executed");
        assert_eq!(
            s.truncated, 0,
            "{name}: the reduced lane has no depth bound"
        );
        assert!(
            !s.aborted,
            "{name}: exploration aborted without a violation"
        );
        assert!(
            s.certified_paths >= s.paths,
            "{name}: certified fewer schedules than it executed"
        );
        assert!(s.distinct_configs > 0, "{name}: dedup recorded no configs");
        assert!(
            report.linearized > 0 && report.linearized <= s.paths,
            "{name}: linearized {} of {} executed paths",
            report.linearized,
            s.paths
        );
        if report.audited {
            assert!(report.hi_points > 0, "{name}: vacuous HI audit");
        }
        let scenario = registry()
            .into_iter()
            .find(|s| s.name == name)
            .expect("scenario exists");
        let json = report.to_json(name, scenario.small_params());
        let file = dir.join(format!("{}.json", name.replace('/', "_")));
        fs::write(&file, &json).unwrap_or_else(|e| panic!("write {}: {e}", file.display()));
        if i > 0 {
            summary.push_str(",\n");
        }
        summary.push_str("  ");
        summary.push_str(&json);
    }
    summary.push_str("\n]\n");
    fs::write(dir.join("summary.json"), summary).expect("write summary.json");
}

/// The reduction must actually reduce: across the registry, the certified
/// schedule count strictly exceeds the executed one (dedup merges real
/// subtrees), and sleep sets skip real choices.
#[test]
fn reduction_certifies_more_than_it_executes() {
    let reports = certify(seed());
    let executed: u64 = reports.iter().map(|(_, r)| r.stats.paths).sum();
    let certified: u64 = reports.iter().map(|(_, r)| r.stats.certified_paths).sum();
    assert!(
        certified > executed,
        "dedup merged no subtree anywhere: certified {certified}, executed {executed}"
    );
    let sleep_skips: u64 = reports.iter().map(|(_, r)| r.stats.sleep_skips).sum();
    assert!(sleep_skips > 0, "sleep sets never skipped a choice");
}

/// Certification is deterministic: same seed, same report, byte for byte.
#[test]
fn certification_is_deterministic() {
    let cfg = ExhaustiveConfig::new(seed(), OPS_PER_PID);
    let scenario = registry()
        .into_iter()
        .find(|s| s.name == "register/lockfree-hi-k5")
        .expect("scenario exists");
    let a = scenario
        .check_exhaustive(&cfg)
        .expect("first run certifies");
    let b = scenario
        .check_exhaustive(&cfg)
        .expect("second run certifies");
    assert_eq!(a, b);
}

/// The single-crash lane: wait-free scenarios also certify when every
/// choice point of the fault-free prefix branches into a variant where one
/// mid-operation process crashes forever (the paper's adversary). Blocking
/// scenarios are exempt — a crash inside a critical section legitimately
/// wedges the survivors into (pruned) cycles, but lock-free retries against
/// a dead CAS holder still certify.
#[test]
fn wait_free_scenarios_certify_under_single_crash() {
    let seed = seed();
    let cfg = ExhaustiveConfig::new(seed, 1).with_crashes();
    for name in [
        "register/waitfree-hi-k5",
        "set/hi-t6-n3",
        "universal/counter-n3",
    ] {
        let scenario = registry()
            .into_iter()
            .find(|s| s.name == name)
            .expect("scenario exists");
        let report = scenario.check_exhaustive(&cfg).unwrap_or_else(|e| {
            panic!(
                "single-crash certification of {name} failed: {e}\nrepro: {}",
                repro_command("model_check", seed)
            )
        });
        assert!(
            report.stats.crash_branches > 0,
            "{name}: no crash branch taken"
        );
        assert!(report.stats.paths > 0);
    }
}
