//! Scale-out soak conformance: the big-domain sharded scenarios
//! (`soak/sharded-*`, key domains 2^20 and 2^16) run through the
//! watchdogged service harness with mid-soak drain barriers, and must
//!
//! * perform at least one **online resize mid-epoch** (capacity
//!   migrations happen under load, between barriers — the barrier itself
//!   applies no operations), with the pause time attributed per epoch,
//! * certify every drain barrier through the **composed sampled audit**
//!   (k seed-chosen shards exhaustively canonical, the rest spot-checked)
//!   rather than the full-image comparison — the audit mode the 2^20
//!   domain exists to exercise,
//! * and write the per-barrier sampled-audit ledger to `target/soak/`,
//!   which CI uploads as an artifact.
//!
//! The `HI_SOAK_PROFILE=long` knob multiplies soak volume ~50x for
//! nightly-style runs; its scaling is pinned here on a deliberately tiny
//! base config so the default CI lane stays fast.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use hi_concurrent::api::SampledAudit;
use hi_concurrent::service::{soak_scenario, SoakConfig, SoakProfile, SoakReport};

/// The sharded soak entries and the shard count their backends declare.
const SHARDED: [(&str, usize); 2] = [("soak/sharded-zipf-1m", 8), ("soak/sharded-uniform", 4)];

/// CI-scale soak: enough distinct keys to force capacity migrations in
/// every shard, small enough for the debug-mode test lane.
fn ci_cfg(seed: u64) -> SoakConfig {
    SoakConfig {
        clients: 8,
        client_threads: 4,
        total_ops: 20_000,
        queue_depth: 64,
        mid_audits: 3,
        seed,
        deadline: Duration::from_secs(120),
        ..SoakConfig::default()
    }
}

fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/soak");
    fs::create_dir_all(&dir).expect("create target/soak");
    dir
}

/// Renders the sampled-audit ledger of one soak as the JSON artifact CI
/// uploads: one row per drain barrier, plus the maintenance totals.
fn render_ledger(name: &str, seed: u64, report: &SoakReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"scenario\": \"{name}\",\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"ops\": {},\n", report.ops_applied));
    out.push_str(&format!("  \"resizes\": {},\n", report.metrics.resizes()));
    out.push_str(&format!(
        "  \"resize_pause_ns\": {},\n",
        report.metrics.resize_pause_total().as_nanos()
    ));
    out.push_str("  \"barriers\": [\n");
    for (i, audit) in report.sampled_audits.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"epoch\": {i}, \"shards_total\": {}, \"shards_exhaustive\": {}, \
             \"cells_spot_checked\": {}, \"passed\": {}}}{}\n",
            audit.shards_total,
            audit.shards_exhaustive,
            audit.cells_spot_checked,
            audit.passed(),
            if i + 1 < report.sampled_audits.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn run(name: &str, cfg: &SoakConfig) -> SoakReport {
    soak_scenario(name)
        .unwrap_or_else(|| panic!("{name} not in the soak registry"))
        .run(cfg)
        .unwrap_or_else(|e| panic!("{name} (seed {}): {e}", cfg.seed))
}

#[test]
fn sharded_soaks_resize_online_and_pass_sampled_audits() {
    let dir = artifact_dir();
    for (name, shards) in SHARDED {
        let cfg = ci_cfg(11);
        let report = run(name, &cfg);
        assert_eq!(report.ops_applied, cfg.total_ops, "{name}");

        // Online resize happened, and happened *mid-epoch*: the per-epoch
        // maintenance deltas are measured across the load phase, so a
        // nonzero count in an epoch that applied operations is a capacity
        // migration under live traffic, not at a barrier.
        assert!(
            report.metrics.resizes() > 0,
            "{name}: a 20k-op churn over base-2 shards must migrate"
        );
        assert!(
            report
                .metrics
                .epochs
                .iter()
                .any(|e| e.resizes > 0 && e.ops_applied > 0),
            "{name}: no epoch resized while applying load: {:?}",
            report.metrics.epochs
        );
        assert!(
            report.metrics.resize_pause_total() > Duration::ZERO,
            "{name}: migrations take nonzero time"
        );

        // Every drain barrier (mid-soak and final) audited through the
        // composed per-shard sample — the run would have failed otherwise,
        // so presence of the ledger entries is what certifies the mode.
        assert_eq!(
            report.sampled_audits.len(),
            cfg.mid_audits + 1,
            "{name}: big domains must take the sampled-audit path at every barrier"
        );
        for audit in &report.sampled_audits {
            assert!(audit.passed(), "{name}: {:?}", audit.failure);
            assert_eq!(audit.shards_total, shards, "{name}");
            assert!(
                audit.shards_exhaustive >= 1 && audit.shards_exhaustive < shards,
                "{name}: the sample must check some but not all shards exhaustively"
            );
            assert!(
                audit.cells_spot_checked > 0,
                "{name}: unsampled shards must still be spot-checked"
            );
        }

        let path = dir.join(format!("{}-sampled.json", name.replace('/', "_")));
        fs::write(&path, render_ledger(name, cfg.seed, &report))
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    }
}

#[test]
fn sampled_audit_seeds_rotate_the_exhaustive_shards() {
    // Two soaks under different seeds both pass; the barrier audit derives
    // its shard choice from the soak seed and the epoch, so coverage
    // rotates across runs. (Which shards were chosen is internal; what is
    // pinned is that the choice is seed-dependent yet always passing.)
    for seed in [11, 0x50a6] {
        let report = run("soak/sharded-uniform", &ci_cfg(seed));
        assert!(report.sampled_audits.iter().all(SampledAudit::passed));
    }
}

#[test]
fn long_profile_scales_a_sharded_soak() {
    // `HI_SOAK_PROFILE=long` multiplies total_ops 50x (and the deadline
    // with it); pinned here on a tiny base so CI pays 400 ops, not 50M.
    // The profile is applied explicitly — tests never mutate the
    // environment.
    let base = SoakConfig {
        clients: 4,
        total_ops: 8,
        mid_audits: 1,
        seed: 5,
        ..SoakConfig::default()
    };
    let long = SoakProfile::Long.apply(&base);
    assert_eq!(long.total_ops, 400);
    let report = run("soak/sharded-uniform", &long);
    assert_eq!(report.ops_applied, 400);
    assert_eq!(report.sampled_audits.len(), long.mid_audits + 1);
}
