//! The §6.1 ablation: Algorithm 5 without the red `RL` lines is not history
//! independent — leftover R-LLSC context bits betray past activity — while
//! the full algorithm leaves canonical memory on the *same* schedules.
//!
//! This is the paper's motivating example for extending LL/SC with release:
//! "it could reveal that a counter … whose value is currently zero, was
//! non-zero in the past, because the observer can see that some
//! state-changing operation was performed on it."

use hi_concurrent::sim::{run_workload, Executor, Pid, Seeded, Workload};
use hi_concurrent::spec::{linearize, LinOptions};
use hi_concurrent::universal::SimUniversal;
use hi_core::objects::{CounterOp, CounterSpec};

const MAX_STEPS: u64 = 500_000;

/// Drives the leak schedule from §6.1: p0 reads `head` while it still holds
/// p1's response `⟨r, 1⟩`, stalls, lets p1 finish completely (announce[1]
/// back to ⊥), then resumes — p0's `LL(announce[1])` finds ⊥ and, without
/// line 22's `RL`, leaves its context bit on a cell p1 never touches again.
fn run_leak_schedule(imp: &SimUniversal<CounterSpec>) -> Vec<u64> {
    let mut exec = Executor::new(imp.clone());

    // p1 starts an Inc and runs until head enters mode B (its op applied).
    exec.invoke(Pid(1), CounterOp::Inc);
    while imp.head_value(&exec.snapshot()).1.is_none() {
        exec.step(Pid(1));
    }

    // p0 starts its own Inc and runs until it has read head's mode-B value
    // and is about to LL announce[1] (it stops making progress on its own op
    // once it enters the help path; we just advance it a fixed few steps:
    // announce, loop-check, LL(head) read, escape-check, LL(head) CAS).
    exec.invoke(Pid(0), CounterOp::Inc);
    for _ in 0..5 {
        exec.step(Pid(0));
    }

    // p1 finishes completely: second and third stages, response pickup,
    // announce[1] cleared to ⊥. It never runs again.
    while exec.can_step(Pid(1)) {
        exec.step(Pid(1));
    }

    // p0 resumes and completes its operation solo.
    while exec.can_step(Pid(0)) {
        exec.step(Pid(0));
    }
    assert!(exec.is_quiescent());

    // Sanity: the run is still linearizable in both variants.
    linearize(exec.spec(), exec.history(), &LinOptions::default())
        .expect("the ablation only affects HI, not correctness");
    exec.snapshot()
}

#[test]
fn release_lines_make_the_difference() {
    let spec = CounterSpec::new(0, 8, 0);

    let full = SimUniversal::new(spec, 2);
    let snap = run_leak_schedule(&full);
    assert_eq!(
        snap,
        full.canonical(&2),
        "with RL, the quiescent memory is canonical"
    );

    let ablated = SimUniversal::without_release(spec, 2);
    assert!(!ablated.release_enabled());
    let snap = run_leak_schedule(&ablated);
    assert_ne!(
        snap,
        ablated.canonical(&2),
        "without RL, a leftover context bit betrays the helping attempt"
    );
}

#[test]
fn ablated_variant_still_linearizes_under_random_schedules() {
    // Dropping RL hurts only history independence; correctness and progress
    // survive. (This is why the leak is insidious: nothing functional fails.)
    for seed in 0..20u64 {
        let imp = SimUniversal::without_release(CounterSpec::new(-4, 4, 0), 3);
        let mut w: Workload<CounterSpec> = Workload::new(3);
        for pid in 0..3 {
            w.push(pid, CounterOp::Inc);
            w.push(pid, CounterOp::Dec);
            w.push(pid, CounterOp::Read);
        }
        let mut exec = Executor::new(imp);
        run_workload(&mut exec, w, &mut Seeded::new(seed), &mut (), MAX_STEPS)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        linearize(exec.spec(), exec.history(), &LinOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn ablated_variant_leaks_under_some_random_schedule() {
    // Across seeds, at least one schedule must leave non-canonical quiescent
    // memory in the ablated variant (and none may in the full one).
    let spec = CounterSpec::new(-4, 4, 0);
    let mut leaked = false;
    for seed in 0..40u64 {
        let mk_workload = || {
            let mut w: Workload<CounterSpec> = Workload::new(3);
            for pid in 0..3 {
                w.push(pid, CounterOp::Inc);
                w.push(pid, CounterOp::Dec);
            }
            w
        };

        let full = SimUniversal::new(spec, 3);
        let mut exec = Executor::new(full.clone());
        run_workload(
            &mut exec,
            mk_workload(),
            &mut Seeded::new(seed),
            &mut (),
            MAX_STEPS,
        )
        .unwrap();
        let q = full.abstract_state(&exec.snapshot());
        assert_eq!(
            exec.snapshot(),
            full.canonical(&q),
            "full variant, seed {seed}"
        );

        let ablated = SimUniversal::without_release(spec, 3);
        let mut exec = Executor::new(ablated.clone());
        run_workload(
            &mut exec,
            mk_workload(),
            &mut Seeded::new(seed),
            &mut (),
            MAX_STEPS,
        )
        .unwrap();
        let q = ablated.abstract_state(&exec.snapshot());
        if exec.snapshot() != ablated.canonical(&q) {
            leaked = true;
        }
    }
    assert!(
        leaked,
        "no random schedule exhibited the context leak — suspicious"
    );
}
