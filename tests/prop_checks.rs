//! Property-based tests (proptest) over random parameters, operation
//! sequences, and schedules.

use hi_concurrent::llsc::{LlscLayout, RLlscOp, RLlscSpec, SimRLlsc};
use hi_concurrent::queue::PositionalQueue;
use hi_concurrent::registers::{LockFreeHiRegister, WaitFreeHiRegister};
use hi_concurrent::sim::{run_workload, Executor, Pid, Seeded, Workload};
use hi_concurrent::spec::{check_run_single_mutator, linearize, LinOptions, ObservationModel};
use hi_concurrent::universal::{Codec, SimUniversal};
use hi_core::objects::{
    BoundedQueueSpec, CounterOp, CounterResp, CounterSpec, MultiRegisterSpec, QueueOp, RegisterOp,
};
use hi_core::{History, ObjectSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LLSC bit-packing round-trips for arbitrary layouts and fields.
    #[test]
    fn llsc_pack_round_trip(val_bits in 1u32..32, n in 1usize..16, val_seed: u64, ctx_seed: u64) {
        let layout = LlscLayout::new(val_bits, n);
        let val = val_seed & ((1u64 << val_bits) - 1);
        let ctx = ctx_seed & ((1u64 << n) - 1);
        let cell = layout.pack(val, ctx);
        prop_assert_eq!(layout.val(cell), val);
        prop_assert_eq!(layout.context(cell), ctx);
        for pid in 0..n {
            prop_assert_eq!(layout.has(cell, pid), ctx & (1 << pid) != 0);
        }
        prop_assert_eq!(layout.reset(val), layout.pack(val, 0));
    }

    /// The universal codec round-trips every (state, resp, pid) head value
    /// and every announce value for random counter specs.
    #[test]
    fn codec_round_trip(lo in -8i64..0, hi in 1i64..8, n in 1usize..6) {
        let spec = CounterSpec::new(lo, hi, 0);
        let codec = Codec::new(&spec, n);
        for q in lo..=hi {
            prop_assert_eq!(codec.dec_head(codec.enc_head(&q, None)), (q, None));
            for pid in 0..n {
                let r = CounterResp::Value(q);
                let v = codec.enc_head(&q, Some((&r, pid)));
                prop_assert_eq!(codec.dec_head(v), (q, Some((r, pid))));
            }
        }
    }

    /// Sequential runs of the positional queue agree with the abstract spec
    /// on every response.
    #[test]
    fn positional_queue_matches_spec_sequentially(ops in prop::collection::vec(0u8..3, 1..30)) {
        let t = 3u32;
        let spec = BoundedQueueSpec::new(t, 4);
        let imp = PositionalQueue::new(t, 4);
        let mut exec = Executor::new(imp);
        let mut model = spec.initial_state();
        for (i, kind) in ops.iter().enumerate() {
            let op = match kind {
                0 => QueueOp::Enqueue((i as u32 % t) + 1),
                1 => QueueOp::Dequeue,
                _ => QueueOp::Peek,
            };
            let pid = if spec.is_read_only(&op) { Pid(1) } else { Pid(0) };
            let got = exec.run_op_solo(pid, op, 1_000).unwrap();
            let (next, expect) = spec.apply(&model, &op);
            prop_assert_eq!(got, expect);
            model = next;
        }
    }

    /// Algorithm 2 under arbitrary seeds: linearizable + state-quiescent HI.
    #[test]
    fn lockfree_register_any_seed(seed: u64, k in 3u64..7, writes in prop::collection::vec(1u64..7, 1..10)) {
        let imp = LockFreeHiRegister::new(k, 1);
        let mut w: Workload<MultiRegisterSpec> = Workload::new(2);
        for v in &writes {
            w.push(0, RegisterOp::Write((v - 1) % k + 1));
            w.push(1, RegisterOp::Read);
        }
        check_run_single_mutator(
            &imp,
            w,
            &mut Seeded::new(seed),
            ObservationModel::StateQuiescent,
            500_000,
        ).map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// Algorithm 4 under arbitrary seeds: linearizable + quiescent HI.
    #[test]
    fn waitfree_register_any_seed(seed: u64, k in 3u64..7, writes in prop::collection::vec(1u64..7, 1..10)) {
        let imp = WaitFreeHiRegister::new(k, 1);
        let mut w: Workload<MultiRegisterSpec> = Workload::new(2);
        for v in &writes {
            w.push(0, RegisterOp::Write((v - 1) % k + 1));
            w.push(1, RegisterOp::Read);
        }
        check_run_single_mutator(
            &imp,
            w,
            &mut Seeded::new(seed),
            ObservationModel::Quiescent,
            500_000,
        ).map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// Sequential histories generated from the spec always linearize.
    #[test]
    fn sequential_histories_linearize(ops in prop::collection::vec(0u8..3, 0..40)) {
        let spec = CounterSpec::new(-20, 20, 0);
        let mut h: History<CounterOp, CounterResp> = History::new();
        let mut q = spec.initial_state();
        for kind in ops {
            let op = match kind {
                0 => CounterOp::Inc,
                1 => CounterOp::Dec,
                _ => CounterOp::Read,
            };
            let id = h.invoke(hi_core::Pid(0), op);
            let (q2, r) = spec.apply(&q, &op);
            h.ret(id, r);
            q = q2;
        }
        let lin = linearize(&spec, &h, &LinOptions::default())
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(lin.final_state, q);
    }

    /// The R-LLSC simulator linearizes for arbitrary interleavings of a
    /// fixed op mix.
    #[test]
    fn rllsc_any_seed(seed: u64) {
        let n = 3;
        let imp = SimRLlsc::new(4, 0, n);
        let mut w: Workload<RLlscSpec> = Workload::new(n);
        for pid in 0..n {
            w.push(pid, RLlscOp::Ll { pid });
            w.push(pid, RLlscOp::Sc { pid, new: pid as u64 + 1 });
            w.push(pid, RLlscOp::Rl { pid });
            w.push(pid, RLlscOp::Load);
        }
        let mut exec = Executor::new(imp);
        run_workload(&mut exec, w, &mut Seeded::new(seed), &mut (), 100_000)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        linearize(exec.spec(), exec.history(), &LinOptions::default())
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// The universal construction over a counter linearizes and ends
    /// canonical for arbitrary seeds.
    #[test]
    fn universal_any_seed(seed: u64, n in 2usize..4) {
        let imp = SimUniversal::new(CounterSpec::new(-6, 6, 0), n);
        let mut w: Workload<CounterSpec> = Workload::new(n);
        for pid in 0..n {
            w.push(pid, CounterOp::Inc);
            w.push(pid, if pid % 2 == 0 { CounterOp::Dec } else { CounterOp::Inc });
            w.push(pid, CounterOp::Read);
        }
        let mut exec = Executor::new(imp.clone());
        run_workload(&mut exec, w, &mut Seeded::new(seed), &mut (), 500_000)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        let lin = linearize(exec.spec(), exec.history(), &LinOptions::default())
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(exec.snapshot(), imp.canonical(&lin.final_state));
    }
}
