//! Cross-backend conformance: every scenario in `hi_api::registry()` is run
//! through the generic threaded driver (`hi_api::drive`) *and* its simulator
//! twin (`hi_spec::check_sim_object`), and both must linearize against the
//! same `ObjectSpec` — with the HI audit wherever the implementation
//! promises a canonical form.
//!
//! New object×spec workloads get covered by adding a registry entry, not a
//! new test. The suite also enforces the dual-world contract itself: the
//! threaded adapter and the sim adapter of every entry must agree on role
//! discipline, HI level, progress class and spec parameters, every adapter
//! exported from
//! `hi_api::adapters` must appear in the registry, and `check_sim` must be
//! deterministic under a fixed seed.
//!
//! Set `HI_CONFORMANCE_SEED=<u64>` to add one more seed to every loop — the
//! CI seed matrix drives this.

use hi_concurrent::api::{registry, repro_command, DriveConfig, HiLevel, Roles};
use hi_concurrent::api::{ConcurrentObject, ObjectHandle};

/// Base seeds exercised per scenario (each seed changes both the workload
/// and the sim schedule), extended by `HI_CONFORMANCE_SEED` if set.
fn seeds() -> Vec<u64> {
    let mut seeds = vec![7, 0xfeed_beef];
    if let Ok(raw) = std::env::var("HI_CONFORMANCE_SEED") {
        // Panic rather than skip: a CI matrix job whose seed does not parse
        // must fail loudly, not silently rerun the base seeds.
        let extra: u64 = raw
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("HI_CONFORMANCE_SEED={raw:?} is not a u64: {e}"));
        if !seeds.contains(&extra) {
            seeds.push(extra);
        }
    }
    seeds
}

/// Operations per handle. Small enough that the Wing–Gong search settles
/// every history quickly, large enough to mix roles thoroughly.
const OPS: usize = 60;

#[test]
fn every_registry_entry_drives_threaded_and_sim() {
    for scenario in registry() {
        for seed in seeds() {
            let cfg = DriveConfig {
                ops_per_handle: OPS,
                seed,
                ..DriveConfig::default()
            };
            let report = scenario.run_threaded(&cfg).unwrap_or_else(|e| {
                panic!(
                    "{} (threaded, seed {seed}): {e}\n  repro: {}",
                    scenario.name,
                    repro_command("api_conformance", seed)
                )
            });
            assert!(
                report.ops > 0,
                "{} (threaded, seed {seed}): no operations completed",
                scenario.name
            );
            let sim = scenario.check_sim(seed, OPS / 2).unwrap_or_else(|e| {
                panic!(
                    "{} (sim, seed {seed}): {e}\n  repro: {}",
                    scenario.name,
                    repro_command("api_conformance", seed)
                )
            });
            assert!(
                sim.ops > 0,
                "{} (sim, seed {seed}): no operations completed",
                scenario.name
            );
            assert_eq!(
                sim.audited,
                scenario.hi_level().auditable(),
                "{} (sim, seed {seed}): audit ran iff the level promises one",
                scenario.name
            );
        }
    }
}

#[test]
fn threaded_and_sim_worlds_agree_on_every_contract() {
    // The dual-world contract: each entry is one abstract object, so its
    // two adapters must declare the same role discipline, the same HI
    // guarantee and the same spec parameters — asserted here, not assumed.
    for scenario in registry() {
        let t = scenario.threaded_meta();
        let s = scenario.sim_meta();
        assert_eq!(
            t.roles, s.roles,
            "{}: threaded and sim roles disagree",
            scenario.name
        );
        assert_eq!(
            t.hi_level, s.hi_level,
            "{}: threaded and sim HI levels disagree",
            scenario.name
        );
        assert_eq!(
            t.progress, s.progress,
            "{}: threaded and sim progress classes disagree",
            scenario.name
        );
        assert_eq!(
            t.params, s.params,
            "{}: threaded and sim specs disagree",
            scenario.name
        );
        // And the scenario-level accessors surface the (agreed) metadata.
        assert_eq!(scenario.roles(), t.roles);
        assert_eq!(scenario.hi_level(), t.hi_level);
        assert_eq!(scenario.progress(), t.progress);
        assert_eq!(scenario.params(), t.params);
        assert!(
            !scenario.params().is_empty(),
            "{}: parameter summary is empty",
            scenario.name
        );
    }
}

#[test]
fn every_exported_adapter_appears_in_the_registry() {
    // Registry completeness: every adapter type exported from
    // `hi_api::adapters` (and every sim machine with a SimObject impl)
    // backs at least one entry, so nothing is drivable-but-unregistered.
    let threaded: Vec<&str> = registry()
        .iter()
        .map(|s| s.threaded_meta().adapter)
        .collect();
    for adapter in [
        "VidyasankarObject",
        "LockFreeHiObject",
        "WaitFreeHiObject",
        "QueueObject",
        "MaxRegisterObject",
        "HiSetObject",
        "HashTableObject",
        "ShardedTableObject",
        "LlscObject",
        "UniversalObject",
    ] {
        assert!(
            threaded.iter().any(|t| t.contains(adapter)),
            "no registry entry uses threaded adapter {adapter}: {threaded:?}"
        );
    }
    let sims: Vec<&str> = registry().iter().map(|s| s.sim_meta().adapter).collect();
    for machine in [
        "VidyasankarRegister",
        "LockFreeHiRegister",
        "WaitFreeHiRegister",
        "PositionalQueue",
        "MaxRegister",
        "HiSet",
        "SimHiHashTable",
        "SimShardedTable",
        "SimRLlsc",
        "SimUniversal",
    ] {
        assert!(
            sims.iter().any(|s| s.contains(machine)),
            "no registry entry uses sim machine {machine}: {sims:?}"
        );
    }
}

#[test]
fn check_sim_is_deterministic_per_seed() {
    // The sim twin is a deterministic function of the seed: same seed, same
    // schedule, same history, same audit — byte-for-byte equal reports.
    for seed in [3u64, 41, 0xdead_cafe] {
        for scenario in registry() {
            let a = scenario
                .check_sim(seed, OPS / 3)
                .unwrap_or_else(|e| panic!("{} (seed {seed}): {e}", scenario.name));
            let b = scenario
                .check_sim(seed, OPS / 3)
                .unwrap_or_else(|e| panic!("{} (seed {seed}, rerun): {e}", scenario.name));
            assert_eq!(
                a, b,
                "{} (seed {seed}): two runs under the same seed diverged",
                scenario.name
            );
        }
    }
}

#[test]
fn audited_scenarios_match_their_hi_promise() {
    // The registry carries both HI and deliberately non-HI entries; the
    // driver must audit exactly the ones that fix a canonical form.
    let cfg = DriveConfig {
        ops_per_handle: 40,
        seed: 3,
        ..DriveConfig::default()
    };
    let mut audited = 0;
    let mut unaudited = Vec::new();
    for scenario in registry() {
        let report = scenario
            .run_threaded(&cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        assert_eq!(
            report.audited,
            scenario.hi_level().auditable(),
            "{}: surfaced HI level must predict the audit",
            scenario.name
        );
        if report.audited {
            audited += 1;
        } else {
            unaudited.push(scenario.name);
        }
    }
    assert!(
        audited >= 10,
        "expected most scenarios to be HI-audited, got {audited}"
    );
    assert_eq!(
        unaudited,
        vec!["register/vidyasankar-k5", "universal/counter-no-release"],
        "exactly the two deliberately non-HI entries skip the audit"
    );
}

#[test]
fn registry_covers_the_big_state_workloads() {
    // PR 4's additions: the phase-free hash table (threaded + sim pair),
    // the max register and the perfect-HI set are all registry entries.
    let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
    for required in [
        "hashtable/robinhood-t8-n3",
        "hashtable/robinhood-dense-t6-n2",
        "register/max-k6",
        "set/hi-t6-n3",
    ] {
        assert!(
            names.contains(&required),
            "registry is missing {required}: {names:?}"
        );
    }
}

#[test]
#[should_panic(expected = "out of domain")]
fn hash_table_handles_enforce_the_spec_domain() {
    // The backend accepts any nonzero u32, but the facade must reject
    // elements outside the spec's domain exactly as `HashSetSpec::apply`
    // does — an out-of-domain key would corrupt the mask decode.
    use hi_concurrent::api::HashTableObject;
    use hi_core::objects::{HashSetOp, HashSetSpec};

    let mut table = HashTableObject::new(HashSetSpec::new(8), 13, 2);
    table.handles()[0].apply(HashSetOp::Insert(70));
}

#[test]
fn hash_table_facade_exposes_array_valued_memory() {
    use hi_concurrent::api::HashTableObject;
    use hi_core::objects::{HashSetOp, HashSetResp, HashSetSpec};

    let mut table = HashTableObject::new(HashSetSpec::new(8), 13, 3);
    assert_eq!(table.roles(), Roles::MultiProcess { n: 3 });
    assert_eq!(table.hi_level(), HiLevel::StateQuiescent);
    assert_eq!(table.roles().num_handles(), table.handles().len());
    {
        let mut handles = table.handles();
        assert_eq!(
            handles[0].apply(HashSetOp::Insert(5)),
            HashSetResp::Bool(true)
        );
        assert_eq!(
            handles[1].apply(HashSetOp::Insert(5)),
            HashSetResp::Bool(false)
        );
        assert_eq!(
            handles[2].apply(HashSetOp::Contains(5)),
            HashSetResp::Bool(true)
        );
        assert_eq!(
            handles[1].apply(HashSetOp::Remove(5)),
            HashSetResp::Bool(true)
        );
        assert_eq!(
            handles[0].apply(HashSetOp::Insert(3)),
            HashSetResp::Bool(true)
        );
    }
    assert_eq!(table.abstract_state(), 1 << 3);
    assert_eq!(
        Some(table.mem_snapshot()),
        table.canonical(&(1 << 3)),
        "quiescent slot array is the canonical Robin Hood layout"
    );
}

#[test]
fn roles_and_hi_levels_are_exposed_uniformly() {
    use hi_concurrent::api::{LlscObject, QueueObject, UniversalObject, VidyasankarObject};
    use hi_core::objects::{BoundedQueueSpec, CounterSpec, MultiRegisterSpec};
    use hi_llsc::RLlscSpec;

    let mut reg = VidyasankarObject::new(MultiRegisterSpec::new(3, 1));
    assert_eq!(reg.roles(), Roles::SingleWriterSingleReader);
    assert_eq!(reg.roles().num_handles(), reg.handles().len());
    assert_eq!(reg.hi_level(), HiLevel::NotHi);
    assert!(reg.canonical(&1).is_none());

    let q = QueueObject::new(BoundedQueueSpec::new(3, 4));
    assert_eq!(q.roles(), Roles::SingleWriterSingleReader);
    assert_eq!(q.hi_level(), HiLevel::StateQuiescent);

    let mut x = LlscObject::new(RLlscSpec::new(4, 0, 2));
    assert_eq!(x.roles(), Roles::MultiProcess { n: 2 });
    assert_eq!(x.hi_level(), HiLevel::Perfect);
    assert_eq!(x.roles().num_handles(), x.handles().len());

    let mut u = UniversalObject::new(CounterSpec::new(0, 5, 0), 3);
    assert_eq!(u.roles(), Roles::MultiProcess { n: 3 });
    assert_eq!(u.hi_level(), HiLevel::StateQuiescent);
    assert_eq!(u.roles().num_handles(), u.handles().len());
}

#[test]
fn resplitting_preserves_state_across_handle_generations() {
    // The facade's `&mut self` handles() contract: a second generation of
    // handles picks up exactly where the first left off.
    use hi_concurrent::api::QueueObject;
    use hi_core::objects::{BoundedQueueSpec, QueueOp, QueueResp};

    let mut q = QueueObject::new(BoundedQueueSpec::new(4, 4));
    {
        let mut handles = q.handles();
        assert_eq!(handles[0].apply(QueueOp::Enqueue(3)), QueueResp::Empty);
        assert_eq!(handles[0].apply(QueueOp::Enqueue(1)), QueueResp::Empty);
    }
    assert_eq!(q.abstract_state(), vec![3, 1]);
    {
        let mut handles = q.handles();
        assert_eq!(handles[1].apply(QueueOp::Peek), QueueResp::Value(3));
        assert_eq!(handles[0].apply(QueueOp::Dequeue), QueueResp::Value(3));
        assert_eq!(handles[0].apply(QueueOp::Dequeue), QueueResp::Value(1));
        assert_eq!(handles[0].apply(QueueOp::Dequeue), QueueResp::Empty);
    }
    assert_eq!(q.abstract_state(), Vec::<u32>::new());
}
