//! Cross-crate checks of the register algorithms (paper §4): randomized
//! schedules, linearizability, and history independence under each
//! observation model — including the *negative* results (Algorithm 1 leaks;
//! Algorithm 4 is not state-quiescent HI).

use hi_concurrent::registers::{
    LockFreeHiRegister, MaxRegister, VidyasankarRegister, WaitFreeHiRegister,
};
use hi_concurrent::sim::{Seeded, Workload};
use hi_concurrent::spec::{check_run_single_mutator, CheckError, ObservationModel};
use hi_core::objects::MaxRegisterSpec;
use hi_core::objects::{MaxRegisterOp, MultiRegisterSpec, RegisterOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MAX_STEPS: u64 = 200_000;

fn register_workload(k: u64, ops: usize, seed: u64) -> Workload<MultiRegisterSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = Workload::new(2);
    for _ in 0..ops {
        w.push(0, RegisterOp::Write(rng.gen_range(1..=k)));
        w.push(1, RegisterOp::Read);
    }
    w
}

#[test]
fn lockfree_hi_register_random_schedules() {
    // Theorem 9: Algorithm 2 is linearizable and state-quiescent HI.
    for seed in 0..40u64 {
        for k in [3u64, 5] {
            let imp = LockFreeHiRegister::new(k, 1);
            let report = check_run_single_mutator(
                &imp,
                register_workload(k, 12, seed),
                &mut Seeded::new(seed),
                ObservationModel::StateQuiescent,
                MAX_STEPS,
            )
            .unwrap_or_else(|e| panic!("seed {seed}, K {k}: {e}"));
            assert!(report.hi_points > 0, "observation points must exist");
        }
    }
}

#[test]
fn waitfree_hi_register_random_schedules() {
    // Theorem 12: Algorithm 4 is linearizable and quiescent HI.
    for seed in 0..40u64 {
        for k in [3u64, 5] {
            let imp = WaitFreeHiRegister::new(k, 1);
            let report = check_run_single_mutator(
                &imp,
                register_workload(k, 12, seed),
                &mut Seeded::new(seed),
                ObservationModel::Quiescent,
                MAX_STEPS,
            )
            .unwrap_or_else(|e| panic!("seed {seed}, K {k}: {e}"));
            assert!(report.hi_points > 0);
        }
    }
}

#[test]
fn vidyasankar_is_linearizable_but_not_hi() {
    // Algorithm 1 linearizes fine...
    for seed in 0..20u64 {
        let imp = VidyasankarRegister::new(4, 1);
        // ...but only if we don't ask for history independence: run with the
        // monitor disabled by using a workload that never revisits a state.
        let mut w: Workload<MultiRegisterSpec> = Workload::new(2);
        w.push(0, RegisterOp::Write(2));
        w.push(0, RegisterOp::Write(3));
        w.push(1, RegisterOp::Read);
        // Quiescent HI monitoring with a state-revisiting workload flags it:
        let mut leaky: Workload<MultiRegisterSpec> = Workload::new(2);
        for op in [
            RegisterOp::Write(2),
            RegisterOp::Write(1),
            RegisterOp::Write(3),
            RegisterOp::Write(1),
        ] {
            leaky.push(0, op);
        }
        let err = check_run_single_mutator(
            &imp,
            leaky,
            &mut Seeded::new(seed),
            ObservationModel::Quiescent,
            MAX_STEPS,
        )
        .expect_err("Algorithm 1 must violate quiescent HI on a state-revisiting history");
        assert!(matches!(err, CheckError::Hi(_)), "got {err}");
        // The non-revisiting workload passes even the HI check trivially.
        check_run_single_mutator(
            &imp,
            w,
            &mut Seeded::new(seed),
            ObservationModel::Quiescent,
            MAX_STEPS,
        )
        .unwrap();
    }
}

#[test]
fn waitfree_register_is_not_state_quiescent_hi() {
    // Table 1's wait-free row: quiescent HI is possible (previous test),
    // state-quiescent HI is impossible (Corollary 18). Algorithm 4 indeed
    // fails the stronger monitor: a pending read leaves flag[1] = 1 at a
    // state-quiescent configuration.
    let imp = WaitFreeHiRegister::new(3, 1);
    let mut w: Workload<MultiRegisterSpec> = Workload::new(2);
    w.push(1, RegisterOp::Read);
    let err = check_run_single_mutator(
        &imp,
        w,
        &mut Seeded::new(7),
        ObservationModel::StateQuiescent,
        MAX_STEPS,
    )
    .expect_err("a pending read must break state-quiescent canonicity");
    assert!(matches!(err, CheckError::Hi(_)));
}

#[test]
fn lockfree_register_is_perfect_hi_nowhere() {
    // Proposition 14: no implementation of a C_t register from binary cells
    // can be perfect HI; Algorithm 2 indeed fails the perfect monitor as
    // soon as a write is mid-flight.
    let imp = LockFreeHiRegister::new(3, 1);
    let mut w: Workload<MultiRegisterSpec> = Workload::new(2);
    w.push(0, RegisterOp::Write(3));
    w.push(0, RegisterOp::Write(1));
    let err = check_run_single_mutator(
        &imp,
        w,
        &mut Seeded::new(3),
        ObservationModel::Perfect,
        MAX_STEPS,
    )
    .expect_err("mid-write memory cannot be canonical");
    assert!(matches!(err, CheckError::Hi(_)));
}

#[test]
fn max_register_random_schedules() {
    // §5.1: the max register escapes C_t and is wait-free + state-quiescent
    // HI from binary registers.
    for seed in 0..40u64 {
        let imp = MaxRegister::new(6);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let mut w: Workload<MaxRegisterSpec> = Workload::new(2);
        for _ in 0..10 {
            w.push(0, MaxRegisterOp::WriteMax(rng.gen_range(1..=6)));
            w.push(1, MaxRegisterOp::ReadMax);
        }
        check_run_single_mutator(
            &imp,
            w,
            &mut Seeded::new(seed),
            ObservationModel::StateQuiescent,
            MAX_STEPS,
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn final_memory_is_canonical_for_hi_registers() {
    for seed in 0..10u64 {
        let k = 4;
        let imp = LockFreeHiRegister::new(k, 1);
        let report = check_run_single_mutator(
            &imp,
            register_workload(k, 8, seed),
            &mut Seeded::new(seed),
            ObservationModel::StateQuiescent,
            MAX_STEPS,
        )
        .unwrap();
        let v = report.lin.final_state;
        assert_eq!(report.final_snapshot, imp.canonical(v));

        let imp = WaitFreeHiRegister::new(k, 1);
        let report = check_run_single_mutator(
            &imp,
            register_workload(k, 8, seed),
            &mut Seeded::new(seed),
            ObservationModel::Quiescent,
            MAX_STEPS,
        )
        .unwrap();
        let v = report.lin.final_state;
        assert_eq!(report.final_snapshot, imp.canonical(v));
    }
}

#[test]
fn proposition19_algorithm4_reader_writes() {
    // Prop. 19: in any wait-free quiescent-HI SWSR register from binary
    // registers, the reader MUST write to shared memory. Algorithm 4's
    // reader indeed does (flag announcements + B cleanup)...
    use hi_concurrent::sim::{Executor, Pid, PrimKind};
    let imp = WaitFreeHiRegister::new(3, 2);
    let mut exec = Executor::new(imp);
    exec.enable_trace();
    exec.run_op_solo(Pid(1), RegisterOp::Read, 1_000).unwrap();
    let trace = exec.take_trace().unwrap();
    let reader_writes = trace
        .events()
        .iter()
        .filter(|e| e.pid == Pid(1) && matches!(e.kind, PrimKind::Write))
        .count();
    assert!(
        reader_writes > 0,
        "Algorithm 4's reader must write (Prop. 19)"
    );

    // ...while Algorithm 2's reader never writes — consistent with Prop. 19,
    // because Algorithm 2's reads are not wait-free.
    let imp = LockFreeHiRegister::new(3, 2);
    let mut exec = hi_concurrent::sim::Executor::new(imp);
    exec.enable_trace();
    exec.run_op_solo(Pid(1), RegisterOp::Read, 1_000).unwrap();
    let trace = exec.take_trace().unwrap();
    let reader_writes = trace
        .events()
        .iter()
        .filter(|e| e.pid == Pid(1) && matches!(e.kind, PrimKind::Write))
        .count();
    assert_eq!(reader_writes, 0, "Algorithm 2's reader is read-only");
}
