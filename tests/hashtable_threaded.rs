//! Property-based stress of the phase-free concurrent HI hash table:
//! random concurrent insert/remove/lookup schedules on real threads, with
//! the quiescent memory checked against the canonical `HiHashTable` layout
//! of the surviving key set, and the full histories checked for
//! linearizability through `hi_api::drive`.

use hi_concurrent::api::{drive, ConcurrentObject, DriveConfig, HashTableObject};
use hi_concurrent::hashtable::{canonical_layout, AtomicHiHashTable};
use hi_core::objects::HashSetSpec;
use proptest::prelude::*;

/// The canonical layout of whatever key set `mem` holds.
fn canonical_of(mem: &[u32], capacity: usize) -> Vec<u32> {
    canonical_layout(capacity, mem.iter().copied().filter(|&k| k != 0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the interleaving of a random concurrent schedule, the
    /// quiescent memory is the unique canonical Robin Hood layout of the
    /// surviving key set, and membership answers match that set.
    #[test]
    fn concurrent_schedules_end_canonical(
        scripts in prop::collection::vec(
            prop::collection::vec((0u8..3, 1u32..20), 10..60),
            2..5,
        ),
    ) {
        let capacity = 32;
        let table = AtomicHiHashTable::new(capacity);
        std::thread::scope(|s| {
            for script in &scripts {
                let table = &table;
                s.spawn(move || {
                    for &(kind, key) in script {
                        match kind {
                            0 => {
                                table.insert(key);
                            }
                            1 => {
                                table.remove(key);
                            }
                            _ => {
                                table.contains(key);
                            }
                        }
                    }
                });
            }
        });
        let mem = table.memory();
        prop_assert_eq!(
            &mem,
            &canonical_of(&mem, capacity),
            "quiescent memory is not canonical for its own key set"
        );
        // Membership must agree with the decoded set at quiescence.
        let keys = table.keys();
        for k in 1u32..20 {
            prop_assert_eq!(table.contains(k), keys.contains(&k));
        }
    }

    /// History independence across real-thread histories: any two schedules
    /// whose surviving key sets coincide leave bit-identical memory.
    #[test]
    fn equal_key_sets_leave_equal_memory(
        keys in prop::collection::hash_set(1u32..24, 1..10),
        detours in prop::collection::vec(24u32..48, 0..8),
    ) {
        let capacity = 32;
        let direct = AtomicHiHashTable::new(capacity);
        for &k in &keys {
            direct.insert(k);
        }
        let noisy = AtomicHiHashTable::new(capacity);
        std::thread::scope(|s| {
            let noisy = &noisy;
            let keys = &keys;
            let detours = &detours;
            s.spawn(move || {
                for &k in keys.iter() {
                    noisy.insert(k);
                }
            });
            s.spawn(move || {
                for &d in detours.iter() {
                    noisy.insert(d);
                }
                for &d in detours.iter() {
                    noisy.remove(d);
                }
            });
        });
        prop_assert_eq!(direct.memory(), noisy.memory());
    }

    /// The full facade audit: random threaded workloads linearize against
    /// `HashSetSpec` and pass the quiescent canonical-memory audit, across
    /// load factors.
    #[test]
    fn driven_workloads_linearize_and_audit(seed: u64, dense in proptest::bool::ANY) {
        let (t, cap) = if dense { (6, 8) } else { (8, 13) };
        let mut obj = HashTableObject::new(HashSetSpec::new(t), cap, 3);
        let cfg = DriveConfig {
            ops_per_handle: 40,
            seed,
            ..DriveConfig::default()
        };
        let report = drive(&mut obj, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        prop_assert!(report.audited, "the hash table promises a canonical form");
        prop_assert_eq!(report.final_state, obj.abstract_state());
    }
}

#[test]
fn lookups_stay_lock_free_under_update_storms() {
    // A dedicated non-proptest stress: two updaters churn the table while a
    // third thread issues lookups for a pinned key and for a never-present
    // key; every answer must be exact, and the lookup thread must finish
    // (lock-freedom in practice: no lookup spins forever).
    let table = AtomicHiHashTable::new(64);
    assert!(table.insert(50));
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let table = &table;
        let stop = &stop;
        for t in 0..2u32 {
            s.spawn(move || {
                let mut x = 7u32 + t;
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    // Cheap xorshift over churn keys 1..=40.
                    x ^= x << 5;
                    x ^= x >> 9;
                    let k = x % 40 + 1;
                    if x % 3 == 0 {
                        table.remove(k);
                    } else {
                        table.insert(k);
                    }
                }
            });
        }
        s.spawn(move || {
            for _ in 0..30_000 {
                assert!(table.contains(50), "pinned key missed");
                assert!(!table.contains(60), "phantom key sighted");
            }
            stop.store(true, std::sync::atomic::Ordering::SeqCst);
        });
    });
    let mem = table.memory();
    assert_eq!(mem, canonical_of(&mem, 64));
}
