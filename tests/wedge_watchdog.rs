//! The watchdog contract of `drive_watchdogged`: a threaded backend that
//! wedges (never finishes its workload) must resolve to a structured
//! [`DriveError::Wedged`] within the configured deadline instead of hanging
//! the suite, a panicking worker must surface as [`DriveError::Panicked`]
//! with its handle index, and an honest backend must pass through the
//! watchdogged path unchanged.
//!
//! The wedging/panicking backends here are deliberate fakes: the point is
//! the *driver's* failure behavior, not any algorithm's.

use std::time::{Duration, Instant};

use hi_concurrent::api::{
    drive_watchdogged, ConcurrentObject, DriveConfig, DriveError, HiLevel, HiSetObject,
    ObjectHandle, Progress, Roles,
};
use hi_core::objects::{CounterOp, CounterResp, CounterSpec, SetSpec};

/// A fake two-process counter whose handles complete `healthy_ops`
/// operations and then wedge forever (parked, not spinning, so the leaked
/// worker threads cost nothing after the watchdog abandons them).
struct WedgingCounter {
    spec: CounterSpec,
    healthy_ops: usize,
}

struct WedgingHandle {
    left: usize,
}

impl ObjectHandle<CounterSpec> for WedgingHandle {
    fn apply(&mut self, _op: CounterOp) -> CounterResp {
        if self.left == 0 {
            loop {
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        self.left -= 1;
        CounterResp::Value(0)
    }

    fn supports(&self, _op: &CounterOp) -> bool {
        true
    }
}

impl ConcurrentObject<CounterSpec> for WedgingCounter {
    type Handle<'a> = WedgingHandle;

    fn spec(&self) -> &CounterSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::MultiProcess { n: 2 }
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::NotHi
    }

    fn progress(&self) -> Progress {
        Progress::Blocking
    }

    fn handles(&mut self) -> Vec<Self::Handle<'_>> {
        vec![
            WedgingHandle {
                left: self.healthy_ops,
            },
            WedgingHandle {
                left: self.healthy_ops,
            },
        ]
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        vec![0xdead]
    }

    fn canonical(&self, _state: &i64) -> Option<Vec<u64>> {
        None
    }

    fn abstract_state(&self) -> i64 {
        0
    }
}

/// A fake whose first handle panics on its first operation.
struct PanickingCounter {
    spec: CounterSpec,
}

struct PanickingHandle {
    panics: bool,
}

impl ObjectHandle<CounterSpec> for PanickingHandle {
    fn apply(&mut self, _op: CounterOp) -> CounterResp {
        assert!(!self.panics, "injected worker panic");
        CounterResp::Value(0)
    }

    fn supports(&self, _op: &CounterOp) -> bool {
        true
    }
}

impl ConcurrentObject<CounterSpec> for PanickingCounter {
    type Handle<'a> = PanickingHandle;

    fn spec(&self) -> &CounterSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::MultiProcess { n: 2 }
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::NotHi
    }

    fn progress(&self) -> Progress {
        Progress::WaitFree
    }

    fn handles(&mut self) -> Vec<Self::Handle<'_>> {
        vec![
            PanickingHandle { panics: true },
            PanickingHandle { panics: false },
        ]
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        Vec::new()
    }

    fn canonical(&self, _state: &i64) -> Option<Vec<u64>> {
        None
    }

    fn abstract_state(&self) -> i64 {
        0
    }
}

fn short_deadline() -> DriveConfig {
    DriveConfig {
        ops_per_handle: 8,
        seed: 3,
        deadline: Duration::from_secs(2),
        ..DriveConfig::default()
    }
}

#[test]
fn wedged_backend_resolves_to_a_structured_error_within_the_deadline() {
    let cfg = short_deadline();
    let start = Instant::now();
    let err = drive_watchdogged(
        || WedgingCounter {
            spec: CounterSpec::new(-8, 8, 0),
            healthy_ops: 3,
        },
        &cfg,
    )
    .expect_err("a backend that never drains must not report success");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(15),
        "watchdog took {elapsed:?} — it must fire near the 2s deadline, not hang"
    );
    match err {
        DriveError::Wedged {
            after,
            stalled,
            mem,
        } => {
            assert_eq!(after, cfg.deadline);
            assert_eq!(mem, vec![0xdead], "the drive-start memory travels out");
            // Both handles completed their 3 healthy ops and then wedged
            // short of the 8 planned.
            assert_eq!(stalled.len(), 2, "both handles stalled: {stalled:?}");
            for hp in &stalled {
                assert_eq!(hp.planned, cfg.ops_per_handle);
                assert!(
                    hp.applied >= 3 && hp.applied < hp.planned,
                    "handle {} reported {}/{} ops",
                    hp.handle,
                    hp.applied,
                    hp.planned
                );
            }
            let rendered = format!(
                "{}",
                DriveError::<CounterSpec>::Wedged {
                    after,
                    stalled,
                    mem
                }
            );
            assert!(rendered.contains("drive wedged"), "{rendered}");
        }
        other => panic!("expected Wedged, got: {other}"),
    }
}

#[test]
fn panicking_worker_surfaces_with_its_handle_index() {
    let err = drive_watchdogged(
        || PanickingCounter {
            spec: CounterSpec::new(-8, 8, 0),
        },
        &short_deadline(),
    )
    .expect_err("a panicking worker must not report success");
    match err {
        DriveError::Panicked { handle, message } => {
            assert_eq!(handle, Some(0), "handle 0 carries the injected panic");
            assert!(
                message.contains("injected worker panic"),
                "panic payload must travel out: {message}"
            );
        }
        other => panic!("expected Panicked, got: {other}"),
    }
}

#[test]
fn construction_panic_surfaces_as_a_driver_panic() {
    let err = drive_watchdogged::<CounterSpec, WedgingCounter>(
        || panic!("injected constructor panic"),
        &short_deadline(),
    )
    .expect_err("a panicking constructor must not report success");
    match err {
        DriveError::Panicked { handle, message } => {
            assert_eq!(handle, None, "no worker was running yet");
            assert!(message.contains("injected constructor panic"), "{message}");
        }
        other => panic!("expected Panicked, got: {other}"),
    }
}

#[test]
fn honest_backend_passes_through_the_watchdogged_path() {
    let cfg = DriveConfig {
        ops_per_handle: 40,
        seed: 17,
        ..DriveConfig::default()
    };
    let report = drive_watchdogged(|| HiSetObject::new(SetSpec::new(4), 2), &cfg)
        .unwrap_or_else(|e| panic!("honest backend failed under the watchdog: {e}"));
    assert!(!report.history.records().is_empty());
    assert!(report.audited, "the perfect-HI set must still be audited");
}
