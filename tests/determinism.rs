//! Replay determinism: equal seeds must produce byte-identical executions.
//! Everything in the simulator stack — schedulers, step machines, codecs —
//! is deterministic, which is what makes failures reproducible from a seed
//! alone and what the lower-bound adversary's forked executions rely on.

use hi_concurrent::registers::WaitFreeHiRegister;
use hi_concurrent::sim::{run_workload, Executor, Seeded, Workload};
use hi_concurrent::universal::SimUniversal;
use hi_core::objects::{CounterOp, CounterSpec, MultiRegisterSpec, RegisterOp};

fn register_run(seed: u64) -> (Vec<u64>, String) {
    let imp = WaitFreeHiRegister::new(4, 1);
    let mut exec = Executor::new(imp);
    let mut w: Workload<MultiRegisterSpec> = Workload::new(2);
    for v in [3u64, 1, 4, 2] {
        w.push(0, RegisterOp::Write(v));
        w.push(1, RegisterOp::Read);
    }
    run_workload(&mut exec, w, &mut Seeded::new(seed), &mut (), 100_000).unwrap();
    (exec.snapshot(), format!("{:?}", exec.history()))
}

fn universal_run(seed: u64) -> (Vec<u64>, String) {
    let imp = SimUniversal::new(CounterSpec::new(-4, 4, 0), 3);
    let mut exec = Executor::new(imp);
    let mut w: Workload<CounterSpec> = Workload::new(3);
    for pid in 0..3 {
        w.push(pid, CounterOp::Inc);
        w.push(pid, CounterOp::Dec);
    }
    run_workload(&mut exec, w, &mut Seeded::new(seed), &mut (), 100_000).unwrap();
    (exec.snapshot(), format!("{:?}", exec.history()))
}

#[test]
fn equal_seeds_replay_identically() {
    for seed in [0u64, 7, 42, 0xdead_beef] {
        assert_eq!(
            register_run(seed),
            register_run(seed),
            "register, seed {seed}"
        );
        assert_eq!(
            universal_run(seed),
            universal_run(seed),
            "universal, seed {seed}"
        );
    }
}

#[test]
fn different_seeds_usually_differ() {
    // Not a hard guarantee, but if every seed produced the same history the
    // scheduler would be broken; these four are known to differ.
    let histories: Vec<String> = [0u64, 7, 42, 0xdead_beef]
        .iter()
        .map(|&s| universal_run(s).1)
        .collect();
    let distinct: std::collections::HashSet<&String> = histories.iter().collect();
    assert!(distinct.len() > 1, "schedules did not vary across seeds");
}
