//! The cross-PR latency gate, end to end: the committed
//! `BENCH_service_latency.json` baseline must parse, carry the span
//! attribution and online-audit fields the observability layer emits, and
//! self-compare clean through `hi_bench::delta` — the exact pipeline the
//! CI `bench-delta` job runs against a fresh measurement.

use hi_concurrent::bench::delta::{delta, parse_latency_doc, render_table, GATED_METRICS};
use hi_concurrent::bench::json::workspace_root;

fn committed_baseline() -> String {
    let path = workspace_root().join("BENCH_service_latency.json");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed baseline {}: {e}", path.display()))
}

#[test]
fn committed_baseline_parses_with_observability_fields() {
    let doc = parse_latency_doc(&committed_baseline()).expect("committed baseline parses");
    assert_eq!(doc.bench, "service_latency");
    assert!(!doc.revision.is_empty());
    assert!(doc.rows.len() >= 8, "one row per soak scenario");
    for row in &doc.rows {
        assert!(row.scenario.starts_with("soak/"), "{}", row.scenario);
        for field in [
            "ops",
            "ops_per_sec",
            "ops_per_sec_load",
            "p50_ns",
            "p99_ns",
            "p999_ns",
            "queue_wait_p50_ns",
            "queue_wait_p99_ns",
            "queue_wait_p999_ns",
            "service_p50_ns",
            "service_p99_ns",
            "service_p999_ns",
            "audit_pause_ns",
            "online_probes",
            "online_probes_passed",
        ] {
            assert!(
                row.metric(field).is_some(),
                "{}: baseline row lacks {field}",
                row.scenario
            );
        }
        // Honest online auditing: probes all passed, and only the
        // perfect-HI backends report any.
        assert_eq!(
            row.metric("online_probes"),
            row.metric("online_probes_passed"),
            "{}",
            row.scenario
        );
        let perfect = matches!(row.scenario.as_str(), "soak/set-zipf" | "soak/llsc-zipf");
        assert_eq!(
            row.metric("online_probes").unwrap() > 0.0,
            perfect,
            "{}: online probes run exactly on perfect-HI backends",
            row.scenario
        );
        // The reject scenario sheds load; every other scenario applies its
        // full submission.
        let rejected = row.metric("rejected").expect("rejected field");
        if row.scenario == "soak/universal-counter-reject" {
            assert!(rejected > 0.0, "shedding scenario rejected nothing");
        } else {
            assert_eq!(rejected, 0.0, "{}", row.scenario);
        }
    }
    // The gate's metrics all exist in the baseline, so the CI comparison
    // can never silently compare nothing.
    for (metric, _) in GATED_METRICS {
        assert!(doc.rows.iter().all(|r| r.metric(metric).is_some()));
    }
}

#[test]
fn baseline_self_delta_is_clean() {
    let doc = parse_latency_doc(&committed_baseline()).expect("parses");
    let report = delta(&doc, &doc, 0.0);
    assert!(
        !report.has_regressions(),
        "self-comparison regressed: {:?}",
        report.regressions()
    );
    assert!(report.added.is_empty() && report.removed.is_empty());
    let table = render_table(&report);
    assert!(table.contains("no regressions"), "{table}");
    for row in &doc.rows {
        assert!(table.contains(&row.scenario), "{table}");
    }
}

#[test]
fn synthetic_slowdown_trips_the_gate() {
    let base = parse_latency_doc(&committed_baseline()).expect("parses");
    let mut slow = base.clone();
    for row in &mut slow.rows {
        for (name, v) in row.metrics.iter_mut() {
            if name.ends_with("_ns") {
                *v *= 3.0;
            } else if name == "ops_per_sec" || name == "ops_per_sec_load" {
                *v /= 3.0;
            }
        }
    }
    let report = delta(&base, &slow, 0.5);
    let regs = report.regressions();
    // Every scenario trips on every gated metric: 3x is far past 50%.
    assert_eq!(
        regs.len(),
        base.rows.len() * GATED_METRICS.len(),
        "{regs:?}"
    );
    assert!(render_table(&report).contains("REGRESSED"));
    // And the same movement in the *good* direction is not a regression.
    assert!(!delta(&slow, &base, 0.5).has_regressions());
}
