//! Dedicated crash sweep for the sharded table-of-tables: the updater is
//! crashed at **every** transition of an update that is *guaranteed* to
//! migrate its home shard across a capacity boundary (base 1: the second
//! insert grows 2 -> 4, removing back down shrinks 4 -> 2), while witness
//! keys live in **both** shards. The `rewrite_plan` write order must keep
//! every surviving key somewhere in its home shard's arena at every
//! intermediate configuration — the paper's memory-observing adversary,
//! pointed at the one backend whose updates rewrite a whole shard.
//!
//! Two views are checked at every crash point:
//!
//! * **raw memory** (the adversary's view): each witness key appears in
//!   its home shard's arena at every transition of the faulty run — the
//!   never-absent migration invariant. Checked against the snapshot, not
//!   via `Contains`: mid-migration a present key can sit beyond the stale
//!   capacity word's prefix, where a reader's absent-validation would
//!   block on the wedged seqlock (the Blocking class's price), so only
//!   the *healthy* shard's witnesses are also drained through queries.
//! * **per-shard canonicity** (the composed audit): every shard whose
//!   seqlock the crash left even must show `cap_for` of its key count,
//!   the canonical Robin Hood layout on the live prefix, and a zeroed
//!   dead tail — independently of the wedged shard. That independence is
//!   exactly what makes the big-domain sampled audit composable.

use hi_concurrent::hashtable::canonical_layout;
use hi_concurrent::shard::{cap_for, shard_of, SimShardedTable};
use hi_concurrent::sim::{
    run_workload_with_faults, Executor, FaultPlan, Faulty, Pid, Scripted, Workload,
};
use hi_concurrent::spec::{linearize, run_fault_plan, FaultSweepConfig, LinOptions};
use hi_core::objects::{HashSetOp, HashSetResp, HashSetSpec};

const T: u32 = 6;
const SHARDS: usize = 2;
const BASE: usize = 1;
/// Upper bound on the updater's transition count through one migrating
/// update (acquire 2, cap read 1, arena scan 4, plan writes + capacity
/// word up to 5, release 1); sweeping past it also covers "crash after
/// completion".
const SWEEP: u64 = 16;

const UPDATER: Pid = Pid(0);

/// Keys of the migrating shard (shard 0) and the healthy shard (shard 1),
/// under the fixed shard map at `SHARDS = 2`.
const MIGRATING: [u32; 2] = [1, 2];
const HEALTHY: [u32; 2] = [3, 4];

fn table() -> SimShardedTable {
    // The routing structure the whole file depends on; if the shard map
    // ever changes, fail here with a clear message rather than in a sweep.
    for k in MIGRATING {
        assert_eq!(shard_of(k, SHARDS), 0, "key {k} must route to shard 0");
    }
    for k in HEALTHY {
        assert_eq!(shard_of(k, SHARDS), 1, "key {k} must route to shard 1");
    }
    SimShardedTable::new(T, SHARDS, BASE, 2)
}

/// Physical arena length of each shard: `cap_for` of its worst-case
/// domain slice, mirroring the constructor's provisioning.
fn arena_lens() -> Vec<usize> {
    let mut counts = vec![0usize; SHARDS];
    for key in 1..=T {
        counts[shard_of(key, SHARDS)] += 1;
    }
    counts.into_iter().map(|c| cap_for(c, BASE)).collect()
}

/// The arena slice of shard `s` within a full memory snapshot
/// (`[seq, cap, arena...]` per shard, in shard order).
fn arena_of(snap: &[u64], s: usize) -> &[u64] {
    let lens = arena_lens();
    let off: usize = lens[..s].iter().map(|l| 2 + l).sum();
    &snap[off + 2..off + 2 + lens[s]]
}

/// Seeds the table with `keys` via solo (quiescent) operations.
fn seed_table(exec: &mut Executor<HashSetSpec, SimShardedTable>, keys: &[u32]) {
    for &k in keys {
        let resp = exec
            .run_op_solo(UPDATER, HashSetOp::Insert(k), 10_000)
            .expect("quiescent insert");
        assert_eq!(resp, HashSetResp::Bool(true));
    }
}

/// Crashes the updater at transition `crash_after` of `update`, then
/// drains the reader's `Contains` queries over the healthy shard. Returns
/// the final snapshot.
///
/// Asserts, at **every** transition of the faulty run, that each key of
/// `witnesses` appears somewhere in its home shard's arena — the
/// never-absent migration invariant, checked against raw memory exactly
/// as the crash adversary would.
fn crash_migration(
    imp: &SimShardedTable,
    setup: &[u32],
    update: HashSetOp,
    witnesses: &[u32],
    crash_after: u64,
) -> Vec<u64> {
    let mut exec = Executor::new(imp.clone());
    seed_table(&mut exec, setup);
    let queries: Vec<HashSetOp> = HEALTHY.iter().map(|&k| HashSetOp::Contains(k)).collect();
    let workload: Workload<_> = Workload::from_vecs(vec![vec![update], queries]);
    // The updater runs first so the crash point lands inside its
    // migration; the reader drains afterwards against the frozen memory.
    let mut faulty = Faulty::new(
        Scripted::runs(&[(0, 32)]),
        FaultPlan::crash(UPDATER, crash_after),
        2,
    );
    let mut absent = None;
    run_workload_with_faults(
        &mut exec,
        workload,
        &mut faulty,
        |e, _f| {
            let snap = e.snapshot();
            for &k in witnesses {
                if !arena_of(&snap, shard_of(k, SHARDS)).contains(&u64::from(k)) {
                    absent = Some((k, snap.clone()));
                }
            }
        },
        20_000,
    )
    .unwrap_or_else(|e| panic!("crash at {crash_after}: reader failed to drain: {e}"));
    if let Some((k, snap)) = absent {
        panic!(
            "crash at {crash_after}: present key {k} vanished from shard {} \
             mid-migration (never-absent violated): snapshot {snap:?}",
            shard_of(k, SHARDS)
        );
    }
    // The healthy shard's queries always complete, and every one of them
    // must have sighted its (present) key.
    for rec in exec.history().records() {
        if let HashSetOp::Contains(k) = rec.op {
            assert_eq!(
                rec.resp,
                Some(HashSetResp::Bool(true)),
                "crash at {crash_after}: Contains({k}) did not sight a surviving key"
            );
        }
    }
    linearize(exec.spec(), exec.history(), &LinOptions::default())
        .unwrap_or_else(|e| panic!("crash at {crash_after}: truncated history: {e}"));
    exec.snapshot()
}

/// Audits each shard independently at the crash's final configuration:
/// a shard whose seqlock is even is state-quiescent and must be canonical
/// on its own — capacity word `cap_for` of its key count, live prefix the
/// canonical layout, dead tail zeroed. Returns
/// `(quiescent_shards, wedged_shards)`.
fn audit_shards(snap: &[u64], crash_after: u64) -> (usize, usize) {
    let lens = arena_lens();
    let (mut quiescent, mut wedged) = (0, 0);
    let mut off = 0;
    for (s, &len) in lens.iter().enumerate() {
        let seq = snap[off];
        let cap = snap[off + 1] as usize;
        let arena = &snap[off + 2..off + 2 + len];
        off += 2 + len;
        if seq % 2 != 0 {
            wedged += 1;
            continue;
        }
        let keys: Vec<u32> = arena
            .iter()
            .filter(|&&v| v != 0)
            .map(|&v| v as u32)
            .collect();
        assert_eq!(
            cap,
            cap_for(keys.len(), BASE),
            "crash at {crash_after}: shard {s}'s capacity word leaks history for {keys:?}"
        );
        let canonical: Vec<u64> = canonical_layout(cap, keys.iter().copied())
            .into_iter()
            .map(u64::from)
            .collect();
        assert_eq!(
            &arena[..cap],
            canonical.as_slice(),
            "crash at {crash_after}: shard {s}'s live prefix is not canonical for {keys:?}"
        );
        assert!(
            arena[cap..].iter().all(|&v| v == 0),
            "crash at {crash_after}: shard {s}'s dead tail is not zeroed"
        );
        quiescent += 1;
    }
    assert_eq!(off, snap.len(), "snapshot layout drifted from the model");
    (quiescent, wedged)
}

#[test]
fn grow_migration_crashed_at_every_step_never_hides_a_surviving_key() {
    let imp = table();
    // Shard 0 holds {1} at capacity 2; inserting 2 forces the 2 -> 4 grow.
    // Witness 1 rides the migration; 3 and 4 sit in the untouched shard.
    let setup = [1, 3, 4];
    let witnesses = [1, 3, 4];
    let (mut all_quiescent, mut wedged_points) = (0, 0);
    for crash_after in 0..=SWEEP {
        let snap = crash_migration(&imp, &setup, HashSetOp::Insert(2), &witnesses, crash_after);
        let (quiescent, wedged) = audit_shards(&snap, crash_after);
        assert!(
            quiescent >= SHARDS - 1,
            "crash at {crash_after}: only the updated shard may wedge"
        );
        if wedged == 0 {
            all_quiescent += 1;
        } else {
            wedged_points += 1;
        }
    }
    assert!(
        all_quiescent > 0,
        "some crash points must land outside the critical section"
    );
    assert!(
        wedged_points > 0,
        "some crash points must land mid-migration — otherwise the sweep proves nothing"
    );
}

#[test]
fn shrink_migration_crashed_at_every_step_never_hides_a_surviving_key() {
    let imp = table();
    // Shard 0 holds {1, 2} at capacity 4; removing 2 forces the 4 -> 2
    // shrink, with 1 surviving the rewrite into the smaller prefix.
    let setup = [1, 2, 3, 4];
    let witnesses = [1, 3, 4];
    let (mut all_quiescent, mut wedged_points) = (0, 0);
    for crash_after in 0..=SWEEP {
        let snap = crash_migration(&imp, &setup, HashSetOp::Remove(2), &witnesses, crash_after);
        let (quiescent, wedged) = audit_shards(&snap, crash_after);
        assert!(quiescent >= SHARDS - 1);
        if wedged == 0 {
            all_quiescent += 1;
        } else {
            wedged_points += 1;
        }
    }
    assert!(all_quiescent > 0);
    assert!(
        wedged_points > 0,
        "the shrink rewrite must expose mid-critical-section crash points"
    );
}

/// The generic single-plan checker on the same table: a crash
/// mid-migration may wedge the shard's survivors (`Progress::Blocking`
/// tolerates `completed: false`), but the truncated history must still
/// linearize and the composed HI audit must hold at whatever observation
/// points remain.
#[test]
fn generic_fault_plans_tolerate_blocking_wedges_only() {
    let imp = table();
    let cfg = FaultSweepConfig::new(21, 5, 200_000);
    let mut wedged = 0;
    let mut drained = 0;
    for crash_after in 0..=SWEEP {
        let plan = FaultPlan::crash(UPDATER, crash_after);
        let outcome = run_fault_plan(&imp, &plan, &cfg, 50_000)
            .unwrap_or_else(|e| panic!("crash at {crash_after}: {e}"));
        if outcome.completed {
            drained += 1;
        } else {
            wedged += 1;
        }
    }
    assert!(
        drained > 0,
        "crashes outside the critical section must let survivors drain"
    );
    assert!(
        wedged > 0,
        "a mid-migration crash must wedge the shard's seqlock — the Blocking class's price"
    );
}
