//! Drain-barrier coverage: deterministic proof that every mid-soak HI
//! audit observes a *state-quiescent* point, plus the wedge-under-load
//! negative path through the watchdog.
//!
//! The positive proof uses an instrumented fake object that counts its
//! live handles (incremented at `handles()`, decremented on handle drop)
//! and panics inside `mem_snapshot()` if any handle is still alive — so a
//! soak that audits mid-flight cannot pass. That the real soak *cannot*
//! even attempt such an audit is the borrow checker's doing: handles
//! borrow the object and `mem_snapshot()` needs the object back, so
//! "audit with an operation in flight" is a compile error, and this suite
//! checks the runtime shadow of that guarantee.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use hi_concurrent::api::{ConcurrentObject, HiLevel, ObjectHandle, Progress, Roles};
use hi_concurrent::core::objects::{CounterOp, CounterResp, CounterSpec};
use hi_concurrent::core::ObjectSpec;
use hi_concurrent::service::{run_soak_with, soak_watchdogged, SoakConfig, SoakError};

/// Memory encoding of the probe objects: one cell, the counter value
/// shifted to stay non-negative. Canonical by construction, so the soak's
/// HI audit passes whenever it runs at a genuinely quiescent point.
fn encode(state: i64) -> Vec<u64> {
    vec![(state + 1_000) as u64]
}

/// A `ConcurrentObject` that *counts its live handles* and refuses to be
/// audited while any exist. `Mutex`-based on purpose: no atomics, so the
/// static guard's ordering allowlist stays untouched, and the counters
/// are exact.
struct QuiescenceProbe {
    spec: CounterSpec,
    n: usize,
    state: Mutex<i64>,
    live_handles: Arc<Mutex<usize>>,
    snapshots: Mutex<usize>,
}

impl QuiescenceProbe {
    fn new(n: usize) -> Self {
        QuiescenceProbe {
            spec: CounterSpec::new(-500, 500, 0),
            n,
            state: Mutex::new(0),
            live_handles: Arc::new(Mutex::new(0)),
            snapshots: Mutex::new(0),
        }
    }
}

struct ProbeHandle<'a> {
    probe: &'a QuiescenceProbe,
}

impl Drop for ProbeHandle<'_> {
    fn drop(&mut self) {
        *self.probe.live_handles.lock().unwrap() -= 1;
    }
}

impl ObjectHandle<CounterSpec> for ProbeHandle<'_> {
    fn apply(&mut self, op: CounterOp) -> CounterResp {
        let mut s = self.probe.state.lock().unwrap();
        let (next, resp) = self.probe.spec.apply(&s, &op);
        *s = next;
        resp
    }

    fn supports(&self, _op: &CounterOp) -> bool {
        true
    }
}

impl ConcurrentObject<CounterSpec> for QuiescenceProbe {
    type Handle<'a> = ProbeHandle<'a>;

    fn spec(&self) -> &CounterSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::MultiProcess { n: self.n }
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::StateQuiescent
    }

    fn progress(&self) -> Progress {
        Progress::WaitFree
    }

    fn handles(&mut self) -> Vec<ProbeHandle<'_>> {
        *self.live_handles.lock().unwrap() += self.n;
        (0..self.n).map(|_| ProbeHandle { probe: self }).collect()
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        let live = *self.live_handles.lock().unwrap();
        assert_eq!(
            live, 0,
            "HI audit observed a non-quiescent point: {live} handles in flight"
        );
        *self.snapshots.lock().unwrap() += 1;
        encode(*self.state.lock().unwrap())
    }

    fn canonical(&self, state: &i64) -> Option<Vec<u64>> {
        Some(encode(*state))
    }

    fn abstract_state(&self) -> i64 {
        *self.state.lock().unwrap()
    }
}

#[test]
fn mid_soak_audits_observe_a_state_quiescent_point() {
    let cfg = SoakConfig {
        clients: 6,
        client_threads: 3,
        total_ops: 1_200,
        mid_audits: 3,
        seed: 9,
        ..SoakConfig::default()
    };
    let mut probe = QuiescenceProbe::new(3);
    let mut points: Vec<(usize, usize, bool, Vec<u64>)> = Vec::new();
    let report = run_soak_with(&mut probe, &cfg, |p| {
        points.push((p.epoch, p.applied, p.audited, p.mem.to_vec()));
    })
    .expect("the probe soaks clean when every audit point is quiescent");

    // Four epochs of 300 ops each: the barriers land exactly at the
    // deterministic epoch boundaries, and each one really audited.
    assert_eq!(report.ops_applied, 1_200);
    let expected: Vec<(usize, usize, bool)> = vec![
        (0, 300, true),
        (1, 600, true),
        (2, 900, true),
        (3, 1_200, true),
    ];
    assert_eq!(
        points
            .iter()
            .map(|(e, a, ok, _)| (*e, *a, *ok))
            .collect::<Vec<_>>(),
        expected
    );
    // The observer's memory view is the canonical form of the state the
    // barrier decoded — the same comparison the audit itself passed.
    for (_, _, _, mem) in &points {
        assert_eq!(mem.len(), 1);
    }
    assert_eq!(points.last().unwrap().3, encode(probe.abstract_state()));

    // The probe's own ledger: one snapshot per barrier, zero handles left.
    assert_eq!(*probe.snapshots.lock().unwrap(), 4);
    assert_eq!(*probe.live_handles.lock().unwrap(), 0);
}

/// A `ConcurrentObject` whose handles wedge (sleep forever) after a fixed
/// number of applied operations — the service-load version of the wedge
/// fakes in `wedge_watchdog`.
struct WedgingObject {
    spec: CounterSpec,
    n: usize,
    state: Mutex<i64>,
    applied: Arc<Mutex<usize>>,
    wedge_after: usize,
}

struct WedgingHandle<'a> {
    obj: &'a WedgingObject,
}

impl ObjectHandle<CounterSpec> for WedgingHandle<'_> {
    fn apply(&mut self, op: CounterOp) -> CounterResp {
        {
            let mut count = self.obj.applied.lock().unwrap();
            if *count >= self.obj.wedge_after {
                drop(count);
                // Wedge: never completes. The watchdog abandons the whole
                // driver thread; the process exits out from under us.
                loop {
                    std::thread::sleep(Duration::from_secs(3_600));
                }
            }
            *count += 1;
        }
        let mut s = self.obj.state.lock().unwrap();
        let (next, resp) = self.obj.spec.apply(&s, &op);
        *s = next;
        resp
    }

    fn supports(&self, _op: &CounterOp) -> bool {
        true
    }
}

impl ConcurrentObject<CounterSpec> for WedgingObject {
    type Handle<'a> = WedgingHandle<'a>;

    fn spec(&self) -> &CounterSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::MultiProcess { n: self.n }
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::StateQuiescent
    }

    fn progress(&self) -> Progress {
        Progress::Blocking
    }

    fn handles(&mut self) -> Vec<WedgingHandle<'_>> {
        (0..self.n).map(|_| WedgingHandle { obj: self }).collect()
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        encode(*self.state.lock().unwrap())
    }

    fn canonical(&self, state: &i64) -> Option<Vec<u64>> {
        Some(encode(*state))
    }

    fn abstract_state(&self) -> i64 {
        *self.state.lock().unwrap()
    }
}

#[test]
fn wedge_under_load_fails_structured_through_the_watchdog() {
    let cfg = SoakConfig {
        clients: 4,
        client_threads: 2,
        total_ops: 2_000,
        mid_audits: 1,
        seed: 5,
        deadline: Duration::from_secs(2),
        ..SoakConfig::default()
    };
    let verdict = soak_watchdogged(
        || WedgingObject {
            spec: CounterSpec::new(-500, 500, 0),
            n: 3,
            state: Mutex::new(0),
            applied: Arc::new(Mutex::new(0)),
            wedge_after: 64,
        },
        &cfg,
    );
    match verdict {
        Err(SoakError::Wedged { after, progress }) => {
            assert_eq!(after, cfg.deadline);
            // The metrics snapshot diagnoses the wedge: the dry-run knew
            // the full plan, the live counters stopped at the wedge point.
            assert_eq!(progress.planned(), cfg.total_ops);
            assert!(
                progress.applied() <= 64 + 3,
                "applied past the wedge point: {}",
                progress.applied()
            );
            assert!(
                !progress.stalled().is_empty(),
                "a wedged soak must name its stalled workers"
            );
            let msg = SoakError::Wedged { after, progress }.to_string();
            assert!(msg.contains("not drained"), "{msg}");
        }
        other => panic!("expected Wedged, got {other:?}"),
    }
}

#[test]
fn quiescence_probe_rejects_a_live_audit() {
    // The probe really enforces what the positive test claims it does:
    // auditing with a handle outstanding panics. (With a *real* backend
    // this line would not compile — `mem_snapshot()` cannot be reached
    // while `handles()`'s borrow is alive; the probe checks the runtime
    // shadow of that rule through a clone of the counter.)
    let mut probe = QuiescenceProbe::new(2);
    let live = Arc::clone(&probe.live_handles);
    let handles = probe.handles();
    assert_eq!(*live.lock().unwrap(), 2);
    let err = std::panic::catch_unwind(|| {
        // Rebuild the audit's view from the shared ledger, as the soak
        // would: live handles make the audit a hard failure.
        let live = *live.lock().unwrap();
        assert_eq!(live, 0, "HI audit observed a non-quiescent point");
    })
    .expect_err("auditing with live handles must fail");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("non-quiescent"), "{msg}");
    drop(handles);
    assert_eq!(*live.lock().unwrap(), 0);
}
