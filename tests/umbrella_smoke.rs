//! Smoke test for the umbrella crate's re-exports.
//!
//! Every module `hi_concurrent` promises to re-export is exercised with a
//! real, load-bearing use, so dropping a `pub use` from `src/lib.rs` is a
//! test failure here rather than a downstream user's build break.

use hi_concurrent::{
    api, core, hashtable, llsc, lowerbound, queue, randomized, registers, service, shard, sim,
    spec, universal,
};

#[test]
fn api_reexport_drives_an_object() {
    use api::{ConcurrentObject, ObjectHandle};
    let mut reg = api::LockFreeHiObject::new(core::objects::MultiRegisterSpec::new(3, 1));
    {
        let mut handles = reg.handles();
        assert_eq!(
            handles[0].apply(core::objects::RegisterOp::Write(2)),
            core::objects::RegisterResp::Ack
        );
        assert_eq!(
            handles[1].apply(core::objects::RegisterOp::Read),
            core::objects::RegisterResp::Value(2)
        );
    }
    assert_eq!(Some(reg.mem_snapshot()), reg.canonical(&2));
    assert_eq!(api::registry().len(), 14, "all backends registered");
}

#[test]
fn core_reexport_builds_histories() {
    let mut h: core::History<core::objects::RegisterOp, core::objects::RegisterResp> =
        core::History::new();
    let id = h.invoke(core::Pid(0), core::objects::RegisterOp::Write(1));
    h.ret(id, core::objects::RegisterResp::Ack);
    assert_eq!(h.records().len(), 1);
}

#[test]
fn sim_and_registers_reexports_run_an_algorithm() {
    let imp = registers::waitfree::WaitFreeHiRegister::new(3, 1);
    let mut exec = sim::Executor::new(imp);
    exec.run_op_solo(sim::Pid(0), core::objects::RegisterOp::Write(2), 1_000)
        .unwrap();
    let resp = exec
        .run_op_solo(sim::Pid(1), core::objects::RegisterOp::Read, 1_000)
        .unwrap();
    assert_eq!(resp, core::objects::RegisterResp::Value(2));
}

#[test]
fn spec_reexport_linearizes() {
    let reg_spec = core::objects::MultiRegisterSpec::new(3, 1);
    let mut h: core::History<core::objects::RegisterOp, core::objects::RegisterResp> =
        core::History::new();
    let id = h.invoke(core::Pid(0), core::objects::RegisterOp::Write(2));
    h.ret(id, core::objects::RegisterResp::Ack);
    let lin = spec::linearize(&reg_spec, &h, &spec::LinOptions::default()).unwrap();
    assert_eq!(lin.order.len(), 1);
}

#[test]
fn queue_reexport_constructs() {
    let imp = queue::PositionalQueue::new(3, 4);
    let mut exec = sim::Executor::new(imp);
    let resp = exec
        .run_op_solo(sim::Pid(0), core::objects::QueueOp::Enqueue(2), 1_000)
        .unwrap();
    assert_eq!(resp, core::objects::QueueResp::Empty);
    // Peek is read-only and must run on a reader process, not the mutator.
    let front = exec
        .run_op_solo(sim::Pid(1), core::objects::QueueOp::Peek, 1_000)
        .unwrap();
    assert_eq!(front, core::objects::QueueResp::Value(2));
}

#[test]
fn llsc_reexport_packs() {
    let layout = llsc::LlscLayout::new(8, 4);
    let cell = layout.pack(0xAB, 0b1010);
    assert_eq!(layout.val(cell), 0xAB);
    assert_eq!(layout.context(cell), 0b1010);
}

#[test]
fn universal_reexport_encodes() {
    let counter = core::objects::CounterSpec::new(-4, 4, 0);
    let codec = universal::Codec::new(&counter, 2);
    let head = codec.enc_head(&0, None);
    assert_eq!(codec.dec_head(head), (0, None));
}

#[test]
fn lowerbound_reexport_names_scripts() {
    // Constructing an adversary script is enough to pin the re-export.
    let spec = core::objects::MultiRegisterSpec::new(3, 1);
    let _script = lowerbound::CtScript::new(spec);
}

#[test]
fn hashtable_reexport_inserts() {
    let mut t = hashtable::HiHashTable::new(8);
    assert!(t.insert(3));
    assert!(t.contains(3));
}

#[test]
fn service_reexport_soaks_an_object() {
    use api::ConcurrentObject;
    let mut obj = api::UniversalObject::new(core::objects::CounterSpec::new(-10, 10, 0), 2);
    let cfg = service::SoakConfig {
        clients: 4,
        total_ops: 400,
        mid_audits: 1,
        ..service::SoakConfig::default()
    };
    let report = service::run_soak(&mut obj, &cfg).expect("soak");
    assert_eq!(report.ops_applied, 400);
    assert_eq!(report.audits.len(), 2);
    assert_eq!(
        Some(obj.mem_snapshot()),
        obj.canonical(&obj.abstract_state())
    );
    assert_eq!(
        service::soak_registry().len(),
        10,
        "all soak scenarios registered"
    );
}

#[test]
fn shard_reexport_routes_and_sizes() {
    let t = shard::ShardedHiHashTable::new(16, 4, 2);
    assert!(t.insert(3));
    assert!(t.contains(3));
    assert_eq!(shard::cap_for(0, 2), 2);
    assert!(shard::shard_of(3, 4) < 4);
}

#[test]
fn randomized_reexport_constructs_sets() {
    let _weak = randomized::RandomSlotSet::new(2, 4);
    let _canonical = randomized::CanonicalSlotSet::new(2);
}
