//! Service-harness soak conformance: every scenario in
//! `hi_service::soak_registry()` is soaked at CI scale through the
//! watchdogged runner, with the mid-soak drain-barrier HI audits on and
//! the report's accounting invariants pinned.
//!
//! Set `HI_CONFORMANCE_SEED=<u64>` to add one more seed to every loop —
//! the CI seed matrix drives this, exactly as in `api_conformance`.

use std::time::Duration;

use hi_concurrent::bench::hist::Histogram;
use hi_concurrent::service::{
    soak_registry, soak_scenario, Backpressure, OnlineAudit, SoakConfig, SoakError, WorkerStats,
};

/// Base seeds per scenario, extended by `HI_CONFORMANCE_SEED` if set.
fn seeds() -> Vec<u64> {
    let mut seeds = vec![11, 0x50a6_u64];
    if let Ok(raw) = std::env::var("HI_CONFORMANCE_SEED") {
        // Panic rather than skip: a CI matrix job whose seed does not parse
        // must fail loudly, not silently rerun the base seeds.
        let extra: u64 = raw
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("HI_CONFORMANCE_SEED={raw:?} is not a u64: {e}"));
        if !seeds.contains(&extra) {
            seeds.push(extra);
        }
    }
    seeds
}

/// CI-scale soak: enough traffic to churn every queue and cross several
/// drain barriers, small enough to keep the whole matrix fast.
fn ci_cfg(seed: u64) -> SoakConfig {
    SoakConfig {
        clients: 8,
        client_threads: 4,
        total_ops: 3_000,
        queue_depth: 64,
        mid_audits: 3,
        seed,
        deadline: Duration::from_secs(60),
        ..SoakConfig::default()
    }
}

#[test]
fn every_soak_scenario_survives_with_mid_soak_audits() {
    for scenario in soak_registry() {
        for seed in seeds() {
            let cfg = ci_cfg(seed);
            let report = scenario
                .run(&cfg)
                .unwrap_or_else(|e| panic!("{} (seed {seed}): {e}", scenario.name));

            if scenario.backpressure == Some(Backpressure::Reject) {
                // Open-loop shedding scenario: every op is accepted or
                // rejected (never lost), accepted ops are all applied, and
                // the shallow scenario queue guarantees real rejections.
                assert_eq!(
                    report.ops_submitted + report.ops_rejected,
                    cfg.total_ops,
                    "{}: an op was neither accepted nor rejected",
                    scenario.name
                );
                assert_eq!(
                    report.ops_applied, report.ops_submitted,
                    "{}",
                    scenario.name
                );
                assert!(
                    report.ops_rejected > 0,
                    "{}: depth-{:?} shedding queue rejected nothing",
                    scenario.name,
                    scenario.queue_depth
                );
                assert_eq!(
                    report.sends_blocked, 0,
                    "{}: Reject mode never blocks",
                    scenario.name
                );
            } else {
                // Closed-loop (Block) accounting: everything submitted is
                // applied, nothing is shed.
                assert_eq!(report.ops_applied, cfg.total_ops, "{}", scenario.name);
                assert_eq!(report.ops_submitted, cfg.total_ops, "{}", scenario.name);
                assert_eq!(report.ops_rejected, 0, "{}", scenario.name);
            }
            // Every applied op is one latency sample, and — since tracing
            // is on by default — one queue-wait and one service-time span.
            assert_eq!(
                report.latency.count(),
                report.ops_applied as u64,
                "{}",
                scenario.name
            );
            assert_eq!(
                report.queue_wait.count(),
                report.ops_applied as u64,
                "{}",
                scenario.name
            );
            assert_eq!(
                report.service.count(),
                report.ops_applied as u64,
                "{}",
                scenario.name
            );
            assert_eq!(
                report.workers.iter().map(|w| w.applied).sum::<usize>(),
                report.ops_applied,
                "{}",
                scenario.name
            );
            // Per-worker span attribution is a partition of the merged
            // histograms: worker counts sum to the report's.
            let worker_sum = |pick: fn(&WorkerStats) -> &Histogram| {
                report.workers.iter().map(|w| pick(w).count()).sum::<u64>()
            };
            assert_eq!(
                worker_sum(|w| &w.latency),
                report.latency.count(),
                "{}",
                scenario.name
            );
            assert_eq!(
                worker_sum(|w| &w.queue_wait),
                report.queue_wait.count(),
                "{}",
                scenario.name
            );
            assert_eq!(
                worker_sum(|w| &w.service),
                report.service.count(),
                "{}",
                scenario.name
            );
            // Audit-excluded throughput can only exceed the gross figure.
            assert!(
                report.ops_per_sec_load() >= report.ops_per_sec(),
                "{}",
                scenario.name
            );
            // Per-epoch metrics cover every drain barrier.
            assert_eq!(
                report.metrics.epochs.len(),
                cfg.mid_audits + 1,
                "{}",
                scenario.name
            );
            assert_eq!(
                report
                    .metrics
                    .epochs
                    .iter()
                    .map(|e| e.ops_applied)
                    .sum::<usize>(),
                report.ops_applied,
                "{}",
                scenario.name
            );

            // Drain barriers: one per epoch, all HI-audited (every soak
            // scenario wraps an auditable backend), cumulative counts
            // strictly increasing up to the full op count.
            assert_eq!(report.audits.len(), cfg.mid_audits + 1, "{}", scenario.name);
            assert!(
                report.audits.iter().all(|a| a.audited),
                "{}: a drain barrier skipped its HI audit",
                scenario.name
            );
            assert!(
                report
                    .audits
                    .windows(2)
                    .all(|w| w[0].applied < w[1].applied),
                "{}: audit points not strictly increasing: {:?}",
                scenario.name,
                report.audits
            );
            assert_eq!(
                report.audits.last().expect("at least one audit").applied,
                report.ops_applied,
                "{}",
                scenario.name
            );
        }
    }
}

#[test]
fn soak_registry_names_are_unique_and_resolvable() {
    let registry = soak_registry();
    assert!(registry.len() >= 8, "soak registry shrank");
    let mut names: Vec<_> = registry.iter().map(|s| s.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), registry.len(), "duplicate soak scenario names");
    for s in &registry {
        assert!(
            s.name.starts_with("soak/"),
            "{}: soak names are soak/family-shape",
            s.name
        );
        assert!(soak_scenario(s.name).is_some());
    }
    // The acceptance bar names these two specifically: the hash table under
    // Zipfian skew and the universal construction.
    assert!(soak_scenario("soak/hashtable-zipf").is_some());
    assert!(soak_scenario("soak/universal-counter-bursty").is_some());
    assert!(soak_scenario("soak/nonexistent").is_none());
    // The observability additions: a scenario whose identity is the reject
    // path, and the second perfect-HI backend for online probing.
    let reject = soak_scenario("soak/universal-counter-reject").expect("registered");
    assert_eq!(reject.backpressure, Some(Backpressure::Reject));
    assert!(reject.queue_depth.is_some());
    assert!(soak_scenario("soak/llsc-zipf").is_some());
}

#[test]
fn soak_dispatch_is_deterministic_per_seed() {
    let cfg = ci_cfg(0xd157);
    let run = || {
        soak_scenario("soak/hashtable-zipf")
            .expect("registered")
            .run(&cfg)
            .expect("soak")
    };
    let (a, b) = (run(), run());
    // Timing differs run to run; the sharded dispatch must not. The same
    // seed routes the same multiset of operations to the same workers.
    let applied = |r: &hi_concurrent::service::SoakReport| {
        r.workers.iter().map(|w| w.applied).collect::<Vec<_>>()
    };
    assert_eq!(applied(&a), applied(&b));
    assert_eq!(a.ops_submitted, b.ops_submitted);
}

#[test]
fn zipfian_skew_concentrates_load_within_a_shard() {
    // Under θ=1.1 Zipfian skew the hottest worker must see strictly more
    // traffic than the coldest — the skew survives sharding. (Both runs
    // are deterministic per seed, so this cannot flake.)
    let report = soak_scenario("soak/hashtable-zipf")
        .expect("registered")
        .run(&ci_cfg(21))
        .expect("soak");
    let max = report.workers.iter().map(|w| w.applied).max().unwrap();
    let min = report.workers.iter().map(|w| w.applied).min().unwrap();
    assert!(
        max > min,
        "Zipfian load landed perfectly uniform across workers: {:?}",
        report.workers
    );
}

#[test]
fn reject_backpressure_accounts_for_every_submission() {
    // Open-loop shedding: a tiny queue in front of slow multi-word objects
    // may reject; whatever happens, the accounting identity holds and the
    // audits still pass at every barrier.
    let cfg = SoakConfig {
        queue_depth: 1,
        backpressure: Backpressure::Reject,
        ..ci_cfg(3)
    };
    let report = soak_scenario("soak/universal-counter-bursty")
        .expect("registered")
        .run(&cfg)
        .expect("soak");
    assert_eq!(
        report.ops_submitted + report.ops_rejected,
        cfg.total_ops,
        "an op was neither accepted nor rejected"
    );
    assert_eq!(report.ops_applied, report.ops_submitted);
    assert_eq!(report.latency.count(), report.ops_applied as u64);
    assert_eq!(report.sends_blocked, 0, "Reject mode never blocks");
    assert_eq!(report.audits.len(), cfg.mid_audits + 1);
    assert!(report.audits.iter().all(|a| a.audited));
}

#[test]
fn online_probes_sample_perfect_hi_backends_mid_flight() {
    // The two perfect-HI backends (the §5.1 set and the Algorithm 6 LL/SC
    // word) admit the canonical-memory audit at *any* configuration, so the
    // soak samples them online, mid-epoch, without a drain barrier. Every
    // sample that found non-canonical memory would have failed the run, so
    // a passing report's probes all passed — and the prober takes its first
    // sample immediately, so every epoch contributes at least one.
    for name in ["soak/set-zipf", "soak/llsc-zipf"] {
        let report = soak_scenario(name)
            .expect("registered")
            .run(&ci_cfg(17))
            .expect("soak");
        assert_eq!(report.metrics.online, OnlineAudit::Sampled, "{name}");
        assert!(
            report.metrics.probes() >= report.metrics.epochs.len(),
            "{name}: {} probes over {} epochs",
            report.metrics.probes(),
            report.metrics.epochs.len()
        );
        assert_eq!(
            report.metrics.probes_passed(),
            report.metrics.probes(),
            "{name}: a passing soak cannot have failed probes"
        );
    }
}

#[test]
fn online_probes_are_honestly_unsupported_on_state_quiescent_backends() {
    // State-quiescent HI only promises canonical memory in *quiescent*
    // configurations — a mid-flight snapshot may legitimately differ, so
    // probing one would be unsound. The report says Unsupported rather
    // than silently claiming coverage.
    let report = soak_scenario("soak/hashtable-zipf")
        .expect("registered")
        .run(&ci_cfg(17))
        .expect("soak");
    assert_eq!(report.metrics.online, OnlineAudit::Unsupported);
    assert_eq!(report.metrics.probes(), 0);
}

#[test]
fn online_probes_can_be_disabled() {
    let cfg = SoakConfig {
        online_probes: 0,
        ..ci_cfg(17)
    };
    let report = soak_scenario("soak/set-zipf")
        .expect("registered")
        .run(&cfg)
        .expect("soak");
    assert_eq!(report.metrics.online, OnlineAudit::Disabled);
    assert_eq!(report.metrics.probes(), 0);
}

#[test]
fn soak_errors_render_their_diagnosis() {
    // The Wedged arm is exercised end-to-end in `service_drain`; here pin
    // the Display surface the CI log shows.
    let e = SoakError::NotCanonical {
        epoch: 2,
        state: "7".into(),
        mem: vec![1, 2],
        canonical: vec![1, 3],
    };
    let msg = e.to_string();
    assert!(msg.contains("epoch 2"), "{msg}");
    assert!(msg.contains("[1, 2]") && msg.contains("[1, 3]"), "{msg}");

    let e = SoakError::ProbeNotCanonical {
        epoch: 1,
        state: "0x3".into(),
        mem: vec![9],
    };
    let msg = e.to_string();
    assert!(
        msg.contains("online probe") && msg.contains("epoch 1"),
        "{msg}"
    );
    assert!(msg.contains("[9]") && msg.contains("0x3"), "{msg}");
}
