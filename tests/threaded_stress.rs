//! Real-thread stress tests, driven exclusively through the unified
//! `ConcurrentObject` facade: `hi_api::drive` runs the threaded backends
//! under OS-scheduler nondeterminism, rebuilds a timestamped history,
//! checks linearizability with the same checker used for simulated
//! executions, and audits the quiescent memory against the canonical form
//! wherever the backend promises one.
//!
//! (These tests predate `hi-api` and used to carry per-object stamping and
//! history-rebuilding glue; that logic now lives in `hi_api::drive`, and
//! each test is one call.)

use hi_concurrent::api::{
    drive, ConcurrentObject, DriveConfig, LlscObject, LockFreeHiObject, ObjectHandle, QueueObject,
    UniversalObject, VidyasankarObject, WaitFreeHiObject,
};
use hi_core::objects::{BoundedQueueSpec, CounterOp, CounterSpec, MultiRegisterSpec};
use hi_llsc::RLlscSpec;

fn cfg(seed: u64) -> DriveConfig {
    DriveConfig {
        ops_per_handle: 300,
        seed,
        ..DriveConfig::default()
    }
}

#[test]
fn threaded_universal_counter_linearizes() {
    let mut u = UniversalObject::new(CounterSpec::new(-200, 200, 0), 3);
    let report = drive(&mut u, &cfg(1)).expect("threaded universal history");
    // Quiescent memory must be canonical of the final abstract state.
    assert!(report.audited);
    assert_eq!(Some(report.mem), u.canonical(&u.abstract_state()));
}

#[test]
fn threaded_vidyasankar_register_linearizes_but_skips_audit() {
    let mut reg = VidyasankarObject::new(MultiRegisterSpec::new(5, 1));
    let report = drive(&mut reg, &cfg(2)).expect("threaded Algorithm 1 history");
    assert!(!report.audited, "Algorithm 1 fixes no canonical form");
}

#[test]
fn threaded_lockfree_register_linearizes() {
    let mut reg = LockFreeHiObject::new(MultiRegisterSpec::new(5, 1));
    let report = drive(&mut reg, &cfg(3)).expect("threaded Algorithm 2 history");
    assert!(report.audited);
}

#[test]
fn threaded_waitfree_register_linearizes_and_ends_canonical() {
    let mut reg = WaitFreeHiObject::new(MultiRegisterSpec::new(4, 1));
    let report = drive(&mut reg, &cfg(4)).expect("threaded Algorithm 4 history");
    // The driver already audited; double-check through the facade surface.
    assert_eq!(Some(report.mem), reg.canonical(&reg.abstract_state()));
}

#[test]
fn threaded_positional_queue_linearizes() {
    let mut q = QueueObject::new(BoundedQueueSpec::new(3, 8));
    let report = drive(&mut q, &cfg(5)).expect("threaded queue history");
    assert!(report.audited);
}

#[test]
fn threaded_llsc_linearizes_with_perfect_hi() {
    let mut x = LlscObject::new(RLlscSpec::new(8, 0, 4));
    let report = drive(&mut x, &cfg(6)).expect("threaded Algorithm 6 history");
    assert!(report.audited);
    // Perfect HI: the single word is a bijection of (value, context).
    assert_eq!(report.mem.len(), 1);
}

#[test]
fn threaded_universal_histories_leave_identical_memory() {
    // Two very different concurrent histories reaching counter value 0 leave
    // byte-identical memory (the HI guarantee on real atomics), observed
    // purely through the facade.
    let spec = CounterSpec::new(-100, 100, 0);
    let mut u1 = UniversalObject::new(spec, 4);
    {
        let handles = u1.handles();
        std::thread::scope(|s| {
            for mut h in handles {
                s.spawn(move || {
                    for _ in 0..50 {
                        h.apply(CounterOp::Inc);
                        h.apply(CounterOp::Dec);
                    }
                });
            }
        });
    }
    let mut u2 = UniversalObject::new(spec, 4);
    {
        let mut handles = u2.handles();
        handles[0].apply(CounterOp::Read);
    }
    assert_eq!(
        u1.mem_snapshot(),
        u2.mem_snapshot(),
        "same state, same memory"
    );
}
