//! Real-thread stress tests: run the threaded backends under OS-scheduler
//! nondeterminism, record timestamped histories, and check linearizability
//! with the same checker used for simulated executions.
//!
//! Timestamps are drawn from a global sequence counter immediately before
//! the invocation and after the response; this widens operation intervals,
//! which can only make *more* histories acceptable — any violation reported
//! is real.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hi_concurrent::queue::threaded::AtomicPositionalQueue;
use hi_concurrent::registers::threaded::{AtomicLockFreeHi, AtomicWaitFreeHi};
use hi_concurrent::spec::{linearize, LinOptions};
use hi_concurrent::universal::AtomicUniversal;
use hi_core::objects::{
    BoundedQueueSpec, CounterOp, CounterSpec, MultiRegisterSpec, QueueOp,
    QueueResp, RegisterOp, RegisterResp,
};
use hi_core::{History, Pid};

/// A timestamped invocation/response pair collected from a thread.
struct StampedOp<O, R> {
    pid: usize,
    invoked: u64,
    returned: u64,
    op: O,
    resp: R,
}

/// Rebuilds a [`History`] from per-thread stamped records.
fn rebuild_history<O: Clone, R: Clone>(ops: Vec<StampedOp<O, R>>) -> History<O, R> {
    // (stamp, is_return, record index); stamps are unique (fetch_add).
    let mut events: Vec<(u64, bool, usize)> = Vec::with_capacity(ops.len() * 2);
    for (idx, op) in ops.iter().enumerate() {
        events.push((op.invoked, false, idx));
        events.push((op.returned, true, idx));
    }
    events.sort_unstable();
    let mut history = History::new();
    let mut pending: std::collections::HashMap<usize, hi_core::OpId> =
        std::collections::HashMap::new();
    for (_, is_return, idx) in events {
        let rec = &ops[idx];
        if is_return {
            let id = pending.remove(&idx).expect("return before invoke");
            history.ret(id, rec.resp.clone());
        } else {
            pending.insert(idx, history.invoke(Pid(rec.pid), rec.op.clone()));
        }
    }
    history
}

/// Runs `per_thread` operations per thread through `run_op`, collecting a
/// stamped history.
fn stress<O, R>(
    threads: usize,
    per_thread: usize,
    run_op: impl Fn(usize, usize) -> (O, R) + Sync,
) -> Vec<StampedOp<O, R>>
where
    O: Send,
    R: Send,
{
    let clock = AtomicU64::new(0);
    let log: Mutex<Vec<StampedOp<O, R>>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for pid in 0..threads {
            let clock = &clock;
            let log = &log;
            let run_op = &run_op;
            s.spawn(move || {
                let mut local = Vec::with_capacity(per_thread);
                for i in 0..per_thread {
                    let invoked = clock.fetch_add(1, Ordering::SeqCst);
                    let (op, resp) = run_op(pid, i);
                    let returned = clock.fetch_add(1, Ordering::SeqCst);
                    local.push(StampedOp { pid, invoked, returned, op, resp });
                }
                log.lock().unwrap().extend(local);
            });
        }
    });
    log.into_inner().unwrap()
}

#[test]
fn threaded_universal_counter_linearizes() {
    let n = 3;
    let per = 25;
    let spec = CounterSpec::new(-200, 200, 0);
    let u = AtomicUniversal::new(spec, n);
    let handles: Vec<Mutex<_>> = (0..n).map(|pid| Mutex::new(u.handle(pid))).collect();
    let ops = stress(n, per, |pid, i| {
        let op = match i % 3 {
            0 => CounterOp::Inc,
            1 => CounterOp::Read,
            _ => CounterOp::Dec,
        };
        let resp = handles[pid].lock().unwrap().apply(op);
        (op, resp)
    });
    let history = rebuild_history(ops);
    linearize(&spec, &history, &LinOptions::default()).expect("threaded universal history");
    // Quiescent memory must be canonical of the final abstract state.
    assert_eq!(u.snapshot(), u.canonical(&u.abstract_state()));
}

#[test]
fn threaded_lockfree_register_linearizes() {
    let k = 5;
    let spec = MultiRegisterSpec::new(k, 1);
    let mut reg = AtomicLockFreeHi::new(k, 1);
    let (w, r) = reg.split();
    let writer = Mutex::new(w);
    let reader = Mutex::new(r);
    let ops = stress(2, 300, |pid, i| {
        if pid == 0 {
            let v = (i as u64 % k) + 1;
            writer.lock().unwrap().write(v);
            (RegisterOp::Write(v), RegisterResp::Ack)
        } else {
            let v = reader.lock().unwrap().read();
            (RegisterOp::Read, RegisterResp::Value(v))
        }
    });
    let history = rebuild_history(ops);
    linearize(&spec, &history, &LinOptions::default()).expect("threaded Algorithm 2 history");
}

#[test]
fn threaded_waitfree_register_linearizes_and_ends_canonical() {
    let k = 4;
    let spec = MultiRegisterSpec::new(k, 1);
    let mut reg = AtomicWaitFreeHi::new(k, 1);
    {
        let (w, r) = reg.split(1);
        let writer = Mutex::new(w);
        let reader = Mutex::new(r);
        let ops = stress(2, 300, |pid, i| {
            if pid == 0 {
                let v = (i as u64 % k) + 1;
                writer.lock().unwrap().write(v);
                (RegisterOp::Write(v), RegisterResp::Ack)
            } else {
                let v = reader.lock().unwrap().read();
                (RegisterOp::Read, RegisterResp::Value(v))
            }
        });
        let history = rebuild_history(ops);
        linearize(&spec, &history, &LinOptions::default())
            .expect("threaded Algorithm 4 history");
    }
    // 300 writer ops ended on value (299 % k) + 1; memory must be canonical.
    assert_eq!(reg.snapshot(), reg.canonical((299 % k) + 1));
}

#[test]
fn threaded_positional_queue_linearizes() {
    let t = 3;
    let spec = BoundedQueueSpec::new(t, 8);
    let mut q = AtomicPositionalQueue::new(t, 8);
    let (m, p) = q.split();
    let mutator = Mutex::new(m);
    let peeker = Mutex::new(p);
    let ops = stress(2, 200, |pid, i| {
        if pid == 0 {
            let mut mu = mutator.lock().unwrap();
            if i % 3 == 2 {
                match mu.dequeue() {
                    Some(v) => (QueueOp::Dequeue, QueueResp::Value(v)),
                    None => (QueueOp::Dequeue, QueueResp::Empty),
                }
            } else {
                let v = (i as u32 % t) + 1;
                if mu.enqueue(v) {
                    (QueueOp::Enqueue(v), QueueResp::Empty)
                } else {
                    (QueueOp::Enqueue(v), QueueResp::Full)
                }
            }
        } else {
            match peeker.lock().unwrap().peek() {
                Some(v) => (QueueOp::Peek, QueueResp::Value(v)),
                None => (QueueOp::Peek, QueueResp::Empty),
            }
        }
    });
    let history = rebuild_history(ops);
    linearize(&spec, &history, &LinOptions::default()).expect("threaded queue history");
}

#[test]
fn threaded_universal_histories_leave_identical_memory() {
    // Two very different concurrent histories reaching counter value 0 leave
    // byte-identical memory (the HI guarantee on real atomics).
    let spec = CounterSpec::new(-100, 100, 0);
    let u1 = AtomicUniversal::new(spec, 4);
    std::thread::scope(|s| {
        for pid in 0..4 {
            let mut h = u1.handle(pid);
            s.spawn(move || {
                for _ in 0..50 {
                    h.apply(CounterOp::Inc);
                    h.apply(CounterOp::Dec);
                }
            });
        }
    });
    let u2 = AtomicUniversal::new(spec, 4);
    {
        let mut h = u2.handle(0);
        h.apply(CounterOp::Read);
    }
    assert_eq!(u1.snapshot(), u2.snapshot(), "same state, same memory");
}
