//! Span-tracing overhead and non-interference: turning per-op tracing off
//! must not change *what* the service harness does — the same seed drives
//! the same operations to the same results — only what it measures. The
//! proof is a transcript-recording fake object soaked twice (spans on /
//! spans off) under a single worker and a single client thread, so the
//! application order itself is deterministic and the two transcripts can
//! be compared byte for byte.

use std::sync::{Arc, Mutex};

use hi_concurrent::api::{ConcurrentObject, HiLevel, ObjectHandle, Progress, Roles};
use hi_concurrent::core::objects::{CounterOp, CounterResp, CounterSpec};
use hi_concurrent::core::ObjectSpec;
use hi_concurrent::service::{run_soak, SoakConfig};

fn encode(state: i64) -> Vec<u64> {
    vec![(state + 1_000) as u64]
}

/// A counter that records every `(op, resp)` it applies, in application
/// order. `Mutex`-based so the static guard's atomic-ordering allowlist
/// stays untouched.
struct TranscriptCounter {
    spec: CounterSpec,
    state: Mutex<i64>,
    transcript: Arc<Mutex<Vec<(CounterOp, CounterResp)>>>,
}

impl TranscriptCounter {
    fn new(transcript: Arc<Mutex<Vec<(CounterOp, CounterResp)>>>) -> Self {
        TranscriptCounter {
            spec: CounterSpec::new(-500, 500, 0),
            state: Mutex::new(0),
            transcript,
        }
    }
}

struct TranscriptHandle<'a> {
    obj: &'a TranscriptCounter,
}

impl ObjectHandle<CounterSpec> for TranscriptHandle<'_> {
    fn apply(&mut self, op: CounterOp) -> CounterResp {
        let mut s = self.obj.state.lock().unwrap();
        let (next, resp) = self.obj.spec.apply(&s, &op);
        *s = next;
        self.obj.transcript.lock().unwrap().push((op, resp));
        resp
    }

    fn supports(&self, _op: &CounterOp) -> bool {
        true
    }
}

impl ConcurrentObject<CounterSpec> for TranscriptCounter {
    type Handle<'a> = TranscriptHandle<'a>;

    fn spec(&self) -> &CounterSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        // One worker: with one client thread feeding it, the mpsc channel
        // makes the application order a pure function of the seed.
        Roles::MultiProcess { n: 1 }
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::StateQuiescent
    }

    fn progress(&self) -> Progress {
        Progress::WaitFree
    }

    fn handles(&mut self) -> Vec<TranscriptHandle<'_>> {
        vec![TranscriptHandle { obj: self }]
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        encode(*self.state.lock().unwrap())
    }

    fn canonical(&self, state: &i64) -> Option<Vec<u64>> {
        Some(encode(*state))
    }

    fn abstract_state(&self) -> i64 {
        *self.state.lock().unwrap()
    }
}

fn soak_with_tracing(
    trace: bool,
) -> (
    Vec<(CounterOp, CounterResp)>,
    hi_concurrent::service::SoakReport,
) {
    let transcript = Arc::new(Mutex::new(Vec::new()));
    let mut obj = TranscriptCounter::new(Arc::clone(&transcript));
    let cfg = SoakConfig {
        clients: 4,
        client_threads: 1,
        total_ops: 2_000,
        mid_audits: 2,
        seed: 0x7ace,
        trace,
        ..SoakConfig::default()
    };
    let report = run_soak(&mut obj, &cfg).expect("soak");
    let transcript = transcript.lock().unwrap().clone();
    (transcript, report)
}

#[test]
fn disabling_spans_does_not_change_what_the_service_does() {
    let (traced_ops, traced) = soak_with_tracing(true);
    let (untraced_ops, untraced) = soak_with_tracing(false);

    // Identical behavior: the same operations applied in the same order
    // with the same responses, byte for byte.
    assert_eq!(traced_ops.len(), 2_000);
    assert_eq!(
        format!("{traced_ops:?}"),
        format!("{untraced_ops:?}"),
        "tracing changed the operation stream"
    );

    // Identical accounting: both runs applied everything and recorded one
    // end-to-end latency sample per op.
    for report in [&traced, &untraced] {
        assert_eq!(report.ops_applied, 2_000);
        assert_eq!(report.ops_rejected, 0);
        assert_eq!(report.latency.count(), 2_000);
    }

    // Only the span histograms differ: populated when tracing, empty (not
    // approximated, not partially filled) when not.
    assert_eq!(traced.queue_wait.count(), 2_000);
    assert_eq!(traced.service.count(), 2_000);
    assert_eq!(untraced.queue_wait.count(), 0);
    assert_eq!(untraced.service.count(), 0);
}

#[test]
fn traced_spans_decompose_the_end_to_end_latency() {
    let (_, report) = soak_with_tracing(true);
    // Each span histogram holds exactly one sample per applied op, and the
    // spans are genuine sub-intervals: no queue wait or service time can
    // exceed the longest end-to-end latency.
    let (wait, serve, total) = (
        report.queue_wait.summary(),
        report.service.summary(),
        report.latency.summary(),
    );
    assert_eq!(wait.count, total.count);
    assert_eq!(serve.count, total.count);
    assert!(
        wait.max <= total.max && serve.max <= total.max,
        "a sub-span outlived the end-to-end op: wait {} serve {} total {}",
        wait.max,
        serve.max,
        total.max
    );
}
