//! Progress properties of Algorithm 5 (Theorem 32's wait-freedom and the
//! helping mechanism of Lemmas 24/31), as targeted schedules rather than
//! random stress.

use hi_concurrent::sim::{Executor, Pid};
use hi_concurrent::universal::SimUniversal;
use hi_core::objects::{CounterOp, CounterResp, CounterSpec};

/// Under a scheduler that always favors the other processes (round-robin
/// over everyone, so p0 gets only every n-th step while the others spam
/// fresh operations), p0's operation still completes within a bounded
/// number of its *own* steps — wait-freedom, not just lock-freedom.
#[test]
fn stalled_process_completes_within_bounded_own_steps() {
    let n = 4;
    let imp = SimUniversal::new(CounterSpec::new(0, 10_000, 0), n);
    let mut exec = Executor::new(imp);
    exec.invoke(Pid(0), CounterOp::Inc);
    let mut p0_steps = 0u64;
    let mut done = false;
    // Generous but finite bound: the helping rotation guarantees completion
    // once every live process has cycled its priority to p0.
    'outer: for _round in 0..10_000 {
        // Others keep invoking and stepping fresh ops (maximal contention).
        for pid in 1..n {
            if !exec.can_step(Pid(pid)) {
                exec.invoke(Pid(pid), CounterOp::Inc);
            }
            exec.step(Pid(pid));
        }
        // p0 gets one step per round.
        p0_steps += 1;
        if exec.step(Pid(0)).is_some() {
            done = true;
            break 'outer;
        }
    }
    assert!(done, "p0's operation never returned: wait-freedom violated");
    assert!(
        p0_steps <= 2_000,
        "p0 needed {p0_steps} own steps — far beyond the helping bound"
    );
}

/// A process that *only announces* (then crashes) is helped to completion:
/// its operation's effect lands exactly once, no matter how many other
/// operations run afterwards.
#[test]
fn announced_op_applied_exactly_once_despite_crash() {
    let n = 3;
    let imp = SimUniversal::new(CounterSpec::new(0, 1_000, 0), n);
    let mut exec = Executor::new(imp);
    exec.invoke(Pid(0), CounterOp::Inc);
    exec.step(Pid(0)); // announce, then crash
    for _ in 0..10 {
        exec.run_op_solo(Pid(1), CounterOp::Inc, 10_000).unwrap();
        exec.run_op_solo(Pid(2), CounterOp::Inc, 10_000).unwrap();
    }
    let value = match exec.run_op_solo(Pid(1), CounterOp::Read, 10_000).unwrap() {
        CounterResp::Value(v) => v,
        other => panic!("unexpected {other:?}"),
    };
    // 20 survivor increments + exactly one helped increment.
    assert_eq!(
        value, 21,
        "crashed announcement must be applied exactly once"
    );
}

/// The helping priority rotates: after enough state changes by one process,
/// its priority pointer visits every peer (Theorem 32's fairness argument).
#[test]
fn priority_rotates_through_all_processes() {
    let n = 4;
    let imp = SimUniversal::new(CounterSpec::new(0, 1_000, 0), n);
    let mut exec = Executor::new(imp);
    let mut seen = std::collections::HashSet::new();
    seen.insert(exec.process(Pid(1)).priority());
    for _ in 0..2 * n {
        exec.run_op_solo(Pid(1), CounterOp::Inc, 10_000).unwrap();
        seen.insert(exec.process(Pid(1)).priority());
    }
    assert_eq!(
        seen.len(),
        n,
        "priority must cycle through all {n} processes"
    );
}

/// Read-only operations are a single load even under pending state changes
/// by every other process (the `ApplyReadOnly` fast path).
#[test]
fn reads_are_single_step_under_contention() {
    let n = 3;
    let imp = SimUniversal::new(CounterSpec::new(0, 100, 0), n);
    let mut exec = Executor::new(imp);
    exec.invoke(Pid(0), CounterOp::Inc);
    exec.step(Pid(0));
    exec.invoke(Pid(1), CounterOp::Inc);
    exec.step(Pid(1));
    exec.invoke(Pid(2), CounterOp::Read);
    assert!(
        exec.step(Pid(2)).is_some(),
        "read-only ops take exactly one step"
    );
}
