//! Progress interactions among R-LLSC operations (Lemmas 29 and 30): the
//! lock-free LL/SC/RL loops terminate once a context-resetting operation
//! lands, which is the property Algorithm 5's wait-freedom argument leans
//! on.

use hi_concurrent::api::{ConcurrentObject, LlscObject, ObjectHandle};
use hi_concurrent::llsc::{RLlscOp, RLlscResp, RLlscSpec, SimRLlsc};
use hi_concurrent::sim::{Executor, Pid};

/// Lemma 30 for `SC`, simulated: an SC blocked by CAS interference fails
/// definitively as soon as a Store resets the context.
#[test]
fn pending_sc_completes_after_context_reset() {
    let mut exec = Executor::new(SimRLlsc::new(8, 0, 3));
    // p0 links.
    exec.run_op_solo(Pid(0), RLlscOp::Ll { pid: 0 }, 10)
        .unwrap();
    // p0 begins an SC: first step is the read observing its own bit.
    exec.invoke(Pid(0), RLlscOp::Sc { pid: 0, new: 5 });
    exec.step(Pid(0)); // read: bit present -> will try CAS next
                       // p1 Stores, resetting the context and changing the value.
    exec.run_op_solo(Pid(1), RLlscOp::Store { new: 7 }, 10)
        .unwrap();
    // p0's CAS now fails, and its retry read sees the bit gone: definitive
    // failure in finitely many own steps.
    let (_, resp) = exec.run_solo(Pid(0), 5).unwrap();
    assert_eq!(resp, RLlscResp::Bool(false));
}

/// Lemma 30 for `RL`: a release interrupted by interference still finishes
/// once any context reset lands.
#[test]
fn pending_rl_completes_after_context_reset() {
    let mut exec = Executor::new(SimRLlsc::new(8, 0, 3));
    exec.run_op_solo(Pid(0), RLlscOp::Ll { pid: 0 }, 10)
        .unwrap();
    exec.invoke(Pid(0), RLlscOp::Rl { pid: 0 });
    exec.step(Pid(0)); // read: bit present
                       // p1's successful SC resets the context (p1 links first).
    exec.run_op_solo(Pid(1), RLlscOp::Ll { pid: 1 }, 10)
        .unwrap();
    exec.run_op_solo(Pid(1), RLlscOp::Sc { pid: 1, new: 3 }, 10)
        .unwrap();
    let (_, resp) = exec.run_solo(Pid(0), 5).unwrap();
    assert_eq!(
        resp,
        RLlscResp::Bool(true),
        "RL succeeds trivially once unlinked"
    );
}

/// Lemma 29's flavor on the threaded backend (driven through the unified
/// facade): an LL attempt under heavy interference still eventually lands
/// because every interfering operation that *completes* either leaves the
/// value alone (LL/RL by others — our CAS retries past them) or resets the
/// context (SC/Store — after which our CAS has a stable target).
#[test]
fn threaded_ll_lands_under_interference() {
    let mut x = LlscObject::new(RLlscSpec::new(8, 0, 8));
    let stop = std::sync::atomic::AtomicBool::new(false);
    let mut handles = x.handles().into_iter();
    let mut h0 = handles.next().unwrap();
    std::thread::scope(|s| {
        for (pid, mut h) in handles.take(3).enumerate().map(|(i, h)| (i + 1, h)) {
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    h.apply(RLlscOp::Ll { pid });
                    h.apply(RLlscOp::Sc {
                        pid,
                        new: pid as u64,
                    });
                }
            });
        }
        for _ in 0..2_000 {
            let _ = h0.apply(RLlscOp::Ll { pid: 0 });
            h0.apply(RLlscOp::Rl { pid: 0 });
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
}

/// A failed SC leaves the value untouched (only the caller learns anything):
/// the memory remains a function of the abstract state, preserving perfect
/// HI even through contention.
#[test]
fn failed_sc_leaves_no_trace() {
    let imp = SimRLlsc::new(8, 2, 2);
    let mut exec = Executor::new(imp.clone());
    exec.run_op_solo(Pid(0), RLlscOp::Ll { pid: 0 }, 10)
        .unwrap();
    exec.run_op_solo(Pid(1), RLlscOp::Store { new: 6 }, 10)
        .unwrap();
    let before = exec.snapshot();
    let resp = exec
        .run_op_solo(Pid(0), RLlscOp::Sc { pid: 0, new: 1 }, 10)
        .unwrap();
    assert_eq!(resp, RLlscResp::Bool(false));
    assert_eq!(
        exec.snapshot(),
        before,
        "failed SC must not disturb the memory"
    );
}
