//! Cross-crate checks of the R-LLSC object (Algorithm 6 / Theorem 28) and
//! the positional queue: linearizability under random schedules and the
//! perfect-HI bijection of the LLSC cell.

use hi_concurrent::llsc::{RLlscOp, RLlscSpec, SimRLlsc};
use hi_concurrent::queue::PositionalQueue;
use hi_concurrent::sim::{run_workload, Executor, Seeded, Workload};
use hi_concurrent::spec::{
    check_run_single_mutator, linearize, HiMonitor, LinOptions, ObservationModel,
};
use hi_core::objects::{BoundedQueueSpec, QueueOp};
use rand::prelude::*;
use rand::rngs::StdRng;

const MAX_STEPS: u64 = 200_000;

fn llsc_workload(v: u64, n: usize, ops: usize, seed: u64) -> Workload<RLlscSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = Workload::new(n);
    for pid in 0..n {
        for _ in 0..ops {
            let op = match rng.gen_range(0..6) {
                0 => RLlscOp::Ll { pid },
                1 => RLlscOp::Vl { pid },
                2 => RLlscOp::Sc {
                    pid,
                    new: rng.gen_range(0..v),
                },
                3 => RLlscOp::Rl { pid },
                4 => RLlscOp::Load,
                _ => RLlscOp::Store {
                    new: rng.gen_range(0..v),
                },
            };
            w.push(pid, op);
        }
    }
    w
}

#[test]
fn rllsc_linearizes_under_random_schedules() {
    // Theorem 28, linearizability half.
    for seed in 0..30u64 {
        let n = 3;
        let imp = SimRLlsc::new(4, 0, n);
        let mut exec = Executor::new(imp.clone());
        run_workload(
            &mut exec,
            llsc_workload(4, n, 6, seed),
            &mut Seeded::new(seed),
            &mut (),
            MAX_STEPS,
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        linearize(exec.spec(), exec.history(), &LinOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn rllsc_memory_is_a_bijection_of_state() {
    // Theorem 28, perfect-HI half: at *every* configuration the single cell
    // decodes to some (val, context) pair, and equal decoded states imply
    // equal memories (trivially, but the monitor also catches any stray
    // cell the implementation might have touched).
    for seed in 0..20u64 {
        let n = 3;
        let imp = SimRLlsc::new(4, 1, n);
        let mut exec = Executor::new(imp.clone());
        let mut monitor: HiMonitor<(u64, u64)> = HiMonitor::new(ObservationModel::Perfect);
        let imp2 = imp.clone();
        let mut observer = |e: &Executor<RLlscSpec, SimRLlsc>| {
            monitor.observe(e, imp2.decode(&e.snapshot()));
        };
        run_workload(
            &mut exec,
            llsc_workload(4, n, 6, seed),
            &mut Seeded::new(seed),
            &mut observer,
            MAX_STEPS,
        )
        .unwrap();
        assert!(
            monitor.violation().is_none(),
            "seed {seed}: {:?}",
            monitor.violation()
        );
        monitor
            .canonical_map()
            .check_injective()
            .expect("distinct LLSC states must have distinct memories");
    }
}

#[test]
fn positional_queue_random_schedules() {
    // Linearizable + state-quiescent HI, the §5.4 possibility counterpart.
    for seed in 0..40u64 {
        let t = 3;
        let cap = 3;
        let imp = PositionalQueue::new(t, cap);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w: Workload<BoundedQueueSpec> = Workload::new(2);
        for _ in 0..12 {
            let op = match rng.gen_range(0..2) {
                0 => QueueOp::Enqueue(rng.gen_range(1..=t)),
                _ => QueueOp::Dequeue,
            };
            w.push(0, op);
            w.push(1, QueueOp::Peek);
        }
        let report = check_run_single_mutator(
            &imp,
            w,
            &mut Seeded::new(seed),
            ObservationModel::StateQuiescent,
            MAX_STEPS,
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            report.final_snapshot,
            imp.canonical(&report.lin.final_state),
            "seed {seed}: final memory must be canonical"
        );
    }
}

#[test]
fn rllsc_context_reveals_nothing_after_release() {
    // The R in R-LLSC: LL followed by RL leaves the memory exactly as it
    // was — the motivation for adding release to the interface (§6).
    let imp = SimRLlsc::new(4, 2, 2);
    let mut exec = Executor::new(imp.clone());
    let before = exec.snapshot();
    exec.run_op_solo(hi_core::Pid(0), RLlscOp::Ll { pid: 0 }, 10)
        .unwrap();
    assert_ne!(exec.snapshot(), before, "the link is visible while held");
    exec.run_op_solo(hi_core::Pid(0), RLlscOp::Rl { pid: 0 }, 10)
        .unwrap();
    assert_eq!(exec.snapshot(), before, "released link leaves no trace");
}

#[test]
fn queue_peek_mid_shift_sees_old_or_new_front_only() {
    // Directed schedule: during a dequeue's shift, a concurrent Peek may
    // return the outgoing front (linearized before) or the incoming front
    // (after) — never anything else, whichever point the dequeue has reached.
    use hi_core::Pid;
    let t = 3;
    for pause_after in 0..6u64 {
        let mut exec = Executor::new(PositionalQueue::new(t, 3));
        exec.run_op_solo(Pid(0), QueueOp::Enqueue(2), 100).unwrap();
        exec.run_op_solo(Pid(0), QueueOp::Enqueue(3), 100).unwrap();
        exec.invoke(Pid(0), QueueOp::Dequeue);
        for _ in 0..pause_after {
            if exec.can_step(Pid(0)) {
                exec.step(Pid(0));
            }
        }
        // Finish the dequeue only after the peek, to keep the overlap.
        exec.invoke(Pid(1), QueueOp::Peek);
        let mut peek_resp = None;
        for _ in 0..100 {
            if let Some((_, r)) = exec.step(Pid(1)) {
                peek_resp = Some(r);
                break;
            }
            if exec.can_step(Pid(0)) {
                exec.step(Pid(0));
            }
        }
        let r = peek_resp.expect("peek completes once the dequeue finishes");
        assert!(
            r == hi_core::objects::QueueResp::Value(2)
                || r == hi_core::objects::QueueResp::Value(3),
            "pause {pause_after}: peek returned {r:?}"
        );
        // Finish everything and verify linearizability + canonical memory.
        while exec.can_step(Pid(0)) {
            exec.step(Pid(0));
        }
        linearize(exec.spec(), exec.history(), &LinOptions::default())
            .unwrap_or_else(|e| panic!("pause {pause_after}: {e}"));
    }
}
