//! Small-scope model checking: exhaustive exploration of *all* schedules of
//! tiny workloads, verifying linearizability on every maximal path and
//! history independence at every reachable configuration.

use hi_concurrent::queue::PositionalQueue;
use hi_concurrent::registers::{HiSet, LockFreeHiRegister, WaitFreeHiRegister};
use hi_concurrent::sim::{Executor, Implementation, Workload};
use hi_concurrent::spec::{
    explore, linearize, single_mutator_state, ExploreVisitor, HiMonitor, LinOptions,
    ObservationModel,
};
use hi_core::objects::{BoundedQueueSpec, MultiRegisterSpec, QueueOp, RegisterOp, SetOp, SetSpec};
use hi_core::ObjectSpec;

/// Visitor that monitors HI at every configuration (single-mutator oracle)
/// and checks linearizability at every path end.
struct FullCheck<S: ObjectSpec> {
    spec: S,
    monitor: HiMonitor<S::State>,
    paths_checked: u64,
}

impl<S: ObjectSpec> FullCheck<S> {
    fn new(spec: S, model: ObservationModel) -> Self {
        FullCheck {
            spec,
            monitor: HiMonitor::new(model),
            paths_checked: 0,
        }
    }
}

impl<S, I> ExploreVisitor<S, I> for FullCheck<S>
where
    S: ObjectSpec,
    I: Implementation<S>,
{
    fn on_config(&mut self, exec: &Executor<S, I>) {
        if self.monitor.model().permits(exec) {
            let state = single_mutator_state(&self.spec, exec.history());
            self.monitor.observe(exec, state);
            if let Some(v) = self.monitor.violation() {
                panic!("HI violation during exploration: {v}");
            }
        }
    }

    fn on_path_end(&mut self, exec: &Executor<S, I>) {
        self.paths_checked += 1;
        linearize(&self.spec, exec.history(), &LinOptions::default())
            .unwrap_or_else(|e| panic!("non-linearizable path: {e}\n{:?}", exec.history()));
    }

    fn on_truncated(&mut self, exec: &Executor<S, I>) {
        panic!(
            "exploration truncated at {} steps — raise the bound",
            exec.steps()
        );
    }
}

#[test]
fn lockfree_register_every_schedule() {
    // Algorithm 2, K = 3: one write + one read, all interleavings; the read
    // may retry, so allow a generous depth and accept retry-truncated paths
    // by bounding the workload instead: a single write bounds retries to 2.
    let k = 3;
    let imp = LockFreeHiRegister::new(k, 2);
    let spec = *imp.spec();
    let mut w: Workload<MultiRegisterSpec> = Workload::new(2);
    w.push(0, RegisterOp::Write(3));
    w.push(1, RegisterOp::Read);
    let mut check = FullCheck::new(spec, ObservationModel::StateQuiescent);
    let exec = Executor::new(imp);
    let stats = explore(&exec, &w, 40, &mut check);
    assert!(
        stats.paths > 50,
        "expected meaningful branching, got {}",
        stats.paths
    );
    assert_eq!(stats.truncated, 0);
    assert_eq!(check.paths_checked, stats.paths);
}

#[test]
fn lockfree_register_two_writes_every_schedule() {
    let imp = LockFreeHiRegister::new(3, 1);
    let spec = *imp.spec();
    let mut w: Workload<MultiRegisterSpec> = Workload::new(2);
    w.push(0, RegisterOp::Write(3));
    w.push(0, RegisterOp::Write(2));
    w.push(1, RegisterOp::Read);
    let mut check = FullCheck::new(spec, ObservationModel::StateQuiescent);
    let exec = Executor::new(imp);
    // Two writes can starve the reader for at most one extra round here;
    // depth 60 covers the full tree (panics on truncation otherwise).
    let stats = explore(&exec, &w, 60, &mut check);
    assert_eq!(stats.truncated, 0);
    assert!(stats.paths > 300, "got {}", stats.paths);
}

#[test]
fn waitfree_register_every_schedule() {
    // Algorithm 4, K = 2 (the largest instance whose full schedule tree
    // stays tractable): one write + one read, all interleavings. This is
    // the exhaustive version of the Figure 2 scenarios: every way the read
    // can fall back to B is covered.
    let imp = WaitFreeHiRegister::new(2, 1);
    let spec = *imp.spec();
    let mut w: Workload<MultiRegisterSpec> = Workload::new(2);
    w.push(0, RegisterOp::Write(2));
    w.push(1, RegisterOp::Read);
    let mut check = FullCheck::new(spec, ObservationModel::Quiescent);
    let exec = Executor::new(imp);
    let stats = explore(&exec, &w, 64, &mut check);
    assert_eq!(
        stats.truncated, 0,
        "Algorithm 4 is wait-free: the tree is finite"
    );
    assert!(stats.paths > 1_000);
}

#[test]
fn hi_set_every_schedule_is_perfect_hi() {
    // Two processes, two ops each, every interleaving: memory is canonical
    // at every single configuration (perfect HI, §5.1).
    let imp = HiSet::new(3, 2);
    let spec = *imp.spec();

    struct PerfectCheck {
        spec: SetSpec,
        paths: u64,
    }
    impl ExploreVisitor<SetSpec, HiSet> for PerfectCheck {
        fn on_config(&mut self, exec: &Executor<SetSpec, HiSet>) {
            // Perfect HI for the set: memory always equals the
            // characteristic vector of the *linearized prefix* state. With
            // single-primitive ops, completed ops fully determine memory.
            let state = single_mutator_state(&self.spec, exec.history());
            let imp = exec.implementation();
            assert_eq!(exec.snapshot(), imp.canonical(state));
        }
        fn on_path_end(&mut self, exec: &Executor<SetSpec, HiSet>) {
            self.paths += 1;
            linearize(&self.spec, exec.history(), &LinOptions::default()).unwrap();
        }
        fn on_truncated(&mut self, _exec: &Executor<SetSpec, HiSet>) {
            panic!("set ops are single-step; truncation impossible");
        }
    }

    let mut w: Workload<SetSpec> = Workload::new(2);
    w.push(0, SetOp::Insert(1));
    w.push(0, SetOp::Remove(1));
    w.push(1, SetOp::Insert(2));
    w.push(1, SetOp::Contains(1));
    let mut check = PerfectCheck { spec, paths: 0 };
    let exec = Executor::new(imp);
    let stats = explore(&exec, &w, 32, &mut check);
    assert_eq!(stats.truncated, 0);
    assert!(check.paths > 10);
}

#[test]
fn positional_queue_every_schedule() {
    let imp = PositionalQueue::new(2, 2);
    let spec = *imp.spec();
    let mut w: Workload<BoundedQueueSpec> = Workload::new(2);
    w.push(0, QueueOp::Enqueue(2));
    w.push(0, QueueOp::Dequeue);
    w.push(1, QueueOp::Peek);
    let mut check = FullCheck::new(spec, ObservationModel::StateQuiescent);
    let exec = Executor::new(imp);
    let stats = explore(&exec, &w, 48, &mut check);
    assert_eq!(stats.truncated, 0);
    assert!(stats.paths > 50, "got {}", stats.paths);
}
