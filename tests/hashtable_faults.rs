//! Dedicated crash sweep for the phase-free HI hash table: the updater is
//! crashed at **every** transition of a multi-slot rewrite, and the
//! duplicate-then-overwrite write order must keep every surviving key
//! visible in memory at every intermediate step — the paper's
//! memory-observing adversary, pointed at the one backend whose updates
//! rewrite many cells.
//!
//! Domain `t = 8`, capacity 9: keys 2, 4, 6 and 8 all share home slot 8,
//! so the key set `{8, 6, 4, 2}` packs into one wrap-around Robin Hood run
//! at slots 8, 0, 1, 2. Removing 8 backward-shifts three keys (4 slot
//! writes); re-inserting it carries three incumbents forward (4 slot
//! writes). Both sweeps crash the updater at every point of those
//! rewrites.

use hi_concurrent::hashtable::{slot_of, SimHiHashTable};
use hi_concurrent::sim::{
    run_workload_with_faults, Executor, FaultPlan, Faulty, Pid, Scripted, Workload,
};
use hi_concurrent::spec::{linearize, run_fault_plan, FaultSweepConfig, LinOptions};
use hi_core::objects::{HashSetOp, HashSetResp};

const T: u32 = 8;
const CAP: usize = 9;
/// Upper bound on the updater's transition count through one rewrite
/// (acquire 2, probe 1, scan 4, writes 4 + release); sweeping past it also
/// covers "crash after completion".
const SWEEP: u64 = 16;

const UPDATER: Pid = Pid(0);

/// The packed run: all four keys share home slot 8, so every key after the
/// first lands displaced and removing or inserting at the run's head
/// rewrites every slot behind it.
fn run_keys() -> Vec<u32> {
    vec![8, 6, 4, 2]
}

fn table() -> SimHiHashTable {
    let imp = SimHiHashTable::new(T, CAP, 2);
    // The collision structure the whole file depends on; if the hash ever
    // changes, fail here with a clear message rather than in a sweep.
    for k in [4, 6, 8] {
        assert_eq!(
            slot_of(2, CAP),
            slot_of(k, CAP),
            "keys 2 and {k} must collide for the multi-slot rewrite"
        );
    }
    imp
}

/// Seeds the table with `keys` via solo (quiescent) operations.
fn seed_table(exec: &mut Executor<hi_core::objects::HashSetSpec, SimHiHashTable>, keys: &[u32]) {
    for &k in keys {
        let resp = exec
            .run_op_solo(UPDATER, HashSetOp::Insert(k), 10_000)
            .expect("quiescent insert");
        assert_eq!(resp, HashSetResp::Bool(true));
    }
}

/// Crashes the updater at transition `crash_after` of `update`, then drains
/// the reader's `Contains` queries. Returns the final snapshot.
///
/// Asserts, at **every** transition of the faulty run, that each key of
/// `witnesses` appears somewhere in the slot array — the
/// duplicate-then-overwrite invariant, checked against raw memory exactly
/// as the crash adversary would.
fn crash_rewrite(
    imp: &SimHiHashTable,
    setup: &[u32],
    update: HashSetOp,
    witnesses: &[u32],
    crash_after: u64,
) -> Vec<u64> {
    let mut exec = Executor::new(imp.clone());
    seed_table(&mut exec, setup);
    let queries: Vec<HashSetOp> = witnesses.iter().map(|&k| HashSetOp::Contains(k)).collect();
    let workload: Workload<_> = Workload::from_vecs(vec![vec![update], queries]);
    // The updater runs first so the crash point lands inside its rewrite;
    // the reader drains afterwards against the frozen memory.
    let mut faulty = Faulty::new(
        Scripted::runs(&[(0, 32)]),
        FaultPlan::crash(UPDATER, crash_after),
        2,
    );
    let mut absent = None;
    run_workload_with_faults(
        &mut exec,
        workload,
        &mut faulty,
        |e, _f| {
            let snap = e.snapshot();
            for &k in witnesses {
                if !imp.slots_of(&snap).contains(&u64::from(k)) {
                    absent = Some((k, snap.clone()));
                }
            }
        },
        20_000,
    )
    .unwrap_or_else(|e| panic!("crash at {crash_after}: reader failed to drain: {e}"));
    if let Some((k, snap)) = absent {
        panic!(
            "crash at {crash_after}: present key {k} vanished mid-rewrite \
             (duplicate-then-overwrite violated): slots {:?}",
            imp.slots_of(&snap)
        );
    }
    // Every Contains over a present key must have sighted it — even with
    // the seqlock held by the crashed updater, present verdicts need no
    // validation.
    for rec in exec.history().records() {
        if let HashSetOp::Contains(k) = rec.op {
            assert_eq!(
                rec.resp,
                Some(HashSetResp::Bool(true)),
                "crash at {crash_after}: Contains({k}) did not sight a surviving key"
            );
        }
    }
    linearize(exec.spec(), exec.history(), &LinOptions::default())
        .unwrap_or_else(|e| panic!("crash at {crash_after}: truncated history: {e}"));
    exec.snapshot()
}

/// If the crash landed outside the seqlock critical section the memory is
/// state-quiescent: the slot array must be the canonical Robin Hood layout
/// of the decoded key set — the DirectCanonical audit at the adversary's
/// observation point. (An odd seqlock word means the crash wedged the
/// update mid-critical-section; `Progress::Blocking` tolerates that, and no
/// state-quiescent point ever comes.)
fn audit_if_quiescent(imp: &SimHiHashTable, snap: &[u64], crash_after: u64) -> bool {
    let seq = snap[0];
    if seq % 2 != 0 {
        return false;
    }
    let state = imp.decode_state(snap);
    assert_eq!(
        imp.slots_of(snap),
        imp.canonical_slots(state).as_slice(),
        "crash at {crash_after}: state-quiescent memory is not canonical for {state:#b}"
    );
    true
}

#[test]
fn remove_crashed_at_every_step_never_hides_a_surviving_key() {
    let imp = table();
    let setup = run_keys();
    // Removing the run's head (8) backward-shifts 6, 4, 2 — all of which
    // must stay visible at every intermediate configuration.
    let witnesses = [6, 4, 2];
    let mut quiescent_points = 0;
    let mut wedged_points = 0;
    for crash_after in 0..=SWEEP {
        let snap = crash_rewrite(&imp, &setup, HashSetOp::Remove(8), &witnesses, crash_after);
        if audit_if_quiescent(&imp, &snap, crash_after) {
            quiescent_points += 1;
        } else {
            wedged_points += 1;
        }
    }
    assert!(
        quiescent_points > 0,
        "some crash points must land outside the critical section"
    );
    assert!(
        wedged_points > 0,
        "some crash points must land mid-rewrite — otherwise the sweep proves nothing"
    );
}

#[test]
fn insert_crashed_at_every_step_never_hides_a_surviving_key() {
    let imp = table();
    // Inserting 8 at the head of the run {6, 4, 2} carries all three
    // incumbents one slot forward (far-end-first writes).
    let setup = [6, 4, 2];
    let witnesses = [6, 4, 2];
    let mut quiescent_points = 0;
    for crash_after in 0..=SWEEP {
        let snap = crash_rewrite(&imp, &setup, HashSetOp::Insert(8), &witnesses, crash_after);
        if audit_if_quiescent(&imp, &snap, crash_after) {
            quiescent_points += 1;
        }
    }
    assert!(quiescent_points > 0);
}

/// The generic single-plan checker on the same table: a crash mid-update
/// may wedge the survivors (`Progress::Blocking` tolerates `completed:
/// false`), but the truncated history must still linearize and the HI audit
/// must hold at whatever observation points remain.
#[test]
fn generic_fault_plans_tolerate_blocking_wedges_only() {
    let imp = table();
    let cfg = FaultSweepConfig::new(21, 5, 200_000);
    let mut wedged = 0;
    let mut drained = 0;
    for crash_after in 0..=SWEEP {
        let plan = FaultPlan::crash(UPDATER, crash_after);
        let outcome = run_fault_plan(&imp, &plan, &cfg, 50_000)
            .unwrap_or_else(|e| panic!("crash at {crash_after}: {e}"));
        if outcome.completed {
            drained += 1;
        } else {
            wedged += 1;
        }
    }
    assert!(
        drained > 0,
        "crashes outside the critical section must let survivors drain"
    );
    assert!(
        wedged > 0,
        "a mid-critical-section crash must wedge the seqlock — the Blocking class's price"
    );
}
