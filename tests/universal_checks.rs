//! Cross-crate checks of the universal constructions (paper §6):
//! linearizability and state-quiescent HI of Algorithm 5 over several
//! object types, perfect HI of the CAS baseline, the leak of the non-HI
//! contrast, and the mode alternation of Invariant 22.

use hi_concurrent::sim::{run_workload, Executor, Seeded, Workload};
use hi_concurrent::spec::{linearize, HiMonitor, LinOptions, ObservationModel};
use hi_concurrent::universal::{CasUniversal, LeakyUniversal, ModeTracker, SimUniversal};
use hi_core::objects::{
    BoundedQueueSpec, CounterOp, CounterSpec, MapOp, MapSpec, QueueOp, SetOp, SetSpec, SnapshotOp,
    SnapshotSpec, StackOp, StackSpec,
};
use hi_core::EnumerableSpec;
use rand::prelude::*;
use rand::rngs::StdRng;

const MAX_STEPS: u64 = 500_000;

fn counter_workload(n: usize, ops: usize, seed: u64) -> Workload<CounterSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = Workload::new(n);
    for pid in 0..n {
        for _ in 0..ops {
            let op = match rng.gen_range(0..3) {
                0 => CounterOp::Inc,
                1 => CounterOp::Dec,
                _ => CounterOp::Read,
            };
            w.push(pid, op);
        }
    }
    w
}

/// Runs a workload on a `SimUniversal`, monitoring state-quiescent HI with
/// the head-decode oracle and checking linearizability at the end.
fn check_universal<S: EnumerableSpec>(
    imp: &SimUniversal<S>,
    workload: Workload<S>,
    seed: u64,
) -> u64 {
    let mut exec = Executor::new(imp.clone());
    let mut monitor: HiMonitor<S::State> = HiMonitor::new(ObservationModel::StateQuiescent);
    {
        let imp2 = imp.clone();
        let mut observer = |e: &Executor<S, SimUniversal<S>>| {
            if e.is_state_quiescent() {
                // Theorem 32: at state-quiescent points the memory must be
                // the canonical representation of the head state.
                let q = imp2.abstract_state(&e.snapshot());
                assert_eq!(
                    e.snapshot(),
                    imp2.canonical(&q),
                    "non-canonical state-quiescent memory (seed {seed})"
                );
                monitor.observe(e, q);
            }
        };
        run_workload(
            &mut exec,
            workload,
            &mut Seeded::new(seed),
            &mut observer,
            MAX_STEPS,
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
    assert!(
        monitor.violation().is_none(),
        "seed {seed}: {:?}",
        monitor.violation()
    );
    linearize(exec.spec(), exec.history(), &LinOptions::default())
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    exec.steps()
}

#[test]
fn universal_counter_random_schedules() {
    for seed in 0..25u64 {
        for n in [2usize, 3] {
            let imp = SimUniversal::new(CounterSpec::new(-4, 4, 0), n);
            check_universal(&imp, counter_workload(n, 6, seed), seed);
        }
    }
}

#[test]
fn universal_set_random_schedules() {
    for seed in 0..15u64 {
        let n = 3;
        let spec = SetSpec::new(3);
        let imp = SimUniversal::new(spec, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w: Workload<SetSpec> = Workload::new(n);
        for pid in 0..n {
            for _ in 0..5 {
                let e = rng.gen_range(1..=3);
                let op = match rng.gen_range(0..3) {
                    0 => SetOp::Insert(e),
                    1 => SetOp::Remove(e),
                    _ => SetOp::Contains(e),
                };
                w.push(pid, op);
            }
        }
        check_universal(&imp, w, seed);
    }
}

#[test]
fn universal_queue_random_schedules() {
    for seed in 0..15u64 {
        let n = 2;
        let spec = BoundedQueueSpec::new(3, 3);
        let imp = SimUniversal::new(spec, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w: Workload<BoundedQueueSpec> = Workload::new(n);
        for pid in 0..n {
            for _ in 0..6 {
                let op = match rng.gen_range(0..3) {
                    0 => QueueOp::Enqueue(rng.gen_range(1..=3)),
                    1 => QueueOp::Dequeue,
                    _ => QueueOp::Peek,
                };
                w.push(pid, op);
            }
        }
        check_universal(&imp, w, seed);
    }
}

#[test]
fn universal_stack_random_schedules() {
    for seed in 0..15u64 {
        let n = 2;
        let spec = StackSpec::new(3, 3);
        let imp = SimUniversal::new(spec, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w: Workload<StackSpec> = Workload::new(n);
        for pid in 0..n {
            for _ in 0..6 {
                let op = match rng.gen_range(0..3) {
                    0 => StackOp::Push(rng.gen_range(1..=3)),
                    1 => StackOp::Pop,
                    _ => StackOp::Top,
                };
                w.push(pid, op);
            }
        }
        check_universal(&imp, w, seed);
    }
}

#[test]
fn invariant22_mode_alternation() {
    // Every head write flips A <-> B, and B -> A preserves the state.
    for seed in 0..15u64 {
        let n = 3;
        let imp = SimUniversal::new(CounterSpec::new(-4, 4, 0), n);
        let mut exec = Executor::new(imp.clone());
        let init = imp.head_value(&exec.snapshot());
        let enc = |q: &i64| (*q + 10) as u64; // injective state token
        let mut tracker = ModeTracker::new(enc(&init.0), init.1.is_some());
        let imp2 = imp.clone();
        let mut observer = |e: &Executor<CounterSpec, SimUniversal<CounterSpec>>| {
            let (q, r) = imp2.head_value(&e.snapshot());
            tracker.observe(enc(&q), r.is_some()).unwrap();
        };
        run_workload(
            &mut exec,
            counter_workload(n, 5, seed),
            &mut Seeded::new(seed),
            &mut observer,
            MAX_STEPS,
        )
        .unwrap();
        // Lemma 23: each A->B transition linearizes exactly one
        // state-changing op; our workload has 15 ops, some read-only.
        assert!(tracker.linearized_ops() <= 15);
        assert_eq!(
            tracker.mode(),
            hi_concurrent::universal::Mode::A,
            "final mode is A"
        );
    }
}

#[test]
fn cas_universal_is_perfect_hi() {
    for seed in 0..15u64 {
        let n = 3;
        let imp = CasUniversal::new(CounterSpec::new(-4, 4, 0), n);
        let mut exec = Executor::new(imp.clone());
        let mut monitor: HiMonitor<i64> = HiMonitor::new(ObservationModel::Perfect);
        let imp2 = imp.clone();
        let mut observer = |e: &Executor<CounterSpec, CasUniversal<CounterSpec>>| {
            monitor.observe(e, imp2.abstract_state(&e.snapshot()));
        };
        run_workload(
            &mut exec,
            counter_workload(n, 6, seed),
            &mut Seeded::new(seed),
            &mut observer,
            MAX_STEPS,
        )
        .unwrap();
        assert!(
            monitor.violation().is_none(),
            "seed {seed}: {:?}",
            monitor.violation()
        );
        linearize(exec.spec(), exec.history(), &LinOptions::default()).unwrap();
    }
}

#[test]
fn leaky_universal_fails_even_quiescent_hi() {
    // The ledger distinguishes histories that reach the same state: the
    // monitor catches it at the second quiescent visit to state 0.
    let imp = LeakyUniversal::new(CounterSpec::new(-4, 4, 0), 2);
    let mut exec = Executor::new(imp.clone());
    let mut monitor: HiMonitor<i64> = HiMonitor::new(ObservationModel::Quiescent);
    let imp2 = imp.clone();
    let mut observer = |e: &Executor<CounterSpec, LeakyUniversal<CounterSpec>>| {
        monitor.observe(e, imp2.abstract_state(&e.snapshot()));
    };
    let mut w: Workload<CounterSpec> = Workload::new(2);
    // Visit state 0 at two quiescent points with different op counts.
    w.push(0, CounterOp::Inc);
    w.push(0, CounterOp::Dec);
    w.push(0, CounterOp::Inc);
    w.push(0, CounterOp::Dec);
    run_workload(&mut exec, w, &mut Seeded::new(1), &mut observer, MAX_STEPS).unwrap();
    assert!(
        monitor.violation().is_some(),
        "the op ledger must break history independence"
    );
}

#[test]
fn universal_announce_cells_clear_after_runs() {
    // Lemmas 26/27: at the (state-)quiescent end of a run every announce
    // cell is ⊥ with an empty context and head has an empty context — i.e.
    // the whole memory equals the canonical representation.
    for seed in 0..10u64 {
        let n = 4;
        let imp = SimUniversal::new(CounterSpec::new(-8, 8, 0), n);
        let mut exec = Executor::new(imp.clone());
        run_workload(
            &mut exec,
            counter_workload(n, 4, seed),
            &mut Seeded::new(seed),
            &mut (),
            MAX_STEPS,
        )
        .unwrap();
        let q = imp.abstract_state(&exec.snapshot());
        assert_eq!(exec.snapshot(), imp.canonical(&q), "seed {seed}");
    }
}

#[test]
fn universal_map_random_schedules() {
    for seed in 0..15u64 {
        let n = 2;
        let spec = MapSpec::new(2, 2);
        let imp = SimUniversal::new(spec, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w: Workload<MapSpec> = Workload::new(n);
        for pid in 0..n {
            for _ in 0..6 {
                let k = rng.gen_range(1..=2);
                let op = match rng.gen_range(0..3) {
                    0 => MapOp::Put(k, rng.gen_range(1..=2)),
                    1 => MapOp::Delete(k),
                    _ => MapOp::Get(k),
                };
                w.push(pid, op);
            }
        }
        check_universal(&imp, w, seed);
    }
}

#[test]
fn universal_snapshot_random_schedules() {
    for seed in 0..12u64 {
        let n = 3;
        let spec = SnapshotSpec::new(2, 2);
        let imp = SimUniversal::new(spec, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w: Workload<SnapshotSpec> = Workload::new(n);
        for pid in 0..n {
            for _ in 0..4 {
                let op = if rng.gen_bool(0.5) {
                    SnapshotOp::Update(rng.gen_range(0..2), rng.gen_range(0..=2))
                } else {
                    SnapshotOp::Scan
                };
                w.push(pid, op);
            }
        }
        check_universal(&imp, w, seed);
    }
}

#[test]
fn universal_multiwriter_register_random_schedules() {
    // The universal construction turns the SWSR register spec into a
    // full MWMR register, trivially.
    use hi_core::objects::{MultiRegisterSpec, RegisterOp};
    for seed in 0..12u64 {
        let n = 3;
        let spec = MultiRegisterSpec::new(4, 1);
        let imp = SimUniversal::new(spec, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w: Workload<MultiRegisterSpec> = Workload::new(n);
        for pid in 0..n {
            for _ in 0..4 {
                let op = if rng.gen_bool(0.5) {
                    RegisterOp::Write(rng.gen_range(1..=4))
                } else {
                    RegisterOp::Read
                };
                w.push(pid, op);
            }
        }
        check_universal(&imp, w, seed);
    }
}

#[test]
fn lemma26_announce_is_bot_without_pending_op() {
    // Lemma 26, at every configuration of random executions: a process with
    // no pending state-changing operation has announce[i] = ⊥.
    use hi_concurrent::universal::AnnValue;
    use hi_core::{ObjectSpec, Pid};
    for seed in 0..15u64 {
        let n = 3;
        let imp = SimUniversal::new(CounterSpec::new(-4, 4, 0), n);
        let mut exec = Executor::new(imp.clone());
        let imp2 = imp.clone();
        let mut observer = |e: &Executor<CounterSpec, SimUniversal<CounterSpec>>| {
            let spec = *e.spec();
            for pid in 0..n {
                let state_changing_pending = e
                    .pending_op(Pid(pid))
                    .map(|op| !spec.is_read_only(op))
                    .unwrap_or(false);
                if !state_changing_pending {
                    assert!(
                        matches!(imp2.announce_value(&e.snapshot(), pid), AnnValue::Bot),
                        "seed {seed}: announce[{pid}] not ⊥ while p{pid} idle"
                    );
                }
            }
        };
        run_workload(
            &mut exec,
            counter_workload(n, 6, seed),
            &mut Seeded::new(seed),
            &mut observer,
            MAX_STEPS,
        )
        .unwrap();
    }
}

#[test]
fn universal_priority_queue_random_schedules() {
    use hi_core::objects::{PQueueOp, PQueueSpec};
    for seed in 0..12u64 {
        let n = 2;
        let spec = PQueueSpec::new(3, 3);
        let imp = SimUniversal::new(spec, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w: Workload<PQueueSpec> = Workload::new(n);
        for pid in 0..n {
            for _ in 0..6 {
                let op = match rng.gen_range(0..3) {
                    0 => PQueueOp::Insert(rng.gen_range(1..=3)),
                    1 => PQueueOp::ExtractMin,
                    _ => PQueueOp::FindMin,
                };
                w.push(pid, op);
            }
        }
        check_universal(&imp, w, seed);
    }
}
