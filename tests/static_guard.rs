//! Static source guards: invariants of the *source tree* that the type
//! system cannot enforce, pinned so they fail loudly in review instead of
//! eroding silently.
//!
//! 1. Every workspace crate root keeps `#![forbid(unsafe_code)]` — the
//!    whole reproduction is safe Rust, and `forbid` (unlike `deny`)
//!    cannot be overridden by an inner `allow`.
//! 2. Explicit `std::sync::atomic` memory orderings appear only in a
//!    documented allowlist. The simulator is the source of truth for the
//!    paper's proofs; the threaded backends mirror it under `SeqCst`
//!    funneled through per-crate `ORD` constants, and anything weaker must
//!    be justified here, file by file.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Recursively collects `.rs` files under `dir` (which must exist).
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).unwrap_or_else(|e| panic!("read {}: {e}", dir.display())) {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            // `target/` never nests under crates/src/tests, but stay safe.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_crate_root_forbids_unsafe_code() {
    let mut roots = vec![root().join("src/lib.rs")];
    for entry in fs::read_dir(root().join("crates")).expect("read crates/") {
        let dir = entry.expect("dir entry").path();
        if dir.is_dir() {
            let lib = dir.join("src/lib.rs");
            assert!(lib.is_file(), "crate without src/lib.rs: {}", dir.display());
            roots.push(lib);
        }
    }
    assert!(
        roots.len() >= 12,
        "expected the umbrella plus >= 11 workspace crates, found {}",
        roots.len()
    );
    for lib in roots {
        let text = fs::read_to_string(&lib).unwrap_or_else(|e| panic!("{}: {e}", lib.display()));
        assert!(
            text.contains("#![forbid(unsafe_code)]"),
            "{} lost #![forbid(unsafe_code)]",
            lib.display()
        );
    }
}

/// Every file allowed to name an atomic memory ordering, with its exact
/// occurrence count and the reason the orderings there are sound. Adding an
/// ordering anywhere — including one more in an allowed file — must update
/// this table, i.e. must be argued in review.
const ORDERING_ALLOWLIST: &[(&str, usize, &str)] = &[
    (
        "crates/api/src/drive.rs",
        4,
        "watchdog progress counters: SeqCst heartbeat increments, Relaxed throughput count",
    ),
    (
        "crates/bench/benches/llsc_ops.rs",
        2,
        "Relaxed stop-flag/counter in the bench harness threads (no data published)",
    ),
    (
        "crates/bench/benches/register_cost.rs",
        2,
        "Relaxed stop-flag/counter in the bench harness threads (no data published)",
    ),
    (
        "crates/core/src/cells.rs",
        1,
        "CELL_ORD = SeqCst: the single constant every threaded cell primitive funnels through",
    ),
    (
        "crates/hashtable/src/phase.rs",
        1,
        "ORD = SeqCst: per-backend constant, matches the simulator's sequential consistency",
    ),
    (
        "crates/hashtable/src/threaded.rs",
        1,
        "ORD = SeqCst: per-backend constant, matches the simulator's sequential consistency",
    ),
    (
        "crates/llsc/src/threaded.rs",
        1,
        "ORD = SeqCst: per-backend constant, matches the simulator's sequential consistency",
    ),
    (
        "crates/service/src/service.rs",
        1,
        "GAUGE_ORD = Relaxed: queue-depth gauges and abort latches only, never a publication channel",
    ),
    (
        "crates/shard/src/threaded.rs",
        1,
        "ORD = SeqCst: per-backend constant, matches the simulator's sequential consistency",
    ),
    (
        "crates/universal/src/threaded.rs",
        2,
        "SeqCst swap/store on the announce slots (Algorithm 5's helping handshake)",
    ),
    (
        "tests/hashtable_threaded.rs",
        2,
        "SeqCst stop flag coordinating the threaded stress loops",
    ),
    (
        "tests/llsc_progress.rs",
        2,
        "SeqCst stop flag coordinating the threaded progress loops",
    ),
];

#[test]
fn atomic_orderings_match_the_documented_allowlist() {
    let root = root();
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests"] {
        rs_files(&root.join(dir), &mut files);
    }
    assert!(
        files.len() > 40,
        "source scan looks broken: {} files",
        files.len()
    );

    let mut found: BTreeMap<String, usize> = BTreeMap::new();
    for path in &files {
        // The guard itself names `Ordering::` in prose and in the filter
        // below; scanning it would make the allowlist self-referential.
        if path.file_name().is_some_and(|n| n == "static_guard.rs") {
            continue;
        }
        let text = fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let count = text
            .lines()
            // `std::cmp::Ordering` (comparator code) is not a memory
            // ordering; everything else that names `Ordering::` is.
            .filter(|l| !l.contains("cmp::Ordering"))
            .map(|l| l.matches("Ordering::").count())
            .sum::<usize>();
        if count > 0 {
            let rel = path
                .strip_prefix(&root)
                .expect("scanned file under root")
                .to_string_lossy()
                .replace('\\', "/");
            found.insert(rel, count);
        }
    }

    let expected: BTreeMap<String, usize> = ORDERING_ALLOWLIST
        .iter()
        .map(|(f, n, _)| (f.to_string(), *n))
        .collect();
    assert_eq!(
        found, expected,
        "atomic memory orderings drifted from the allowlist; if the new use is \
         justified, document it in ORDERING_ALLOWLIST with its reason"
    );
}
