#![forbid(unsafe_code)]
//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a deterministic, API-compatible implementation of the pieces it calls:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`, `pat in strategy`
//! and `name: type` parameters), integer-range / tuple / `prop::collection`
//! / `prop::bool` strategies, [`strategy::Strategy::prop_map`], the
//! `prop_assert*` macros, [`prop_assume!`] and
//! [`test_runner::TestCaseError`].
//!
//! Unlike real proptest it does no shrinking and no failure persistence: each
//! case is drawn from a per-case deterministic seed and a failing case panics
//! with its case index. Swap the `proptest` workspace dependency back to
//! crates.io for the real engine; no source changes are required.

pub mod test_runner {
    //! Case configuration, errors and the per-case RNG.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Subset of proptest's `Config`: the number of cases per test and the
    /// rejection budget.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
        /// Total `prop_assume!` rejections tolerated across the whole run
        /// before the test aborts (mirrors real proptest's
        /// `max_global_rejects`).
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 1024,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected (e.g. by `prop_assume!`); not a failure.
        Reject(String),
        /// The case failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected case with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "{r}"),
            }
        }
    }

    /// Outcome of a single test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// FNV-1a hash, used to give every test its own random stream.
    pub fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h
    }

    /// Deterministic per-case source of randomness.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// The RNG for case number `case` of a test run.
        pub fn deterministic(case: u32) -> Self {
            TestRng::salted(0, case, 0)
        }

        /// The RNG for attempt `attempt` of case `case` of the test whose
        /// identity hashes to `salt`. Distinct tests get distinct streams,
        /// and `prop_assume!` rejections resample by bumping `attempt` —
        /// everything stays reproducible.
        pub fn salted(salt: u64, case: u32, attempt: u32) -> Self {
            TestRng(StdRng::seed_from_u64(
                0xC0FF_EE00_u64
                    ^ salt.rotate_left(11)
                    ^ (u64::from(case) << 17)
                    ^ (u64::from(attempt) << 47),
            ))
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// The underlying generator, for strategies that sample ranges.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.0
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use rand::{Rng, SampleRange};

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy simply samples a value from the per-case RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Generates with `self`, then transforms through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: Clone,
        Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rng.rng().gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: Clone,
        RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rng.rng().gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Strategy producing a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! Default strategies per type, used for `name: type` parameters of
    //! [`crate::proptest!`].

    use super::test_runner::TestRng;

    /// Types with a canonical "any value" generator.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod bool {
    //! Strategies for `bool`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::ops::Range;
    use rand::Rng;
    use std::collections::HashSet;

    /// Strategy type of [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec`s whose length lies in `size` and whose elements come from
    /// `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().gen_range(self.size.clone());
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy type of [`hash_set`].
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `HashSet`s whose cardinality lies in `size` (best effort, as for real
    /// proptest: if the element strategy cannot produce enough distinct
    /// values the set is smaller).
    pub fn hash_set<S>(elem: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: core::hash::Hash + Eq,
    {
        assert!(!size.is_empty(), "empty size range");
        HashSetStrategy { elem, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: core::hash::Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = rng.rng().gen_range(self.size.clone());
            let mut out = HashSet::new();
            let mut tries = 0usize;
            while out.len() < target && tries < 16 * target + 64 {
                out.insert(self.elem.sample(rng));
                tries += 1;
            }
            out
        }
    }
}

pub mod prelude {
    //! Everything a proptest-based test module needs in scope.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the two argument forms the real macro does: `pattern in strategy`
/// and `name: Type` (via [`arbitrary::Arbitrary`]), plus a leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let salt = $crate::test_runner::fnv1a(concat!(
                module_path!(), "::", stringify!($name),
            ));
            let mut global_rejects: u32 = 0;
            for case in 0..config.cases {
                // `prop_assume!` rejections resample the case (fresh attempt
                // number) instead of passing vacuously, up to the global
                // rejection budget — mirroring real proptest.
                let mut attempt: u32 = 0;
                loop {
                    let mut rng =
                        $crate::test_runner::TestRng::salted(salt, case, attempt);
                    let outcome: $crate::test_runner::TestCaseResult =
                        $crate::__proptest_case!(rng; ($($params)*); $body);
                    match outcome {
                        ::core::result::Result::Ok(()) => break,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(reason),
                        ) => {
                            global_rejects += 1;
                            attempt += 1;
                            if global_rejects > config.max_global_rejects {
                                panic!(
                                    "proptest: too many global rejects \
                                     ({}): {reason}",
                                    config.max_global_rejects,
                                )
                            }
                        }
                        ::core::result::Result::Err(e) => {
                            panic!("proptest: case {case}/{} failed: {e}", config.cases)
                        }
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All parameters bound: run the body inside a Result-returning closure so
    // `prop_assert*` / `?` can early-return.
    ($rng:ident; (); $body:block) => {
        (|| -> $crate::test_runner::TestCaseResult {
            $body
            ::core::result::Result::Ok(())
        })()
    };
    ($rng:ident; (,); $body:block) => {
        $crate::__proptest_case!($rng; (); $body)
    };
    // `name: Type` parameters (Arbitrary).
    ($rng:ident; ($var:ident : $ty:ty) ; $body:block) => {{
        let $var: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_case!($rng; (); $body)
    }};
    ($rng:ident; ($var:ident : $ty:ty, $($rest:tt)*) ; $body:block) => {{
        let $var: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_case!($rng; ($($rest)*); $body)
    }};
    // `pattern in strategy` parameters.
    ($rng:ident; ($pat:pat_param in $strat:expr) ; $body:block) => {{
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_case!($rng; (); $body)
    }};
    ($rng:ident; ($pat:pat_param in $strat:expr, $($rest:tt)*) ; $body:block) => {{
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_case!($rng; ($($rest)*); $body)
    }};
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?} == {:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// `assert_ne!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} != {:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?} != {:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Skips the current case when `cond` does not hold (counts as a rejection,
/// not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_within_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic(0);
        for _ in 0..200 {
            let v = (1u32..5).sample(&mut rng);
            assert!((1..5).contains(&v));
            let xs = prop::collection::vec(0u8..3, 2..6).sample(&mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|x| *x < 3));
            let set = prop::collection::hash_set(1u32..100, 0..8).sample(&mut rng);
            assert!(set.len() < 8);
            let (a, b) = (0u8..2, prop::bool::ANY).sample(&mut rng);
            assert!(a < 2);
            let _: bool = b;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro binds `pat in strategy`, `mut` patterns and typed
        /// (Arbitrary) parameters, and `prop_assert*` early-returns work.
        #[test]
        fn macro_round_trip(
            v in 1u64..10,
            mut xs in prop::collection::vec(0u8..3, 1..4),
            seed: u64,
        ) {
            prop_assert!((1..10).contains(&v));
            xs.push(0);
            prop_assert!(!xs.is_empty());
            let _ = seed;
            prop_assume!(v != 99);
            prop_assert_eq!(v + 1, 1 + v, "commutativity for {}", v);
            prop_assert_ne!(v, 0);
        }

        /// Rejected cases are resampled, not passed vacuously: every case
        /// that reaches the assertion satisfies the assumption.
        #[test]
        fn assume_resamples(v in 0u64..100) {
            prop_assume!(v >= 50);
            prop_assert!(v >= 50);
        }

        /// An always-false assumption exhausts the rejection budget instead
        /// of passing green.
        #[test]
        #[should_panic(expected = "too many global rejects")]
        fn assume_false_aborts(v in 0u64..100) {
            prop_assume!(v > 100);
            let _ = v;
        }
    }

    #[test]
    fn distinct_tests_get_distinct_streams() {
        let salt_a = crate::test_runner::fnv1a("mod::test_a");
        let salt_b = crate::test_runner::fnv1a("mod::test_b");
        let mut a = crate::test_runner::TestRng::salted(salt_a, 0, 0);
        let mut b = crate::test_runner::TestRng::salted(salt_b, 0, 0);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>(),
        );
    }
}
