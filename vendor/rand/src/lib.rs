#![forbid(unsafe_code)]
//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small, deterministic, API-compatible implementation of the pieces it
//! actually calls: [`rngs::StdRng`] (an xoshiro256++ generator),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer ranges,
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`]. Swap the `rand`
//! workspace dependency back to crates.io to use the real crate; no source
//! changes are required.

use core::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniformly random `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Constructing generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A sampling range for [`Rng::gen_range`]: `low..high` or `low..=high`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $u as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as $u as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $u as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`low..high` or `low..=high`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        // 53 uniform mantissa bits, the standard float-from-bits recipe.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64 — the same
    /// construction the real `rand::rngs::StdRng` documents as permissible
    /// (algorithm unspecified, stream stable only per version).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Extension methods on slices that consume randomness.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! The traits and types most callers want in scope.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
