#![forbid(unsafe_code)]
//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal benchmark harness with criterion's API shape: [`Criterion`],
//! [`BenchmarkGroup`] (with [`BenchmarkGroup::throughput`] and
//! [`BenchmarkGroup::sample_size`]), [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurements are a simple
//! warmup-then-median-of-samples loop printed as `ns/iter`; there is no
//! statistical analysis, HTML report or baseline comparison. Swap the
//! `criterion` workspace dependency back to crates.io for the real harness;
//! no source changes are required.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Identifies one benchmark within a group, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark `name` at parameter value `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark identified only by a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Units of work per iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs closures and measures them.
pub struct Bencher {
    /// Median nanoseconds per iteration of the last `iter` call.
    last_ns_per_iter: f64,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`, called repeatedly in a timed loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up for a fixed small budget while estimating cost.
        let warmup = Duration::from_millis(20);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(routine());
            iters += 1;
        }
        let per_iter = warmup.as_nanos() as f64 / iters.max(1) as f64;
        // Size each sample to ~2ms of work, then take the median of samples.
        let batch = ((2_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);
        let samples = self.sample_size.clamp(3, 100);
        let mut per_iter_samples: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter_samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter_samples.sort_by(|a, b| a.total_cmp(b));
        self.last_ns_per_iter = per_iter_samples[per_iter_samples.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput reported for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            last_ns_per_iter: 0.0,
            sample_size: self.sample_size,
        };
        routine(&mut b);
        self.report(&id, b.last_ns_per_iter);
        self
    }

    /// Benchmarks `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            last_ns_per_iter: 0.0,
            sample_size: self.sample_size,
        };
        routine(&mut b, input);
        self.report(&id, b.last_ns_per_iter);
        self
    }

    fn report(&mut self, id: &BenchmarkId, ns_per_iter: f64) {
        let mut line = format!("{}/{}: {:.1} ns/iter", self.name, id.render(), ns_per_iter);
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if ns_per_iter > 0.0 {
                let per_sec = count as f64 * 1e9 / ns_per_iter;
                line.push_str(&format!(" ({per_sec:.0} {unit}/s)"));
            }
        }
        println!("{line}");
        self.criterion
            .results
            .push((format!("{}/{}", self.name, id.render()), ns_per_iter));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// No-op in the stand-in; the real crate reads CLI flags here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        self
    }
}

/// Bundles benchmark functions into a group runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Generates a `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        let mut group = c.benchmark_group("adds");
        group.throughput(Throughput::Elements(1));
        group.sample_size(3);
        group.bench_function("wrapping", |b| b.iter(|| black_box(3u64).wrapping_add(4)));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) + 1)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_records() {
        let mut c = Criterion::default();
        bench_addition(&mut c);
        assert_eq!(c.results.len(), 2);
        assert!(c
            .results
            .iter()
            .all(|(name, ns)| !name.is_empty() && *ns >= 0.0));
    }

    criterion_group!(smoke, bench_addition);
    criterion_group!(
        name = smoke_cfg;
        config = Criterion::default();
        targets = bench_addition,
    );

    #[test]
    fn group_macros_expand_and_run() {
        smoke();
        smoke_cfg();
    }
}
