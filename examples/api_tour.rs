//! A tour of the unified object API: every scenario in `hi_api::registry()`
//! — four register algorithms, the positional queue, releasable LL/SC and
//! three universal-construction configurations — stress-driven on real
//! threads, linearizability-checked and HI-audited through one code path.
//!
//! ```sh
//! cargo run --example api_tour
//! ```

use hi_concurrent::api::{registry, DriveConfig};

fn main() {
    let cfg = DriveConfig {
        ops_per_handle: 200,
        seed: 0xda7a,
        ..DriveConfig::default()
    };
    println!("{:32} {:>6}  {:^9}  about", "scenario", "ops", "audit");
    println!("{}", "-".repeat(96));
    for scenario in registry() {
        let report = scenario
            .run_threaded(&cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        println!(
            "{:32} {:>6}  {:^9}  {}",
            scenario.name,
            report.ops,
            if report.audited {
                "canonical"
            } else {
                "skipped"
            },
            scenario.about
        );
    }
    println!(
        "\nEvery backend ran a random role-respecting workload, linearized against\n\
         its ObjectSpec, and (where the algorithm promises it) left memory equal\n\
         to the canonical representation of its final abstract state."
    );
}
