//! Reproduces **Figure 4** of the paper (Lemma 10): when both of a read's
//! `TryRead` scans fail, an overlapping write is *guaranteed* to have
//! published a fallback value in `B` before the reader scans it.
//!
//! We drive Algorithm 4's reader against a hostile writer that keeps the 1
//! moving away from the scan (the same schedule that starves Algorithm 2),
//! and print the low-level `B` and `flag` traffic showing the help arriving.
//!
//! ```sh
//! cargo run --example repro_fig4
//! ```

use hi_concurrent::registers::WaitFreeHiRegister;
use hi_concurrent::sim::{Executor, Pid};
use hi_core::objects::{RegisterOp, RegisterResp};

const W: Pid = Pid(0);
const R: Pid = Pid(1);
const K: u64 = 4;

fn main() {
    println!("Figure 4 — two failed TryReads force the writer's help through B\n");
    let imp = WaitFreeHiRegister::new(K, 1);
    let mut exec = Executor::new(imp);
    exec.enable_trace();

    exec.invoke(R, RegisterOp::Read);
    let mut next = K;
    let mut rounds = 0u64;
    let resp = loop {
        if let Some((_, resp)) = exec.step(R) {
            break resp;
        }
        exec.run_op_solo(W, RegisterOp::Write(next), 10_000)
            .unwrap();
        next = if next == 1 { K } else { 1 };
        rounds += 1;
    };

    println!("read returned {resp:?} after {rounds} hostile write rounds\n");
    println!("B/flag traffic (writer = p0, reader = p1):");
    let trace = exec.trace().unwrap();
    for ev in trace.events() {
        let name = exec.mem().name(ev.cell);
        if name.starts_with('B') || name.starts_with("flag") {
            println!("  {}", ev.render(exec.mem()));
        }
    }

    // The value returned came from B: it is the writer's last-val, i.e. the
    // value of the write *before* one of the overlapping writes — a valid
    // linearization point inside the read's interval (Lemma 11).
    match resp {
        RegisterResp::Value(v) => {
            println!("\nthe reader was rescued with value {v}, written to B by an");
            println!("overlapping Write — wait-freedom despite maximal write pressure.");
        }
        RegisterResp::Ack => unreachable!("reads return values"),
    }
    // Wait-freedom with a concrete bound: one step per round, and the read
    // needs at most flag writes + two TryReads + the B scan + cleanup.
    assert!(
        rounds <= 4 * K + 6,
        "read exceeded its wait-free step bound"
    );
}
