//! Phase-concurrent vs phase-free: the two concurrent HI hash tables side
//! by side.
//!
//! The Shun–Blelloch style [`AtomicHashTable`] (the paper's reference [42])
//! only allows *same-type* phases — all-inserts, or all-lookups, with
//! deletions sequential. The [`AtomicHiHashTable`] follows the authors'
//! follow-up, *History-Independent Concurrent Hash Tables*
//! (arXiv:2503.21016), and drops the restriction: inserts, removes and
//! lock-free lookups interleave arbitrarily, and the slot array still
//! converges to the one canonical Robin Hood layout of the surviving key
//! set.
//!
//! ```sh
//! cargo run --example concurrent_hashtable
//! ```

use hi_concurrent::api::{drive, ConcurrentObject, DriveConfig, HashTableObject};
use hi_concurrent::hashtable::{canonical_layout, AtomicHashTable, AtomicHiHashTable};
use hi_core::objects::HashSetSpec;

fn main() {
    let keys = [12u32, 45, 7, 33, 91, 28, 64, 5];

    println!("== phase-concurrent (same-type phases only) ==");
    let phased = AtomicHashTable::new(16);
    // Phase 1: concurrent inserts. Phase 2: concurrent lookups. Deletions
    // would need a third, *sequential* phase — the caller coordinates all
    // of this by hand.
    std::thread::scope(|s| {
        for chunk in keys.chunks(2) {
            let t = &phased;
            s.spawn(move || {
                for &k in chunk {
                    t.insert(k);
                }
            });
        }
    });
    std::thread::scope(|s| {
        for chunk in keys.chunks(4) {
            let t = &phased;
            s.spawn(move || {
                for &k in chunk {
                    assert!(t.contains(k));
                }
            });
        }
    });
    println!("after insert phase + lookup phase: {:?}", phased.memory());

    println!("\n== phase-free (arXiv:2503.21016 direction) ==");
    let free = AtomicHiHashTable::new(16);
    // No phases: every thread mixes inserts, removes and lookups at will.
    std::thread::scope(|s| {
        for (i, chunk) in keys.chunks(2).enumerate() {
            let t = &free;
            s.spawn(move || {
                for &k in chunk {
                    t.insert(k);
                    // A detour insert+remove of a thread-private key, mid
                    // everyone else's traffic.
                    let detour = 100 + i as u32;
                    t.insert(detour);
                    assert!(t.contains(detour));
                    t.remove(detour);
                }
            });
        }
    });
    println!("after one mixed melee            : {:?}", free.memory());

    let canonical = canonical_layout(16, keys.iter().copied());
    assert_eq!(free.memory(), canonical);
    assert_eq!(phased.memory(), canonical);
    println!("sequential canonical layout      : {canonical:?}");
    println!("=> same canonical array, with or without phase discipline\n");

    println!("== the same table through the unified facade ==");
    let mut obj = HashTableObject::new(HashSetSpec::new(8), 13, 4);
    let cfg = DriveConfig {
        ops_per_handle: 200,
        ..DriveConfig::default()
    };
    let report = drive(&mut obj, &cfg).expect("linearizable and canonical");
    println!(
        "drove {} random ops over 4 symmetric handles: linearizable, audited = {}",
        report.history.records().len(),
        report.audited
    );
    println!(
        "final key set mask {:#b}, quiescent slots {:?}",
        report.final_state, report.mem
    );
    assert_eq!(Some(report.mem.clone()), obj.canonical(&report.final_state));
    println!("=> quiescent memory == canonical(final key set), under a random mixed workload");
}
