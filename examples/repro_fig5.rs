//! Reproduces **Figure 5** of the paper (Lemma 35): every 1 the writer
//! publishes in `B` is cleaned up — by the writer itself (scenario a) or by
//! the overlapping reader (scenario b) — before the system quiesces, which
//! is exactly why Algorithm 4's quiescent memory is canonical.
//!
//! ```sh
//! cargo run --example repro_fig5
//! ```

use hi_concurrent::registers::WaitFreeHiRegister;
use hi_concurrent::sim::{render_lanes, Executor, Pid, Trace};
use hi_core::objects::RegisterOp;

const W: Pid = Pid(0);
const R: Pid = Pid(1);
const K: u64 = 3;

fn print_b_traffic(exec: &Executor<hi_core::objects::MultiRegisterSpec, WaitFreeHiRegister>) {
    let trace: &Trace = exec.trace().unwrap();
    for ev in trace.events() {
        let name = exec.mem().name(ev.cell);
        if name.starts_with('B') {
            println!("  {}", ev.render(exec.mem()));
        }
    }
}

fn indent(text: &str) -> String {
    text.lines().map(|l| format!("    {l}\n")).collect()
}

fn main() {
    println!("Figure 5 — who erases the writer's help from B\n");

    // ------------------------------------------------------------------
    // Scenario (a): the *writer* clears its own B write (line 15), because
    // it reads flag[2] = 1: the reader has already finished reading B.
    // ------------------------------------------------------------------
    println!("scenario (a): writer writes B, sees flag[2] = 1, clears B itself");
    let imp = WaitFreeHiRegister::new(K, 2);
    let mut exec = Executor::new(imp.clone());
    // Reader: flag[1] <- 1, TryRead finds A[2] (3 reads: A[1], A[2], A[1]),
    // then flag[2] <- 1. Five steps leave it *before* its B-clearing loop.
    exec.invoke(R, RegisterOp::Read);
    for _ in 0..5 {
        exec.step(R);
    }
    exec.enable_trace();
    // Writer: B empty, flag[1] = 1 -> writes B[last-val]; flag[2] = 1 ->
    // clears B[last-val] (line 15); proceeds to A.
    exec.run_op_solo(W, RegisterOp::Write(3), 10_000).unwrap();
    print_b_traffic(&exec);
    println!("  lanes (writer = p0, reader = p1):");
    print!(
        "{}",
        indent(&render_lanes(exec.trace().unwrap(), exec.mem(), 2))
    );
    while exec.can_step(R) {
        exec.step(R);
    }
    assert_eq!(exec.snapshot(), imp.canonical(3));
    println!("  => quiescent memory canonical: {:?}\n", exec.snapshot());

    // ------------------------------------------------------------------
    // Scenario (b): the writer's B write survives (flag[2] = 0, flag[1] = 1)
    // and the *reader* erases it in its cleanup loop (line 8).
    // ------------------------------------------------------------------
    println!("scenario (b): writer leaves B set, the reader's cleanup clears it");
    let imp = WaitFreeHiRegister::new(K, 2);
    let mut exec = Executor::new(imp.clone());
    // Reader has only announced itself (flag[1] = 1), not yet set flag[2].
    exec.invoke(R, RegisterOp::Read);
    exec.step(R);
    exec.enable_trace();
    // Writer: B empty, flag[1] = 1 -> writes B[2]; flag[2] = 0 and
    // flag[1] = 1 -> leaves the help in place; writes A.
    exec.run_op_solo(W, RegisterOp::Write(3), 10_000).unwrap();
    // Reader completes: its TryRead succeeds on the new A, and its cleanup
    // loop erases B[2].
    while exec.can_step(R) {
        exec.step(R);
    }
    print_b_traffic(&exec);
    assert_eq!(exec.snapshot(), imp.canonical(3));
    println!("  => quiescent memory canonical: {:?}", exec.snapshot());

    println!("\nin both scenarios the B footprint is gone at quiescence — Lemma 35.");
}
