//! Reproduces **Table 1** of the paper: the possibility matrix for SWSR
//! multi-valued registers from binary registers, with every cell backed by
//! a measurement from this repository.
//!
//! ```sh
//! cargo run --example repro_table1
//! ```

use hi_concurrent::lowerbound::{run_adversary, CtScript, Verdict};
use hi_concurrent::registers::{LockFreeHiRegister, WaitFreeHiRegister};
use hi_concurrent::sim::{Seeded, Workload};
use hi_concurrent::spec::{check_run_single_mutator, CheckError, ObservationModel};
use hi_core::objects::{MultiRegisterSpec, RegisterOp};

const K: u64 = 4;
const ROUNDS: u64 = 2_000;
const MAX_STEPS: u64 = 500_000;

fn workload() -> Workload<MultiRegisterSpec> {
    let mut w = Workload::new(2);
    for v in [2u64, 1, 4, 3, 1, 2] {
        w.push(0, RegisterOp::Write(v));
        w.push(1, RegisterOp::Read);
    }
    w
}

/// Checks an implementation against an observation model over 20 seeds;
/// returns true iff every run was linearizable and HI.
fn holds<I>(imp: &I, model: ObservationModel) -> bool
where
    I: hi_concurrent::sim::Implementation<MultiRegisterSpec>,
{
    (0..20u64).all(|seed| {
        match check_run_single_mutator(imp, workload(), &mut Seeded::new(seed), model, MAX_STEPS) {
            Ok(_) => true,
            Err(CheckError::Hi(_)) => false,
            Err(e) => panic!("unexpected failure: {e}"),
        }
    })
}

fn starves<I>(imp: &I) -> bool
where
    I: hi_concurrent::sim::Implementation<MultiRegisterSpec>,
{
    let script = CtScript::new(MultiRegisterSpec::new(K, 1));
    matches!(
        run_adversary(imp, &script, ROUNDS, 100_000)
            .unwrap()
            .verdict,
        Verdict::Starved
    )
}

fn main() {
    println!("Table 1 — SWSR {K}-valued register from binary registers");
    println!("(paper claims in [brackets]; every entry below is measured)\n");

    let alg2 = LockFreeHiRegister::new(K, 1);
    let alg4 = WaitFreeHiRegister::new(K, 1);

    // --- Perfect HI row: impossible for both progress conditions.
    let alg2_perfect = holds(&alg2, ObservationModel::Perfect);
    let alg4_perfect = holds(&alg4, ObservationModel::Perfect);
    println!(
        "perfect HI        | wait-free: measured {} [Impossible, Prop. 14]",
        verdict(alg4_perfect)
    );
    println!(
        "                  | lock-free: measured {} [Impossible, Prop. 14]",
        verdict(alg2_perfect)
    );

    // --- State-quiescent HI row.
    let alg2_sq = holds(&alg2, ObservationModel::StateQuiescent);
    let alg4_sq = holds(&alg4, ObservationModel::StateQuiescent);
    let alg2_starves = starves(&alg2);
    println!(
        "state-quiescent HI| wait-free: Alg.4 measured {} [Impossible, Cor. 18]",
        verdict(alg4_sq)
    );
    println!(
        "                  | lock-free: Alg.2 measured {} and its reader starves under the adversary: {} [Possible, Alg. 2]",
        verdict(alg2_sq),
        alg2_starves
    );

    // --- Quiescent HI row.
    let alg2_q = holds(&alg2, ObservationModel::Quiescent);
    let alg4_q = holds(&alg4, ObservationModel::Quiescent);
    println!(
        "quiescent HI      | wait-free: Alg.4 measured {} [Possible, Alg. 4]",
        verdict(alg4_q)
    );
    println!(
        "                  | lock-free: Alg.2 measured {} [Possible, Alg. 2 & 4]",
        verdict(alg2_q)
    );

    println!();
    assert!(!alg2_perfect && !alg4_perfect, "perfect HI must fail");
    assert!(alg2_sq && !alg4_sq, "state-quiescent: Alg.2 yes, Alg.4 no");
    assert!(alg2_q && alg4_q, "quiescent: both yes");
    assert!(
        alg2_starves,
        "Alg.2's reader must starve (it is not wait-free)"
    );
    println!("all six cells match the paper ✓");
}

fn verdict(b: bool) -> &'static str {
    if b {
        "HOLDS"
    } else {
        "VIOLATED"
    }
}
