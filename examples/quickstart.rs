//! Quickstart: history-independent objects in five minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hi_concurrent::registers::threaded::AtomicWaitFreeHi;
use hi_concurrent::universal::AtomicUniversal;
use hi_core::objects::{CounterOp, CounterSpec};

fn main() {
    // ------------------------------------------------------------------
    // 1. A wait-free quiescent-HI 5-valued register (paper Algorithm 4),
    //    one writer thread + one reader thread on real atomics.
    // ------------------------------------------------------------------
    let mut reg = AtomicWaitFreeHi::new(5, 1);
    {
        let (mut writer, mut reader) = reg.split(1);
        std::thread::scope(|s| {
            s.spawn(move || {
                for v in [3, 5, 2, 4] {
                    writer.write(v);
                }
            });
            s.spawn(move || {
                for _ in 0..4 {
                    let v = reader.read();
                    assert!((1..=5).contains(&v));
                }
            });
        });
    }
    println!("register memory after the run : {:?}", reg.snapshot());
    println!("canonical representation of 4 : {:?}", reg.canonical(4));
    assert_eq!(reg.snapshot(), reg.canonical(4));
    println!("=> the memory reveals the current value and nothing else\n");

    // ------------------------------------------------------------------
    // 2. The universal construction (paper Algorithm 5): *any* enumerable
    //    object becomes wait-free and history independent. Here: a counter.
    // ------------------------------------------------------------------
    let counter = AtomicUniversal::new(CounterSpec::new(-100, 100, 0), 4);
    std::thread::scope(|s| {
        for pid in 0..4 {
            let mut h = counter.handle(pid);
            s.spawn(move || {
                for _ in 0..25 {
                    h.apply(CounterOp::Inc);
                }
                for _ in 0..25 {
                    h.apply(CounterOp::Dec);
                }
            });
        }
    });
    println!("counter state after 100 incs and 100 decs: {:?}", counter.abstract_state());
    println!("counter memory: {:?}", counter.snapshot());
    println!("canonical(0)  : {:?}", counter.canonical(&0));
    assert_eq!(counter.snapshot(), counter.canonical(&0));
    println!("=> an observer cannot tell this counter ever moved");
}
