//! Quickstart: history-independent objects in five minutes.
//!
//! Both objects below — a §4 register built from binary cells and the
//! Algorithm 5 universal construction — are driven through the *same*
//! `ConcurrentObject` facade: uniform handles, uniform snapshots, uniform
//! canonical-form audits.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hi_concurrent::api::{ConcurrentObject, ObjectHandle, UniversalObject, WaitFreeHiObject};
use hi_core::objects::{CounterOp, CounterSpec, MultiRegisterSpec, RegisterOp, RegisterResp};

fn main() {
    // ------------------------------------------------------------------
    // 1. A wait-free quiescent-HI 5-valued register (paper Algorithm 4),
    //    one writer thread + one reader thread on real atomics.
    // ------------------------------------------------------------------
    let mut reg = WaitFreeHiObject::new(MultiRegisterSpec::new(5, 1));
    {
        let mut handles = reg.handles().into_iter();
        let mut writer = handles.next().unwrap();
        let mut reader = handles.next().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                for v in [3, 5, 2, 4] {
                    writer.apply(RegisterOp::Write(v));
                }
            });
            s.spawn(move || {
                for _ in 0..4 {
                    let RegisterResp::Value(v) = reader.apply(RegisterOp::Read) else {
                        unreachable!("reads return values")
                    };
                    assert!((1..=5).contains(&v));
                }
            });
        });
    }
    println!("register memory after the run : {:?}", reg.mem_snapshot());
    println!(
        "canonical representation of 4 : {:?}",
        reg.canonical(&4).unwrap()
    );
    assert_eq!(Some(reg.mem_snapshot()), reg.canonical(&4));
    println!("=> the memory reveals the current value and nothing else\n");

    // ------------------------------------------------------------------
    // 2. The universal construction (paper Algorithm 5): *any* enumerable
    //    object becomes wait-free and history independent. Here: a counter.
    //    Same facade, same audit.
    // ------------------------------------------------------------------
    let mut counter = UniversalObject::new(CounterSpec::new(-100, 100, 0), 4);
    {
        let handles = counter.handles();
        std::thread::scope(|s| {
            for mut h in handles {
                s.spawn(move || {
                    for _ in 0..25 {
                        h.apply(CounterOp::Inc);
                    }
                    for _ in 0..25 {
                        h.apply(CounterOp::Dec);
                    }
                });
            }
        });
    }
    println!(
        "counter state after 100 incs and 100 decs: {:?}",
        counter.abstract_state()
    );
    println!("counter memory: {:?}", counter.mem_snapshot());
    println!("canonical(0)  : {:?}", counter.canonical(&0).unwrap());
    assert_eq!(Some(counter.mem_snapshot()), counter.canonical(&0));
    println!("=> an observer cannot tell this counter ever moved");
}
