//! A forensic auditor inspects register memory (paper §4).
//!
//! Scenario: a device stores a 3-valued status register built from binary
//! flash cells. An attacker images the memory and tries to reconstruct
//! *previous* statuses. Vidyasankar's classic construction (Algorithm 1)
//! gives the attacker exactly that; the paper's HI constructions do not.
//!
//! ```sh
//! cargo run --example forensic_audit
//! ```

use hi_concurrent::registers::{LockFreeHiRegister, VidyasankarRegister, WaitFreeHiRegister};
use hi_concurrent::sim::{Executor, Implementation, Pid};
use hi_core::objects::RegisterOp;

const W: Pid = Pid(0);
const R: Pid = Pid(1);

/// Runs a sequence of writes (with interleaved reads) and returns the final
/// memory image.
fn memory_image<I>(imp: &I, writes: &[u64]) -> Vec<u64>
where
    I: Implementation<hi_core::objects::MultiRegisterSpec>,
{
    let mut exec = Executor::new(imp.clone());
    for &v in writes {
        exec.run_op_solo(W, RegisterOp::Write(v), 10_000).unwrap();
        exec.run_op_solo(R, RegisterOp::Read, 10_000).unwrap();
    }
    exec.snapshot()
}

fn render(mem: &[u64]) -> String {
    mem.iter().map(u64::to_string).collect::<Vec<_>>().join(" ")
}

fn main() {
    // Both histories end with status 1 ("nominal"), but history X passed
    // through status 3 ("tamper detected") on the way.
    let history_clean = vec![1];
    let history_tamper = vec![3, 1];

    println!("device statuses: 1 = nominal, 2 = maintenance, 3 = tamper detected\n");

    println!("== Algorithm 1 (Vidyasankar, not HI) ==");
    let imp = VidyasankarRegister::new(3, 1);
    let clean = memory_image(&imp, &history_clean);
    let tamper = memory_image(&imp, &history_tamper);
    println!("image after [write 1]          : A = [{}]", render(&clean));
    println!("image after [write 3, write 1] : A = [{}]", render(&tamper));
    assert_ne!(clean, tamper);
    println!("=> the stale 1 in A[3] tells the attacker the device saw status 3\n");

    println!("== Algorithm 2 (lock-free, state-quiescent HI) ==");
    let imp = LockFreeHiRegister::new(3, 1);
    let clean = memory_image(&imp, &history_clean);
    let tamper = memory_image(&imp, &history_tamper);
    println!("image after [write 1]          : A = [{}]", render(&clean));
    println!("image after [write 3, write 1] : A = [{}]", render(&tamper));
    assert_eq!(clean, tamper);
    println!("=> identical images; the price: reads may retry under write storms\n");

    println!("== Algorithm 4 (wait-free, quiescent HI) ==");
    let imp = WaitFreeHiRegister::new(3, 1);
    let clean = memory_image(&imp, &history_clean);
    let tamper = memory_image(&imp, &history_tamper);
    println!(
        "image after [write 1]          : A,B,flags = [{}]",
        render(&clean)
    );
    println!(
        "image after [write 3, write 1] : A,B,flags = [{}]",
        render(&tamper)
    );
    assert_eq!(clean, tamper);
    println!("=> identical images *and* every operation finishes in bounded steps;");
    println!("   the price: the observer must catch the device fully idle");
    println!("   (a mid-read image may differ — quiescent HI, not state-quiescent)");
}
