//! A wait-free history-independent work queue via the universal
//! construction (Algorithm 5), on real threads, driven through the unified
//! `ConcurrentObject` facade.
//!
//! Two producers and one consumer share a bounded FIFO queue; afterwards the
//! queue's memory is compared against a fresh queue driven directly to the
//! same state — byte-identical, so a crash-dump of the work queue reveals
//! the backlog but not the processing history.
//!
//! ```sh
//! cargo run --example universal_queue
//! ```

use hi_concurrent::api::{ConcurrentObject, ObjectHandle, UniversalObject};
use hi_core::objects::{BoundedQueueSpec, QueueOp, QueueResp};

fn main() {
    let spec = BoundedQueueSpec::new(4, 6);
    let mut queue = UniversalObject::new(spec, 3);

    let consumed = {
        let mut handles = queue.handles().into_iter();
        let producers: Vec<_> = (0..2u32)
            .map(|pid| (pid, handles.next().unwrap()))
            .collect();
        let mut consumer_handle = handles.next().unwrap();
        std::thread::scope(|s| {
            for (pid, mut h) in producers {
                s.spawn(move || {
                    for i in 0..60 {
                        // Values 1..=4 tag the producing thread and batch.
                        let v = (i % 2) * 2 + pid + 1;
                        while let QueueResp::Full = h.apply(QueueOp::Enqueue(v)) {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            let consumer = s.spawn(move || {
                // Drain everything the producers made (120 items), so that no
                // producer is left spinning against a full queue.
                let mut got = Vec::new();
                let mut dry = 0;
                while got.len() < 120 && dry < 2_000_000 {
                    match consumer_handle.apply(QueueOp::Dequeue) {
                        QueueResp::Value(v) => {
                            got.push(v);
                            dry = 0;
                        }
                        _ => dry += 1,
                    }
                }
                got
            });
            consumer.join().unwrap()
        })
    };

    println!(
        "consumed {} items: {:?}...",
        consumed.len(),
        &consumed[..consumed.len().min(12)]
    );
    let backlog = queue.abstract_state();
    println!("backlog left in the queue: {backlog:?}");

    // A fresh queue driven straight to the same backlog state:
    let mut fresh = UniversalObject::new(spec, 3);
    {
        let mut handles = fresh.handles();
        for v in &backlog {
            handles[0].apply(QueueOp::Enqueue(*v));
        }
    }
    assert_eq!(queue.mem_snapshot(), fresh.mem_snapshot());
    println!("memory of the worked queue : {:?}", queue.mem_snapshot());
    println!("memory of the fresh queue  : {:?}", fresh.mem_snapshot());
    println!("=> identical: 160+ operations of history left no trace");
}
