//! Reproduces **Figure 3** of the paper: Algorithm 5's mode transitions
//! `A_{i-1} -> B_i -> A_i` — announce an operation, install state + response
//! into `head` (first stage), deliver the response into `announce[j]`
//! (second stage), clear `head` (third stage), clear `announce[j]`.
//!
//! We step a two-process universal counter and print the decoded contents of
//! `head` and the announce cells after every step that changes them.
//!
//! ```sh
//! cargo run --example repro_fig3
//! ```

use hi_concurrent::sim::{Executor, Pid};
use hi_concurrent::universal::{Mode, ModeTracker, SimUniversal};
use hi_core::objects::{CounterOp, CounterSpec};

fn main() {
    println!("Figure 3 — the three-stage apply protocol of Algorithm 5\n");
    let imp = SimUniversal::new(CounterSpec::new(0, 8, 0), 2);
    let mut exec = Executor::new(imp.clone());

    let (q0, r0) = imp.head_value(&exec.snapshot());
    let mut tracker = ModeTracker::new(q0 as u64, r0.is_some());
    let mut last = exec.snapshot();
    println!("initial   : head = <{q0:?}, ⊥>  announce = [⊥, ⊥]   (mode A_0)");

    // p0 announces Inc and stalls; p1's Inc will help p0's op through all
    // three stages before (or after) its own.
    exec.invoke(Pid(0), CounterOp::Inc);
    exec.step(Pid(0)); // Store(announce[0], Inc)
    print_if_changed(&imp, &exec, &mut last, &mut tracker, "p0 announces Inc");

    exec.invoke(Pid(1), CounterOp::Inc);
    let mut step_no = 0;
    while exec.can_step(Pid(1)) {
        exec.step(Pid(1));
        step_no += 1;
        print_if_changed(
            &imp,
            &exec,
            &mut last,
            &mut tracker,
            &format!("p1 step {step_no}"),
        );
    }
    // p0 finishes (its response was or will be delivered).
    while exec.can_step(Pid(0)) {
        exec.step(Pid(0));
        step_no += 1;
        print_if_changed(
            &imp,
            &exec,
            &mut last,
            &mut tracker,
            &format!("p0 step {step_no}"),
        );
    }

    let q = imp.abstract_state(&exec.snapshot());
    println!("\nfinal state: {q} after two increments");
    println!(
        "A->B transitions (= linearized state-changing ops, Lemma 23): {}",
        tracker.linearized_ops()
    );
    assert_eq!(q, 2);
    assert_eq!(tracker.linearized_ops(), 2);
    assert_eq!(tracker.mode(), Mode::A);
    assert_eq!(
        exec.snapshot(),
        imp.canonical(&q),
        "memory is canonical again"
    );
}

fn print_if_changed(
    imp: &SimUniversal<CounterSpec>,
    exec: &Executor<CounterSpec, SimUniversal<CounterSpec>>,
    last: &mut Vec<u64>,
    tracker: &mut ModeTracker,
    who: &str,
) {
    let snap = exec.snapshot();
    if snap == *last {
        return;
    }
    *last = snap.clone();
    let (q, r) = imp.head_value(&snap);
    tracker
        .observe(q as u64, r.is_some())
        .expect("Invariant 22");
    let head = match &r {
        None => format!("<{q:?}, ⊥>"),
        Some((resp, j)) => format!("<{q:?}, <{resp:?}, p{j}>>"),
    };
    let mode = match tracker.mode() {
        Mode::A => "A",
        Mode::B => "B",
    };
    println!("{who:<16}: head = {head:<28} mem = {snap:?}   (mode {mode})");
}
