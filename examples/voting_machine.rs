//! A history-independent voting machine.
//!
//! The paper's introduction cites voting machines as a system where history
//! independence is an essential feature: a memory dump (court-ordered audit,
//! stolen hardware) must reveal the *tally*, never the *order* of votes —
//! order plus a poll-book timeline deanonymizes voters.
//!
//! This example defines a custom tally object via the [`ObjectSpec`] trait
//! and runs it through the wait-free HI universal construction (Algorithm
//! 5), then contrasts it with the leaky construction that keeps per-process
//! operation records, the defect the paper points out in prior universal
//! constructions.
//!
//! ```sh
//! cargo run --example voting_machine
//! ```

use hi_concurrent::api::{ConcurrentObject, ObjectHandle, UniversalObject};
use hi_concurrent::sim::{Executor, Pid};
use hi_concurrent::universal::{LeakyUniversal, SimUniversal};
use hi_core::{EnumerableSpec, ObjectSpec};

/// Three candidates, up to 9 votes each (small so the state space stays
/// enumerable for the demo).
const CANDIDATES: usize = 3;
const MAX_VOTES: u64 = 9;

/// The abstract voting-machine object.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct TallySpec;

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum VoteOp {
    /// Cast one vote for a candidate.
    Vote(usize),
    /// Read the full tally; read-only.
    Audit,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum VoteResp {
    Accepted,
    Tally([u64; CANDIDATES]),
}

impl ObjectSpec for TallySpec {
    type State = [u64; CANDIDATES];
    type Op = VoteOp;
    type Resp = VoteResp;

    fn initial_state(&self) -> Self::State {
        [0; CANDIDATES]
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Resp) {
        match op {
            VoteOp::Vote(c) => {
                let mut s = *state;
                s[*c] = (s[*c] + 1).min(MAX_VOTES);
                (s, VoteResp::Accepted)
            }
            VoteOp::Audit => (*state, VoteResp::Tally(*state)),
        }
    }

    fn is_read_only(&self, op: &Self::Op) -> bool {
        matches!(op, VoteOp::Audit)
    }
}

impl EnumerableSpec for TallySpec {
    fn states(&self) -> Vec<Self::State> {
        let mut states = Vec::new();
        for a in 0..=MAX_VOTES {
            for b in 0..=MAX_VOTES {
                for c in 0..=MAX_VOTES {
                    states.push([a, b, c]);
                }
            }
        }
        states
    }

    fn ops(&self) -> Vec<Self::Op> {
        let mut ops = vec![VoteOp::Audit];
        ops.extend((0..CANDIDATES).map(VoteOp::Vote));
        ops
    }

    fn responses(&self) -> Vec<Self::Resp> {
        let mut rs = vec![VoteResp::Accepted];
        rs.extend(self.states().into_iter().map(VoteResp::Tally));
        rs
    }
}

fn cast_votes<I>(imp: &I, ballots: &[(usize, usize)]) -> Vec<u64>
where
    I: hi_concurrent::sim::Implementation<TallySpec>,
{
    let mut exec = Executor::new(imp.clone());
    for &(terminal, candidate) in ballots {
        exec.run_op_solo(Pid(terminal), VoteOp::Vote(candidate), 10_000)
            .unwrap();
    }
    exec.snapshot()
}

fn main() {
    // Two elections with the same final tally [2, 1, 1] but different vote
    // orders and different per-terminal loads ((terminal, candidate) pairs).
    let election_a = [(0, 0), (0, 0), (0, 1), (0, 2)]; // terminal 0 took all ballots
    let election_b = [(1, 2), (0, 1), (1, 0), (0, 0)]; // split across terminals

    println!("== history-independent machine (Algorithm 5) ==");
    let hi_machine = SimUniversal::new(TallySpec, 2);
    let dump_a = cast_votes(&hi_machine, &election_a);
    let dump_b = cast_votes(&hi_machine, &election_b);
    println!("memory dump, election A: {dump_a:?}");
    println!("memory dump, election B: {dump_b:?}");
    assert_eq!(dump_a, dump_b);
    println!("=> identical dumps: the audit learns the tally, not the order\n");

    println!("== leaky machine (prior-work style, keeps op records) ==");
    let leaky_machine = LeakyUniversal::new(TallySpec, 2);
    let dump_a = cast_votes(&leaky_machine, &election_a);
    let dump_b = cast_votes(&leaky_machine, &election_b);
    println!("memory dump, election A: {dump_a:?}");
    println!("memory dump, election B: {dump_b:?}");
    assert_ne!(dump_a, dump_b);
    println!("=> different dumps: per-terminal op counters leak ballot traffic\n");

    // ------------------------------------------------------------------
    // The same custom TallySpec on *real threads*, through the unified
    // `ConcurrentObject` facade: three polling terminals voting
    // concurrently, then a quiescent canonical-memory audit.
    // ------------------------------------------------------------------
    println!("== threaded machine through the ConcurrentObject facade ==");
    let mut machine = UniversalObject::new(TallySpec, 3);
    {
        let handles = machine.handles();
        std::thread::scope(|s| {
            for (terminal, mut h) in handles.into_iter().enumerate() {
                s.spawn(move || {
                    for ballot in 0..3 {
                        h.apply(VoteOp::Vote((terminal + ballot) % CANDIDATES));
                    }
                });
            }
        });
    }
    let tally = machine.abstract_state();
    println!("final tally  : {tally:?}");
    println!("memory dump  : {:?}", machine.mem_snapshot());
    assert_eq!(tally.iter().sum::<u64>(), 9, "all nine ballots counted");
    assert_eq!(
        Some(machine.mem_snapshot()),
        machine.canonical(&tally),
        "quiescent memory is canonical"
    );
    println!("=> nine concurrent ballots, canonical memory, no order leaked");
}
