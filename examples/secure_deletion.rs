//! Secure deletion via history independence.
//!
//! The paper's related work cites file systems and databases (HIFS,
//! Ficklebase) where *deleted data must be unrecoverable from a memory
//! image*. This example models a tiny block store: a map from file slots to
//! content tags, run through the wait-free HI universal construction. After
//! deletion, the store's memory is byte-identical to one that never held
//! the file — no forensic recovery — while a conventional (leaky) store
//! still betrays the deletion.
//!
//! ```sh
//! cargo run --example secure_deletion
//! ```

use hi_concurrent::sim::{Executor, Pid};
use hi_concurrent::universal::{LeakyUniversal, SimUniversal};
use hi_core::objects::{MapOp, MapSpec};

fn main() {
    // 3 file slots, content tags 1..=3.
    let spec = MapSpec::new(3, 3);

    println!("== history-independent block store (Algorithm 5) ==");
    let store = SimUniversal::new(spec, 2);

    // Device A: user stores a secret in slot 2, then securely deletes it,
    // then writes a public file into slot 1.
    let mut device_a = Executor::new(store.clone());
    device_a
        .run_op_solo(Pid(0), MapOp::Put(2, 3), 10_000)
        .unwrap(); // secret
    device_a
        .run_op_solo(Pid(0), MapOp::Delete(2), 10_000)
        .unwrap(); // shred
    device_a
        .run_op_solo(Pid(1), MapOp::Put(1, 2), 10_000)
        .unwrap(); // public

    // Device B: only ever held the public file.
    let mut device_b = Executor::new(store.clone());
    device_b
        .run_op_solo(Pid(1), MapOp::Put(1, 2), 10_000)
        .unwrap();

    println!(
        "image of device A (secret written, then shredded): {:?}",
        device_a.snapshot()
    );
    println!(
        "image of device B (never held the secret)        : {:?}",
        device_b.snapshot()
    );
    assert_eq!(device_a.snapshot(), device_b.snapshot());
    println!("=> identical images: the shredded secret is forensically gone\n");

    println!("== conventional store (keeps operation records) ==");
    let leaky = LeakyUniversal::new(spec, 2);
    let mut device_a = Executor::new(leaky.clone());
    device_a
        .run_op_solo(Pid(0), MapOp::Put(2, 3), 10_000)
        .unwrap();
    device_a
        .run_op_solo(Pid(0), MapOp::Delete(2), 10_000)
        .unwrap();
    device_a
        .run_op_solo(Pid(1), MapOp::Put(1, 2), 10_000)
        .unwrap();
    let mut device_b = Executor::new(leaky.clone());
    device_b
        .run_op_solo(Pid(1), MapOp::Put(1, 2), 10_000)
        .unwrap();
    println!("image of device A: {:?}", device_a.snapshot());
    println!("image of device B: {:?}", device_b.snapshot());
    assert_ne!(device_a.snapshot(), device_b.snapshot());
    println!("=> the operation counters show device A did *something* twice more —");
    println!("   enough for an examiner to contradict \"nothing was ever stored here\"");
}
