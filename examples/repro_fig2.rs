//! Reproduces **Figure 2** of the paper: the two linearization scenarios in
//! the proof of Theorem 12 (Algorithm 4), where one read is served from `A`
//! and another from the helping array `B`.
//!
//! Scenario (a): a read from `A` completes before a read that is later
//! served from `B`. Scenario (b): the reverse order. In both cases the
//! produced history must linearize respecting real time — which we verify
//! with the checker rather than on paper.
//!
//! ```sh
//! cargo run --example repro_fig2
//! ```

use hi_concurrent::registers::WaitFreeHiRegister;
use hi_concurrent::sim::{Executor, Pid};
use hi_concurrent::spec::{linearize, LinOptions};
use hi_core::objects::RegisterOp;

const W: Pid = Pid(0);
const R: Pid = Pid(1);
const K: u64 = 4;

/// Completes a read while a hostile writer keeps dodging the scan — forcing
/// the read through the `B` fallback (Lemma 10's scenario).
fn forced_b_read(exec: &mut Executor<hi_core::objects::MultiRegisterSpec, WaitFreeHiRegister>) {
    exec.invoke(R, RegisterOp::Read);
    let mut next = K;
    while exec.can_step(R) {
        if exec.step(R).is_some() {
            break;
        }
        exec.run_op_solo(W, RegisterOp::Write(next), 10_000)
            .unwrap();
        next = if next == 1 { K } else { 1 };
    }
}

fn b_events(
    exec: &Executor<hi_core::objects::MultiRegisterSpec, WaitFreeHiRegister>,
) -> Vec<String> {
    exec.trace()
        .map(|t| {
            t.events()
                .iter()
                .filter(|e| exec.mem().name(e.cell).starts_with('B'))
                .map(|e| e.render(exec.mem()))
                .collect()
        })
        .unwrap_or_default()
}

fn main() {
    println!("Figure 2 — reads from A and reads from B linearize consistently\n");

    // ---------------- Scenario (a): read-from-A, then read-from-B ----------
    let imp = WaitFreeHiRegister::new(K, 1);
    let mut exec = Executor::new(imp);
    exec.enable_trace();
    exec.run_op_solo(W, RegisterOp::Write(2), 10_000).unwrap();
    exec.run_op_solo(R, RegisterOp::Read, 10_000).unwrap(); // R1: served from A
    forced_b_read(&mut exec); // R2: served from B under write pressure
    println!("scenario (a): R1 from A, then R2 from B. B-array traffic:");
    for line in b_events(&exec) {
        println!("  {line}");
    }
    let lin = linearize(exec.spec(), exec.history(), &LinOptions::default())
        .expect("scenario (a) must linearize");
    println!("  linearization order: {:?}\n", lin.order);

    // ---------------- Scenario (b): read-from-B, then read-from-A ----------
    let imp = WaitFreeHiRegister::new(K, 1);
    let mut exec = Executor::new(imp);
    exec.enable_trace();
    forced_b_read(&mut exec); // R1: served from B
    exec.run_op_solo(R, RegisterOp::Read, 10_000).unwrap(); // R2: served from A
    println!("scenario (b): R1 from B, then R2 from A. B-array traffic:");
    for line in b_events(&exec) {
        println!("  {line}");
    }
    let lin = linearize(exec.spec(), exec.history(), &LinOptions::default())
        .expect("scenario (b) must linearize");
    println!("  linearization order: {:?}", lin.order);

    println!("\nboth orders produce linearizable histories, as Theorem 12 proves.");
}
