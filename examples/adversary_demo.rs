//! The §5 impossibility adversary, live.
//!
//! Watch the Lemma 16 construction starve Algorithm 2's reader for as long
//! as you like, fail against Algorithm 4, and starve the positional queue's
//! `Peek` (Theorem 20).
//!
//! ```sh
//! cargo run --example adversary_demo [rounds]
//! ```

use hi_concurrent::lowerbound::{run_adversary, CtScript, QueuePeekScript, Verdict};
use hi_concurrent::queue::PositionalQueue;
use hi_concurrent::registers::{LockFreeHiRegister, WaitFreeHiRegister};
use hi_core::objects::{BoundedQueueSpec, MultiRegisterSpec};

fn main() {
    let rounds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);

    println!("Lemma 16 adversary, {rounds} round budget\n");

    let k = 4;
    println!("-- Algorithm 2 (lock-free state-quiescent HI register, K = {k}) --");
    let report = run_adversary(
        &LockFreeHiRegister::new(k, 1),
        &CtScript::new(MultiRegisterSpec::new(k, 1)),
        rounds,
        100_000,
    )
    .unwrap();
    println!(
        "verdict: {:?} after {} rounds ({} forked executions, small bases: {})",
        report.verdict, report.rounds, report.executions, report.bases_smaller_than_classes
    );
    assert_eq!(report.verdict, Verdict::Starved);
    println!("=> the read is still pending after {rounds} rounds; Theorem 17 says it never ends\n");

    println!("-- Algorithm 4 (wait-free quiescent HI register, K = {k}) --");
    let report = run_adversary(
        &WaitFreeHiRegister::new(k, 1),
        &CtScript::new(MultiRegisterSpec::new(k, 1)),
        rounds,
        100_000,
    )
    .unwrap();
    match &report.verdict {
        Verdict::Diverged {
            round,
            solo_outcomes,
        } => {
            println!("executions diverged in round {round}: the reader's flag write broke");
            println!("the adversary's canonical-memory assumption; solo completions:");
            for (i, out) in solo_outcomes.iter().enumerate() {
                println!("  execution {i}: {}", out.as_deref().unwrap_or("(pending)"));
            }
        }
        other => println!("verdict: {other:?}"),
    }
    println!("=> wait-freedom wins, at the cost of only quiescent HI (Table 1)\n");

    let t = 3;
    println!("-- Positional queue with Peek (state-quiescent HI, t = {t}) --");
    let report = run_adversary(
        &PositionalQueue::new(t, 2),
        &QueuePeekScript::new(BoundedQueueSpec::new(t, 2)),
        rounds,
        100_000,
    )
    .unwrap();
    println!(
        "verdict: {:?} after {} rounds",
        report.verdict, report.rounds
    );
    assert_eq!(report.verdict, Verdict::Starved);
    println!("=> Peek starves (Theorem 20)");
}
