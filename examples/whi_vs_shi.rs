//! Weak vs. strong history independence, exactly (paper §1 and §2).
//!
//! The paper's opening example: a set that stores each inserted item at a
//! freshly-chosen random location is *weakly* HI (one memory dump reveals
//! only the contents) but not *strongly* HI (an observer who dumps memory
//! twice can tell an item was removed and re-inserted, because it may have
//! moved). This example computes the distributions **exactly** — every coin
//! flip enumerated, probabilities as rationals — rather than sampling.
//!
//! ```sh
//! cargo run --example whi_vs_shi
//! ```

use hi_concurrent::randomized::{
    check_shi, check_whi, joint_distribution, CanonicalSlotSet, RandomSlotSet, SetOp,
};

fn main() {
    let set = RandomSlotSet::new(2, 3); // elements {1,2}, 3 memory slots

    println!("== weak HI: one memory dump ==");
    let direct = vec![SetOp::Insert(1)];
    let reinserted = vec![SetOp::Insert(1), SetOp::Remove(1), SetOp::Insert(1)];
    println!("history A: {direct:?}");
    println!("history B: {reinserted:?}");
    let d_a = joint_distribution(&set, &direct, &[direct.len()]);
    let d_b = joint_distribution(&set, &reinserted, &[reinserted.len()]);
    println!("final-memory distribution under A:");
    let mut rows: Vec<_> = d_a.iter().collect();
    rows.sort_by_key(|(mem, _)| format!("{mem:?}"));
    for (mem, p) in rows {
        println!("  {mem:?} with probability {p}");
    }
    println!("final-memory distribution under B:");
    let mut rows: Vec<_> = d_b.iter().collect();
    rows.sort_by_key(|(mem, _)| format!("{mem:?}"));
    for (mem, p) in rows {
        println!("  {mem:?} with probability {p}");
    }
    check_whi(&set, &direct, &reinserted).expect("WHI holds");
    println!("=> identical: a single dump cannot distinguish the histories\n");

    println!("== strong HI: two memory dumps ==");
    let once = (direct.clone(), vec![1, 1]);
    let twice = (reinserted.clone(), vec![1, 3]);
    println!("observer looks after the first insert and at the end");
    match check_shi(&set, &once, &twice) {
        Err(v) => {
            println!("VIOLATION: {v}");
            println!("=> under A the two dumps always match; under B the item moved");
            println!("   with probability 2/3 — re-insertion is detectable (not SHI)");
        }
        Ok(()) => unreachable!("random placement cannot be strongly HI"),
    }

    println!("\n== the deterministic fix ==");
    let canonical = CanonicalSlotSet::new(2);
    check_whi(&canonical, &direct, &reinserted).expect("WHI");
    check_shi(&canonical, &(direct, vec![1, 1]), &(reinserted, vec![1, 3])).expect("SHI");
    println!("the canonical set (element e in slot e) passes both checks —");
    println!("for deterministic implementations WHI = SHI = canonical (Prop. 3),");
    println!("which is why the concurrent constructions in this repo are canonical.");
}
