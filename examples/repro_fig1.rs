//! Reproduces **Figure 1** of the paper: the three history-independence
//! definitions differ in *where* the observer may examine the memory.
//!
//! We run Algorithm 4 (K = 4) through the figure's execution shape — a
//! completed write, a read overlapping a second write — and show at each of
//! the four observation points which models permit inspection and what the
//! observer sees.
//!
//! ```sh
//! cargo run --example repro_fig1
//! ```

use hi_concurrent::registers::WaitFreeHiRegister;
use hi_concurrent::sim::{Executor, Pid};
use hi_concurrent::spec::ObservationModel;
use hi_core::objects::RegisterOp;

const W: Pid = Pid(0);
const R: Pid = Pid(1);

fn report_point(
    label: &str,
    exec: &Executor<hi_core::objects::MultiRegisterSpec, WaitFreeHiRegister>,
) {
    let snap = exec.snapshot();
    let perfect = ObservationModel::Perfect.permits(exec);
    let state_q = ObservationModel::StateQuiescent.permits(exec);
    let quiescent = ObservationModel::Quiescent.permits(exec);
    println!(
        "point {label}: mem = {}\n         observers allowed: perfect={perfect} state-quiescent={state_q} quiescent={quiescent}",
        exec.mem().render_snapshot(&snap),
    );
}

fn main() {
    println!("Figure 1 — observation points of the three HI definitions\n");
    let imp = WaitFreeHiRegister::new(4, 1);
    let mut exec = Executor::new(imp);

    // w completes Write(1): the execution's first quiescent point.
    exec.run_op_solo(W, RegisterOp::Write(1), 10_000).unwrap();
    report_point("(1) after Write(1) returns        ", &exec);

    // r begins a Read (announces itself): state-quiescent but not quiescent.
    exec.invoke(R, RegisterOp::Read);
    exec.step(R); // flag[1] <- 1
    report_point("(2) Read pending, no write pending", &exec);

    // w begins Write(2) and stops mid-operation: only perfect observers may
    // look now.
    exec.invoke(W, RegisterOp::Write(2));
    for _ in 0..4 {
        exec.step(W);
    }
    report_point("(3) Write(2) mid-flight           ", &exec);

    // Both complete: quiescent again.
    while exec.can_step(W) {
        exec.step(W);
    }
    while exec.can_step(R) {
        exec.step(R);
    }
    report_point("(4) all operations returned       ", &exec);

    println!("\nperfect HI would require canonical memory even at (3) — Proposition 14");
    println!("rules that out for this object; Algorithm 4 delivers canonicity at (1)/(4)");
    println!("(quiescent HI), and its flag write at (2) is why it is *not*");
    println!("state-quiescent HI — exactly the Figure 1 hierarchy.");
}
