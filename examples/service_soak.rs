//! A tour of the service harness: every scenario in
//! `hi_service::soak_registry()` — the HI hash table under Zipfian skew,
//! the perfect-HI set, the positional queue and the universal construction
//! under bursty arrivals — soaked through sharded bounded `mpsc` queues
//! with mid-soak drain-barrier HI audits and tail-latency histograms.
//!
//! ```sh
//! cargo run --release --example service_soak
//! ```

use hi_concurrent::service::{soak_registry, SoakConfig};

fn main() {
    let cfg = SoakConfig {
        total_ops: 20_000,
        seed: 0xda7a,
        ..SoakConfig::default()
    };
    println!(
        "{:32} {:>7} {:>7} {:>10} {:>10} {:>10}  about",
        "scenario", "ops", "audits", "p50(ns)", "p99(ns)", "max(ns)"
    );
    println!("{}", "-".repeat(118));
    for scenario in soak_registry() {
        let report = scenario
            .run(&cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        let s = report.latency.summary();
        println!(
            "{:32} {:>7} {:>7} {:>10} {:>10} {:>10}  {}",
            scenario.name,
            report.ops_applied,
            report.audits.len(),
            s.p50,
            s.p99,
            s.max,
            scenario.about
        );
    }
    println!(
        "\nEach soak ran 32 logical clients over one worker per role, through\n\
         bounded ingress queues with hash-sharded dispatch. At every epoch\n\
         boundary the harness drained the object state-quiescent (enforced by\n\
         the borrow checker, not timing) and verified mem(C) equals the\n\
         canonical representation of the decoded abstract state — the paper's\n\
         history-independence audit, running mid-soak under service load."
    );
}
