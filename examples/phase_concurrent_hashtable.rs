//! The prior art the paper builds beyond: a phase-concurrent
//! history-independent hash table (Shun–Blelloch style, the paper's
//! reference [42]).
//!
//! Robin-Hood probing with a deterministic tie-break makes the array a pure
//! function of the key set — whatever the insertion order and whatever
//! interleaving the concurrent insert phase takes. The demo inserts the same
//! key set three ways (two shuffled sequential orders, one 4-thread
//! concurrent phase) and shows bit-identical memory; a tombstone table shows
//! why naive deletion leaks.
//!
//! The limitation the paper's Algorithm 5 removes: only same-type operations
//! may run concurrently here (insert phases, lookup phases); mixed-type
//! concurrency requires the universal construction.
//!
//! ```sh
//! cargo run --example phase_concurrent_hashtable
//! ```

use hi_concurrent::hashtable::{AtomicHashTable, HiHashTable, TombstoneHashTable};

fn main() {
    let keys = [12u32, 45, 7, 33, 91, 28, 64, 5];

    println!("== same set, three construction histories ==");
    let mut forward = HiHashTable::new(16);
    for &k in &keys {
        forward.insert(k);
    }
    let mut backward = HiHashTable::new(16);
    for &k in keys.iter().rev() {
        backward.insert(k);
    }
    let concurrent = AtomicHashTable::new(16);
    std::thread::scope(|s| {
        for chunk in keys.chunks(2) {
            let t = &concurrent;
            s.spawn(move || {
                for &k in chunk {
                    t.insert(k);
                }
            });
        }
    });
    println!("sequential, forward : {:?}", forward.memory());
    println!("sequential, backward: {:?}", backward.memory());
    println!("concurrent, 4 threads: {:?}", concurrent.memory());
    assert_eq!(forward.memory(), backward.memory());
    assert_eq!(forward.memory(), &concurrent.memory()[..]);
    println!("=> one canonical layout, however it was built\n");

    println!("== deletion: backward shift vs tombstones ==");
    let mut hi = HiHashTable::new(16);
    let mut leaky = TombstoneHashTable::new(16);
    for &k in &keys {
        hi.insert(k);
        leaky.insert(k);
    }
    hi.insert(200);
    hi.remove(200);
    leaky.insert(200);
    leaky.remove(200);
    let mut hi_direct = HiHashTable::new(16);
    let mut leaky_direct = TombstoneHashTable::new(16);
    for &k in &keys {
        hi_direct.insert(k);
        leaky_direct.insert(k);
    }
    println!("HI table after insert+delete of 200 : {:?}", hi.memory());
    println!(
        "HI table that never saw 200         : {:?}",
        hi_direct.memory()
    );
    assert_eq!(hi.memory(), hi_direct.memory());
    println!("tombstone table after insert+delete : {:?}", leaky.memory());
    println!(
        "tombstone table that never saw 200  : {:?}",
        leaky_direct.memory()
    );
    assert_ne!(leaky.memory(), leaky_direct.memory());
    println!(
        "=> the tombstone (value {}) marks the grave of the deleted key",
        u32::MAX
    );
}
