#![forbid(unsafe_code)]
//! Umbrella crate for the history-independent concurrent objects workspace.
//!
//! This crate re-exports the workspace's public API so that examples,
//! integration tests and downstream users need a single dependency. The
//! pieces:
//!
//! * [`api`] — the unified [`ConcurrentObject`](hi_api::ConcurrentObject)
//!   facade over every threaded backend, with the generic
//!   [`drive`](hi_api::drive()) stress/HI-audit driver and the scenario
//!   [`registry`](hi_api::registry()).
//! * [`core`] — abstract objects `(Q, q0, O, R, Δ)`, histories, the `C_t`
//!   class and canonical-representation bookkeeping.
//! * [`sim`] — a deterministic asynchronous shared-memory simulator whose
//!   configurations and `mem(C)` snapshots match the paper's model exactly.
//! * [`spec`] — linearizability and history-independence checkers, a
//!   bounded exhaustive schedule explorer, and the
//!   [`SimObject`](hi_spec::SimObject) facade with its generic
//!   [`check_sim_object`](hi_spec::check_sim_object) driver — the
//!   simulator twin of [`api`]'s threaded surface.
//! * [`registers`] — Algorithms 1–4 of the paper (Vidyasankar's register,
//!   the lock-free state-quiescent HI register, the wait-free quiescent HI
//!   register), the max register and the perfect-HI set.
//! * [`queue`] — a lock-free state-quiescent HI queue with `Peek`.
//! * [`llsc`] — Algorithm 6: a lock-free perfect-HI releasable LL/SC object
//!   from atomic CAS.
//! * [`universal`] — Algorithm 5: the wait-free state-quiescent HI universal
//!   construction, plus baselines.
//! * [`hashtable`] — HI hash tables: the sequential canonical Robin Hood
//!   table, the phase-concurrent table of [42], and the phase-free
//!   concurrent table (arXiv:2503.21016 direction) with its simulator twin.
//! * [`shard`] — scale-out: the sharded table-of-tables with per-shard
//!   seqlocks and **online resize** (capacity as part of the canonical
//!   representation, never-absent in-place migration), plus its simulator
//!   twin with a composed per-shard `DirectCanonical` audit.
//! * [`lowerbound`] — the executable §5.2/§5.4 impossibility adversaries.
//! * [`service`] — the heavy-traffic service harness: sharded `mpsc`
//!   ingress over any [`ConcurrentObject`](hi_api::ConcurrentObject),
//!   drain-barrier mid-soak HI audits, online (mid-flight) HI probes on
//!   perfect-HI backends, and per-span tail-latency histograms over the
//!   [`soak_registry`](hi_service::soak_registry) scenarios.
//! * [`bench`] — the log-scale latency histogram, the revision-keyed
//!   `BENCH_*.json` writers, and the cross-PR latency
//!   [`delta`](hi_bench::delta) gate behind the `bench_delta` CLI.
//!
//! # Quickstart
//!
//! ```
//! use hi_concurrent::registers::waitfree::WaitFreeHiRegister;
//! use hi_concurrent::sim::{Executor, Pid};
//! use hi_core::objects::RegisterOp;
//!
//! // A wait-free quiescent-HI 5-valued register from binary registers
//! // (Algorithm 4), run in the simulator.
//! let imp = WaitFreeHiRegister::new(5, 1);
//! let mut exec = Executor::new(imp);
//! exec.run_op_solo(Pid(0), RegisterOp::Write(4), 1_000).unwrap();
//! let resp = exec.run_op_solo(Pid(1), RegisterOp::Read, 1_000).unwrap();
//! assert_eq!(resp, hi_core::objects::RegisterResp::Value(4));
//! ```

pub use hi_api as api;
pub use hi_bench as bench;
pub use hi_core as core;
pub use hi_hashtable as hashtable;
pub use hi_llsc as llsc;
pub use hi_lowerbound as lowerbound;
pub use hi_queue as queue;
pub use hi_randomized as randomized;
pub use hi_registers as registers;
pub use hi_service as service;
pub use hi_shard as shard;
pub use hi_sim as sim;
pub use hi_spec as spec;
pub use hi_universal as universal;
