//! Algorithms 2 + 3: the lock-free state-quiescent HI SWSR multi-valued
//! register from binary registers.
//!
//! The writer behaves like Algorithm 1 but additionally clears *upwards*
//! (`v+1 .. K`), so whenever no write is pending the array has exactly one 1
//! — the canonical representation. The price: a reader overlapping a stream
//! of writes may find no 1 in its scan (`TryRead` returns ⊥, Algorithm 3)
//! and must retry, so reads are lock-free rather than wait-free. This is
//! exactly the trade-off cell of Table 1 row 2.

use hi_core::objects::{MultiRegisterSpec, RegisterOp, RegisterResp};
use hi_core::{HiLevel, Pid, Progress, Roles};
use hi_sim::{CellDomain, CellId, Implementation, MemCtx, ProcessHandle, SharedMem};
use hi_spec::{ObservationModel, SimAudit, SimObject};

use crate::Role;

/// Algorithms 2+3. pid 0 writes (wait-free), pid 1 reads (lock-free).
/// State-quiescent HI.
#[derive(Clone, Debug)]
pub struct LockFreeHiRegister {
    spec: MultiRegisterSpec,
    a: Vec<CellId>,
    mem: SharedMem,
}

impl LockFreeHiRegister {
    /// Creates a `K`-valued register with initial value `v0`: binary cells
    /// `A[1..=K]`, `A[v0] = 1`.
    pub fn new(k: u64, v0: u64) -> Self {
        let spec = MultiRegisterSpec::new(k, v0);
        let mut mem = SharedMem::new();
        let a: Vec<CellId> = (1..=k)
            .map(|v| mem.alloc(format!("A[{v}]"), CellDomain::Binary, u64::from(v == v0)))
            .collect();
        LockFreeHiRegister { spec, a, mem }
    }

    /// The canonical memory representation of value `v`: all zeros except
    /// `A[v] = 1`.
    pub fn canonical(&self, v: u64) -> Vec<u64> {
        (1..=self.spec.k()).map(|i| u64::from(i == v)).collect()
    }
}

/// Program counter of one Algorithm 2 operation.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Pc {
    Idle,
    /// Line 5: write `A[v] <- 1`.
    WriteSet {
        v: u64,
    },
    /// Line 6: clear downwards, `j` from `v-1` to 1.
    WriteClearDown {
        v: u64,
        j: u64,
    },
    /// Line 7: clear upwards, `j` from `v+1` to `K`.
    WriteClearUp {
        j: u64,
    },
    /// Algorithm 3 lines 1–2: scan up; on reaching `K` without a 1, retry
    /// from index 1 (the lock-free loop of Algorithm 2 lines 2–3).
    ScanUp {
        j: u64,
    },
    /// Algorithm 3 lines 4–5: scan down keeping the smallest 1.
    ScanDown {
        j: u64,
        val: u64,
    },
}

/// The per-process step machine of [`LockFreeHiRegister`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LockFreeHiProcess {
    role: Role,
    k: u64,
    a: Vec<CellId>,
    pc: Pc,
}

impl LockFreeHiProcess {
    fn cell(&self, v: u64) -> CellId {
        self.a[(v - 1) as usize]
    }
}

impl ProcessHandle<MultiRegisterSpec> for LockFreeHiProcess {
    fn invoke(&mut self, op: RegisterOp) {
        assert_eq!(self.pc, Pc::Idle, "operation already pending");
        self.pc = match (self.role, op) {
            (Role::Writer, RegisterOp::Write(v)) => Pc::WriteSet { v },
            (Role::Reader, RegisterOp::Read) => Pc::ScanUp { j: 1 },
            (role, op) => panic!("{role:?} cannot invoke {op:?}"),
        };
    }

    fn is_idle(&self) -> bool {
        self.pc == Pc::Idle
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<RegisterResp> {
        match self.pc.clone() {
            Pc::Idle => panic!("step of idle process"),
            Pc::WriteSet { v } => {
                ctx.write(self.cell(v), 1);
                self.pc = if v > 1 {
                    Pc::WriteClearDown { v, j: v - 1 }
                } else if v < self.k {
                    Pc::WriteClearUp { j: v + 1 }
                } else {
                    Pc::Idle
                };
                (self.pc == Pc::Idle).then_some(RegisterResp::Ack)
            }
            Pc::WriteClearDown { v, j } => {
                ctx.write(self.cell(j), 0);
                self.pc = if j > 1 {
                    Pc::WriteClearDown { v, j: j - 1 }
                } else if v < self.k {
                    Pc::WriteClearUp { j: v + 1 }
                } else {
                    Pc::Idle
                };
                (self.pc == Pc::Idle).then_some(RegisterResp::Ack)
            }
            Pc::WriteClearUp { j } => {
                ctx.write(self.cell(j), 0);
                self.pc = if j < self.k {
                    Pc::WriteClearUp { j: j + 1 }
                } else {
                    Pc::Idle
                };
                (self.pc == Pc::Idle).then_some(RegisterResp::Ack)
            }
            Pc::ScanUp { j } => {
                if ctx.read(self.cell(j)) == 1 {
                    if j == 1 {
                        self.pc = Pc::Idle;
                        Some(RegisterResp::Value(1))
                    } else {
                        self.pc = Pc::ScanDown { j: j - 1, val: j };
                        None
                    }
                } else {
                    // TryRead fails at K: restart (lock-free retry).
                    self.pc = if j < self.k {
                        Pc::ScanUp { j: j + 1 }
                    } else {
                        Pc::ScanUp { j: 1 }
                    };
                    None
                }
            }
            Pc::ScanDown { j, val } => {
                let val = if ctx.read(self.cell(j)) == 1 { j } else { val };
                if j > 1 {
                    self.pc = Pc::ScanDown { j: j - 1, val };
                    None
                } else {
                    self.pc = Pc::Idle;
                    Some(RegisterResp::Value(val))
                }
            }
        }
    }

    fn peeked_cell(&self) -> Option<CellId> {
        match &self.pc {
            Pc::Idle => None,
            Pc::WriteSet { v } => Some(self.cell(*v)),
            Pc::WriteClearDown { j, .. }
            | Pc::WriteClearUp { j }
            | Pc::ScanUp { j }
            | Pc::ScanDown { j, .. } => Some(self.cell(*j)),
        }
    }
}

impl Implementation<MultiRegisterSpec> for LockFreeHiRegister {
    type Process = LockFreeHiProcess;

    fn spec(&self) -> &MultiRegisterSpec {
        &self.spec
    }

    fn num_processes(&self) -> usize {
        2
    }

    fn init_memory(&self) -> SharedMem {
        self.mem.clone()
    }

    fn make_process(&self, pid: Pid) -> LockFreeHiProcess {
        LockFreeHiProcess {
            role: Role::of_pid(pid),
            k: self.spec.k(),
            a: self.a.clone(),
            pc: Pc::Idle,
        }
    }
}

impl SimObject<MultiRegisterSpec> for LockFreeHiRegister {
    type Machine = Self;

    fn spec(&self) -> &MultiRegisterSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::SingleWriterSingleReader
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::StateQuiescent
    }

    fn progress(&self) -> Progress {
        // Algorithm 2: an *active* writer can starve the reader's scan
        // loop, but a static (crashed) writer cannot — the array always
        // contains a 1.
        Progress::LockFree
    }

    fn implementation(&self) -> &Self {
        self
    }

    fn hi_audit(&self) -> SimAudit<MultiRegisterSpec, Self> {
        SimAudit::single_mutator(ObservationModel::StateQuiescent, self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_sim::Executor;

    const W: Pid = Pid(0);
    const R: Pid = Pid(1);

    #[test]
    fn sequential_write_read() {
        let mut exec = Executor::new(LockFreeHiRegister::new(5, 1));
        exec.run_op_solo(W, RegisterOp::Write(3), 100).unwrap();
        assert_eq!(
            exec.run_op_solo(R, RegisterOp::Read, 100).unwrap(),
            RegisterResp::Value(3)
        );
    }

    #[test]
    fn canonical_memory_after_each_write() {
        let imp = LockFreeHiRegister::new(4, 2);
        let mut exec = Executor::new(imp.clone());
        for v in [3, 1, 4, 1, 2] {
            exec.run_op_solo(W, RegisterOp::Write(v), 100).unwrap();
            assert_eq!(exec.snapshot(), imp.canonical(v), "after Write({v})");
        }
    }

    #[test]
    fn no_leak_on_paper_example() {
        // Write(2);Write(1) and Write(1) now leave identical memory.
        let imp = LockFreeHiRegister::new(3, 3);
        let mut e1 = Executor::new(imp.clone());
        e1.run_op_solo(W, RegisterOp::Write(2), 100).unwrap();
        e1.run_op_solo(W, RegisterOp::Write(1), 100).unwrap();
        let mut e2 = Executor::new(imp);
        e2.run_op_solo(W, RegisterOp::Write(1), 100).unwrap();
        assert_eq!(e1.snapshot(), e2.snapshot());
    }

    #[test]
    fn reader_starves_under_hostile_writer() {
        // Keep the register's single 1 one step ahead of the reader's scan
        // cursor: before the reader reads A[j], write any value != j. The
        // read never returns (lock-free, not wait-free) even though the
        // writer completes every write.
        let k = 4;
        let mut exec = Executor::new(LockFreeHiRegister::new(k, 2));
        exec.invoke(R, RegisterOp::Read);
        for round in 0..200u64 {
            // The reader's scan index at round r is (r mod K) + 1; the
            // current value differs from it, so this step reads 0.
            assert!(
                exec.step(R).is_none(),
                "read must not return under this schedule"
            );
            let next_j = (round + 1) % k + 1;
            let dodge = next_j % k + 1;
            exec.run_op_solo(W, RegisterOp::Write(dodge), 100).unwrap();
        }
        assert!(exec.can_step(R), "read still pending after 200 rounds");
    }

    #[test]
    fn writer_is_wait_free_bounded_steps() {
        // A Write takes exactly K steps (set + K-1 clears), independent of
        // the reader: the writer side of Algorithm 2 is wait-free.
        let k = 5;
        let mut exec = Executor::new(LockFreeHiRegister::new(k, 1));
        for v in 1..=k {
            exec.invoke(W, RegisterOp::Write(v));
            let mut steps = 0;
            while exec.can_step(W) {
                exec.step(W);
                steps += 1;
            }
            assert_eq!(steps, k, "Write({v}) must take exactly K primitives");
        }
    }

    #[test]
    fn reader_returns_when_run_solo() {
        // Lock-freedom: once the writer stops, the reader finishes.
        let mut exec = Executor::new(LockFreeHiRegister::new(4, 2));
        exec.invoke(R, RegisterOp::Read);
        exec.step(R); // reads A[1] = 0 while the value is 2
        exec.run_op_solo(W, RegisterOp::Write(4), 100).unwrap();
        let (_, resp) = exec.run_solo(R, 100).unwrap();
        assert_eq!(resp, RegisterResp::Value(4));
    }
}
