//! Algorithm 4: the wait-free quiescent HI SWSR multi-valued register from
//! binary registers.
//!
//! Circumventing Theorem 17 costs history independence strength: the reader
//! *announces itself* (`flag[1] <- 1`) and the writer, on seeing the
//! announcement, *helps* by publishing its previous value `last-val` in a
//! scratch array `B` that the reader may fall back to when two `TryRead`
//! scans of `A` fail. Both sides then carefully erase their footprints
//! (`B`, `flag[1]`, `flag[2]`) so that every *quiescent* configuration is
//! canonical — but configurations with a pending read are not, which is why
//! this implementation is quiescent HI and not state-quiescent HI.

use hi_core::objects::{MultiRegisterSpec, RegisterOp, RegisterResp};
use hi_core::{HiLevel, Pid, Progress, Roles};
use hi_sim::{CellDomain, CellId, Implementation, MemCtx, ProcessHandle, SharedMem};
use hi_spec::{ObservationModel, SimAudit, SimObject};

use crate::Role;

/// Algorithm 4. pid 0 writes, pid 1 reads; both wait-free. Quiescent HI.
#[derive(Clone, Debug)]
pub struct WaitFreeHiRegister {
    spec: MultiRegisterSpec,
    a: Vec<CellId>,
    b: Vec<CellId>,
    flag1: CellId,
    flag2: CellId,
    mem: SharedMem,
}

impl WaitFreeHiRegister {
    /// Creates a `K`-valued register with initial value `v0`. Layout:
    /// `A[1..=K]` (with `A[v0] = 1`), `B[1..=K]` (all 0), `flag[1]`,
    /// `flag[2]` (both 0).
    pub fn new(k: u64, v0: u64) -> Self {
        let spec = MultiRegisterSpec::new(k, v0);
        let mut mem = SharedMem::new();
        let a: Vec<CellId> = (1..=k)
            .map(|v| mem.alloc(format!("A[{v}]"), CellDomain::Binary, u64::from(v == v0)))
            .collect();
        let b: Vec<CellId> = (1..=k)
            .map(|v| mem.alloc(format!("B[{v}]"), CellDomain::Binary, 0))
            .collect();
        let flag1 = mem.alloc("flag[1]", CellDomain::Binary, 0);
        let flag2 = mem.alloc("flag[2]", CellDomain::Binary, 0);
        WaitFreeHiRegister {
            spec,
            a,
            b,
            flag1,
            flag2,
            mem,
        }
    }

    /// The canonical memory representation of value `v`: `A[v] = 1`, all
    /// other cells (rest of `A`, all of `B`, both flags) zero.
    pub fn canonical(&self, v: u64) -> Vec<u64> {
        let k = self.spec.k();
        let mut snap = vec![0u64; (2 * k + 2) as usize];
        snap[(v - 1) as usize] = 1;
        snap
    }
}

/// Writer program counter (Algorithm 4 lines 11–19).
#[derive(Clone, PartialEq, Eq, Debug)]
enum WPc {
    Idle,
    /// Line 11: read `B[j]`, scanning for a non-zero cell.
    CheckB {
        v: u64,
        j: u64,
    },
    /// Line 12: read `flag[1]`.
    ReadFlag1 {
        v: u64,
    },
    /// Line 13: write `B[last-val] <- 1`.
    WriteB {
        v: u64,
    },
    /// Line 14, first conjunct: read `flag[2]`.
    ReadFlag2 {
        v: u64,
    },
    /// Line 14, second conjunct: read `flag[1]` again.
    ReadFlag1Again {
        v: u64,
    },
    /// Line 15: write `B[last-val] <- 0`.
    ClearB {
        v: u64,
    },
    /// Line 16: write `A[v] <- 1`.
    WriteA {
        v: u64,
    },
    /// Line 17: clear `A` downwards.
    ClearDown {
        v: u64,
        j: u64,
    },
    /// Line 18: clear `A` upwards.
    ClearUp {
        v: u64,
        j: u64,
    },
}

/// Reader program counter (Algorithm 4 lines 1–10; `TryRead` is Algorithm 3).
#[derive(Clone, PartialEq, Eq, Debug)]
enum RPc {
    Idle,
    /// Line 1: write `flag[1] <- 1`.
    SetFlag1,
    /// Algorithm 3 scan up, in attempt `it` (1 or 2).
    TryUp {
        it: u8,
        j: u64,
    },
    /// Algorithm 3 scan down.
    TryDown {
        it: u8,
        j: u64,
        val: u64,
    },
    /// Lines 5–6: scan `B` keeping the *largest* index read as 1.
    ScanB {
        j: u64,
        val: Option<u64>,
    },
    /// Line 7: write `flag[2] <- 1`.
    SetFlag2 {
        val: u64,
    },
    /// Line 8: clear `B[j]`.
    ClearB {
        val: u64,
        j: u64,
    },
    /// Line 9 first half: write `flag[1] <- 0`.
    ClearFlag1 {
        val: u64,
    },
    /// Line 9 second half: write `flag[2] <- 0`.
    ClearFlag2 {
        val: u64,
    },
}

/// The per-process step machine of [`WaitFreeHiRegister`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WaitFreeHiProcess {
    role: Role,
    k: u64,
    a: Vec<CellId>,
    b: Vec<CellId>,
    flag1: CellId,
    flag2: CellId,
    /// Writer-local `last-val` (persists across operations; not in `mem(C)`).
    last_val: u64,
    wpc: WPc,
    rpc: RPc,
}

impl WaitFreeHiProcess {
    fn a(&self, v: u64) -> CellId {
        self.a[(v - 1) as usize]
    }

    fn b(&self, v: u64) -> CellId {
        self.b[(v - 1) as usize]
    }

    fn step_writer(&mut self, ctx: &mut MemCtx<'_>) -> Option<RegisterResp> {
        match self.wpc.clone() {
            WPc::Idle => panic!("step of idle writer"),
            WPc::CheckB { v, j } => {
                if ctx.read(self.b(j)) == 1 {
                    // B is non-empty: skip the helping block entirely.
                    self.wpc = WPc::WriteA { v };
                } else if j < self.k {
                    self.wpc = WPc::CheckB { v, j: j + 1 };
                } else {
                    self.wpc = WPc::ReadFlag1 { v };
                }
                None
            }
            WPc::ReadFlag1 { v } => {
                self.wpc = if ctx.read(self.flag1) == 1 {
                    WPc::WriteB { v }
                } else {
                    WPc::WriteA { v }
                };
                None
            }
            WPc::WriteB { v } => {
                ctx.write(self.b(self.last_val), 1);
                self.wpc = WPc::ReadFlag2 { v };
                None
            }
            WPc::ReadFlag2 { v } => {
                self.wpc = if ctx.read(self.flag2) == 1 {
                    WPc::ClearB { v }
                } else {
                    WPc::ReadFlag1Again { v }
                };
                None
            }
            WPc::ReadFlag1Again { v } => {
                self.wpc = if ctx.read(self.flag1) == 0 {
                    WPc::ClearB { v }
                } else {
                    // The reader is still present and not done with B: leave
                    // the help in place.
                    WPc::WriteA { v }
                };
                None
            }
            WPc::ClearB { v } => {
                ctx.write(self.b(self.last_val), 0);
                self.wpc = WPc::WriteA { v };
                None
            }
            WPc::WriteA { v } => {
                ctx.write(self.a(v), 1);
                self.wpc = if v > 1 {
                    WPc::ClearDown { v, j: v - 1 }
                } else if v < self.k {
                    WPc::ClearUp { v, j: v + 1 }
                } else {
                    WPc::Idle
                };
                self.finish_write(v)
            }
            WPc::ClearDown { v, j } => {
                ctx.write(self.a(j), 0);
                self.wpc = if j > 1 {
                    WPc::ClearDown { v, j: j - 1 }
                } else if v < self.k {
                    WPc::ClearUp { v, j: v + 1 }
                } else {
                    WPc::Idle
                };
                self.finish_write(v)
            }
            WPc::ClearUp { v, j } => {
                ctx.write(self.a(j), 0);
                self.wpc = if j < self.k {
                    WPc::ClearUp { v, j: j + 1 }
                } else {
                    WPc::Idle
                };
                self.finish_write(v)
            }
        }
    }

    fn finish_write(&mut self, v: u64) -> Option<RegisterResp> {
        if self.wpc == WPc::Idle {
            self.last_val = v; // line 19
            Some(RegisterResp::Ack)
        } else {
            None
        }
    }

    fn step_reader(&mut self, ctx: &mut MemCtx<'_>) -> Option<RegisterResp> {
        match self.rpc.clone() {
            RPc::Idle => panic!("step of idle reader"),
            RPc::SetFlag1 => {
                ctx.write(self.flag1, 1);
                self.rpc = RPc::TryUp { it: 1, j: 1 };
                None
            }
            RPc::TryUp { it, j } => {
                if ctx.read(self.a(j)) == 1 {
                    self.rpc = if j == 1 {
                        RPc::SetFlag2 { val: 1 }
                    } else {
                        RPc::TryDown {
                            it,
                            j: j - 1,
                            val: j,
                        }
                    };
                } else if j < self.k {
                    self.rpc = RPc::TryUp { it, j: j + 1 };
                } else if it == 1 {
                    // First TryRead returned ⊥: second attempt (line 2).
                    self.rpc = RPc::TryUp { it: 2, j: 1 };
                } else {
                    // Second ⊥: fall back to B (lines 5–6).
                    self.rpc = RPc::ScanB { j: 1, val: None };
                }
                None
            }
            RPc::TryDown { it, j, val } => {
                let val = if ctx.read(self.a(j)) == 1 { j } else { val };
                self.rpc = if j > 1 {
                    RPc::TryDown { it, j: j - 1, val }
                } else {
                    RPc::SetFlag2 { val }
                };
                None
            }
            RPc::ScanB { j, val } => {
                let val = if ctx.read(self.b(j)) == 1 {
                    Some(j)
                } else {
                    val
                };
                self.rpc = if j < self.k {
                    RPc::ScanB { j: j + 1, val }
                } else {
                    // Lemma 10: after two failed TryReads an overlapping
                    // write has published a value in B.
                    let val =
                        val.expect("Lemma 10 violated: no value in B after two failed TryReads");
                    RPc::SetFlag2 { val }
                };
                None
            }
            RPc::SetFlag2 { val } => {
                ctx.write(self.flag2, 1);
                self.rpc = RPc::ClearB { val, j: 1 };
                None
            }
            RPc::ClearB { val, j } => {
                ctx.write(self.b(j), 0);
                self.rpc = if j < self.k {
                    RPc::ClearB { val, j: j + 1 }
                } else {
                    RPc::ClearFlag1 { val }
                };
                None
            }
            RPc::ClearFlag1 { val } => {
                ctx.write(self.flag1, 0);
                self.rpc = RPc::ClearFlag2 { val };
                None
            }
            RPc::ClearFlag2 { val } => {
                ctx.write(self.flag2, 0);
                self.rpc = RPc::Idle;
                Some(RegisterResp::Value(val))
            }
        }
    }
}

impl ProcessHandle<MultiRegisterSpec> for WaitFreeHiProcess {
    fn invoke(&mut self, op: RegisterOp) {
        assert!(self.is_idle(), "operation already pending");
        match (self.role, op) {
            (Role::Writer, RegisterOp::Write(v)) => self.wpc = WPc::CheckB { v, j: 1 },
            (Role::Reader, RegisterOp::Read) => self.rpc = RPc::SetFlag1,
            (role, op) => panic!("{role:?} cannot invoke {op:?}"),
        }
    }

    fn is_idle(&self) -> bool {
        self.wpc == WPc::Idle && self.rpc == RPc::Idle
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<RegisterResp> {
        match self.role {
            Role::Writer => self.step_writer(ctx),
            Role::Reader => self.step_reader(ctx),
        }
    }

    fn peeked_cell(&self) -> Option<CellId> {
        match self.role {
            Role::Writer => match &self.wpc {
                WPc::Idle => None,
                WPc::CheckB { j, .. } => Some(self.b(*j)),
                WPc::ReadFlag1 { .. } | WPc::ReadFlag1Again { .. } => Some(self.flag1),
                WPc::ReadFlag2 { .. } => Some(self.flag2),
                WPc::WriteB { .. } | WPc::ClearB { .. } => Some(self.b(self.last_val)),
                WPc::WriteA { v } => Some(self.a(*v)),
                WPc::ClearDown { j, .. } | WPc::ClearUp { j, .. } => Some(self.a(*j)),
            },
            Role::Reader => match &self.rpc {
                RPc::Idle => None,
                RPc::SetFlag1 | RPc::ClearFlag1 { .. } => Some(self.flag1),
                RPc::SetFlag2 { .. } | RPc::ClearFlag2 { .. } => Some(self.flag2),
                RPc::TryUp { j, .. } | RPc::TryDown { j, .. } => Some(self.a(*j)),
                RPc::ScanB { j, .. } | RPc::ClearB { j, .. } => Some(self.b(*j)),
            },
        }
    }
}

impl Implementation<MultiRegisterSpec> for WaitFreeHiRegister {
    type Process = WaitFreeHiProcess;

    fn spec(&self) -> &MultiRegisterSpec {
        &self.spec
    }

    fn num_processes(&self) -> usize {
        2
    }

    fn init_memory(&self) -> SharedMem {
        self.mem.clone()
    }

    fn make_process(&self, pid: Pid) -> WaitFreeHiProcess {
        WaitFreeHiProcess {
            role: Role::of_pid(pid),
            k: self.spec.k(),
            a: self.a.clone(),
            b: self.b.clone(),
            flag1: self.flag1,
            flag2: self.flag2,
            last_val: self.spec.initial_value(),
            wpc: WPc::Idle,
            rpc: RPc::Idle,
        }
    }
}

impl SimObject<MultiRegisterSpec> for WaitFreeHiRegister {
    type Machine = Self;

    fn spec(&self) -> &MultiRegisterSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::SingleWriterSingleReader
    }

    fn hi_level(&self) -> HiLevel {
        // Pending reads leave announcement footprints: quiescent HI only.
        HiLevel::Quiescent
    }

    fn progress(&self) -> Progress {
        // Algorithm 4: the announcement handshake bounds both roles' steps
        // regardless of the peer, crashed or not.
        Progress::WaitFree
    }

    fn implementation(&self) -> &Self {
        self
    }

    fn hi_audit(&self) -> SimAudit<MultiRegisterSpec, Self> {
        SimAudit::single_mutator(ObservationModel::Quiescent, self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_sim::Executor;

    const W: Pid = Pid(0);
    const R: Pid = Pid(1);

    #[test]
    fn sequential_write_read() {
        let mut exec = Executor::new(WaitFreeHiRegister::new(5, 1));
        exec.run_op_solo(W, RegisterOp::Write(4), 1000).unwrap();
        assert_eq!(
            exec.run_op_solo(R, RegisterOp::Read, 1000).unwrap(),
            RegisterResp::Value(4)
        );
    }

    #[test]
    fn quiescent_memory_is_canonical() {
        let imp = WaitFreeHiRegister::new(4, 2);
        let mut exec = Executor::new(imp.clone());
        for v in [3, 1, 4, 2, 2] {
            exec.run_op_solo(W, RegisterOp::Write(v), 1000).unwrap();
            exec.run_op_solo(R, RegisterOp::Read, 1000).unwrap();
            assert_eq!(exec.snapshot(), imp.canonical(v), "after Write({v}) + Read");
        }
    }

    #[test]
    fn reader_is_wait_free_under_hostile_writer() {
        // The schedule that starves Algorithm 2's reader: alternate writes
        // moving the 1 away from the scan. Algorithm 4's reader must finish
        // anyway (with the writer's help through B).
        let k = 4;
        let mut exec = Executor::new(WaitFreeHiRegister::new(k, 1));
        exec.invoke(R, RegisterOp::Read);
        let mut next = k;
        let mut returned = None;
        for _ in 0..10_000 {
            if let Some((_, resp)) = exec.step(R) {
                returned = Some(resp);
                break;
            }
            exec.run_op_solo(W, RegisterOp::Write(next), 1000).unwrap();
            next = if next == 1 { k } else { 1 };
        }
        let resp = returned.expect("Algorithm 4 read must be wait-free");
        assert!(matches!(resp, RegisterResp::Value(_)));
    }

    #[test]
    fn read_solo_does_not_touch_b_values() {
        // A solo read leaves memory canonical again afterwards.
        let imp = WaitFreeHiRegister::new(3, 2);
        let mut exec = Executor::new(imp.clone());
        exec.run_op_solo(R, RegisterOp::Read, 1000).unwrap();
        assert_eq!(exec.snapshot(), imp.canonical(2));
    }

    #[test]
    fn write_step_count_is_bounded() {
        // Wait-freedom with a concrete bound: a write takes at most
        // K (check B) + 2 (flags) + 2 (B write/clear) + K (A writes) steps.
        let k = 6;
        let mut exec = Executor::new(WaitFreeHiRegister::new(k, 1));
        exec.invoke(W, RegisterOp::Write(3));
        let mut steps = 0u64;
        while exec.can_step(W) {
            exec.step(W);
            steps += 1;
            assert!(steps <= 2 * k + 4, "write exceeded its wait-free bound");
        }
    }
}
