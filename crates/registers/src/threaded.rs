//! Real-thread backends of the register algorithms, on `AtomicU8` cells with
//! sequentially consistent ordering (the paper assumes atomic base
//! registers).
//!
//! The SWSR discipline is enforced by construction: [`split`] borrows the
//! register mutably and hands out exactly one non-cloneable writer handle
//! and one reader handle; both are `Send`, so they can move to threads.
//!
//! [`split`]: AtomicVidyasankar::split

use std::sync::atomic::AtomicU8;

use hi_core::cells::{
    lowest_set, one_hot_bits as alloc_bits, snapshot_bits, zero_bits, CELL_ORD as ORD,
};

/// The two-pass read shared by Algorithm 1's reader and the §5.1 max
/// register's reader: scan up to the first set cell, then rescan down
/// keeping the smallest set index (stale 1s above the smallest are from
/// writes this read overlaps, so the smallest linearizes correctly).
fn scan_smallest_set(a: &[AtomicU8], k: u64, invariant: &str) -> u64 {
    let mut j = 1u64;
    while a[(j - 1) as usize].load(ORD) == 0 {
        j += 1;
        assert!(j <= k, "{invariant}: no 1 in A");
    }
    let mut val = j;
    for j2 in (1..val).rev() {
        if a[(j2 - 1) as usize].load(ORD) == 1 {
            val = j2;
        }
    }
    val
}

macro_rules! swsr_register_shell {
    ($(#[$doc:meta])* $name:ident, $writer:ident, $reader:ident) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            a: Box<[AtomicU8]>,
            k: u64,
        }

        impl $name {
            /// The number of values, `K`.
            pub fn k(&self) -> u64 {
                self.k
            }

            /// `mem(C)` of the `A` array. Only meaningful at quiescent
            /// points of the caller's protocol; reads are atomic per cell
            /// but the vector itself is not an atomic snapshot.
            pub fn snapshot_a(&self) -> Vec<u64> {
                snapshot_bits(&self.a)
            }

            /// The current value, decoded from memory. Only meaningful at
            /// quiescent points, where the smallest set index of `A` is
            /// exactly what a solo reader would return.
            pub fn current_value(&self) -> u64 {
                lowest_set(&self.a).expect("invariant broken: no 1 in A at quiescence")
            }

            /// Splits into the single writer and single reader handles.
            pub fn split(&mut self) -> ($writer<'_>, $reader<'_>) {
                ($writer { reg: self, last_val: 0 }, $reader { reg: self })
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Algorithm 1
// ---------------------------------------------------------------------------

swsr_register_shell! {
    /// Threaded Algorithm 1 (Vidyasankar): wait-free, linearizable, not HI.
    AtomicVidyasankar, VidyasankarWriter, VidyasankarReader
}

impl AtomicVidyasankar {
    /// Creates a `K`-valued register with initial value `v0`.
    pub fn new(k: u64, v0: u64) -> Self {
        assert!(k >= 2 && (1..=k).contains(&v0));
        AtomicVidyasankar {
            a: alloc_bits(k, v0),
            k,
        }
    }
}

/// Writer handle of [`AtomicVidyasankar`].
#[derive(Debug)]
pub struct VidyasankarWriter<'a> {
    reg: &'a AtomicVidyasankar,
    #[allow(dead_code)] // parity with the HI registers' writer state
    last_val: u64,
}

impl VidyasankarWriter<'_> {
    /// `Write(v)`: set `A[v]`, clear downwards.
    pub fn write(&mut self, v: u64) {
        let a = &self.reg.a;
        a[(v - 1) as usize].store(1, ORD);
        for j in (1..v).rev() {
            a[(j - 1) as usize].store(0, ORD);
        }
    }
}

/// Reader handle of [`AtomicVidyasankar`].
#[derive(Debug)]
pub struct VidyasankarReader<'a> {
    reg: &'a AtomicVidyasankar,
}

impl VidyasankarReader<'_> {
    /// `Read()`: scan up to the first 1, then down keeping the smallest 1.
    pub fn read(&mut self) -> u64 {
        scan_smallest_set(&self.reg.a, self.reg.k, "Algorithm 1 invariant broken")
    }
}

// ---------------------------------------------------------------------------
// Algorithm 2
// ---------------------------------------------------------------------------

swsr_register_shell! {
    /// Threaded Algorithms 2+3: writer wait-free, reader lock-free,
    /// state-quiescent HI.
    AtomicLockFreeHi, LockFreeHiWriter, LockFreeHiReader
}

impl AtomicLockFreeHi {
    /// Creates a `K`-valued register with initial value `v0`.
    pub fn new(k: u64, v0: u64) -> Self {
        assert!(k >= 2 && (1..=k).contains(&v0));
        AtomicLockFreeHi {
            a: alloc_bits(k, v0),
            k,
        }
    }
}

/// Writer handle of [`AtomicLockFreeHi`].
#[derive(Debug)]
pub struct LockFreeHiWriter<'a> {
    reg: &'a AtomicLockFreeHi,
    #[allow(dead_code)]
    last_val: u64,
}

impl LockFreeHiWriter<'_> {
    /// `Write(v)`: set `A[v]`, clear downwards, then clear upwards.
    pub fn write(&mut self, v: u64) {
        let a = &self.reg.a;
        a[(v - 1) as usize].store(1, ORD);
        for j in (1..v).rev() {
            a[(j - 1) as usize].store(0, ORD);
        }
        for j in (v + 1)..=self.reg.k {
            a[(j - 1) as usize].store(0, ORD);
        }
    }
}

/// Reader handle of [`AtomicLockFreeHi`].
#[derive(Debug)]
pub struct LockFreeHiReader<'a> {
    reg: &'a AtomicLockFreeHi,
}

impl LockFreeHiReader<'_> {
    /// One `TryRead` attempt (Algorithm 3): `None` means no 1 was found.
    pub fn try_read(&mut self) -> Option<u64> {
        let a = &self.reg.a;
        for j in 1..=self.reg.k {
            if a[(j - 1) as usize].load(ORD) == 1 {
                let mut val = j;
                for j2 in (1..val).rev() {
                    if a[(j2 - 1) as usize].load(ORD) == 1 {
                        val = j2;
                    }
                }
                return Some(val);
            }
        }
        None
    }

    /// `Read()`: retry `TryRead` until it succeeds. Lock-free: may loop while
    /// writes keep overlapping.
    pub fn read(&mut self) -> u64 {
        loop {
            if let Some(val) = self.try_read() {
                return val;
            }
            std::hint::spin_loop();
        }
    }
}

// ---------------------------------------------------------------------------
// Algorithm 4
// ---------------------------------------------------------------------------

/// Threaded Algorithm 4: wait-free, quiescent HI.
#[derive(Debug)]
pub struct AtomicWaitFreeHi {
    a: Box<[AtomicU8]>,
    b: Box<[AtomicU8]>,
    flag1: AtomicU8,
    flag2: AtomicU8,
    k: u64,
}

impl AtomicWaitFreeHi {
    /// Creates a `K`-valued register with initial value `v0`.
    pub fn new(k: u64, v0: u64) -> Self {
        assert!(k >= 2 && (1..=k).contains(&v0));
        AtomicWaitFreeHi {
            a: alloc_bits(k, v0),
            b: zero_bits(k as usize),
            flag1: AtomicU8::new(0),
            flag2: AtomicU8::new(0),
            k,
        }
    }

    /// The number of values, `K`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Full memory snapshot: `A[1..K], B[1..K], flag[1], flag[2]`. Only an
    /// atomic snapshot at quiescent points of the caller's protocol.
    pub fn snapshot(&self) -> Vec<u64> {
        let mut snap = snapshot_bits(&self.a);
        snap.extend(snapshot_bits(&self.b));
        snap.push(u64::from(self.flag1.load(ORD)));
        snap.push(u64::from(self.flag2.load(ORD)));
        snap
    }

    /// The canonical representation of value `v` under [`snapshot`].
    ///
    /// [`snapshot`]: AtomicWaitFreeHi::snapshot
    pub fn canonical(&self, v: u64) -> Vec<u64> {
        let mut snap = vec![0u64; (2 * self.k + 2) as usize];
        snap[(v - 1) as usize] = 1;
        snap
    }

    /// The current value, decoded from memory. Only meaningful at quiescent
    /// points, where `A` holds exactly one 1 (Lemma 12's canonicity).
    pub fn current_value(&self) -> u64 {
        lowest_set(&self.a).expect("invariant broken: no 1 in A at quiescence")
    }

    /// Splits into the single writer and single reader handles. `v0` must be
    /// the last value written (the initial value on a fresh register): the
    /// writer's backup protocol stashes it in `B` when it finds a reader in
    /// trouble.
    pub fn split(&mut self, v0: u64) -> (WaitFreeHiWriter<'_>, WaitFreeHiReader<'_>) {
        (
            WaitFreeHiWriter {
                reg: self,
                last_val: v0,
            },
            WaitFreeHiReader { reg: self },
        )
    }

    /// [`split`](AtomicWaitFreeHi::split) with the last-written value decoded
    /// from the (quiescent) memory, so callers re-splitting mid-lifetime need
    /// no bookkeeping of their own.
    pub fn split_quiescent(&mut self) -> (WaitFreeHiWriter<'_>, WaitFreeHiReader<'_>) {
        let v0 = self.current_value();
        self.split(v0)
    }
}

/// Writer handle of [`AtomicWaitFreeHi`].
#[derive(Debug)]
pub struct WaitFreeHiWriter<'a> {
    reg: &'a AtomicWaitFreeHi,
    last_val: u64,
}

impl WaitFreeHiWriter<'_> {
    /// `Write(v)` (Algorithm 4 lines 11–19).
    pub fn write(&mut self, v: u64) {
        let r = self.reg;
        let b_empty = (1..=r.k).all(|j| r.b[(j - 1) as usize].load(ORD) == 0);
        if b_empty && r.flag1.load(ORD) == 1 {
            r.b[(self.last_val - 1) as usize].store(1, ORD);
            if r.flag2.load(ORD) == 1 || r.flag1.load(ORD) == 0 {
                r.b[(self.last_val - 1) as usize].store(0, ORD);
            }
        }
        r.a[(v - 1) as usize].store(1, ORD);
        for j in (1..v).rev() {
            r.a[(j - 1) as usize].store(0, ORD);
        }
        for j in (v + 1)..=r.k {
            r.a[(j - 1) as usize].store(0, ORD);
        }
        self.last_val = v;
    }
}

/// Reader handle of [`AtomicWaitFreeHi`].
#[derive(Debug)]
pub struct WaitFreeHiReader<'a> {
    reg: &'a AtomicWaitFreeHi,
}

impl WaitFreeHiReader<'_> {
    fn try_read(&self) -> Option<u64> {
        let r = self.reg;
        for j in 1..=r.k {
            if r.a[(j - 1) as usize].load(ORD) == 1 {
                let mut val = j;
                for j2 in (1..val).rev() {
                    if r.a[(j2 - 1) as usize].load(ORD) == 1 {
                        val = j2;
                    }
                }
                return Some(val);
            }
        }
        None
    }

    /// `Read()` (Algorithm 4 lines 1–10): wait-free, at most two `TryRead`s
    /// plus one scan of `B`.
    pub fn read(&mut self) -> u64 {
        let r = self.reg;
        r.flag1.store(1, ORD);
        let mut val = None;
        for _ in 0..2 {
            val = self.try_read();
            if val.is_some() {
                break;
            }
        }
        let val = val.unwrap_or_else(|| {
            let mut from_b = None;
            for j in 1..=r.k {
                if r.b[(j - 1) as usize].load(ORD) == 1 {
                    from_b = Some(j);
                }
            }
            from_b.expect("Lemma 10 violated: no value in B after two failed TryReads")
        });
        r.flag2.store(1, ORD);
        for j in 1..=r.k {
            r.b[(j - 1) as usize].store(0, ORD);
        }
        r.flag1.store(0, ORD);
        r.flag2.store(0, ORD);
        val
    }
}

// ---------------------------------------------------------------------------
// §5.1: the max register
// ---------------------------------------------------------------------------

/// Threaded §5.1 max register: wait-free, state-quiescent HI. The writer
/// only touches `A` when the value exceeds its running maximum (set `A[v]`,
/// clear downwards), so no stale 1s can survive above — at every
/// state-quiescent point exactly `A[max] = 1`.
#[derive(Debug)]
pub struct AtomicMaxRegister {
    a: Box<[AtomicU8]>,
    k: u64,
}

impl AtomicMaxRegister {
    /// Creates a max register over `1..=k` (initial maximum 1).
    pub fn new(k: u64) -> Self {
        assert!(k >= 2, "a max register needs at least two values");
        AtomicMaxRegister {
            a: alloc_bits(k, 1),
            k,
        }
    }

    /// The number of values, `K`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// `mem(C)` of the `A` array (see the SWSR registers' caveat).
    pub fn snapshot_a(&self) -> Vec<u64> {
        snapshot_bits(&self.a)
    }

    /// The canonical memory representation of maximum `m`: one-hot at `m`.
    pub fn canonical(&self, m: u64) -> Vec<u64> {
        (1..=self.k).map(|i| u64::from(i == m)).collect()
    }

    /// The current maximum, decoded from memory. Only meaningful at
    /// state-quiescent points, where `A` holds exactly one 1.
    pub fn current_value(&self) -> u64 {
        lowest_set(&self.a).expect("invariant broken: no 1 in A at quiescence")
    }

    /// Splits into the single writer and single reader handles, rebuilding
    /// the writer's running maximum from the (state-quiescent) memory.
    pub fn split(&mut self) -> (MaxRegisterWriter<'_>, MaxRegisterReader<'_>) {
        let local_max = self.current_value();
        (
            MaxRegisterWriter {
                reg: self,
                local_max,
            },
            MaxRegisterReader { reg: self },
        )
    }
}

/// Writer handle of [`AtomicMaxRegister`].
#[derive(Debug)]
pub struct MaxRegisterWriter<'a> {
    reg: &'a AtomicMaxRegister,
    local_max: u64,
}

impl MaxRegisterWriter<'_> {
    /// `WriteMax(v)`: a no-op unless `v` exceeds the running maximum, else
    /// set `A[v]` and clear downwards.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside `1..=k`.
    pub fn write_max(&mut self, v: u64) {
        assert!(
            (1..=self.reg.k).contains(&v),
            "write of out-of-range value {v}"
        );
        if v <= self.local_max {
            return;
        }
        let a = &self.reg.a;
        a[(v - 1) as usize].store(1, ORD);
        for j in (1..v).rev() {
            a[(j - 1) as usize].store(0, ORD);
        }
        self.local_max = v;
    }
}

/// Reader handle of [`AtomicMaxRegister`].
#[derive(Debug)]
pub struct MaxRegisterReader<'a> {
    reg: &'a AtomicMaxRegister,
}

impl MaxRegisterReader<'_> {
    /// `ReadMax()`: scan up to the first 1, then down keeping the smallest 1
    /// (values below a mid-write pair linearize before the write).
    pub fn read_max(&mut self) -> u64 {
        scan_smallest_set(&self.reg.a, self.reg.k, "max register invariant broken")
    }
}

// ---------------------------------------------------------------------------
// §5.1: the perfect-HI set
// ---------------------------------------------------------------------------

/// Threaded §5.1 set over `{1..=t}`: every operation is a single primitive
/// on one binary cell, from any number of threads, so every reachable
/// configuration's memory is the characteristic vector of the abstract
/// state — *perfect* HI, with nothing to restrict.
#[derive(Debug)]
pub struct AtomicHiSet {
    s: Box<[AtomicU8]>,
    t: u32,
}

impl AtomicHiSet {
    /// Creates an empty set over `{1..=t}`.
    pub fn new(t: u32) -> Self {
        assert!((1..=63).contains(&t), "domain size must be in 1..=63");
        AtomicHiSet {
            s: zero_bits(t as usize),
            t,
        }
    }

    /// The domain size `t`.
    pub fn t(&self) -> u32 {
        self.t
    }

    /// The cell of element `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is outside `1..=t`.
    fn cell(&self, e: u32) -> &AtomicU8 {
        assert!((1..=self.t).contains(&e), "element {e} out of domain");
        &self.s[(e - 1) as usize]
    }

    /// `Insert(e)`: one store.
    pub fn insert(&self, e: u32) {
        self.cell(e).store(1, ORD);
    }

    /// `Remove(e)`: one store.
    pub fn remove(&self, e: u32) {
        self.cell(e).store(0, ORD);
    }

    /// `Contains(e)`: one load.
    pub fn contains(&self, e: u32) -> bool {
        self.cell(e).load(ORD) == 1
    }

    /// `mem(C)`: the characteristic vector.
    pub fn snapshot(&self) -> Vec<u64> {
        snapshot_bits(&self.s)
    }

    /// The canonical representation of a state (bitmask over bits `1..=t`).
    pub fn canonical(&self, state: u64) -> Vec<u64> {
        (1..=self.t)
            .map(|e| u64::from(state & (1 << e) != 0))
            .collect()
    }

    /// The abstract state (bitmask), decoded from memory.
    pub fn decode_state(&self) -> u64 {
        hi_core::cells::mask_of_bits(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn vidyasankar_sequential() {
        let mut reg = AtomicVidyasankar::new(5, 1);
        let (mut w, mut r) = reg.split();
        w.write(4);
        assert_eq!(r.read(), 4);
        w.write(2);
        assert_eq!(r.read(), 2);
    }

    #[test]
    fn lockfree_hi_canonical_after_writes() {
        let mut reg = AtomicLockFreeHi::new(4, 2);
        {
            let (mut w, mut r) = reg.split();
            w.write(3);
            assert_eq!(r.read(), 3);
        }
        assert_eq!(reg.snapshot_a(), vec![0, 0, 1, 0]);
    }

    #[test]
    fn waitfree_hi_canonical_when_quiescent() {
        let mut reg = AtomicWaitFreeHi::new(4, 1);
        {
            let (mut w, mut r) = reg.split(1);
            w.write(3);
            assert_eq!(r.read(), 3);
            w.write(2);
        }
        assert_eq!(reg.snapshot(), reg.canonical(2));
    }

    #[test]
    fn waitfree_hi_concurrent_stress() {
        // A writer thread cycling values races a reader thread doing 2000
        // reads; every read must return an in-domain value (reads are
        // wait-free, so the loop always terminates), and after one final
        // solo write the memory must be canonical.
        let k = 6;
        let mut reg = AtomicWaitFreeHi::new(k, 1);
        let stop = AtomicBool::new(false);
        {
            let (mut w, mut r) = reg.split(1);
            std::thread::scope(|s| {
                s.spawn(|| {
                    let mut round = 0u64;
                    while !stop.load(ORD) {
                        w.write(round % k + 1);
                        round += 1;
                    }
                });
                s.spawn(|| {
                    for _ in 0..2_000 {
                        let v = r.read();
                        assert!((1..=k).contains(&v), "read out-of-range value {v}");
                    }
                    stop.store(true, ORD);
                });
            });
        }
        // A solo write with no concurrent reader never consults last-val,
        // so re-splitting here is sound.
        let (mut w, _r) = reg.split(1);
        w.write(3);
        assert_eq!(reg.snapshot(), reg.canonical(3));
    }

    #[test]
    fn max_register_is_monotone_and_canonical() {
        let mut reg = AtomicMaxRegister::new(6);
        {
            let (mut w, mut r) = reg.split();
            for (write, expect) in [(3, 3), (2, 3), (5, 5), (1, 5)] {
                w.write_max(write);
                assert_eq!(r.read_max(), expect);
            }
        }
        assert_eq!(reg.snapshot_a(), reg.canonical(5));
        assert_eq!(reg.current_value(), 5);
        // Re-splitting rebuilds the running maximum from memory.
        let (mut w, mut r) = reg.split();
        w.write_max(4);
        assert_eq!(r.read_max(), 5, "stale smaller write is a no-op");
    }

    #[test]
    fn max_register_concurrent_reads_stay_in_range() {
        let mut reg = AtomicMaxRegister::new(8);
        {
            let (mut w, mut r) = reg.split();
            std::thread::scope(|s| {
                s.spawn(move || {
                    for v in [3u64, 5, 2, 7, 8] {
                        w.write_max(v);
                    }
                });
                s.spawn(move || {
                    let mut last = 1;
                    for _ in 0..2_000 {
                        let v = r.read_max();
                        assert!((1..=8).contains(&v));
                        assert!(v >= last, "max register went backwards");
                        last = v;
                    }
                });
            });
        }
        assert_eq!(reg.snapshot_a(), reg.canonical(8));
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn max_register_rejects_out_of_domain_writes() {
        let mut reg = AtomicMaxRegister::new(4);
        reg.split().0.write_max(5);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn hi_set_rejects_out_of_domain_elements() {
        AtomicHiSet::new(4).insert(5);
    }

    #[test]
    fn hi_set_every_configuration_is_canonical() {
        let set = AtomicHiSet::new(5);
        std::thread::scope(|s| {
            let set = &set;
            s.spawn(move || {
                for e in [1u32, 3, 5] {
                    set.insert(e);
                }
                set.remove(3);
            });
            s.spawn(move || {
                for e in 1..=5 {
                    set.contains(e);
                }
            });
        });
        assert_eq!(set.snapshot(), set.canonical(set.decode_state()));
        assert!(set.contains(1) && set.contains(5) && !set.contains(3));
        assert_eq!(set.decode_state(), (1 << 1) | (1 << 5));
    }

    #[test]
    fn vidyasankar_leaks_lockfree_does_not() {
        // The §4 leak, on real atomics.
        let mut v1 = AtomicVidyasankar::new(3, 3);
        v1.split().0.write(2);
        v1.split().0.write(1);
        let mut v2 = AtomicVidyasankar::new(3, 3);
        v2.split().0.write(1);
        assert_ne!(v1.snapshot_a(), v2.snapshot_a());

        let mut h1 = AtomicLockFreeHi::new(3, 3);
        h1.split().0.write(2);
        h1.split().0.write(1);
        let mut h2 = AtomicLockFreeHi::new(3, 3);
        h2.split().0.write(1);
        assert_eq!(h1.snapshot_a(), h2.snapshot_a());
    }
}
