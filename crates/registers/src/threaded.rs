//! Real-thread backends of the register algorithms, on `AtomicU8` cells with
//! sequentially consistent ordering (the paper assumes atomic base
//! registers).
//!
//! The SWSR discipline is enforced by construction: [`split`] borrows the
//! register mutably and hands out exactly one non-cloneable writer handle
//! and one reader handle; both are `Send`, so they can move to threads.
//!
//! [`split`]: AtomicVidyasankar::split

use std::sync::atomic::AtomicU8;

use hi_core::cells::{
    lowest_set, one_hot_bits as alloc_bits, snapshot_bits, zero_bits, CELL_ORD as ORD,
};

macro_rules! swsr_register_shell {
    ($(#[$doc:meta])* $name:ident, $writer:ident, $reader:ident) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            a: Box<[AtomicU8]>,
            k: u64,
        }

        impl $name {
            /// The number of values, `K`.
            pub fn k(&self) -> u64 {
                self.k
            }

            /// `mem(C)` of the `A` array. Only meaningful at quiescent
            /// points of the caller's protocol; reads are atomic per cell
            /// but the vector itself is not an atomic snapshot.
            pub fn snapshot_a(&self) -> Vec<u64> {
                snapshot_bits(&self.a)
            }

            /// The current value, decoded from memory. Only meaningful at
            /// quiescent points, where the smallest set index of `A` is
            /// exactly what a solo reader would return.
            pub fn current_value(&self) -> u64 {
                lowest_set(&self.a).expect("invariant broken: no 1 in A at quiescence")
            }

            /// Splits into the single writer and single reader handles.
            pub fn split(&mut self) -> ($writer<'_>, $reader<'_>) {
                ($writer { reg: self, last_val: 0 }, $reader { reg: self })
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Algorithm 1
// ---------------------------------------------------------------------------

swsr_register_shell! {
    /// Threaded Algorithm 1 (Vidyasankar): wait-free, linearizable, not HI.
    AtomicVidyasankar, VidyasankarWriter, VidyasankarReader
}

impl AtomicVidyasankar {
    /// Creates a `K`-valued register with initial value `v0`.
    pub fn new(k: u64, v0: u64) -> Self {
        assert!(k >= 2 && (1..=k).contains(&v0));
        AtomicVidyasankar {
            a: alloc_bits(k, v0),
            k,
        }
    }
}

/// Writer handle of [`AtomicVidyasankar`].
#[derive(Debug)]
pub struct VidyasankarWriter<'a> {
    reg: &'a AtomicVidyasankar,
    #[allow(dead_code)] // parity with the HI registers' writer state
    last_val: u64,
}

impl VidyasankarWriter<'_> {
    /// `Write(v)`: set `A[v]`, clear downwards.
    pub fn write(&mut self, v: u64) {
        let a = &self.reg.a;
        a[(v - 1) as usize].store(1, ORD);
        for j in (1..v).rev() {
            a[(j - 1) as usize].store(0, ORD);
        }
    }
}

/// Reader handle of [`AtomicVidyasankar`].
#[derive(Debug)]
pub struct VidyasankarReader<'a> {
    reg: &'a AtomicVidyasankar,
}

impl VidyasankarReader<'_> {
    /// `Read()`: scan up to the first 1, then down keeping the smallest 1.
    pub fn read(&mut self) -> u64 {
        let a = &self.reg.a;
        let mut j = 1u64;
        while a[(j - 1) as usize].load(ORD) == 0 {
            j += 1;
            assert!(j <= self.reg.k, "Algorithm 1 invariant broken: no 1 in A");
        }
        let mut val = j;
        for j in (1..val).rev() {
            if a[(j - 1) as usize].load(ORD) == 1 {
                val = j;
            }
        }
        val
    }
}

// ---------------------------------------------------------------------------
// Algorithm 2
// ---------------------------------------------------------------------------

swsr_register_shell! {
    /// Threaded Algorithms 2+3: writer wait-free, reader lock-free,
    /// state-quiescent HI.
    AtomicLockFreeHi, LockFreeHiWriter, LockFreeHiReader
}

impl AtomicLockFreeHi {
    /// Creates a `K`-valued register with initial value `v0`.
    pub fn new(k: u64, v0: u64) -> Self {
        assert!(k >= 2 && (1..=k).contains(&v0));
        AtomicLockFreeHi {
            a: alloc_bits(k, v0),
            k,
        }
    }
}

/// Writer handle of [`AtomicLockFreeHi`].
#[derive(Debug)]
pub struct LockFreeHiWriter<'a> {
    reg: &'a AtomicLockFreeHi,
    #[allow(dead_code)]
    last_val: u64,
}

impl LockFreeHiWriter<'_> {
    /// `Write(v)`: set `A[v]`, clear downwards, then clear upwards.
    pub fn write(&mut self, v: u64) {
        let a = &self.reg.a;
        a[(v - 1) as usize].store(1, ORD);
        for j in (1..v).rev() {
            a[(j - 1) as usize].store(0, ORD);
        }
        for j in (v + 1)..=self.reg.k {
            a[(j - 1) as usize].store(0, ORD);
        }
    }
}

/// Reader handle of [`AtomicLockFreeHi`].
#[derive(Debug)]
pub struct LockFreeHiReader<'a> {
    reg: &'a AtomicLockFreeHi,
}

impl LockFreeHiReader<'_> {
    /// One `TryRead` attempt (Algorithm 3): `None` means no 1 was found.
    pub fn try_read(&mut self) -> Option<u64> {
        let a = &self.reg.a;
        for j in 1..=self.reg.k {
            if a[(j - 1) as usize].load(ORD) == 1 {
                let mut val = j;
                for j2 in (1..val).rev() {
                    if a[(j2 - 1) as usize].load(ORD) == 1 {
                        val = j2;
                    }
                }
                return Some(val);
            }
        }
        None
    }

    /// `Read()`: retry `TryRead` until it succeeds. Lock-free: may loop while
    /// writes keep overlapping.
    pub fn read(&mut self) -> u64 {
        loop {
            if let Some(val) = self.try_read() {
                return val;
            }
            std::hint::spin_loop();
        }
    }
}

// ---------------------------------------------------------------------------
// Algorithm 4
// ---------------------------------------------------------------------------

/// Threaded Algorithm 4: wait-free, quiescent HI.
#[derive(Debug)]
pub struct AtomicWaitFreeHi {
    a: Box<[AtomicU8]>,
    b: Box<[AtomicU8]>,
    flag1: AtomicU8,
    flag2: AtomicU8,
    k: u64,
}

impl AtomicWaitFreeHi {
    /// Creates a `K`-valued register with initial value `v0`.
    pub fn new(k: u64, v0: u64) -> Self {
        assert!(k >= 2 && (1..=k).contains(&v0));
        AtomicWaitFreeHi {
            a: alloc_bits(k, v0),
            b: zero_bits(k as usize),
            flag1: AtomicU8::new(0),
            flag2: AtomicU8::new(0),
            k,
        }
    }

    /// The number of values, `K`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Full memory snapshot: `A[1..K], B[1..K], flag[1], flag[2]`. Only an
    /// atomic snapshot at quiescent points of the caller's protocol.
    pub fn snapshot(&self) -> Vec<u64> {
        let mut snap = snapshot_bits(&self.a);
        snap.extend(snapshot_bits(&self.b));
        snap.push(u64::from(self.flag1.load(ORD)));
        snap.push(u64::from(self.flag2.load(ORD)));
        snap
    }

    /// The canonical representation of value `v` under [`snapshot`].
    ///
    /// [`snapshot`]: AtomicWaitFreeHi::snapshot
    pub fn canonical(&self, v: u64) -> Vec<u64> {
        let mut snap = vec![0u64; (2 * self.k + 2) as usize];
        snap[(v - 1) as usize] = 1;
        snap
    }

    /// The current value, decoded from memory. Only meaningful at quiescent
    /// points, where `A` holds exactly one 1 (Lemma 12's canonicity).
    pub fn current_value(&self) -> u64 {
        lowest_set(&self.a).expect("invariant broken: no 1 in A at quiescence")
    }

    /// Splits into the single writer and single reader handles. `v0` must be
    /// the last value written (the initial value on a fresh register): the
    /// writer's backup protocol stashes it in `B` when it finds a reader in
    /// trouble.
    pub fn split(&mut self, v0: u64) -> (WaitFreeHiWriter<'_>, WaitFreeHiReader<'_>) {
        (
            WaitFreeHiWriter {
                reg: self,
                last_val: v0,
            },
            WaitFreeHiReader { reg: self },
        )
    }

    /// [`split`](AtomicWaitFreeHi::split) with the last-written value decoded
    /// from the (quiescent) memory, so callers re-splitting mid-lifetime need
    /// no bookkeeping of their own.
    pub fn split_quiescent(&mut self) -> (WaitFreeHiWriter<'_>, WaitFreeHiReader<'_>) {
        let v0 = self.current_value();
        self.split(v0)
    }
}

/// Writer handle of [`AtomicWaitFreeHi`].
#[derive(Debug)]
pub struct WaitFreeHiWriter<'a> {
    reg: &'a AtomicWaitFreeHi,
    last_val: u64,
}

impl WaitFreeHiWriter<'_> {
    /// `Write(v)` (Algorithm 4 lines 11–19).
    pub fn write(&mut self, v: u64) {
        let r = self.reg;
        let b_empty = (1..=r.k).all(|j| r.b[(j - 1) as usize].load(ORD) == 0);
        if b_empty && r.flag1.load(ORD) == 1 {
            r.b[(self.last_val - 1) as usize].store(1, ORD);
            if r.flag2.load(ORD) == 1 || r.flag1.load(ORD) == 0 {
                r.b[(self.last_val - 1) as usize].store(0, ORD);
            }
        }
        r.a[(v - 1) as usize].store(1, ORD);
        for j in (1..v).rev() {
            r.a[(j - 1) as usize].store(0, ORD);
        }
        for j in (v + 1)..=r.k {
            r.a[(j - 1) as usize].store(0, ORD);
        }
        self.last_val = v;
    }
}

/// Reader handle of [`AtomicWaitFreeHi`].
#[derive(Debug)]
pub struct WaitFreeHiReader<'a> {
    reg: &'a AtomicWaitFreeHi,
}

impl WaitFreeHiReader<'_> {
    fn try_read(&self) -> Option<u64> {
        let r = self.reg;
        for j in 1..=r.k {
            if r.a[(j - 1) as usize].load(ORD) == 1 {
                let mut val = j;
                for j2 in (1..val).rev() {
                    if r.a[(j2 - 1) as usize].load(ORD) == 1 {
                        val = j2;
                    }
                }
                return Some(val);
            }
        }
        None
    }

    /// `Read()` (Algorithm 4 lines 1–10): wait-free, at most two `TryRead`s
    /// plus one scan of `B`.
    pub fn read(&mut self) -> u64 {
        let r = self.reg;
        r.flag1.store(1, ORD);
        let mut val = None;
        for _ in 0..2 {
            val = self.try_read();
            if val.is_some() {
                break;
            }
        }
        let val = val.unwrap_or_else(|| {
            let mut from_b = None;
            for j in 1..=r.k {
                if r.b[(j - 1) as usize].load(ORD) == 1 {
                    from_b = Some(j);
                }
            }
            from_b.expect("Lemma 10 violated: no value in B after two failed TryReads")
        });
        r.flag2.store(1, ORD);
        for j in 1..=r.k {
            r.b[(j - 1) as usize].store(0, ORD);
        }
        r.flag1.store(0, ORD);
        r.flag2.store(0, ORD);
        val
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn vidyasankar_sequential() {
        let mut reg = AtomicVidyasankar::new(5, 1);
        let (mut w, mut r) = reg.split();
        w.write(4);
        assert_eq!(r.read(), 4);
        w.write(2);
        assert_eq!(r.read(), 2);
    }

    #[test]
    fn lockfree_hi_canonical_after_writes() {
        let mut reg = AtomicLockFreeHi::new(4, 2);
        {
            let (mut w, mut r) = reg.split();
            w.write(3);
            assert_eq!(r.read(), 3);
        }
        assert_eq!(reg.snapshot_a(), vec![0, 0, 1, 0]);
    }

    #[test]
    fn waitfree_hi_canonical_when_quiescent() {
        let mut reg = AtomicWaitFreeHi::new(4, 1);
        {
            let (mut w, mut r) = reg.split(1);
            w.write(3);
            assert_eq!(r.read(), 3);
            w.write(2);
        }
        assert_eq!(reg.snapshot(), reg.canonical(2));
    }

    #[test]
    fn waitfree_hi_concurrent_stress() {
        // A writer thread cycling values races a reader thread doing 2000
        // reads; every read must return an in-domain value (reads are
        // wait-free, so the loop always terminates), and after one final
        // solo write the memory must be canonical.
        let k = 6;
        let mut reg = AtomicWaitFreeHi::new(k, 1);
        let stop = AtomicBool::new(false);
        {
            let (mut w, mut r) = reg.split(1);
            std::thread::scope(|s| {
                s.spawn(|| {
                    let mut round = 0u64;
                    while !stop.load(ORD) {
                        w.write(round % k + 1);
                        round += 1;
                    }
                });
                s.spawn(|| {
                    for _ in 0..2_000 {
                        let v = r.read();
                        assert!((1..=k).contains(&v), "read out-of-range value {v}");
                    }
                    stop.store(true, ORD);
                });
            });
        }
        // A solo write with no concurrent reader never consults last-val,
        // so re-splitting here is sound.
        let (mut w, _r) = reg.split(1);
        w.write(3);
        assert_eq!(reg.snapshot(), reg.canonical(3));
    }

    #[test]
    fn vidyasankar_leaks_lockfree_does_not() {
        // The §4 leak, on real atomics.
        let mut v1 = AtomicVidyasankar::new(3, 3);
        v1.split().0.write(2);
        v1.split().0.write(1);
        let mut v2 = AtomicVidyasankar::new(3, 3);
        v2.split().0.write(1);
        assert_ne!(v1.snapshot_a(), v2.snapshot_a());

        let mut h1 = AtomicLockFreeHi::new(3, 3);
        h1.split().0.write(2);
        h1.split().0.write(1);
        let mut h2 = AtomicLockFreeHi::new(3, 3);
        h2.split().0.write(1);
        assert_eq!(h1.snapshot_a(), h2.snapshot_a());
    }
}
