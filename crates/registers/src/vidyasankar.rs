//! Algorithm 1: Vidyasankar's wait-free SWSR multi-valued register from
//! binary registers — the paper's *non*-history-independent baseline.
//!
//! The value is the smallest index `v` with `A[v] = 1`. A `Write(v)` sets
//! `A[v]` and clears only *below* `v`, so indices above the current value
//! keep stale 1s: after `Write(2); Write(1)` the memory is `[1,1,0]`, after
//! just `Write(1)` it is `[1,0,0]` — the memory reveals the history even in
//! sequential executions (paper §4).

use hi_core::objects::{MultiRegisterSpec, RegisterOp, RegisterResp};
use hi_core::{HiLevel, Pid, Progress, Roles};
use hi_sim::{CellDomain, CellId, Implementation, MemCtx, ProcessHandle, SharedMem};
use hi_spec::{SimAudit, SimObject};

use crate::Role;

/// Algorithm 1. pid 0 writes, pid 1 reads. Wait-free, linearizable, not HI.
#[derive(Clone, Debug)]
pub struct VidyasankarRegister {
    spec: MultiRegisterSpec,
    a: Vec<CellId>,
    mem: SharedMem,
}

impl VidyasankarRegister {
    /// Creates a `K`-valued register with initial value `v0`, laid out as
    /// binary cells `A[1..=K]` with `A[v0] = 1`.
    pub fn new(k: u64, v0: u64) -> Self {
        let spec = MultiRegisterSpec::new(k, v0);
        let mut mem = SharedMem::new();
        let a: Vec<CellId> = (1..=k)
            .map(|v| mem.alloc(format!("A[{v}]"), CellDomain::Binary, u64::from(v == v0)))
            .collect();
        VidyasankarRegister { spec, a, mem }
    }
}

/// Program counter of one Algorithm 1 operation.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Pc {
    Idle,
    /// Line 7: write `A[v] <- 1`.
    WriteSet {
        v: u64,
    },
    /// Line 8: write `A[j] <- 0`, `j` descending to 1.
    WriteClear {
        j: u64,
    },
    /// Lines 1–2: scan up for the first `A[j] = 1`.
    ScanUp {
        j: u64,
    },
    /// Lines 4–5: scan down from `val - 1`, keeping the smallest 1.
    ScanDown {
        j: u64,
        val: u64,
    },
}

/// The per-process step machine of [`VidyasankarRegister`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VidyasankarProcess {
    role: Role,
    k: u64,
    a: Vec<CellId>,
    pc: Pc,
}

impl VidyasankarProcess {
    fn cell(&self, v: u64) -> CellId {
        self.a[(v - 1) as usize]
    }
}

impl ProcessHandle<MultiRegisterSpec> for VidyasankarProcess {
    fn invoke(&mut self, op: RegisterOp) {
        assert_eq!(self.pc, Pc::Idle, "operation already pending");
        self.pc = match (self.role, op) {
            (Role::Writer, RegisterOp::Write(v)) => Pc::WriteSet { v },
            (Role::Reader, RegisterOp::Read) => Pc::ScanUp { j: 1 },
            (role, op) => panic!("{role:?} cannot invoke {op:?}"),
        };
    }

    fn is_idle(&self) -> bool {
        self.pc == Pc::Idle
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<RegisterResp> {
        match self.pc.clone() {
            Pc::Idle => panic!("step of idle process"),
            Pc::WriteSet { v } => {
                ctx.write(self.cell(v), 1);
                if v > 1 {
                    self.pc = Pc::WriteClear { j: v - 1 };
                    None
                } else {
                    self.pc = Pc::Idle;
                    Some(RegisterResp::Ack)
                }
            }
            Pc::WriteClear { j } => {
                ctx.write(self.cell(j), 0);
                if j > 1 {
                    self.pc = Pc::WriteClear { j: j - 1 };
                    None
                } else {
                    self.pc = Pc::Idle;
                    Some(RegisterResp::Ack)
                }
            }
            Pc::ScanUp { j } => {
                if ctx.read(self.cell(j)) == 1 {
                    if j == 1 {
                        self.pc = Pc::Idle;
                        Some(RegisterResp::Value(1))
                    } else {
                        self.pc = Pc::ScanDown { j: j - 1, val: j };
                        None
                    }
                } else {
                    assert!(j < self.k, "Algorithm 1 invariant broken: no 1 in A");
                    self.pc = Pc::ScanUp { j: j + 1 };
                    None
                }
            }
            Pc::ScanDown { j, val } => {
                let val = if ctx.read(self.cell(j)) == 1 { j } else { val };
                if j > 1 {
                    self.pc = Pc::ScanDown { j: j - 1, val };
                    None
                } else {
                    self.pc = Pc::Idle;
                    Some(RegisterResp::Value(val))
                }
            }
        }
    }

    fn peeked_cell(&self) -> Option<CellId> {
        match &self.pc {
            Pc::Idle => None,
            Pc::WriteSet { v } => Some(self.cell(*v)),
            Pc::WriteClear { j } | Pc::ScanUp { j } | Pc::ScanDown { j, .. } => Some(self.cell(*j)),
        }
    }
}

impl Implementation<MultiRegisterSpec> for VidyasankarRegister {
    type Process = VidyasankarProcess;

    fn spec(&self) -> &MultiRegisterSpec {
        &self.spec
    }

    fn num_processes(&self) -> usize {
        2
    }

    fn init_memory(&self) -> SharedMem {
        self.mem.clone()
    }

    fn make_process(&self, pid: Pid) -> VidyasankarProcess {
        VidyasankarProcess {
            role: Role::of_pid(pid),
            k: self.spec.k(),
            a: self.a.clone(),
            pc: Pc::Idle,
        }
    }
}

impl SimObject<MultiRegisterSpec> for VidyasankarRegister {
    type Machine = Self;

    fn spec(&self) -> &MultiRegisterSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::SingleWriterSingleReader
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::NotHi
    }

    fn progress(&self) -> Progress {
        // Both roles take a bounded number of steps per operation.
        Progress::WaitFree
    }

    fn implementation(&self) -> &Self {
        self
    }

    fn hi_audit(&self) -> SimAudit<MultiRegisterSpec, Self> {
        // Algorithm 1 leaks history; only linearizability is checkable.
        SimAudit::LinOnly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_sim::Executor;

    const W: Pid = Pid(0);
    const R: Pid = Pid(1);

    #[test]
    fn sequential_write_read() {
        let mut exec = Executor::new(VidyasankarRegister::new(5, 1));
        exec.run_op_solo(W, RegisterOp::Write(4), 100).unwrap();
        assert_eq!(
            exec.run_op_solo(R, RegisterOp::Read, 100).unwrap(),
            RegisterResp::Value(4)
        );
    }

    #[test]
    fn initial_value_readable() {
        let mut exec = Executor::new(VidyasankarRegister::new(3, 2));
        assert_eq!(
            exec.run_op_solo(R, RegisterOp::Read, 100).unwrap(),
            RegisterResp::Value(2)
        );
    }

    #[test]
    fn leaks_history_in_sequential_execution() {
        // The paper's §4 example: Write(2);Write(1) vs Write(1) reach the
        // same abstract state with different memory.
        let imp = VidyasankarRegister::new(3, 3);
        let mut e1 = Executor::new(imp.clone());
        e1.run_op_solo(W, RegisterOp::Write(2), 100).unwrap();
        e1.run_op_solo(W, RegisterOp::Write(1), 100).unwrap();
        let mut e2 = Executor::new(imp);
        e2.run_op_solo(W, RegisterOp::Write(1), 100).unwrap();
        assert_ne!(
            e1.snapshot(),
            e2.snapshot(),
            "Algorithm 1 must leak (paper §4)"
        );
        // Yet both read back the same value.
        assert_eq!(
            e1.run_op_solo(R, RegisterOp::Read, 100).unwrap(),
            e2.run_op_solo(R, RegisterOp::Read, 100).unwrap()
        );
    }

    #[test]
    fn write_is_wait_free_bounded_steps() {
        // A Write(v) takes exactly v steps (1 set + v-1 clears).
        let mut exec = Executor::new(VidyasankarRegister::new(6, 1));
        exec.invoke(W, RegisterOp::Write(6));
        let mut steps = 0;
        while exec.can_step(W) {
            exec.step(W);
            steps += 1;
        }
        assert_eq!(steps, 6);
    }

    #[test]
    #[should_panic(expected = "cannot invoke")]
    fn reader_cannot_write() {
        let mut exec = Executor::new(VidyasankarRegister::new(3, 1));
        exec.invoke(R, RegisterOp::Write(2));
    }
}
