//! The perfect-HI set over `{1..t}` (paper §5.1).
//!
//! The set is not in `C_t` — its operations cannot distinguish its `2^t`
//! states — and the obvious implementation from `t` binary registers is
//! *perfect* HI: every operation is a single primitive, so every reachable
//! configuration's memory is the characteristic vector of the current
//! abstract state, with no intermediate representations at all.

use hi_core::objects::{SetOp, SetResp, SetSpec};
use hi_core::{HiLevel, Pid, Progress, Roles};
use hi_sim::{CellDomain, CellId, Implementation, MemCtx, ProcessHandle, SharedMem};
use hi_spec::{ObservationModel, SimAudit, SimObject};

/// The §5.1 set: `S[e] = 1` iff `e` is a member. Any process may run any
/// operation; all operations are single-primitive, wait-free and perfect HI.
#[derive(Clone, Debug)]
pub struct HiSet {
    spec: SetSpec,
    s: Vec<CellId>,
    n: usize,
    mem: SharedMem,
}

impl HiSet {
    /// Creates a set over `{1..=t}` shared by `n` processes.
    pub fn new(t: u32, n: usize) -> Self {
        let spec = SetSpec::new(t);
        let mut mem = SharedMem::new();
        let s: Vec<CellId> = (1..=t)
            .map(|e| mem.alloc(format!("S[{e}]"), CellDomain::Binary, 0))
            .collect();
        HiSet { spec, s, n, mem }
    }

    /// The canonical representation of a state (bitmask over bits `1..=t`).
    pub fn canonical(&self, state: u64) -> Vec<u64> {
        (1..=self.spec.t())
            .map(|e| u64::from(state & (1 << e) != 0))
            .collect()
    }
}

/// The per-process step machine of [`HiSet`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HiSetProcess {
    s: Vec<CellId>,
    pending: Option<SetOp>,
}

impl HiSetProcess {
    fn cell(&self, e: u32) -> CellId {
        self.s[(e - 1) as usize]
    }
}

impl ProcessHandle<SetSpec> for HiSetProcess {
    fn invoke(&mut self, op: SetOp) {
        assert!(self.pending.is_none(), "operation already pending");
        self.pending = Some(op);
    }

    fn is_idle(&self) -> bool {
        self.pending.is_none()
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<SetResp> {
        match self.pending.take().expect("step of idle process") {
            SetOp::Insert(e) => {
                ctx.write(self.cell(e), 1);
                Some(SetResp::Ack)
            }
            SetOp::Remove(e) => {
                ctx.write(self.cell(e), 0);
                Some(SetResp::Ack)
            }
            SetOp::Contains(e) => Some(SetResp::Bool(ctx.read(self.cell(e)) == 1)),
        }
    }

    fn peeked_cell(&self) -> Option<CellId> {
        self.pending.as_ref().map(|op| match op {
            SetOp::Insert(e) | SetOp::Remove(e) | SetOp::Contains(e) => self.cell(*e),
        })
    }
}

impl Implementation<SetSpec> for HiSet {
    type Process = HiSetProcess;

    fn spec(&self) -> &SetSpec {
        &self.spec
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn init_memory(&self) -> SharedMem {
        self.mem.clone()
    }

    fn make_process(&self, _pid: Pid) -> HiSetProcess {
        HiSetProcess {
            s: self.s.clone(),
            pending: None,
        }
    }
}

impl SimObject<SetSpec> for HiSet {
    type Machine = Self;

    fn spec(&self) -> &SetSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::MultiProcess { n: self.n }
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::Perfect
    }

    fn progress(&self) -> Progress {
        // One primitive per operation.
        Progress::WaitFree
    }

    fn implementation(&self) -> &Self {
        self
    }

    fn hi_audit(&self) -> SimAudit<SetSpec, Self> {
        // Perfect HI: the characteristic vector *is* the state.
        SimAudit::from_snapshot(ObservationModel::Perfect, |snap| {
            hi_core::cells::mask_of_bits(snap)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_sim::Executor;

    #[test]
    fn membership_round_trip() {
        let mut exec = Executor::new(HiSet::new(5, 2));
        exec.run_op_solo(Pid(0), SetOp::Insert(3), 10).unwrap();
        exec.run_op_solo(Pid(0), SetOp::Insert(5), 10).unwrap();
        exec.run_op_solo(Pid(0), SetOp::Remove(3), 10).unwrap();
        assert_eq!(
            exec.run_op_solo(Pid(1), SetOp::Contains(5), 10).unwrap(),
            SetResp::Bool(true)
        );
        assert_eq!(
            exec.run_op_solo(Pid(1), SetOp::Contains(3), 10).unwrap(),
            SetResp::Bool(false)
        );
    }

    #[test]
    fn every_configuration_is_canonical() {
        // Perfect HI: memory equals the characteristic vector at *every*
        // step, not just at quiescence.
        let imp = HiSet::new(4, 1);
        let mut exec = Executor::new(imp.clone());
        let mut state = 0u64;
        for op in [
            SetOp::Insert(2),
            SetOp::Insert(4),
            SetOp::Remove(2),
            SetOp::Insert(1),
            SetOp::Remove(4),
        ] {
            exec.run_op_solo(Pid(0), op, 10).unwrap();
            state = exec.spec().apply(&state, &op).0;
            assert_eq!(exec.snapshot(), imp.canonical(state));
        }
    }

    #[test]
    fn operations_are_single_step() {
        let mut exec = Executor::new(HiSet::new(3, 1));
        exec.invoke(Pid(0), SetOp::Insert(1));
        assert!(
            exec.step(Pid(0)).is_some(),
            "insert completes in one primitive"
        );
    }

    use hi_core::ObjectSpec;
}
