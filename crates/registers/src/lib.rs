#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! History-independent SWSR multi-valued registers from binary registers,
//! plus the max register and the perfect-HI set (paper §4 and §5.1).
//!
//! All implementations come in two backends:
//!
//! * **Simulator step machines** (the default types), pluggable into
//!   [`hi_sim::Executor`] for deterministic scheduling, exhaustive checking
//!   and the lower-bound adversary.
//! * **Threaded atomics** (module [`threaded`]), for real-concurrency stress
//!   tests and benchmarks.
//!
//! The four register implementations and their guarantees:
//!
//! | Type | Paper | Progress | History independence |
//! |---|---|---|---|
//! | [`VidyasankarRegister`] | Algorithm 1 | wait-free | **none** (leaks past writes) |
//! | [`LockFreeHiRegister`] | Algorithms 2+3 | writer wait-free, reader lock-free | state-quiescent |
//! | [`WaitFreeHiRegister`] | Algorithm 4 | wait-free | quiescent |
//! | [`MaxRegister`] | §5.1 | wait-free | state-quiescent |
//!
//! Role convention for the SWSR registers: **pid 0 is the writer, pid 1 is
//! the reader**; machines panic when invoked with the wrong operation for
//! their role.
//!
//! The [`HiSet`] (§5.1) is multi-process: every pid may run every operation.

pub mod hi_set;
pub mod lockfree;
pub mod max_register;
pub mod threaded;
pub mod vidyasankar;
pub mod waitfree;

pub use hi_set::HiSet;
pub use lockfree::LockFreeHiRegister;
pub use max_register::MaxRegister;
pub use vidyasankar::VidyasankarRegister;
pub use waitfree::WaitFreeHiRegister;

/// The role of a process in a single-writer single-reader implementation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// pid 0: may invoke `Write`.
    Writer,
    /// pid 1: may invoke `Read`.
    Reader,
}

impl Role {
    /// The role of `pid` under the SWSR convention.
    ///
    /// # Panics
    ///
    /// Panics for pids other than 0 and 1.
    pub fn of_pid(pid: hi_core::Pid) -> Role {
        match pid.0 {
            0 => Role::Writer,
            1 => Role::Reader,
            other => panic!("SWSR implementations have exactly two processes, got pid {other}"),
        }
    }
}
