//! The max register (paper §5.1): wait-free *and* state-quiescent HI from
//! binary registers — possible because the max register is not in `C_t`.
//!
//! The implementation is the paper's "simple modification to Algorithm 1":
//! the writer only touches `A` when the new value exceeds everything it has
//! written before, then sets `A[v]` and clears downwards. Since values only
//! grow, the stale-1s-above problem of Algorithm 1 cannot arise: when no
//! write is pending, exactly `A[max] = 1` — a canonical representation at
//! every state-quiescent point, with no retry loop anywhere.

use hi_core::objects::{MaxRegisterOp, MaxRegisterSpec, RegisterResp};
use hi_core::{HiLevel, Pid, Progress, Roles};
use hi_sim::{CellDomain, CellId, Implementation, MemCtx, ProcessHandle, SharedMem};
use hi_spec::{ObservationModel, SimAudit, SimObject};

use crate::Role;

/// The §5.1 max register. pid 0 writes, pid 1 reads; both wait-free;
/// state-quiescent HI.
#[derive(Clone, Debug)]
pub struct MaxRegister {
    spec: MaxRegisterSpec,
    a: Vec<CellId>,
    mem: SharedMem,
}

impl MaxRegister {
    /// Creates a max register over `1..=k` (initial maximum 1).
    pub fn new(k: u64) -> Self {
        let spec = MaxRegisterSpec::new(k);
        let mut mem = SharedMem::new();
        let a: Vec<CellId> = (1..=k)
            .map(|v| mem.alloc(format!("A[{v}]"), CellDomain::Binary, u64::from(v == 1)))
            .collect();
        MaxRegister { spec, a, mem }
    }

    /// The canonical memory representation of maximum `m`.
    pub fn canonical(&self, m: u64) -> Vec<u64> {
        (1..=self.spec.k()).map(|i| u64::from(i == m)).collect()
    }
}

/// Program counter of one max-register operation.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Pc {
    Idle,
    /// Write `A[v] <- 1` (only reached when `v` exceeds the local maximum).
    WriteSet {
        v: u64,
    },
    /// Clear `A[j] <- 0`, descending.
    WriteClear {
        j: u64,
    },
    /// Scan up for the first 1.
    ScanUp {
        j: u64,
    },
    /// Scan down keeping the smallest 1 (as in Algorithm 1's reader).
    ScanDown {
        j: u64,
        val: u64,
    },
}

/// The per-process step machine of [`MaxRegister`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MaxRegisterProcess {
    role: Role,
    k: u64,
    a: Vec<CellId>,
    /// Writer-local maximum written so far.
    local_max: u64,
    pc: Pc,
    /// A `WriteMax` not exceeding `local_max` completes without any
    /// primitive; this flag marks that pending-but-trivial state.
    trivial_ack: bool,
}

impl MaxRegisterProcess {
    fn cell(&self, v: u64) -> CellId {
        self.a[(v - 1) as usize]
    }
}

impl ProcessHandle<MaxRegisterSpec> for MaxRegisterProcess {
    fn invoke(&mut self, op: MaxRegisterOp) {
        assert!(self.is_idle(), "operation already pending");
        match (self.role, op) {
            (Role::Writer, MaxRegisterOp::WriteMax(v)) => {
                if v > self.local_max {
                    self.pc = Pc::WriteSet { v };
                } else {
                    self.trivial_ack = true;
                }
            }
            (Role::Reader, MaxRegisterOp::ReadMax) => self.pc = Pc::ScanUp { j: 1 },
            (role, op) => panic!("{role:?} cannot invoke {op:?}"),
        }
    }

    fn is_idle(&self) -> bool {
        self.pc == Pc::Idle && !self.trivial_ack
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<RegisterResp> {
        if self.trivial_ack {
            self.trivial_ack = false;
            return Some(RegisterResp::Ack);
        }
        match self.pc.clone() {
            Pc::Idle => panic!("step of idle process"),
            Pc::WriteSet { v } => {
                ctx.write(self.cell(v), 1);
                self.local_max = v;
                if v > 1 {
                    self.pc = Pc::WriteClear { j: v - 1 };
                    None
                } else {
                    self.pc = Pc::Idle;
                    Some(RegisterResp::Ack)
                }
            }
            Pc::WriteClear { j } => {
                ctx.write(self.cell(j), 0);
                if j > 1 {
                    self.pc = Pc::WriteClear { j: j - 1 };
                    None
                } else {
                    self.pc = Pc::Idle;
                    Some(RegisterResp::Ack)
                }
            }
            Pc::ScanUp { j } => {
                if ctx.read(self.cell(j)) == 1 {
                    if j == 1 {
                        self.pc = Pc::Idle;
                        Some(RegisterResp::Value(1))
                    } else {
                        self.pc = Pc::ScanDown { j: j - 1, val: j };
                        None
                    }
                } else {
                    assert!(j < self.k, "max register invariant broken: no 1 in A");
                    self.pc = Pc::ScanUp { j: j + 1 };
                    None
                }
            }
            Pc::ScanDown { j, val } => {
                let val = if ctx.read(self.cell(j)) == 1 { j } else { val };
                if j > 1 {
                    self.pc = Pc::ScanDown { j: j - 1, val };
                    None
                } else {
                    self.pc = Pc::Idle;
                    Some(RegisterResp::Value(val))
                }
            }
        }
    }

    fn peeked_cell(&self) -> Option<CellId> {
        match &self.pc {
            Pc::Idle => None,
            Pc::WriteSet { v } => Some(self.cell(*v)),
            Pc::WriteClear { j } | Pc::ScanUp { j } | Pc::ScanDown { j, .. } => Some(self.cell(*j)),
        }
    }
}

impl Implementation<MaxRegisterSpec> for MaxRegister {
    type Process = MaxRegisterProcess;

    fn spec(&self) -> &MaxRegisterSpec {
        &self.spec
    }

    fn num_processes(&self) -> usize {
        2
    }

    fn init_memory(&self) -> SharedMem {
        self.mem.clone()
    }

    fn make_process(&self, pid: Pid) -> MaxRegisterProcess {
        MaxRegisterProcess {
            role: Role::of_pid(pid),
            k: self.spec.k(),
            a: self.a.clone(),
            local_max: 1,
            pc: Pc::Idle,
            trivial_ack: false,
        }
    }
}

impl SimObject<MaxRegisterSpec> for MaxRegister {
    type Machine = Self;

    fn spec(&self) -> &MaxRegisterSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::SingleWriterSingleReader
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::StateQuiescent
    }

    fn progress(&self) -> Progress {
        // One primitive per WriteMax step and a bounded scan per ReadMax.
        Progress::WaitFree
    }

    fn implementation(&self) -> &Self {
        self
    }

    fn hi_audit(&self) -> SimAudit<MaxRegisterSpec, Self> {
        SimAudit::single_mutator(ObservationModel::StateQuiescent, self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_sim::Executor;

    const W: Pid = Pid(0);
    const R: Pid = Pid(1);

    #[test]
    fn returns_running_maximum() {
        let mut exec = Executor::new(MaxRegister::new(6));
        for (write, expect) in [(3, 3), (2, 3), (5, 5), (1, 5)] {
            exec.run_op_solo(W, MaxRegisterOp::WriteMax(write), 100)
                .unwrap();
            assert_eq!(
                exec.run_op_solo(R, MaxRegisterOp::ReadMax, 100).unwrap(),
                RegisterResp::Value(expect)
            );
        }
    }

    #[test]
    fn state_quiescent_memory_is_canonical() {
        let imp = MaxRegister::new(5);
        let mut exec = Executor::new(imp.clone());
        for (write, max) in [(2, 2), (4, 4), (3, 4), (5, 5)] {
            exec.run_op_solo(W, MaxRegisterOp::WriteMax(write), 100)
                .unwrap();
            assert_eq!(
                exec.snapshot(),
                imp.canonical(max),
                "after WriteMax({write})"
            );
        }
    }

    #[test]
    fn smaller_write_leaves_memory_untouched() {
        let imp = MaxRegister::new(4);
        let mut exec = Executor::new(imp);
        exec.run_op_solo(W, MaxRegisterOp::WriteMax(3), 100)
            .unwrap();
        let before = exec.snapshot();
        let steps_before = exec.steps();
        exec.run_op_solo(W, MaxRegisterOp::WriteMax(2), 100)
            .unwrap();
        assert_eq!(exec.snapshot(), before);
        assert_eq!(
            exec.steps(),
            steps_before + 1,
            "one local step, no primitives"
        );
    }

    #[test]
    fn reader_is_wait_free_under_increasing_writes() {
        // Monotone writes cannot starve the reader: at most K write phases
        // exist in total.
        let k = 8;
        let mut exec = Executor::new(MaxRegister::new(k));
        exec.invoke(R, MaxRegisterOp::ReadMax);
        let mut returned = false;
        for v in 2..=k {
            if exec.step(R).is_some() {
                returned = true;
                break;
            }
            exec.run_op_solo(W, MaxRegisterOp::WriteMax(v), 100)
                .unwrap();
        }
        if !returned {
            // Writer has exhausted its domain; reader finishes solo.
            exec.run_solo(R, 10 * k).unwrap();
        }
    }
}
