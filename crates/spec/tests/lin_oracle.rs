//! Oracle test for the linearizability checker: on small random histories,
//! compare the memoized search against brute-force enumeration of all
//! linearization candidates.

use hi_core::objects::{MultiRegisterSpec, RegisterOp, RegisterResp};
use hi_core::{History, ObjectSpec, OpRecord, Pid};
use hi_spec::{linearize, LinError, LinOptions};
use proptest::prelude::*;

/// Brute force: try every permutation of every subset-completion of the
/// history's operations (completed ops mandatory, pending optional) and test
/// the three linearizability conditions directly.
fn brute_force_linearizable(
    spec: &MultiRegisterSpec,
    records: &[OpRecord<RegisterOp, RegisterResp>],
) -> bool {
    let n = records.len();
    assert!(n <= 6, "brute force is factorial");
    // Choose which pending ops to include (completed ops are mandatory).
    let pending: Vec<usize> = (0..n).filter(|&i| !records[i].is_complete()).collect();
    for mask in 0..(1u32 << pending.len()) {
        let mut included: Vec<usize> = (0..n).filter(|&i| records[i].is_complete()).collect();
        for (bit, &idx) in pending.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                included.push(idx);
            }
        }
        if permutations_ok(spec, records, &mut included.clone(), 0) {
            return true;
        }
    }
    false
}

/// Heap's-algorithm-free recursive permutation check.
fn permutations_ok(
    spec: &MultiRegisterSpec,
    records: &[OpRecord<RegisterOp, RegisterResp>],
    order: &mut Vec<usize>,
    fixed: usize,
) -> bool {
    if fixed == order.len() {
        return sequential_ok(spec, records, order);
    }
    for i in fixed..order.len() {
        order.swap(fixed, i);
        if permutations_ok(spec, records, order, fixed + 1) {
            order.swap(fixed, i);
            return true;
        }
        order.swap(fixed, i);
    }
    false
}

fn sequential_ok(
    spec: &MultiRegisterSpec,
    records: &[OpRecord<RegisterOp, RegisterResp>],
    order: &[usize],
) -> bool {
    // Real-time order: if a returns before b is invoked, a must precede b.
    for (pos_a, &a) in order.iter().enumerate() {
        for &b in &order[pos_a + 1..] {
            if records[b].precedes(&records[a]) {
                return false;
            }
        }
    }
    // Excluded (dropped pending) ops must not be required by real time:
    // dropping is always legal for pending ops, nothing to check.
    // Spec conformance with matching responses for completed ops.
    let mut state = spec.initial_state();
    for &i in order {
        let (next, resp) = spec.apply(&state, &records[i].op);
        if let Some(expected) = &records[i].resp {
            if resp != *expected {
                return false;
            }
        }
        state = next;
    }
    true
}

fn arbitrary_history() -> impl Strategy<Value = History<RegisterOp, RegisterResp>> {
    // Up to 5 operations across 2 processes; each op is a write or a read
    // with a random (possibly wrong) response; some ops stay pending.
    let op_strategy =
        prop::collection::vec((0u8..2, 1u64..4, 1u64..4, prop::bool::ANY, 0u8..3), 1..5);
    op_strategy.prop_map(|ops| {
        let mut h: History<RegisterOp, RegisterResp> = History::new();
        let mut pending: Vec<(hi_core::OpId, RegisterResp)> = Vec::new();
        for (kind, v, seen, complete, drain) in ops {
            // Occasionally retire older pending ops first, creating overlap
            // structure.
            for _ in 0..drain.min(pending.len() as u8) {
                let (id, resp) = pending.remove(0);
                h.ret(id, resp);
            }
            // Alternate pids; skip if that pid already has a pending op.
            let pid = Pid((v % 2) as usize);
            if h.pending_ids()
                .iter()
                .any(|id| h.records().iter().any(|r| r.id == *id && r.pid == pid))
            {
                continue;
            }
            let (op, resp) = match kind {
                0 => (RegisterOp::Write(v), RegisterResp::Ack),
                _ => (RegisterOp::Read, RegisterResp::Value(seen)),
            };
            let id = h.invoke(pid, op);
            if complete {
                h.ret(id, resp);
            } else {
                pending.push((id, resp));
            }
        }
        h
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The checker agrees with brute force on every generated history.
    #[test]
    fn checker_matches_brute_force(h in arbitrary_history()) {
        let spec = MultiRegisterSpec::new(3, 1);
        let records = h.records();
        prop_assume!(records.len() <= 5);
        let expected = brute_force_linearizable(&spec, &records);
        let got = match linearize(&spec, &h, &LinOptions::default()) {
            Ok(_) => true,
            Err(LinError::NotLinearizable) => false,
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        };
        prop_assert_eq!(got, expected, "history: {:?}", h);
    }

    /// Any linearization witness the checker returns is itself valid.
    #[test]
    fn witness_is_valid(h in arbitrary_history()) {
        let spec = MultiRegisterSpec::new(3, 1);
        if let Ok(lin) = linearize(&spec, &h, &LinOptions::default()) {
            let records = h.records();
            let order: Vec<usize> = lin
                .order
                .iter()
                .map(|id| records.iter().position(|r| r.id == *id).unwrap())
                .collect();
            // All completed ops present.
            for (i, r) in records.iter().enumerate() {
                if r.is_complete() {
                    prop_assert!(order.contains(&i));
                }
            }
            prop_assert!(sequential_ok(&spec, &records, &order));
        }
    }
}
