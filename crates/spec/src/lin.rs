//! Linearizability checking (Herlihy & Wing; search in the style of Wing &
//! Gong with state memoization).

use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::hash::Hash;

use hi_core::{History, ObjectSpec, OpId, OpRecord};

/// Options for the linearizability search.
#[derive(Clone, Copy, Debug)]
pub struct LinOptions {
    /// Maximum number of search nodes before giving up with
    /// [`LinError::BudgetExhausted`]. The default (10 million) decides all
    /// histories produced by this workspace's test suites in well under a
    /// second.
    pub node_budget: u64,
}

impl Default for LinOptions {
    fn default() -> Self {
        LinOptions {
            node_budget: 10_000_000,
        }
    }
}

/// A witness that a history is linearizable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Linearization<Q> {
    /// The operation ids in linearization order. Pending operations that the
    /// witness chose to complete are included; dropped pending operations
    /// are not.
    pub order: Vec<OpId>,
    /// The abstract state at the end of the linearization —
    /// `state(h(α))` in the paper's notation.
    pub final_state: Q,
}

/// Why a linearization could not be produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinError {
    /// The history has no linearization: the implementation is not
    /// linearizable (or the spec is wrong).
    NotLinearizable,
    /// The search exceeded its node budget; the verdict is unknown.
    BudgetExhausted {
        /// The budget that was exhausted.
        nodes: u64,
    },
}

impl fmt::Display for LinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinError::NotLinearizable => write!(f, "history is not linearizable"),
            LinError::BudgetExhausted { nodes } => {
                write!(
                    f,
                    "linearizability search exhausted its budget of {nodes} nodes"
                )
            }
        }
    }
}

impl Error for LinError {}

/// Compact bitmask over operation indices.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct DoneSet {
    words: Vec<u64>,
    count: usize,
}

impl DoneSet {
    fn new(n: usize) -> Self {
        DoneSet {
            words: vec![0; n.div_ceil(64)],
            count: 0,
        }
    }

    fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    fn insert(&mut self, i: usize) {
        debug_assert!(!self.contains(i));
        self.words[i / 64] |= 1 << (i % 64);
        self.count += 1;
    }

    fn remove(&mut self, i: usize) {
        debug_assert!(self.contains(i));
        self.words[i / 64] &= !(1 << (i % 64));
        self.count -= 1;
    }
}

struct Search<'a, S: ObjectSpec> {
    spec: &'a S,
    records: &'a [OpRecord<S::Op, S::Resp>],
    /// Memo of `(done-set, state)` pairs known to fail.
    failed: HashSet<(Vec<u64>, S::State)>,
    nodes: u64,
    budget: u64,
    /// If set, a linearization only succeeds when it ends in this state.
    target: Option<&'a S::State>,
}

impl<'a, S: ObjectSpec> Search<'a, S> {
    /// Returns the linearization order (indices into `records`) extending
    /// the current prefix, or `None` if this node cannot reach success.
    fn dfs(
        &mut self,
        done: &mut DoneSet,
        state: &S::State,
    ) -> Result<Option<Vec<usize>>, LinError> {
        self.nodes += 1;
        if self.nodes > self.budget {
            return Err(LinError::BudgetExhausted { nodes: self.budget });
        }
        // Success: every *completed* operation has been linearized; remaining
        // pending operations are dropped (legal completions). Under a target
        // state, the prefix must also land exactly there — otherwise the
        // search keeps going, completing pending operations if that helps.
        if self
            .records
            .iter()
            .enumerate()
            .all(|(i, r)| !r.is_complete() || done.contains(i))
            && self.target.map_or(true, |t| state == t)
        {
            return Ok(Some(Vec::new()));
        }
        if self.failed.contains(&(done.words.clone(), state.clone())) {
            return Ok(None);
        }
        // The earliest return among undone completed operations: any undone
        // operation invoked after that return cannot be linearized next.
        let frontier = self
            .records
            .iter()
            .enumerate()
            .filter(|(i, r)| !done.contains(*i) && r.is_complete())
            .map(|(_, r)| r.returned_at.unwrap())
            .min()
            .unwrap_or(usize::MAX);
        for i in 0..self.records.len() {
            if done.contains(i) {
                continue;
            }
            let rec = &self.records[i];
            if rec.invoked_at > frontier {
                continue;
            }
            let (next_state, resp) = self.spec.apply(state, &rec.op);
            if let Some(expected) = &rec.resp {
                if resp != *expected {
                    continue;
                }
            }
            done.insert(i);
            let sub = self.dfs(done, &next_state)?;
            done.remove(i);
            if let Some(mut rest) = sub {
                rest.insert(0, i);
                return Ok(Some(rest));
            }
        }
        self.failed.insert((done.words.clone(), state.clone()));
        Ok(None)
    }
}

/// Searches for a linearization of `history` against `spec`.
///
/// The search respects the three conditions of the paper's §2: the result is
/// a permutation of a completion of the history, matches the sequential
/// specification, and respects the real-time order of non-overlapping
/// operations.
///
/// # Errors
///
/// [`LinError::NotLinearizable`] if no linearization exists;
/// [`LinError::BudgetExhausted`] if the search gave up.
///
/// # Example
///
/// ```
/// use hi_core::objects::{MultiRegisterSpec, RegisterOp, RegisterResp};
/// use hi_core::{History, Pid};
/// use hi_spec::{linearize, LinOptions};
///
/// let spec = MultiRegisterSpec::new(3, 1);
/// let mut h = History::new();
/// let w = h.invoke(Pid(0), RegisterOp::Write(2));
/// let r = h.invoke(Pid(1), RegisterOp::Read);
/// h.ret(r, RegisterResp::Value(2)); // read overlaps the write and sees it
/// h.ret(w, RegisterResp::Ack);
/// let lin = linearize(&spec, &h, &LinOptions::default()).unwrap();
/// assert_eq!(lin.final_state, 2);
/// ```
pub fn linearize<S: ObjectSpec>(
    spec: &S,
    history: &History<S::Op, S::Resp>,
    opts: &LinOptions,
) -> Result<Linearization<S::State>, LinError> {
    linearize_impl(spec, history, opts, None)
}

/// Like [`linearize`], but only accepts linearizations whose final abstract
/// state is exactly `target`.
///
/// This is the *exactly-once* oracle for helping constructions: after a
/// crash, decode the implementation's final memory into an abstract state
/// and demand a linearization of the (truncated) history ending there. A
/// crashed process's announced operation may be completed (applied once by
/// a helper) or dropped (never applied) — but a state reachable only by
/// applying some operation *twice*, or by losing a completed one, admits no
/// such linearization and is rejected.
///
/// # Errors
///
/// [`LinError::NotLinearizable`] if no linearization ends in `target`;
/// [`LinError::BudgetExhausted`] if the search gave up.
pub fn linearize_to<S: ObjectSpec>(
    spec: &S,
    history: &History<S::Op, S::Resp>,
    target: &S::State,
    opts: &LinOptions,
) -> Result<Linearization<S::State>, LinError> {
    linearize_impl(spec, history, opts, Some(target))
}

fn linearize_impl<S: ObjectSpec>(
    spec: &S,
    history: &History<S::Op, S::Resp>,
    opts: &LinOptions,
    target: Option<&S::State>,
) -> Result<Linearization<S::State>, LinError> {
    let records = history.records();
    let mut search = Search {
        spec,
        records: &records,
        failed: HashSet::new(),
        nodes: 0,
        budget: opts.node_budget,
        target,
    };
    let mut done = DoneSet::new(records.len());
    let initial = spec.initial_state();
    match search.dfs(&mut done, &initial)? {
        Some(order_indices) => {
            let mut state = spec.initial_state();
            for &i in &order_indices {
                state = spec.apply(&state, &records[i].op).0;
            }
            Ok(Linearization {
                order: order_indices.iter().map(|&i| records[i].id).collect(),
                final_state: state,
            })
        }
        None => Err(LinError::NotLinearizable),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::objects::{
        BoundedQueueSpec, MultiRegisterSpec, QueueOp, QueueResp, RegisterOp, RegisterResp,
    };
    use hi_core::Pid;

    fn opts() -> LinOptions {
        LinOptions::default()
    }

    #[test]
    fn sequential_history_linearizes() {
        let spec = MultiRegisterSpec::new(4, 1);
        let mut h = History::new();
        let a = h.invoke(Pid(0), RegisterOp::Write(3));
        h.ret(a, RegisterResp::Ack);
        let b = h.invoke(Pid(1), RegisterOp::Read);
        h.ret(b, RegisterResp::Value(3));
        let lin = linearize(&spec, &h, &opts()).unwrap();
        assert_eq!(lin.order, vec![a, b]);
        assert_eq!(lin.final_state, 3);
    }

    #[test]
    fn stale_read_after_write_is_rejected() {
        let spec = MultiRegisterSpec::new(4, 1);
        let mut h = History::new();
        let a = h.invoke(Pid(0), RegisterOp::Write(3));
        h.ret(a, RegisterResp::Ack);
        // Read invoked after the write returned must not see the old value.
        let b = h.invoke(Pid(1), RegisterOp::Read);
        h.ret(b, RegisterResp::Value(1));
        assert_eq!(
            linearize(&spec, &h, &opts()),
            Err(LinError::NotLinearizable)
        );
    }

    #[test]
    fn overlapping_read_may_see_either_value() {
        let spec = MultiRegisterSpec::new(4, 1);
        for seen in [1, 3] {
            let mut h = History::new();
            let a = h.invoke(Pid(0), RegisterOp::Write(3));
            let b = h.invoke(Pid(1), RegisterOp::Read);
            h.ret(b, RegisterResp::Value(seen));
            h.ret(a, RegisterResp::Ack);
            assert!(
                linearize(&spec, &h, &opts()).is_ok(),
                "value {seen} should be legal"
            );
        }
    }

    #[test]
    fn pending_op_may_be_completed() {
        let spec = MultiRegisterSpec::new(4, 1);
        let mut h = History::new();
        let _w = h.invoke(Pid(0), RegisterOp::Write(2)); // never returns
        let b = h.invoke(Pid(1), RegisterOp::Read);
        h.ret(b, RegisterResp::Value(2)); // saw the pending write: fine
        let lin = linearize(&spec, &h, &opts()).unwrap();
        assert_eq!(lin.final_state, 2);
    }

    #[test]
    fn pending_op_may_be_dropped() {
        let spec = MultiRegisterSpec::new(4, 1);
        let mut h = History::new();
        let _w = h.invoke(Pid(0), RegisterOp::Write(2)); // never returns
        let b = h.invoke(Pid(1), RegisterOp::Read);
        h.ret(b, RegisterResp::Value(1)); // did not see it: also fine
        let lin = linearize(&spec, &h, &opts()).unwrap();
        assert_eq!(lin.final_state, 1);
    }

    #[test]
    fn new_old_inversion_is_rejected() {
        // Two sequential reads must not observe values in anti-order of two
        // sequential writes.
        let spec = MultiRegisterSpec::new(4, 1);
        let mut h = History::new();
        let w1 = h.invoke(Pid(0), RegisterOp::Write(2));
        h.ret(w1, RegisterResp::Ack);
        let w2 = h.invoke(Pid(0), RegisterOp::Write(3));
        h.ret(w2, RegisterResp::Ack);
        let r1 = h.invoke(Pid(1), RegisterOp::Read);
        h.ret(r1, RegisterResp::Value(3));
        let r2 = h.invoke(Pid(1), RegisterOp::Read);
        h.ret(r2, RegisterResp::Value(2));
        assert_eq!(
            linearize(&spec, &h, &opts()),
            Err(LinError::NotLinearizable)
        );
    }

    #[test]
    fn queue_fifo_violation_is_rejected() {
        let spec = BoundedQueueSpec::new(3, 4);
        let mut h = History::new();
        let e1 = h.invoke(Pid(0), QueueOp::Enqueue(1));
        h.ret(e1, QueueResp::Empty);
        let e2 = h.invoke(Pid(0), QueueOp::Enqueue(2));
        h.ret(e2, QueueResp::Empty);
        let d = h.invoke(Pid(1), QueueOp::Dequeue);
        h.ret(d, QueueResp::Value(2)); // FIFO violation: 1 was first
        assert_eq!(
            linearize(&spec, &h, &opts()),
            Err(LinError::NotLinearizable)
        );
    }

    #[test]
    fn concurrent_enqueues_allow_either_order() {
        let spec = BoundedQueueSpec::new(3, 4);
        for first in [1u32, 2u32] {
            let mut h = History::new();
            let e1 = h.invoke(Pid(0), QueueOp::Enqueue(1));
            let e2 = h.invoke(Pid(1), QueueOp::Enqueue(2));
            h.ret(e1, QueueResp::Empty);
            h.ret(e2, QueueResp::Empty);
            let d = h.invoke(Pid(0), QueueOp::Dequeue);
            h.ret(d, QueueResp::Value(first));
            assert!(
                linearize(&spec, &h, &opts()).is_ok(),
                "front {first} should be legal"
            );
        }
    }

    #[test]
    fn budget_exhaustion_reports() {
        let spec = MultiRegisterSpec::new(4, 1);
        let mut h = History::new();
        for i in 0..6 {
            h.invoke(Pid(i), RegisterOp::Write(1));
        }
        let res = linearize(&spec, &h, &LinOptions { node_budget: 2 });
        assert!(matches!(res, Err(LinError::BudgetExhausted { .. })) || res.is_ok());
    }

    #[test]
    fn linearize_to_accepts_completed_or_dropped_pending_op() {
        use hi_core::objects::{CounterOp, CounterResp, CounterSpec};
        let spec = CounterSpec::new(0, 8, 0);
        let mut h = History::new();
        let _pending = h.invoke(Pid(0), CounterOp::Inc); // crashed mid-op
        let a = h.invoke(Pid(1), CounterOp::Inc);
        h.ret(a, CounterResp::Ack);
        // Helper applied the announced Inc once → 2. Never applied → 1.
        for target in [1i64, 2i64] {
            linearize_to(&spec, &h, &target, &opts())
                .unwrap_or_else(|e| panic!("target {target} should be reachable: {e}"));
        }
        // Applied twice → 3, or the completed op lost → 0: both rejected.
        for target in [0i64, 3i64] {
            assert_eq!(
                linearize_to(&spec, &h, &target, &opts()),
                Err(LinError::NotLinearizable),
                "target {target} must be unreachable"
            );
        }
    }

    #[test]
    fn linearize_to_agrees_with_linearize_on_complete_histories() {
        let spec = MultiRegisterSpec::new(4, 1);
        let mut h = History::new();
        let a = h.invoke(Pid(0), RegisterOp::Write(3));
        h.ret(a, RegisterResp::Ack);
        let lin = linearize(&spec, &h, &opts()).unwrap();
        let to = linearize_to(&spec, &h, &lin.final_state, &opts()).unwrap();
        assert_eq!(to.final_state, 3);
        assert_eq!(
            linearize_to(&spec, &h, &1, &opts()),
            Err(LinError::NotLinearizable)
        );
    }

    #[test]
    fn empty_history_linearizes() {
        let spec = MultiRegisterSpec::new(4, 2);
        let h: History<RegisterOp, RegisterResp> = History::new();
        let lin = linearize(&spec, &h, &opts()).unwrap();
        assert!(lin.order.is_empty());
        assert_eq!(lin.final_state, 2);
    }
}
