//! Schedule-space model checking: exhaustive exploration of all schedules
//! of a small workload, with partial-order reduction and configuration
//! deduplication.
//!
//! For a small workload, the explorer enumerates *every* interleaving of
//! invocations and steps, forking the executor at each choice point.
//! Combined with the HI monitors and the linearizability checker this gives
//! exhaustive verification of the paper's algorithms on small instances —
//! the regime where their subtle interleavings (e.g. Algorithm 4's flag/B
//! protocol, the hash table's duplicate-then-overwrite rewrites) actually
//! live.
//!
//! Two reductions turn the schedule tree from `O(paths)` into `O(distinct
//! behaviors)` without weakening what is certified:
//!
//! * **Sleep sets** over step *footprints*. Each executed step exposes its
//!   single memory access ([`hi_sim::Footprint`], guaranteed unique by the
//!   `MemCtx` one-primitive-per-step discipline). Two transitions are
//!   treated as independent only when both are plain mid-operation steps
//!   (no invocation, no response) of different processes and their
//!   footprints commute **with at most one write**: invocations and
//!   returning steps are history events, so commuting them would change
//!   the induced history's precedence order, and commuting two writes —
//!   even to different cells — would change the *intermediate* memory
//!   snapshot, which is exactly what an HI audit observes. Under this
//!   deliberately strengthened dependence relation, every pruned schedule
//!   is adjacent-swap-equivalent to an explored one with the **identical
//!   history event sequence** and the **identical set of visited memory
//!   snapshots and audited (state, mem) observations** — so linearizing
//!   the explored paths and auditing the explored configurations certifies
//!   the pruned ones too.
//! * **Configuration fingerprinting**. A node is fingerprinted by its
//!   memory snapshot, every process's control state, the pending-operation
//!   table, the workload cursors, the crash set, the sleeping-process set,
//!   the remaining depth budget *and the induced history* (stable 128-bit
//!   FNV-1a, [`hi_core::fingerprint`]). Two nodes with equal fingerprints
//!   have byte-for-byte identical futures *and identical observable
//!   pasts*, so the second is pruned and credited with the first's
//!   memoized counts — this is what collapses write-write schedule
//!   diamonds (kept dependent above) at their join, and what closes
//!   lock-free retry loops into finite cycles: a retry that returns to an
//!   identical configuration without emitting a history event hits its
//!   own ancestor's fingerprint and is reported in
//!   [`ExploreStats::cycles`] instead of unwinding forever.
//!
//! Because merges happen only on identical pasts, the reduced exploration
//! certifies the *same* set of maximal-path histories and visits the
//! *same* set of memory snapshots as the naive DFS (the
//! `explore_differential` suite pins this), while executing strictly fewer
//! transitions.

use std::collections::HashMap;

use hi_core::{Fingerprint, FingerprintWriter, ObjectSpec, Pid};
use hi_sim::{AccessKind, Executor, Footprint, Implementation, Workload};

/// Statistics of one exploration.
///
/// The path counters are **disjoint**: a schedule ends in exactly one of
/// [`paths`](ExploreStats::paths) (ran to quiescence; its history was
/// handed to [`ExploreVisitor::on_path_end`]),
/// [`truncated`](ExploreStats::truncated) (cut by the depth bound) or
/// [`cycles`](ExploreStats::cycles) (closed back onto a configuration
/// still on the DFS stack — only possible with deduplication on). Headline
/// sums never double-count.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExploreStats {
    /// Maximal paths *executed*: the workload drained and every operation
    /// returned. Disjoint from [`truncated`](ExploreStats::truncated).
    pub paths: u64,
    /// Paths cut off by the depth bound (never counted in
    /// [`paths`](ExploreStats::paths)).
    pub truncated: u64,
    /// Transitions (invocations + steps) actually executed.
    pub transitions: u64,
    /// Maximal paths certified, including the multiplicities of subtrees
    /// merged by deduplication (saturating; equals
    /// [`paths`](ExploreStats::paths) when dedup is off).
    pub certified_paths: u64,
    /// Truncated paths certified, including merged multiplicities.
    pub certified_truncated: u64,
    /// Distinct fingerprinted configurations (0 when dedup is off).
    pub distinct_configs: u64,
    /// Interior nodes pruned because their fingerprint was already fully
    /// explored.
    pub dedup_hits: u64,
    /// Nodes that closed a cycle: their fingerprint was still on the DFS
    /// stack. A cycle is a schedule that can repeat a configuration forever
    /// without completing an operation (a starved retry loop, or survivors
    /// spinning behind a crashed lock holder).
    pub cycles: u64,
    /// Scheduling choices skipped by sleep sets.
    pub sleep_skips: u64,
    /// Single-crash branches taken (crash mode only).
    pub crash_branches: u64,
    /// Whether the visitor aborted the exploration early (e.g. on a
    /// recorded violation).
    pub aborted: bool,
}

/// How an exploration is bounded and reduced. Start from
/// [`ExploreConfig::naive`] or [`ExploreConfig::reduced`] and override
/// fields as needed.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Per-path transition bound; paths that exceed it are reported via
    /// [`ExploreVisitor::on_truncated`]. `None` explores without a depth
    /// bound — with dedup on, retry cycles close instead of unwinding, so
    /// finite-behavior instances terminate exactly.
    pub max_path_transitions: Option<usize>,
    /// Hard cap on *executed* transitions across the whole exploration —
    /// the safety valve that turns an oversized instance into
    /// [`ExploreError::TransitionValve`] instead of a lost CI job.
    pub max_total_transitions: u64,
    /// Enable sleep-set partial-order reduction.
    pub sleep_sets: bool,
    /// Enable configuration fingerprinting and subtree memoization.
    pub dedup: bool,
    /// Additionally branch, at every configuration on the fault-free
    /// prefix, into a variant where one mid-operation process crashes and
    /// never steps again (the paper's adversary). Implies sleep sets are
    /// ignored: crash branches are schedule events our commuting argument
    /// does not cover.
    pub single_crash: bool,
}

impl ExploreConfig {
    /// The naive full DFS: no reduction, per-path depth bound only —
    /// the baseline the differential suite compares against.
    pub fn naive(max_path_transitions: usize) -> Self {
        ExploreConfig {
            max_path_transitions: Some(max_path_transitions),
            max_total_transitions: u64::MAX,
            sleep_sets: false,
            dedup: false,
            single_crash: false,
        }
    }

    /// The reduced exploration used for certification: sleep sets + dedup,
    /// no depth bound (cycles close), with a generous transition valve.
    pub fn reduced() -> Self {
        ExploreConfig {
            max_path_transitions: None,
            max_total_transitions: 20_000_000,
            sleep_sets: true,
            dedup: true,
            single_crash: false,
        }
    }
}

/// Why an exploration could not run to completion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExploreError {
    /// The global transition valve tripped: the instance is too large for
    /// exhaustive certification at this budget — shrink the workload or
    /// raise [`ExploreConfig::max_total_transitions`].
    TransitionValve {
        /// Transitions executed when the valve tripped.
        executed: u64,
    },
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::TransitionValve { executed } => write!(
                f,
                "exploration exceeded its transition valve after {executed} executed \
                 transitions — the instance is too large for exhaustive certification"
            ),
        }
    }
}

impl std::error::Error for ExploreError {}

/// Callbacks invoked during exploration.
pub trait ExploreVisitor<S: ObjectSpec, I: Implementation<S>> {
    /// Called at every executed transition (after each invocation or step).
    fn on_config(&mut self, exec: &Executor<S, I>);

    /// Called at the end of every executed maximal path (workload exhausted
    /// and all non-crashed operations returned).
    fn on_path_end(&mut self, exec: &Executor<S, I>);

    /// Called when a path is truncated by the depth bound. Default: ignore.
    fn on_truncated(&mut self, _exec: &Executor<S, I>) {}

    /// Polled after every callback; returning `true` stops the exploration
    /// (the stats are returned with [`ExploreStats::aborted`] set). Default:
    /// never abort.
    fn abort(&self) -> bool {
        false
    }
}

/// Explores all schedules of `workload` from the initial configuration of
/// `exec`, up to `max_transitions` transitions per path — the naive
/// baseline, kept for differential testing and tiny instances.
///
/// Lock-free (but not wait-free) loops make the full schedule tree
/// infinite; the depth bound turns it into a finite tree whose truncated
/// paths are reported via [`ExploreVisitor::on_truncated`]. For wait-free
/// algorithms a generous bound explores the tree exactly. Use
/// [`explore_with`] with [`ExploreConfig::reduced`] for anything larger
/// than a toy workload.
pub fn explore<S, I, V>(
    exec: &Executor<S, I>,
    workload: &Workload<S>,
    max_transitions: usize,
    visitor: &mut V,
) -> ExploreStats
where
    S: ObjectSpec,
    I: Implementation<S>,
    V: ExploreVisitor<S, I>,
{
    explore_with(
        exec,
        workload,
        &ExploreConfig::naive(max_transitions),
        visitor,
    )
    .expect("naive exploration has no transition valve")
}

/// One scheduling decision at a node.
#[derive(Clone, Copy, Debug)]
enum Choice {
    /// Let `pid` take its next transition (invoke if idle, step otherwise).
    Go(Pid),
    /// Crash `pid` mid-operation: it never takes another step.
    Crash(Pid),
}

impl Choice {
    fn pid(&self) -> Pid {
        match self {
            Choice::Go(p) | Choice::Crash(p) => *p,
        }
    }
}

/// What an executed transition did, as far as commuting is concerned.
#[derive(Clone, Copy, Debug)]
enum TransRecord {
    /// An invocation: a history event, dependent with everything.
    Invoke,
    /// A step, with its memory footprint and whether it returned the
    /// pending operation (a response is a history event).
    Step {
        footprint: Option<Footprint>,
        returned: bool,
    },
    /// A crash branch: dependent with everything.
    Crash,
}

/// The independence relation: `true` iff adjacent executions of `a` and
/// `b` (by different processes) commute while preserving the history event
/// sequence, every intermediate memory snapshot, and every audited
/// observation — see the module docs for the argument.
fn independent(a: &TransRecord, b: &TransRecord) -> bool {
    let (
        TransRecord::Step {
            footprint: fa,
            returned: false,
        },
        TransRecord::Step {
            footprint: fb,
            returned: false,
        },
    ) = (a, b)
    else {
        return false;
    };
    match (fa, fb) {
        // A purely local step touches no shared cell.
        (None, _) | (_, None) => true,
        (Some(x), Some(y)) => {
            if x.cell == y.cell {
                // Same cell: only two observations commute.
                x.kind == AccessKind::Read && y.kind == AccessKind::Read
            } else {
                // Different cells: commuting two writes would change the
                // intermediate snapshot an HI audit may observe, so only
                // pairs with at most one write are independent.
                !(x.kind == AccessKind::Write && y.kind == AccessKind::Write)
            }
        }
    }
}

/// Memoized outcome of a fully explored fingerprint.
struct Entry {
    /// `false` while the node is still on the DFS stack (cycle detection).
    done: bool,
    paths: u64,
    truncated: u64,
}

/// One node of the explicit DFS stack: the pre-state plus the iteration
/// cursor over its scheduling choices. The pre-state is *moved* (not
/// cloned) into the last child, so each node costs `children - 1` clones —
/// and a chain of forced single-child nodes costs none.
struct Frame<S: ObjectSpec, I: Implementation<S>> {
    exec: Option<Executor<S, I>>,
    workload: Option<Workload<S>>,
    crashed: u64,
    budget: Option<usize>,
    choices: Vec<Choice>,
    next: usize,
    /// Records of the choices explored from this node so far (for sleep
    /// sets: later siblings put independent earlier siblings to sleep).
    explored: Vec<(Pid, TransRecord)>,
    /// Processes asleep at this node, with the transition record observed
    /// when they were put to sleep.
    sleep: Vec<(Pid, TransRecord)>,
    fp: Option<Fingerprint>,
    paths: u64,
    truncated: u64,
}

enum Entered<S: ObjectSpec, I: Implementation<S>> {
    /// The node resolved without expansion: `(certified paths, certified
    /// truncated)`.
    Resolved(u64, u64),
    Frame(Box<Frame<S, I>>),
    Abort,
}

/// The fingerprint of a configuration: everything that determines both the
/// future of the node and its observable past (see the module docs).
fn fingerprint<S, I>(
    exec: &Executor<S, I>,
    workload: &Workload<S>,
    crashed: u64,
    sleep_mask: u64,
    budget: Option<usize>,
) -> Fingerprint
where
    S: ObjectSpec,
    I: Implementation<S>,
{
    let mut w = FingerprintWriter::new();
    w.write_u64s(&exec.snapshot());
    for pid in (0..exec.num_processes()).map(Pid) {
        w.write_debug(exec.process(pid));
        w.write_debug(&exec.pending_op(pid));
        w.write_u64(workload.remaining_of(pid).count() as u64);
        for op in workload.remaining_of(pid) {
            w.write_debug(op);
        }
    }
    w.write_debug(&exec.history().events());
    w.write_u64(crashed);
    w.write_u64(sleep_mask);
    w.write_u64(budget.map_or(u64::MAX, |b| b as u64));
    w.finish()
}

#[allow(clippy::too_many_arguments)]
fn enter<S, I, V>(
    exec: Executor<S, I>,
    workload: Workload<S>,
    crashed: u64,
    budget: Option<usize>,
    sleep: Vec<(Pid, TransRecord)>,
    cfg: &ExploreConfig,
    sleep_on: bool,
    table: &mut HashMap<Fingerprint, Entry>,
    stats: &mut ExploreStats,
    visitor: &mut V,
) -> Entered<S, I>
where
    S: ObjectSpec,
    I: Implementation<S>,
    V: ExploreVisitor<S, I>,
{
    let enabled: Vec<Pid> = (0..exec.num_processes())
        .map(Pid)
        .filter(|&p| crashed & (1 << p.0) == 0 && (exec.can_step(p) || workload.has_next(p)))
        .collect();
    if enabled.is_empty() {
        stats.paths += 1;
        visitor.on_path_end(&exec);
        if visitor.abort() {
            return Entered::Abort;
        }
        return Entered::Resolved(1, 0);
    }
    if budget == Some(0) {
        stats.truncated += 1;
        visitor.on_truncated(&exec);
        if visitor.abort() {
            return Entered::Abort;
        }
        return Entered::Resolved(0, 1);
    }
    let fp = if cfg.dedup {
        let sleep_mask = sleep.iter().fold(0u64, |m, (p, _)| m | (1 << p.0));
        let fp = fingerprint(&exec, &workload, crashed, sleep_mask, budget);
        match table.get(&fp) {
            Some(e) if e.done => {
                stats.dedup_hits += 1;
                return Entered::Resolved(e.paths, e.truncated);
            }
            Some(_) => {
                stats.cycles += 1;
                return Entered::Resolved(0, 0);
            }
            None => {
                table.insert(
                    fp,
                    Entry {
                        done: false,
                        paths: 0,
                        truncated: 0,
                    },
                );
                Some(fp)
            }
        }
    } else {
        None
    };
    let mut choices = Vec::with_capacity(enabled.len());
    for &p in &enabled {
        if sleep_on && sleep.iter().any(|(sp, _)| *sp == p) {
            stats.sleep_skips += 1;
        } else {
            choices.push(Choice::Go(p));
        }
    }
    if cfg.single_crash && crashed == 0 {
        // Crash branches only for mid-operation processes: crashing an
        // idle process merely truncates its workload, which shorter
        // workloads already cover.
        choices.extend(
            enabled
                .iter()
                .filter(|&&p| exec.can_step(p))
                .map(|&p| Choice::Crash(p)),
        );
    }
    Entered::Frame(Box::new(Frame {
        exec: Some(exec),
        workload: Some(workload),
        crashed,
        budget,
        choices,
        next: 0,
        explored: Vec::new(),
        sleep,
        fp,
        paths: 0,
        truncated: 0,
    }))
}

/// Explores the schedule space of `workload` from the initial configuration
/// of `exec` under `cfg`, driving `visitor` at every executed transition
/// and maximal path.
///
/// The exploration is an explicit-stack DFS (deep bounds cannot overflow
/// the thread stack) that clones the executor once per *extra* child — the
/// last child of each node receives the parent's state by move.
///
/// # Errors
///
/// [`ExploreError::TransitionValve`] if more than
/// [`ExploreConfig::max_total_transitions`] transitions execute.
pub fn explore_with<S, I, V>(
    exec: &Executor<S, I>,
    workload: &Workload<S>,
    cfg: &ExploreConfig,
    visitor: &mut V,
) -> Result<ExploreStats, ExploreError>
where
    S: ObjectSpec,
    I: Implementation<S>,
    V: ExploreVisitor<S, I>,
{
    assert!(
        exec.num_processes() <= 64,
        "the explorer's crash/sleep masks support at most 64 processes"
    );
    // Crash branches are schedule events the commuting argument does not
    // cover, so they disable sleep sets (dedup remains sound: the crash
    // set is part of the fingerprint).
    let sleep_on = cfg.sleep_sets && !cfg.single_crash;
    let mut stats = ExploreStats::default();
    let mut table: HashMap<Fingerprint, Entry> = HashMap::new();
    let mut stack: Vec<Box<Frame<S, I>>> = Vec::new();
    let mut root = (0u64, 0u64);

    let add_to_parent =
        |stack: &mut Vec<Box<Frame<S, I>>>, root: &mut (u64, u64), paths: u64, truncated: u64| {
            match stack.last_mut() {
                Some(parent) => {
                    parent.paths = parent.paths.saturating_add(paths);
                    parent.truncated = parent.truncated.saturating_add(truncated);
                }
                None => {
                    root.0 = root.0.saturating_add(paths);
                    root.1 = root.1.saturating_add(truncated);
                }
            }
        };

    match enter(
        exec.clone(),
        workload.clone(),
        0,
        cfg.max_path_transitions,
        Vec::new(),
        cfg,
        sleep_on,
        &mut table,
        &mut stats,
        visitor,
    ) {
        Entered::Resolved(p, t) => root = (p, t),
        Entered::Abort => stats.aborted = true,
        Entered::Frame(f) => stack.push(f),
    }

    'dfs: while let Some(top) = stack.last_mut() {
        if top.next >= top.choices.len() {
            let f = stack.pop().expect("stack top exists");
            if let Some(fp) = f.fp {
                table.insert(
                    fp,
                    Entry {
                        done: true,
                        paths: f.paths,
                        truncated: f.truncated,
                    },
                );
            }
            add_to_parent(&mut stack, &mut root, f.paths, f.truncated);
            continue;
        }
        let idx = top.next;
        top.next += 1;
        let is_last = top.next == top.choices.len();
        let choice = top.choices[idx];
        let pid = choice.pid();
        // The pre-state: cloned for all children but the last, which takes
        // it by move.
        let (mut exec2, mut workload2) = if is_last {
            (
                top.exec.take().expect("pre-state present"),
                top.workload.take().expect("pre-state present"),
            )
        } else {
            (
                top.exec.as_ref().expect("pre-state present").clone(),
                top.workload.as_ref().expect("pre-state present").clone(),
            )
        };
        let mut crashed2 = top.crashed;
        let budget2;
        let record;
        match choice {
            Choice::Crash(p) => {
                crashed2 |= 1 << p.0;
                stats.crash_branches += 1;
                record = TransRecord::Crash;
                budget2 = top.budget;
            }
            Choice::Go(p) => {
                if exec2.can_step(p) {
                    let done = exec2.step(p);
                    record = TransRecord::Step {
                        footprint: exec2.last_access(),
                        returned: done.is_some(),
                    };
                } else {
                    let op = workload2.pop(p).expect("enabled process has no work");
                    exec2.invoke(p, op);
                    record = TransRecord::Invoke;
                }
                stats.transitions += 1;
                if stats.transitions > cfg.max_total_transitions {
                    return Err(ExploreError::TransitionValve {
                        executed: stats.transitions,
                    });
                }
                visitor.on_config(&exec2);
                if visitor.abort() {
                    stats.aborted = true;
                    break 'dfs;
                }
                budget2 = top.budget.map(|b| b - 1);
            }
        }
        let child_sleep: Vec<(Pid, TransRecord)> = if sleep_on {
            top.sleep
                .iter()
                .chain(top.explored.iter())
                .filter(|(p2, r2)| *p2 != pid && independent(r2, &record))
                .cloned()
                .collect()
        } else {
            Vec::new()
        };
        top.explored.push((pid, record));
        match enter(
            exec2,
            workload2,
            crashed2,
            budget2,
            child_sleep,
            cfg,
            sleep_on,
            &mut table,
            &mut stats,
            visitor,
        ) {
            Entered::Resolved(p, t) => {
                add_to_parent(&mut stack, &mut root, p, t);
            }
            Entered::Abort => {
                stats.aborted = true;
                break 'dfs;
            }
            Entered::Frame(f) => stack.push(f),
        }
    }

    stats.certified_paths = root.0;
    stats.certified_truncated = root.1;
    if stats.aborted {
        // The accumulators are meaningless mid-flight; report what ran.
        stats.certified_paths = stats.paths;
        stats.certified_truncated = stats.truncated;
    }
    stats.distinct_configs = table.len() as u64;
    Ok(stats)
}

/// A visitor built from two closures (configurations, path ends).
///
/// Useful when the exploration only needs counting or snapshot collection;
/// implement [`ExploreVisitor`] directly when truncation handling matters.
pub fn visitor<S, I, F, G>(on_config: F, on_path_end: G) -> ClosureVisitor<F, G>
where
    S: ObjectSpec,
    I: Implementation<S>,
    F: FnMut(&Executor<S, I>),
    G: FnMut(&Executor<S, I>),
{
    ClosureVisitor {
        on_config,
        on_path_end,
    }
}

/// The visitor type returned by [`visitor`].
#[derive(Debug)]
pub struct ClosureVisitor<F, G> {
    on_config: F,
    on_path_end: G,
}

impl<S, I, F, G> ExploreVisitor<S, I> for ClosureVisitor<F, G>
where
    S: ObjectSpec,
    I: Implementation<S>,
    F: FnMut(&Executor<S, I>),
    G: FnMut(&Executor<S, I>),
{
    fn on_config(&mut self, exec: &Executor<S, I>) {
        (self.on_config)(exec)
    }

    fn on_path_end(&mut self, exec: &Executor<S, I>) {
        (self.on_path_end)(exec)
    }
}
