//! Bounded exhaustive exploration of schedules (small-scope model checking).
//!
//! For a small workload, the explorer enumerates *every* interleaving of
//! invocations and steps up to a depth bound, forking the executor at each
//! choice point. Combined with the HI monitors and the linearizability
//! checker this gives exhaustive verification of the paper's algorithms on
//! small instances — the regime where their subtle interleavings (e.g.
//! Algorithm 4's flag/B protocol) actually live.

use hi_core::{ObjectSpec, Pid};
use hi_sim::{Executor, Implementation, Workload};

/// Statistics of one exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExploreStats {
    /// Number of maximal paths enumerated.
    pub paths: u64,
    /// Number of transitions (invocations + steps) taken across all paths.
    pub transitions: u64,
    /// Number of paths cut off by the depth bound.
    pub truncated: u64,
}

/// Callbacks invoked during exploration.
pub trait ExploreVisitor<S: ObjectSpec, I: Implementation<S>> {
    /// Called at every reachable configuration (after each transition).
    fn on_config(&mut self, exec: &Executor<S, I>);

    /// Called at the end of every maximal path (workload exhausted and all
    /// operations returned).
    fn on_path_end(&mut self, exec: &Executor<S, I>);

    /// Called when a path is truncated by the depth bound. Default: ignore.
    fn on_truncated(&mut self, _exec: &Executor<S, I>) {}
}

/// Explores all schedules of `workload` from the initial configuration of
/// `exec`, up to `max_transitions` transitions per path.
///
/// Lock-free (but not wait-free) loops make the full schedule tree infinite;
/// the depth bound turns it into a finite tree whose truncated paths are
/// reported via [`ExploreVisitor::on_truncated`]. For wait-free algorithms a
/// generous bound explores the tree exactly.
///
/// # Example
///
/// Counting schedules of two single-step operations: the two interleavings
/// of their invocations times one order of their steps each — see the
/// crate's tests for concrete numbers.
pub fn explore<S, I, V>(
    exec: &Executor<S, I>,
    workload: &Workload<S>,
    max_transitions: usize,
    visitor: &mut V,
) -> ExploreStats
where
    S: ObjectSpec,
    I: Implementation<S>,
    V: ExploreVisitor<S, I>,
{
    let mut stats = ExploreStats::default();
    dfs(exec, workload, max_transitions, visitor, &mut stats);
    stats
}

fn dfs<S, I, V>(
    exec: &Executor<S, I>,
    workload: &Workload<S>,
    budget: usize,
    visitor: &mut V,
    stats: &mut ExploreStats,
) where
    S: ObjectSpec,
    I: Implementation<S>,
    V: ExploreVisitor<S, I>,
{
    let enabled: Vec<Pid> = (0..exec.num_processes())
        .map(Pid)
        .filter(|&p| exec.can_step(p) || workload.has_next(p))
        .collect();
    if enabled.is_empty() {
        stats.paths += 1;
        visitor.on_path_end(exec);
        return;
    }
    if budget == 0 {
        stats.paths += 1;
        stats.truncated += 1;
        visitor.on_truncated(exec);
        return;
    }
    for pid in enabled {
        let mut exec2 = exec.clone();
        let mut workload2 = workload.clone();
        if exec2.can_step(pid) {
            exec2.step(pid);
        } else {
            let op = workload2.pop(pid).expect("enabled process has no work");
            exec2.invoke(pid, op);
        }
        stats.transitions += 1;
        visitor.on_config(&exec2);
        dfs(&exec2, &workload2, budget - 1, visitor, stats);
    }
}

/// A visitor built from two closures (configurations, path ends).
///
/// Useful when the exploration only needs counting or snapshot collection;
/// implement [`ExploreVisitor`] directly when truncation handling matters.
pub fn visitor<S, I, F, G>(on_config: F, on_path_end: G) -> ClosureVisitor<F, G>
where
    S: ObjectSpec,
    I: Implementation<S>,
    F: FnMut(&Executor<S, I>),
    G: FnMut(&Executor<S, I>),
{
    ClosureVisitor {
        on_config,
        on_path_end,
    }
}

/// The visitor type returned by [`visitor`].
#[derive(Debug)]
pub struct ClosureVisitor<F, G> {
    on_config: F,
    on_path_end: G,
}

impl<S, I, F, G> ExploreVisitor<S, I> for ClosureVisitor<F, G>
where
    S: ObjectSpec,
    I: Implementation<S>,
    F: FnMut(&Executor<S, I>),
    G: FnMut(&Executor<S, I>),
{
    fn on_config(&mut self, exec: &Executor<S, I>) {
        (self.on_config)(exec)
    }

    fn on_path_end(&mut self, exec: &Executor<S, I>) {
        (self.on_path_end)(exec)
    }
}
