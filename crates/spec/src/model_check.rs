//! Exhaustive small-scope certification of [`SimObject`]s.
//!
//! [`check_sim_object`](crate::check_sim_object) drives one seeded schedule;
//! [`check_sim_object_exhaustive`] drives **all** of them. It runs the
//! reduced schedule-space explorer ([`crate::explore`]) over a role-mirrored
//! workload and applies the full oracle stack along the way:
//!
//! * the object's [`SimAudit`] at *every* reachable configuration its
//!   observation model permits — one [`HiMonitor`] (or direct-canonicity
//!   observer) shared across all branches, which is exactly the paper's
//!   definition: history independence quantifies over *pairs* of
//!   executions, so observations from different schedules must agree on a
//!   single canonical map;
//! * Wing–Gong linearization of every distinct maximal-path history;
//! * optionally ([`ExhaustiveConfig::with_crashes`]) a single-crash variant
//!   branched at every choice point of the fault-free prefix.
//!
//! The result is an [`ExhaustiveReport`] carrying the exploration stats
//! (distinct configurations, certified schedules, reduction ratio) next to
//! the oracle counts — the per-scenario artifact the registry's model-check
//! lane serializes for CI.

use std::collections::HashSet;

use hi_core::{EnumerableSpec, FingerprintWriter, ObjectSpec};
use hi_sim::{Executor, Implementation, StepObserver, Workload};

use crate::explore::{explore_with, ExploreConfig, ExploreStats, ExploreVisitor};
use crate::hi::HiMonitor;
use crate::lin::{linearize, LinOptions};
use crate::sim_object::{model_for, sim_workload, DirectCanonicalObserver, SimAudit, SimObject};

/// How [`check_sim_object_exhaustive`] generates and explores its workload.
#[derive(Clone, Copy, Debug)]
pub struct ExhaustiveConfig {
    /// Seed of the role-mirrored workload (same generation as
    /// [`check_sim_object`](crate::check_sim_object), so a failing instance
    /// reproduces from its seed).
    pub seed: u64,
    /// Operations per process. Exhaustive exploration is exponential in
    /// this; 1–2 is the small-scope regime.
    pub ops_per_pid: usize,
    /// The exploration strategy; defaults to [`ExploreConfig::reduced`].
    pub explore: ExploreConfig,
}

impl ExhaustiveConfig {
    /// The standard small-scope lane: reduced exploration of `ops_per_pid`
    /// operations per process under `seed`.
    pub fn new(seed: u64, ops_per_pid: usize) -> Self {
        ExhaustiveConfig {
            seed,
            ops_per_pid,
            explore: ExploreConfig::reduced(),
        }
    }

    /// Additionally branches a single crash at every choice point of the
    /// fault-free prefix (disables sleep sets — see
    /// [`ExploreConfig::single_crash`]).
    pub fn with_crashes(mut self) -> Self {
        self.explore.single_crash = true;
        self
    }
}

/// Result of a successful exhaustive certification. `Eq`, so determinism
/// suites can compare runs verbatim.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExhaustiveReport {
    /// Operations in the generated workload (across all processes).
    pub ops: usize,
    /// The exploration statistics (executed/certified paths, transitions,
    /// distinct configurations, reduction counters).
    pub stats: ExploreStats,
    /// Observation points the HI audit examined (0 iff not audited).
    pub hi_points: u64,
    /// Whether an HI audit ran (`false` only for [`SimAudit::LinOnly`]).
    pub audited: bool,
    /// Distinct abstract states the monitor observed (0 for direct or
    /// lin-only audits, which keep no state map).
    pub distinct_states: u64,
    /// Distinct maximal-path histories handed to the linearizer. Histories
    /// are deduplicated by fingerprint: schedule reduction makes many paths
    /// end in the same history.
    pub linearized: u64,
}

impl ExhaustiveReport {
    /// Schedules certified per schedule executed — the partial-order /
    /// dedup reduction factor (1.0 means no reduction).
    pub fn reduction_ratio(&self) -> f64 {
        if self.stats.paths == 0 {
            return 1.0;
        }
        self.stats.certified_paths as f64 / self.stats.paths as f64
    }

    /// Renders the report as one JSON object (hand-rolled: the workspace
    /// vendors no serde), tagged with the scenario name and parameters.
    pub fn to_json(&self, scenario: &str, params: &str) -> String {
        let s = &self.stats;
        format!(
            concat!(
                "{{\"scenario\":\"{}\",\"params\":\"{}\",\"ops\":{},",
                "\"paths\":{},\"certified_paths\":{},\"truncated\":{},",
                "\"transitions\":{},\"distinct_configs\":{},\"dedup_hits\":{},",
                "\"sleep_skips\":{},\"cycles\":{},\"crash_branches\":{},",
                "\"hi_points\":{},\"audited\":{},\"distinct_states\":{},",
                "\"linearized\":{},\"reduction_ratio\":{:.2}}}"
            ),
            scenario.escape_default(),
            params.escape_default(),
            self.ops,
            s.paths,
            s.certified_paths,
            s.truncated,
            s.transitions,
            s.distinct_configs,
            s.dedup_hits,
            s.sleep_skips,
            s.cycles,
            s.crash_branches,
            self.hi_points,
            self.audited,
            self.distinct_states,
            self.linearized,
            self.reduction_ratio(),
        )
    }
}

/// The audit half of the exploration visitor.
enum AuditState<S: ObjectSpec, I: Implementation<S>> {
    None,
    Monitor {
        monitor: HiMonitor<S::State>,
        oracle: crate::sim_object::StateOracle<S, I>,
    },
    Direct(DirectCanonicalObserver),
}

/// Drives the explorer and applies the oracle stack at every callback.
struct ExhaustiveVisitor<S: ObjectSpec, I: Implementation<S>> {
    spec: S,
    audit: AuditState<S, I>,
    /// Fingerprints of maximal-path histories already linearized.
    lin_seen: HashSet<u128>,
    linearized: u64,
    violation: Option<String>,
}

impl<S: ObjectSpec, I: Implementation<S>> ExhaustiveVisitor<S, I> {
    fn audit_config(&mut self, exec: &Executor<S, I>) {
        match &mut self.audit {
            AuditState::None => {}
            AuditState::Monitor { monitor, oracle } => {
                if monitor.model().permits(exec) {
                    let state = oracle(exec);
                    monitor.observe(exec, state);
                    if let Some(v) = monitor.violation() {
                        self.violation = Some(v.to_string());
                    }
                }
            }
            AuditState::Direct(observer) => {
                observer.observe(exec);
                if let Some(v) = observer.violation() {
                    self.violation = Some(v.to_string());
                }
            }
        }
    }
}

impl<S: ObjectSpec, I: Implementation<S>> ExploreVisitor<S, I> for ExhaustiveVisitor<S, I> {
    fn on_config(&mut self, exec: &Executor<S, I>) {
        self.audit_config(exec);
    }

    fn on_path_end(&mut self, exec: &Executor<S, I>) {
        let mut w = FingerprintWriter::new();
        w.write_debug(&exec.history().events());
        if !self.lin_seen.insert(w.finish().0) {
            return;
        }
        self.linearized += 1;
        if let Err(e) = linearize(&self.spec, exec.history(), &LinOptions::default()) {
            self.violation = Some(format!("maximal path is not linearizable: {e}"));
        }
    }

    fn on_truncated(&mut self, _exec: &Executor<S, I>) {
        // Truncated paths are reported in the stats; the reduced lane runs
        // without a depth bound, so they only occur under explicit bounds.
    }

    fn abort(&self) -> bool {
        self.violation.is_some()
    }
}

/// Exhaustively certifies a [`SimObject`] on a small-scope instance: every
/// schedule of a role-mirrored workload is explored (up to provably
/// behavior-preserving reduction), the HI audit runs at every permitted
/// reachable configuration against one shared canonical map, and every
/// distinct maximal-path history is linearized.
///
/// # Panics
///
/// Panics if the object's metadata is inconsistent: role count ≠ process
/// count, or audit model ≠ [`model_for`] of the declared
/// [`HiLevel`](hi_core::HiLevel).
///
/// # Errors
///
/// The first failure among: the transition valve (instance too large), an
/// HI violation at any reachable permitted configuration, a vacuous audit
/// (zero observation points while claiming an HI level), a
/// non-linearizable maximal path, or an exploration that executed no
/// maximal path at all — rendered, so heterogeneous scenarios surface them
/// uniformly.
pub fn check_sim_object_exhaustive<S, O>(
    obj: &O,
    cfg: &ExhaustiveConfig,
) -> Result<ExhaustiveReport, String>
where
    S: EnumerableSpec,
    O: SimObject<S>,
{
    let imp = obj.implementation();
    let roles = obj.roles();
    assert_eq!(
        roles.num_handles(),
        imp.num_processes(),
        "role discipline {roles:?} disagrees with the step machine's process count"
    );
    let audit = obj.hi_audit();
    assert_eq!(
        audit.model(),
        model_for(obj.hi_level()),
        "audit {audit:?} does not match the declared HI level {:?}",
        obj.hi_level()
    );
    let workload: Workload<S> = sim_workload(obj.spec(), roles, cfg.ops_per_pid, cfg.seed);
    let ops = workload.remaining();
    let exec = Executor::new(imp.clone());
    let mut visitor = ExhaustiveVisitor {
        spec: obj.spec().clone(),
        audit: match audit {
            SimAudit::LinOnly => AuditState::None,
            SimAudit::Monitor { model, oracle } => AuditState::Monitor {
                monitor: HiMonitor::new(model),
                oracle,
            },
            SimAudit::DirectCanonical { model, oracle } => {
                AuditState::Direct(DirectCanonicalObserver::new(model, oracle))
            }
        },
        lin_seen: HashSet::new(),
        linearized: 0,
        violation: None,
    };
    let stats =
        explore_with(&exec, &workload, &cfg.explore, &mut visitor).map_err(|e| e.to_string())?;
    if let Some(v) = visitor.violation {
        return Err(v);
    }
    let (hi_points, audited, distinct_states) = match &visitor.audit {
        AuditState::None => (0, false, 0),
        AuditState::Monitor { monitor, .. } => {
            (monitor.points(), true, monitor.canonical_map().len() as u64)
        }
        AuditState::Direct(observer) => (observer.points(), true, 0),
    };
    if audited && hi_points == 0 {
        return Err("the exhaustive HI audit examined no observation point".to_string());
    }
    if stats.paths == 0 {
        return Err("the exploration executed no maximal path".to_string());
    }
    Ok(ExhaustiveReport {
        ops,
        stats,
        hi_points,
        audited,
        distinct_states,
        linearized: visitor.linearized,
    })
}
