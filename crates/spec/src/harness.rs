//! One-call check harness: run a workload under a scheduler, monitor history
//! independence at every permitted observation point, then verify the
//! history linearizes.

use std::error::Error;
use std::fmt;

use hi_core::{HiViolation, ObjectSpec};
use hi_sim::{
    run_workload, Executor, Implementation, MemSnapshot, RunError, Scheduler, StepObserver,
    Workload,
};

use crate::hi::{single_mutator_state, HiMonitor, ObservationModel};
use crate::lin::{linearize, LinError, LinOptions, Linearization};

/// Result of a successful [`check_run`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckReport<Q> {
    /// The linearization witness for the produced history.
    pub lin: Linearization<Q>,
    /// Number of observation points the HI monitor examined.
    pub hi_points: u64,
    /// Total steps taken by the execution.
    pub steps: u64,
    /// `mem(C)` of the final (quiescent) configuration.
    pub final_snapshot: MemSnapshot,
}

/// Why a [`check_run`] failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckError<Q> {
    /// The execution did not finish within the step budget.
    Run(RunError),
    /// The produced history is not linearizable (or the check gave up).
    Lin(LinError),
    /// History independence was violated.
    Hi(HiViolation<Q, MemSnapshot>),
}

impl<Q: fmt::Debug> fmt::Display for CheckError<Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Run(e) => write!(f, "run error: {e}"),
            CheckError::Lin(e) => write!(f, "linearizability: {e}"),
            CheckError::Hi(v) => write!(f, "history independence: {v}"),
        }
    }
}

impl<Q: fmt::Debug> Error for CheckError<Q> {}

struct MonitorObserver<'a, S: ObjectSpec, F> {
    monitor: &'a mut HiMonitor<S::State>,
    oracle: F,
}

impl<'a, S, I, F> StepObserver<S, I> for MonitorObserver<'a, S, F>
where
    S: ObjectSpec,
    I: Implementation<S>,
    F: FnMut(&Executor<S, I>) -> S::State,
{
    fn observe(&mut self, exec: &Executor<S, I>) {
        if self.monitor.model().permits(exec) {
            let state = (self.oracle)(exec);
            self.monitor.observe(exec, state);
        }
    }
}

/// Runs `workload` on a fresh executor of `imp` under `sched`, monitoring HI
/// under `model` with the abstract state supplied by `oracle` at each
/// permitted point, and finally checks linearizability of the full history.
///
/// # Errors
///
/// The first failure among: step-budget exhaustion, an HI violation, or a
/// non-linearizable history.
pub fn check_run<S, I, Sch, F>(
    imp: &I,
    workload: Workload<S>,
    sched: &mut Sch,
    model: ObservationModel,
    max_steps: u64,
    mut oracle: F,
) -> Result<CheckReport<S::State>, CheckError<S::State>>
where
    S: ObjectSpec,
    I: Implementation<S>,
    Sch: Scheduler,
    F: FnMut(&Executor<S, I>) -> S::State,
{
    let mut exec = Executor::new(imp.clone());
    let mut monitor = HiMonitor::new(model);
    {
        let mut observer = MonitorObserver::<S, _> {
            monitor: &mut monitor,
            oracle: &mut oracle,
        };
        run_workload(&mut exec, workload, sched, &mut observer, max_steps)
            .map_err(CheckError::Run)?;
    }
    let hi_points = monitor.points();
    if let Some(v) = monitor.violation() {
        return Err(CheckError::Hi(v.clone()));
    }
    let lin =
        linearize(exec.spec(), exec.history(), &LinOptions::default()).map_err(CheckError::Lin)?;
    Ok(CheckReport {
        lin,
        hi_points,
        steps: exec.steps(),
        final_snapshot: exec.snapshot(),
    })
}

/// [`check_run`] specialized to single-mutator implementations (SWSR
/// registers, the positional queue): the abstract state at any
/// state-quiescent point is the fold of the completed state-changing
/// operations in invocation order.
pub fn check_run_single_mutator<S, I, Sch>(
    imp: &I,
    workload: Workload<S>,
    sched: &mut Sch,
    model: ObservationModel,
    max_steps: u64,
) -> Result<CheckReport<S::State>, CheckError<S::State>>
where
    S: ObjectSpec,
    I: Implementation<S>,
    Sch: Scheduler,
{
    let spec = imp.spec().clone();
    check_run(
        imp,
        workload,
        sched,
        model,
        max_steps,
        move |exec: &Executor<S, I>| single_mutator_state(&spec, exec.history()),
    )
}
