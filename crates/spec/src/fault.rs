//! The generic fault-injection checker: crash/stall sweeps over any
//! [`SimObject`], with per-progress-class enforcement.
//!
//! The paper's adversary is a *memory-observing* one: it may cut an
//! execution short (crash processes, who then never take another step) and
//! examine the raw memory that remains. State-quiescent history independence
//! (Definition 7) is exactly the claim that this snapshot reveals nothing
//! beyond the abstract state. This module makes that adversary executable:
//!
//! 1. a fault-free **baseline** run measures how many transitions each
//!    process takes under the seeded scheduler;
//! 2. a **plan set** is derived: every process crashed at its first, middle,
//!    last and seeded-random transition points, every process crashed
//!    *except one* (the wait-freedom scenario), and every process stalled
//!    mid-run (a pure schedule perturbation no progress class may fail);
//! 3. every plan is run by [`run_fault_plan`], which (a) verifies survivors
//!    complete within a step budget unless the declared
//!    [`Progress`](hi_core::Progress) class tolerates wedging on that plan, (b) re-runs the
//!    object's [`SimAudit`] at the observation points its model permits —
//!    including the post-crash ones, the adversary's snapshot — and
//!    (c) linearizes the truncated history; for [`Progress::Helping`](hi_core::Progress::Helping)
//!    objects the final memory is decoded and the history must linearize
//!    *to that exact state* ([`linearize_to`]), which is what makes
//!    "a crashed process's announced operation is applied exactly once"
//!    checkable: an operation applied twice (or a completed one lost)
//!    yields a state no legal linearization reaches.
//!
//! [`check_sim_object_faults`] is the sweep entry point the scenario
//! registry drives; [`run_fault_plan`] is the single-plan core for
//! dedicated sweeps (e.g. crashing a hash-table updater at every step of a
//! multi-slot rewrite).

use hi_core::{EnumerableSpec, Pid, SplitMix64};
use hi_sim::{run_workload_with_faults, Executor, FaultPlan, Faulty, Implementation, Seeded};

use crate::hi::HiMonitor;
use crate::lin::{linearize, linearize_to, LinOptions};
use crate::sim_object::{model_for, sim_workload, SimAudit, SimObject};

/// Knobs of the fault sweep. Construct with [`FaultSweepConfig::new`] and
/// override fields as needed.
#[derive(Clone, Copy, Debug)]
pub struct FaultSweepConfig {
    /// Seed for the workload, the scheduler and the sampled crash points.
    /// Equal seeds give byte-for-byte equal sweeps.
    pub seed: u64,
    /// Operations per role in the generated workload.
    pub ops_per_pid: usize,
    /// Hard transition cap for the baseline run and ceiling for per-plan
    /// budgets.
    pub max_steps: u64,
    /// Seeded-random crash points sampled per process, on top of the fixed
    /// first/middle/last points.
    pub extra_crash_points: usize,
    /// How many global transitions a stalled process is held off the
    /// schedule.
    pub stall_hold: u64,
    /// Per-plan budget = `baseline transitions × budget_factor +
    /// budget_slack`, capped at [`max_steps`](Self::max_steps).
    pub budget_factor: u64,
    /// See [`budget_factor`](Self::budget_factor).
    pub budget_slack: u64,
    /// Options for the linearizability searches.
    pub lin: LinOptions,
}

impl FaultSweepConfig {
    /// A config with the standard sweep shape.
    pub fn new(seed: u64, ops_per_pid: usize, max_steps: u64) -> Self {
        FaultSweepConfig {
            seed,
            ops_per_pid,
            max_steps,
            extra_crash_points: 3,
            stall_hold: 48,
            budget_factor: 8,
            budget_slack: 10_000,
            lin: LinOptions::default(),
        }
    }
}

/// Result of a successful [`check_sim_object_faults`] sweep. `Eq`, so
/// determinism suites can compare two sweeps under the same seed verbatim.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultSweepReport {
    /// Plans containing at least one crash (≥ one per role by
    /// construction).
    pub crash_plans: usize,
    /// Stall-only plans (exactly one per role).
    pub stall_plans: usize,
    /// Crash plans that caught a process mid-operation (its operation was
    /// still pending at the crash) — the interesting ones.
    pub crashed_mid_op: usize,
    /// Tolerated wedges: crash plans after which the survivors did not
    /// finish within budget. Always 0 unless the object declares
    /// [`Progress::Blocking`](hi_core::Progress::Blocking).
    pub wedged: usize,
    /// HI observation points examined across all fault runs.
    pub hi_points: u64,
    /// The subset of [`hi_points`](Self::hi_points) observed *after* a
    /// crash activated — the adversary's memory snapshots.
    pub post_crash_hi_points: u64,
    /// Exactly-once (state-targeted) linearizations performed; > 0 for
    /// every [`Progress::Helping`](hi_core::Progress::Helping) object.
    pub exactly_once_checks: usize,
    /// Operations in the induced histories, summed over all plans.
    pub ops: usize,
}

/// What one fault plan did to one object — the per-plan slice of a
/// [`FaultSweepReport`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlanOutcome {
    /// Whether the run drained the survivors' workload within budget
    /// (`false` only for a tolerated [`Progress::Blocking`](hi_core::Progress::Blocking) wedge).
    pub completed: bool,
    /// Whether some crashed process was caught mid-operation.
    pub crashed_mid_op: bool,
    /// HI observation points examined during this run.
    pub hi_points: u64,
    /// The subset observed after a crash activated.
    pub post_crash_hi_points: u64,
    /// Whether the exactly-once (state-targeted) linearization ran.
    pub exactly_once_checked: bool,
    /// Operations in the induced (possibly truncated) history.
    pub ops: usize,
}

/// Runs `obj` under its role-mirrored seeded workload with the faults of
/// `plan` injected, enforcing the object's declared [`Progress`](hi_core::Progress) class and
/// auditing its [`SimAudit`] at every permitted observation point —
/// including the post-crash ones.
///
/// Enforcement per class, when the run exceeds `budget` transitions:
///
/// - [`Progress::WaitFree`](hi_core::Progress::WaitFree), [`Progress::LockFree`](hi_core::Progress::LockFree), [`Progress::Helping`](hi_core::Progress::Helping):
///   an error — survivors must complete once crashed peers are static (and
///   wait-free sweeps include plans crashing *all* peers);
/// - [`Progress::Blocking`](hi_core::Progress::Blocking): tolerated for plans containing a crash
///   (reported as `completed: false`), but still an error for stall-only
///   plans — a stall is a legal schedule, not a failure.
///
/// Whatever the class, the truncated history must linearize, and for
/// [`Progress::Helping`](hi_core::Progress::Helping) objects with a state-decoding audit the history
/// must linearize *to the decoded final state* — the exactly-once check.
///
/// # Errors
///
/// A rendered description of the first failure: budget exhaustion the class
/// forbids, an HI violation at an observation point, a non-linearizable
/// truncated history, or a decoded final state no linearization reaches.
///
/// # Panics
///
/// Panics on inconsistent object metadata (role count ≠ process count,
/// audit model ≠ [`model_for`] of the declared level).
pub fn run_fault_plan<S, O>(
    obj: &O,
    plan: &FaultPlan,
    cfg: &FaultSweepConfig,
    budget: u64,
) -> Result<PlanOutcome, String>
where
    S: EnumerableSpec,
    O: SimObject<S>,
{
    let imp = obj.implementation();
    let roles = obj.roles();
    let n = roles.num_handles();
    assert_eq!(
        n,
        imp.num_processes(),
        "role discipline {roles:?} disagrees with the step machine's process count"
    );
    let audit = obj.hi_audit();
    assert_eq!(
        audit.model(),
        model_for(obj.hi_level()),
        "audit {audit:?} does not match the declared HI level {:?}",
        obj.hi_level()
    );
    let progress = obj.progress();
    let workload = sim_workload(obj.spec(), roles, cfg.ops_per_pid, cfg.seed);

    let mut exec = Executor::new(imp.clone());
    let mut faulty = Faulty::new(Seeded::new(cfg.seed), plan.clone(), n);
    let mut hi_points = 0u64;
    let mut post_crash_hi_points = 0u64;
    // The final memory decoded into an abstract state, when the audit can.
    let mut decoded_final: Option<S::State> = None;

    let run = match audit {
        SimAudit::LinOnly => {
            run_workload_with_faults(&mut exec, workload, &mut faulty, |_e, _f| {}, budget)
        }
        SimAudit::Monitor { model, mut oracle } => {
            let mut monitor = HiMonitor::new(model);
            let run = run_workload_with_faults(
                &mut exec,
                workload,
                &mut faulty,
                |e, f| {
                    if model.permits(e) {
                        hi_points += 1;
                        if f.any_crash_active() {
                            post_crash_hi_points += 1;
                        }
                        let state = oracle(e);
                        monitor.record(state, e.snapshot());
                    }
                },
                budget,
            );
            monitor
                .into_result()
                .map_err(|v| format!("plan {plan:?}: {v}"))?;
            if run.is_ok() {
                decoded_final = Some(oracle(&exec));
            }
            run
        }
        SimAudit::DirectCanonical { model, mut oracle } => {
            let mut violation: Option<String> = None;
            let run = run_workload_with_faults(
                &mut exec,
                workload,
                &mut faulty,
                |e, f| {
                    if model.permits(e) {
                        hi_points += 1;
                        if f.any_crash_active() {
                            post_crash_hi_points += 1;
                        }
                        if violation.is_none() {
                            let view = oracle(&e.snapshot());
                            if view.observed != view.canonical {
                                violation = Some(format!(
                                    "at a permitted ({:?}) point, memory {:?} is not the \
                                     canonical representation {:?} of state {}",
                                    model, view.observed, view.canonical, view.state
                                ));
                            }
                        }
                    }
                },
                budget,
            );
            if let Some(v) = violation {
                return Err(format!("plan {plan:?}: {v}"));
            }
            run
        }
    };

    let completed = match run {
        Ok(()) => true,
        Err(e) => {
            // A stall is a legal schedule: no class may fail it. A crash may
            // legitimately wedge a Blocking implementation.
            if progress.completes_under_crashes() || !plan.has_crash() {
                return Err(format!(
                    "plan {plan:?}: survivors failed to complete within {budget} transitions \
                     ({progress:?} forbids wedging here): {e}"
                ));
            }
            false
        }
    };

    let crashed_mid_op = (0..n).any(|p| faulty.crashed(Pid(p)) && exec.can_step(Pid(p)));

    // The truncated history must linearize; for helping objects, to the
    // exact state the surviving memory decodes to.
    let mut exactly_once_checked = false;
    match (&decoded_final, progress.helps() && completed) {
        (Some(target), true) => {
            exactly_once_checked = true;
            linearize_to(exec.spec(), exec.history(), target, &cfg.lin).map_err(|e| {
                format!(
                    "plan {plan:?}: final memory decodes to state {target:?}, which no \
                     linearization of the truncated history reaches — a crashed process's \
                     announced operation must be applied exactly once ({e})"
                )
            })?;
        }
        _ => {
            linearize(exec.spec(), exec.history(), &cfg.lin)
                .map_err(|e| format!("plan {plan:?}: truncated history does not linearize: {e}"))?;
        }
    }

    Ok(PlanOutcome {
        completed,
        crashed_mid_op,
        hi_points,
        post_crash_hi_points,
        exactly_once_checked,
        ops: exec.history().records().len(),
    })
}

/// The fault-sweep mode of [`check_sim_object`](crate::check_sim_object):
/// derives a crash/stall plan set from a fault-free baseline (every role
/// crashed at sampled points of its own transition count, every role as the
/// sole survivor, every role stalled mid-run) and pushes each plan through
/// [`run_fault_plan`].
///
/// # Errors
///
/// The first per-plan failure (see [`run_fault_plan`]), a baseline that does
/// not complete within `cfg.max_steps`, or a vacuous sweep: an audited
/// object whose sweep produced no observation points at all, or none in the
/// post-crash world the adversary actually examines.
///
/// # Panics
///
/// Panics on inconsistent object metadata, as [`run_fault_plan`] does.
pub fn check_sim_object_faults<S, O>(
    obj: &O,
    cfg: &FaultSweepConfig,
) -> Result<FaultSweepReport, String>
where
    S: EnumerableSpec,
    O: SimObject<S>,
{
    let imp = obj.implementation();
    let n = obj.roles().num_handles();

    // Fault-free baseline: per-process transition counts under the same
    // seed. The fault runner's schedule is identical until a fault
    // activates, so these counts are exactly the coordinates crash points
    // are sampled in.
    let mut baseline = Faulty::new(Seeded::new(cfg.seed), FaultPlan::none(), n);
    {
        let mut exec = Executor::new(imp.clone());
        let workload = sim_workload(obj.spec(), obj.roles(), cfg.ops_per_pid, cfg.seed);
        run_workload_with_faults(
            &mut exec,
            workload,
            &mut baseline,
            |_e, _f| {},
            cfg.max_steps,
        )
        .map_err(|e| format!("fault-free baseline run failed: {e}"))?;
    }
    let taken: Vec<u64> = (0..n).map(|p| baseline.taken(Pid(p))).collect();
    let budget = (baseline.global() * cfg.budget_factor + cfg.budget_slack).min(cfg.max_steps);

    let mut plans: Vec<FaultPlan> = Vec::new();
    let mut rng = SplitMix64::new(cfg.seed ^ 0xFA17_FA17_FA17_FA17);
    for (p, &t) in taken.iter().enumerate() {
        let mut points = vec![0u64];
        if t > 0 {
            points.extend([1, t / 2, t - 1]);
            for _ in 0..cfg.extra_crash_points {
                points.push(rng.next_u64() % t);
            }
        }
        points.sort_unstable();
        points.dedup();
        for after in points {
            plans.push(FaultPlan::crash(Pid(p), after));
        }
    }
    // Sole-survivor plans: everyone but one crashed mid-run. Wait-free
    // survivors must finish alone; lock-free and helping ones must finish
    // against the now-static peers; blocking ones may wedge.
    if n > 1 {
        let mids: Vec<u64> = taken.iter().map(|&t| t / 2).collect();
        for p in 0..n {
            plans.push(FaultPlan::crash_all_except(Pid(p), &mids));
        }
    }
    let crash_plans = plans.len();
    for (p, &t) in taken.iter().enumerate() {
        plans.push(FaultPlan::stall(Pid(p), t / 2, cfg.stall_hold));
    }
    let stall_plans = plans.len() - crash_plans;

    let mut report = FaultSweepReport {
        crash_plans,
        stall_plans,
        crashed_mid_op: 0,
        wedged: 0,
        hi_points: 0,
        post_crash_hi_points: 0,
        exactly_once_checks: 0,
        ops: 0,
    };
    for plan in &plans {
        let outcome = run_fault_plan(obj, plan, cfg, budget)
            .map_err(|e| format!("seed {}: {e}", cfg.seed))?;
        report.crashed_mid_op += usize::from(outcome.crashed_mid_op);
        report.wedged += usize::from(!outcome.completed);
        report.hi_points += outcome.hi_points;
        report.post_crash_hi_points += outcome.post_crash_hi_points;
        report.exactly_once_checks += usize::from(outcome.exactly_once_checked);
        report.ops += outcome.ops;
    }

    if model_for(obj.hi_level()).is_some() {
        if report.hi_points == 0 {
            return Err(format!(
                "seed {}: the fault sweep examined no HI observation point",
                cfg.seed
            ));
        }
        if report.post_crash_hi_points == 0 {
            return Err(format!(
                "seed {}: the adversary never got a post-crash observation point",
                cfg.seed
            ));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::Progress;
    use hi_core::{HiLevel, ObjectSpec, Roles};
    use hi_sim::{CellDomain, CellId, Implementation, MemCtx, ProcessHandle, SharedMem};

    // ------------------------------------------------------------------
    // A counter over a single CAS'd cell whose Inc can be made to apply
    // *twice* per operation. The double-applied state is invisible to the
    // plain linearizer (every Inc still returns Ack) and to the HI monitor
    // (the decoded state *is* the memory) — only the state-targeted
    // linearization of the Helping class catches it. This is the checker's
    // exactly-once tooth.
    // ------------------------------------------------------------------

    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct IncOp;

    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct AckResp;

    #[derive(Clone, Debug)]
    struct IncSpec {
        cap: u64,
    }

    impl ObjectSpec for IncSpec {
        type State = u64;
        type Op = IncOp;
        type Resp = AckResp;
        fn initial_state(&self) -> u64 {
            0
        }
        fn apply(&self, state: &u64, _op: &IncOp) -> (u64, AckResp) {
            ((*state + 1).min(self.cap), AckResp)
        }
        fn is_read_only(&self, _op: &IncOp) -> bool {
            false
        }
    }

    impl EnumerableSpec for IncSpec {
        fn states(&self) -> Vec<u64> {
            (0..=self.cap).collect()
        }
        fn ops(&self) -> Vec<IncOp> {
            vec![IncOp]
        }
        fn responses(&self) -> Vec<AckResp> {
            vec![AckResp]
        }
    }

    #[derive(Clone, Debug)]
    struct CasCounter {
        spec: IncSpec,
        n: usize,
        double: bool,
        cell: CellId,
        mem: SharedMem,
    }

    impl CasCounter {
        fn new(n: usize, double: bool) -> Self {
            let mut mem = SharedMem::new();
            let cell = mem.alloc("count", CellDomain::Word, 0);
            CasCounter {
                spec: IncSpec { cap: 1 << 20 },
                n,
                double,
                cell,
                mem,
            }
        }
    }

    #[derive(Clone, PartialEq, Eq, Debug)]
    enum CasPc {
        Idle,
        Read { second: bool },
        Cas { seen: u64, second: bool },
    }

    #[derive(Clone, PartialEq, Eq, Debug)]
    struct CasProc {
        cell: CellId,
        double: bool,
        pc: CasPc,
    }

    impl ProcessHandle<IncSpec> for CasProc {
        fn invoke(&mut self, _op: IncOp) {
            assert_eq!(self.pc, CasPc::Idle);
            self.pc = CasPc::Read { second: false };
        }
        fn is_idle(&self) -> bool {
            self.pc == CasPc::Idle
        }
        fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<AckResp> {
            match self.pc.clone() {
                CasPc::Idle => panic!("no pending op"),
                CasPc::Read { second } => {
                    let seen = ctx.read(self.cell);
                    self.pc = CasPc::Cas { seen, second };
                    None
                }
                CasPc::Cas { seen, second } => {
                    if !ctx.cas(self.cell, seen, seen + 1) {
                        self.pc = CasPc::Read { second };
                        return None;
                    }
                    if self.double && !second {
                        // The bug: apply the increment a second time.
                        self.pc = CasPc::Read { second: true };
                        return None;
                    }
                    self.pc = CasPc::Idle;
                    Some(AckResp)
                }
            }
        }
        fn peeked_cell(&self) -> Option<CellId> {
            (self.pc != CasPc::Idle).then_some(self.cell)
        }
    }

    impl Implementation<IncSpec> for CasCounter {
        type Process = CasProc;
        fn spec(&self) -> &IncSpec {
            &self.spec
        }
        fn num_processes(&self) -> usize {
            self.n
        }
        fn init_memory(&self) -> SharedMem {
            self.mem.clone()
        }
        fn make_process(&self, _pid: hi_core::Pid) -> CasProc {
            CasProc {
                cell: self.cell,
                double: self.double,
                pc: CasPc::Idle,
            }
        }
    }

    impl SimObject<IncSpec> for CasCounter {
        type Machine = Self;
        fn spec(&self) -> &IncSpec {
            &self.spec
        }
        fn roles(&self) -> Roles {
            Roles::MultiProcess { n: self.n }
        }
        fn hi_level(&self) -> HiLevel {
            HiLevel::StateQuiescent
        }
        fn progress(&self) -> Progress {
            // Claimed: crashed peers are static, so the CAS loop completes;
            // the exactly-once obligation comes with the class.
            Progress::Helping
        }
        fn implementation(&self) -> &Self {
            self
        }
        fn hi_audit(&self) -> SimAudit<IncSpec, Self> {
            let cell = self.cell;
            SimAudit::from_snapshot(crate::ObservationModel::StateQuiescent, move |snap| {
                snap[cell.0]
            })
        }
    }

    fn cfg(seed: u64) -> FaultSweepConfig {
        FaultSweepConfig::new(seed, 6, 100_000)
    }

    #[test]
    fn honest_cas_counter_passes_the_sweep() {
        let report = check_sim_object_faults(&CasCounter::new(2, false), &cfg(11)).unwrap();
        assert!(report.crash_plans >= 2, "≥ one crash plan per role");
        assert_eq!(report.stall_plans, 2);
        assert_eq!(report.wedged, 0);
        assert!(report.crashed_mid_op > 0, "some crash must land mid-op");
        assert!(report.post_crash_hi_points > 0);
        assert!(
            report.exactly_once_checks > 0,
            "Helping must be state-checked"
        );
    }

    #[test]
    fn double_applied_inc_is_caught_by_exactly_once() {
        let err = check_sim_object_faults(&CasCounter::new(2, true), &cfg(11)).unwrap_err();
        assert!(
            err.contains("exactly once"),
            "expected an exactly-once failure, got: {err}"
        );
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let a = check_sim_object_faults(&CasCounter::new(3, false), &cfg(7)).unwrap();
        let b = check_sim_object_faults(&CasCounter::new(3, false), &cfg(7)).unwrap();
        assert_eq!(a, b);
    }

    // ------------------------------------------------------------------
    // A register whose writer raises a flag around the value write and
    // whose reader spins while the flag is up: a writer crash inside the
    // handshake wedges the reader forever. Declared wait-free, the checker
    // must reject it; declared blocking, the wedge is tolerated (and the
    // truncated history still linearizes).
    // ------------------------------------------------------------------

    use hi_core::objects::{MultiRegisterSpec, RegisterOp, RegisterResp};

    #[derive(Clone, Debug)]
    struct HandshakeRegister {
        spec: MultiRegisterSpec,
        claim: Progress,
        val: CellId,
        flag: CellId,
        mem: SharedMem,
    }

    impl HandshakeRegister {
        fn new(k: u64, claim: Progress) -> Self {
            let mut mem = SharedMem::new();
            let val = mem.alloc("val", CellDomain::Bounded(k + 1), 1);
            let flag = mem.alloc("flag", CellDomain::Binary, 0);
            HandshakeRegister {
                spec: MultiRegisterSpec::new(k, 1),
                claim,
                val,
                flag,
                mem,
            }
        }
    }

    #[derive(Clone, PartialEq, Eq, Debug)]
    enum HsPc {
        Idle,
        Raise(u64),
        WriteVal(u64),
        Lower,
        PollFlag,
        ReadVal,
    }

    #[derive(Clone, PartialEq, Eq, Debug)]
    struct HsProc {
        val: CellId,
        flag: CellId,
        pc: HsPc,
    }

    impl ProcessHandle<MultiRegisterSpec> for HsProc {
        fn invoke(&mut self, op: RegisterOp) {
            assert_eq!(self.pc, HsPc::Idle);
            self.pc = match op {
                RegisterOp::Write(v) => HsPc::Raise(v),
                RegisterOp::Read => HsPc::PollFlag,
            };
        }
        fn is_idle(&self) -> bool {
            self.pc == HsPc::Idle
        }
        fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<RegisterResp> {
            match self.pc.clone() {
                HsPc::Idle => panic!("no pending op"),
                HsPc::Raise(v) => {
                    ctx.write(self.flag, 1);
                    self.pc = HsPc::WriteVal(v);
                    None
                }
                HsPc::WriteVal(v) => {
                    ctx.write(self.val, v);
                    self.pc = HsPc::Lower;
                    None
                }
                HsPc::Lower => {
                    ctx.write(self.flag, 0);
                    self.pc = HsPc::Idle;
                    Some(RegisterResp::Ack)
                }
                HsPc::PollFlag => {
                    if ctx.read(self.flag) == 0 {
                        self.pc = HsPc::ReadVal;
                    }
                    None
                }
                HsPc::ReadVal => {
                    self.pc = HsPc::Idle;
                    Some(RegisterResp::Value(ctx.read(self.val)))
                }
            }
        }
        fn peeked_cell(&self) -> Option<CellId> {
            match self.pc {
                HsPc::Idle => None,
                HsPc::Raise(_) | HsPc::Lower | HsPc::PollFlag => Some(self.flag),
                HsPc::WriteVal(_) | HsPc::ReadVal => Some(self.val),
            }
        }
    }

    impl Implementation<MultiRegisterSpec> for HandshakeRegister {
        type Process = HsProc;
        fn spec(&self) -> &MultiRegisterSpec {
            &self.spec
        }
        fn num_processes(&self) -> usize {
            2
        }
        fn init_memory(&self) -> SharedMem {
            self.mem.clone()
        }
        fn make_process(&self, _pid: hi_core::Pid) -> HsProc {
            HsProc {
                val: self.val,
                flag: self.flag,
                pc: HsPc::Idle,
            }
        }
    }

    impl SimObject<MultiRegisterSpec> for HandshakeRegister {
        type Machine = Self;
        fn spec(&self) -> &MultiRegisterSpec {
            &self.spec
        }
        fn roles(&self) -> Roles {
            Roles::SingleWriterSingleReader
        }
        fn hi_level(&self) -> HiLevel {
            HiLevel::NotHi
        }
        fn progress(&self) -> Progress {
            self.claim
        }
        fn implementation(&self) -> &Self {
            self
        }
        fn hi_audit(&self) -> SimAudit<MultiRegisterSpec, Self> {
            SimAudit::LinOnly
        }
    }

    /// Crash the writer right after it raised the flag (invoke + 1 step):
    /// the reader spins forever.
    fn mid_handshake_crash() -> FaultPlan {
        FaultPlan::crash(Pid(0), 2)
    }

    #[test]
    fn wedging_crash_fails_a_wait_free_claim() {
        let obj = HandshakeRegister::new(2, Progress::WaitFree);
        let err = run_fault_plan(&obj, &mid_handshake_crash(), &cfg(3), 10_000).unwrap_err();
        assert!(
            err.contains("forbids wedging"),
            "expected a progress failure, got: {err}"
        );
    }

    #[test]
    fn wedging_crash_is_tolerated_for_a_blocking_claim() {
        let obj = HandshakeRegister::new(2, Progress::Blocking);
        let outcome = run_fault_plan(&obj, &mid_handshake_crash(), &cfg(3), 10_000).unwrap();
        assert!(!outcome.completed, "the wedge must be reported");
        assert!(outcome.crashed_mid_op);
    }

    #[test]
    fn stalls_are_never_excused_even_for_blocking_claims() {
        // The same mid-handshake point, but as a stall: the writer resumes,
        // so the run must complete — for every class.
        let obj = HandshakeRegister::new(2, Progress::Blocking);
        let plan = FaultPlan::stall(Pid(0), 2, 64);
        let outcome = run_fault_plan(&obj, &plan, &cfg(3), 100_000).unwrap();
        assert!(outcome.completed);
    }

    #[test]
    fn blocking_handshake_register_survives_the_full_sweep() {
        let report =
            check_sim_object_faults(&HandshakeRegister::new(2, Progress::Blocking), &cfg(5))
                .unwrap();
        assert!(report.crash_plans >= 2);
        assert_eq!(report.hi_points, 0, "LinOnly audits nothing");
    }
}
