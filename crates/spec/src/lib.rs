#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Correctness checkers for concurrent object implementations.
//!
//! Three tools, corresponding to the paper's three correctness dimensions:
//!
//! * **Linearizability** ([`lin`]): a Wing–Gong-style search with
//!   memoization that decides whether a concurrent [`History`] has a
//!   linearization against an [`ObjectSpec`] — pending operations may be
//!   completed or dropped, real-time order is respected.
//! * **History independence** ([`hi`]): observers implementing
//!   Definitions 5, 7 and 8 (perfect, state-quiescent and quiescent HI).
//!   They snapshot `mem(C)` at the configurations their observation model
//!   permits and feed a [`CanonicalMap`](hi_core::CanonicalMap); any state
//!   observed with two distinct representations is a violation.
//! * **Exhaustive exploration** ([`explore`]): a schedule-space model
//!   checker over *all* schedules of a small workload, with sleep-set
//!   partial-order reduction and configuration deduplication
//!   ([`explore::explore_with`]) that preserve exactly the properties the
//!   oracles check — small-scope model checking for the algorithms'
//!   trickiest interleavings. [`check_sim_object_exhaustive`] wraps the
//!   explorer and the full oracle stack (HI audit at every reachable
//!   permitted configuration, linearization of every distinct maximal
//!   path, optional single-crash variants) into one registry-drivable
//!   certification call.
//!
//! The [`harness`] module bundles the three into one-call checks used
//! throughout the workspace's test suites, and the [`sim_object`] module
//! defines [`SimObject`] — the simulator twin of the threaded
//! `ConcurrentObject` facade — together with [`check_sim_object`], the one
//! generic role-aware driver every sim twin in the scenario registry runs
//! through. The [`fault`] module is that driver's adversarial sibling:
//! [`check_sim_object_faults`] crashes and stalls every role at sampled
//! points and enforces each object's declared [`Progress`](hi_core::Progress)
//! class, audits the post-crash memory, and checks helped operations apply
//! exactly once.
//!
//! [`History`]: hi_core::History
//! [`ObjectSpec`]: hi_core::ObjectSpec

pub mod explore;
pub mod fault;
pub mod harness;
pub mod hi;
pub mod lin;
pub mod model_check;
pub mod sim_object;

pub use explore::{
    explore, explore_with, ExploreConfig, ExploreError, ExploreStats, ExploreVisitor,
};
pub use fault::{
    check_sim_object_faults, run_fault_plan, FaultSweepConfig, FaultSweepReport, PlanOutcome,
};
pub use harness::{check_run, check_run_single_mutator, CheckError, CheckReport};
pub use hi::{single_mutator_state, HiMonitor, ObservationModel};
pub use lin::{linearize, linearize_to, LinError, LinOptions, Linearization};
pub use model_check::{check_sim_object_exhaustive, ExhaustiveConfig, ExhaustiveReport};
pub use sim_object::{
    check_sim_object, model_for, sim_workload, CanonicalOracle, CanonicalView,
    DirectCanonicalObserver, SimAudit, SimObject, SimObjectReport, StateOracle,
};
