//! History-independence observers (Definitions 5, 7, 8 of the paper).
//!
//! An observer is parameterized by the set of configurations at which it may
//! examine the memory. At each permitted point it records the pair
//! `(abstract state, mem(C))`; the implementation is HI with respect to the
//! model iff no state is ever seen with two different memory
//! representations.

use hi_core::{CanonicalMap, HiViolation, History, ObjectSpec};
use hi_sim::{Executor, Implementation, MemSnapshot};

/// Which configurations the observer may examine (Figure 1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ObservationModel {
    /// Any configuration (Definition 5, *perfect HI*).
    Perfect,
    /// Configurations with no pending state-changing operation
    /// (Definition 7, *state-quiescent HI*).
    StateQuiescent,
    /// Configurations with no pending operation at all
    /// (Definition 8, *quiescent HI*).
    Quiescent,
}

impl ObservationModel {
    /// Whether the observer may examine the memory of `exec`'s current
    /// configuration.
    pub fn permits<S: ObjectSpec, I: Implementation<S>>(&self, exec: &Executor<S, I>) -> bool {
        match self {
            ObservationModel::Perfect => true,
            ObservationModel::StateQuiescent => exec.is_state_quiescent(),
            ObservationModel::Quiescent => exec.is_quiescent(),
        }
    }
}

/// Accumulates `(state, mem(C))` observations under a given model and
/// reports the first violation.
///
/// # Example
///
/// ```
/// use hi_spec::{HiMonitor, ObservationModel};
///
/// let mut monitor: HiMonitor<u64> = HiMonitor::new(ObservationModel::Quiescent);
/// monitor.record(3, vec![0, 0, 1]);
/// monitor.record(3, vec![0, 0, 1]);
/// assert!(monitor.violation().is_none());
/// monitor.record(3, vec![1, 1, 1]);
/// assert!(monitor.violation().is_some());
/// ```
#[derive(Clone, Debug)]
pub struct HiMonitor<Q> {
    model: ObservationModel,
    canon: CanonicalMap<Q, MemSnapshot>,
    violation: Option<HiViolation<Q, MemSnapshot>>,
    points: u64,
}

impl<Q: Clone + Eq + std::hash::Hash + std::fmt::Debug> HiMonitor<Q> {
    /// Creates a monitor for the given observation model.
    pub fn new(model: ObservationModel) -> Self {
        HiMonitor {
            model,
            canon: CanonicalMap::new(),
            violation: None,
            points: 0,
        }
    }

    /// The observation model this monitor implements.
    pub fn model(&self) -> ObservationModel {
        self.model
    }

    /// Records a raw `(state, snapshot)` pair, bypassing the permission
    /// check (for callers that track quiescence themselves, e.g. threaded
    /// stress tests).
    pub fn record(&mut self, state: Q, snapshot: MemSnapshot) {
        self.points += 1;
        if self.violation.is_none() {
            if let Err(v) = self.canon.observe(state, snapshot) {
                self.violation = Some(v);
            }
        }
    }

    /// Observes the current configuration of `exec` if the model permits it,
    /// attributing it the abstract state `state`.
    pub fn observe<S, I>(&mut self, exec: &Executor<S, I>, state: Q)
    where
        S: ObjectSpec,
        I: Implementation<S>,
    {
        if self.model.permits(exec) {
            self.record(state, exec.snapshot());
        }
    }

    /// The first violation found, if any.
    pub fn violation(&self) -> Option<&HiViolation<Q, MemSnapshot>> {
        self.violation.as_ref()
    }

    /// Number of permitted observation points recorded.
    pub fn points(&self) -> u64 {
        self.points
    }

    /// The canonical map learned so far.
    pub fn canonical_map(&self) -> &CanonicalMap<Q, MemSnapshot> {
        &self.canon
    }

    /// Converts the monitor into a result: `Ok(points)` if no violation was
    /// observed.
    ///
    /// # Errors
    ///
    /// The first [`HiViolation`] recorded, if any.
    pub fn into_result(self) -> Result<u64, HiViolation<Q, MemSnapshot>> {
        match self.violation {
            Some(v) => Err(v),
            None => Ok(self.points),
        }
    }
}

/// The abstract state of a *single-mutator* implementation, derived from its
/// history: the completed state-changing operations, applied in invocation
/// order.
///
/// Valid whenever all state-changing operations are issued by one process
/// (SWSR registers, the positional queue): that process's operations are
/// sequential, so their invocation order is their linearization order, and
/// at any state-quiescent configuration the abstract state is exactly the
/// fold of the completed ones.
///
/// # Example
///
/// ```
/// use hi_core::objects::{MultiRegisterSpec, RegisterOp, RegisterResp};
/// use hi_core::{History, Pid};
/// use hi_spec::single_mutator_state;
///
/// let spec = MultiRegisterSpec::new(4, 1);
/// let mut h = History::new();
/// let w = h.invoke(Pid(0), RegisterOp::Write(3));
/// h.ret(w, RegisterResp::Ack);
/// h.invoke(Pid(1), RegisterOp::Read); // pending read-only op: ignored
/// assert_eq!(single_mutator_state(&spec, &h), 3);
/// ```
pub fn single_mutator_state<S: ObjectSpec>(
    spec: &S,
    history: &History<S::Op, S::Resp>,
) -> S::State {
    let mut state = spec.initial_state();
    for rec in history.records() {
        if rec.is_complete() && !spec.is_read_only(&rec.op) {
            state = spec.apply(&state, &rec.op).0;
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::objects::{MultiRegisterSpec, RegisterOp, RegisterResp};
    use hi_core::Pid;

    #[test]
    fn monitor_counts_points() {
        let mut m: HiMonitor<u64> = HiMonitor::new(ObservationModel::Perfect);
        m.record(1, vec![1]);
        m.record(2, vec![2]);
        m.record(1, vec![1]);
        assert_eq!(m.points(), 3);
        assert_eq!(m.canonical_map().len(), 2);
        assert_eq!(m.into_result().unwrap(), 3);
    }

    #[test]
    fn monitor_reports_first_violation() {
        let mut m: HiMonitor<u64> = HiMonitor::new(ObservationModel::Quiescent);
        m.record(1, vec![0]);
        m.record(1, vec![9]);
        m.record(1, vec![8]);
        let v = m.into_result().unwrap_err();
        assert_eq!(v.second, vec![9], "first violation is kept");
    }

    #[test]
    fn single_mutator_state_ignores_pending_and_reads() {
        let spec = MultiRegisterSpec::new(5, 1);
        let mut h = History::new();
        let w1 = h.invoke(Pid(0), RegisterOp::Write(2));
        h.ret(w1, RegisterResp::Ack);
        let r = h.invoke(Pid(1), RegisterOp::Read);
        h.ret(r, RegisterResp::Value(2));
        h.invoke(Pid(0), RegisterOp::Write(5)); // pending: not yet linearized here
        assert_eq!(single_mutator_state(&spec, &h), 2);
    }
}
