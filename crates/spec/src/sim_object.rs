//! [`SimObject`]: the simulator twin of the threaded `ConcurrentObject`
//! facade, and the one generic checker that drives every twin.
//!
//! The paper defines each algorithm against a single abstract interface, and
//! `hi_api` gives the *threaded* backends that uniform surface. This module
//! does the same for the *simulated* step machines: a [`SimObject`] names its
//! spec, role discipline and HI guarantee, hands over its step machine
//! ([`SimObject::implementation`]), and declares how its history-independence
//! promise is audited ([`SimAudit`]). [`check_sim_object`] then runs any twin
//! under a seeded scheduler with the same role-aware workload generation the
//! threaded driver uses (`hi_core::workload`), audits it, and linearizes the
//! induced history — no per-implementation driver glue.
//!
//! # Example
//!
//! A trivially history-independent one-cell register, declared as a
//! [`SimObject`] and checked end to end:
//!
//! ```
//! use hi_core::objects::{MultiRegisterSpec, RegisterOp, RegisterResp};
//! use hi_core::{HiLevel, Progress, Roles};
//! use hi_sim::{
//!     CellDomain, CellId, Implementation, MemCtx, Pid, ProcessHandle, SharedMem,
//! };
//! use hi_spec::{check_sim_object, ObservationModel, SimAudit, SimObject};
//!
//! // One big cell holding the whole value: perfectly history independent.
//! #[derive(Clone, Debug)]
//! struct BigCellRegister {
//!     spec: MultiRegisterSpec,
//!     cell: CellId,
//!     mem: SharedMem,
//! }
//!
//! #[derive(Clone, Debug, PartialEq, Eq)]
//! struct Proc {
//!     cell: CellId,
//!     pending: Option<RegisterOp>,
//! }
//!
//! impl ProcessHandle<MultiRegisterSpec> for Proc {
//!     fn invoke(&mut self, op: RegisterOp) {
//!         self.pending = Some(op);
//!     }
//!     fn is_idle(&self) -> bool {
//!         self.pending.is_none()
//!     }
//!     fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<RegisterResp> {
//!         match self.pending.take().expect("no pending op") {
//!             RegisterOp::Read => Some(RegisterResp::Value(ctx.read(self.cell))),
//!             RegisterOp::Write(v) => {
//!                 ctx.write(self.cell, v);
//!                 Some(RegisterResp::Ack)
//!             }
//!         }
//!     }
//!     fn peeked_cell(&self) -> Option<CellId> {
//!         self.pending.as_ref().map(|_| self.cell)
//!     }
//! }
//!
//! impl Implementation<MultiRegisterSpec> for BigCellRegister {
//!     type Process = Proc;
//!     fn spec(&self) -> &MultiRegisterSpec { &self.spec }
//!     fn num_processes(&self) -> usize { 2 }
//!     fn init_memory(&self) -> SharedMem { self.mem.clone() }
//!     fn make_process(&self, _pid: Pid) -> Proc {
//!         Proc { cell: self.cell, pending: None }
//!     }
//! }
//!
//! impl SimObject<MultiRegisterSpec> for BigCellRegister {
//!     type Machine = Self;
//!     fn spec(&self) -> &MultiRegisterSpec { &self.spec }
//!     fn roles(&self) -> Roles { Roles::SingleWriterSingleReader }
//!     fn hi_level(&self) -> HiLevel { HiLevel::Perfect }
//!     fn progress(&self) -> Progress { Progress::WaitFree }
//!     fn implementation(&self) -> &Self { self }
//!     fn hi_audit(&self) -> SimAudit<MultiRegisterSpec, Self> {
//!         // The cell *is* the state: audit it at every configuration.
//!         SimAudit::from_snapshot(ObservationModel::Perfect, |snap| snap[0])
//!     }
//! }
//!
//! let spec = MultiRegisterSpec::new(4, 1);
//! let mut mem = SharedMem::new();
//! let cell = mem.alloc("R", CellDomain::Bounded(5), 1);
//! let obj = BigCellRegister { spec, cell, mem };
//! let report = check_sim_object(&obj, 0x5eed, 20, 10_000).unwrap();
//! assert!(report.audited && report.hi_points > 0 && report.ops > 0);
//! ```

use std::fmt;

use hi_core::{
    handle_seed, menus_for, random_script, EnumerableSpec, HiLevel, ObjectSpec, Progress, Roles,
};
use hi_sim::{run_workload, Executor, Implementation, MemSnapshot, Seeded, StepObserver, Workload};

use crate::hi::{single_mutator_state, HiMonitor, ObservationModel};
use crate::lin::{linearize, LinOptions};

/// A state oracle: the abstract state of the current configuration, for
/// feeding an [`HiMonitor`].
pub type StateOracle<S, I> = Box<dyn FnMut(&Executor<S, I>) -> <S as ObjectSpec>::State>;

/// One direct-canonicity observation: the memory representation proper
/// extracted from `mem(C)` next to the canonical representation of the
/// decoded abstract state. Produced by a [`CanonicalOracle`] at each
/// permitted observation point; any mismatch is an HI violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CanonicalView {
    /// The observed memory representation (synchronization-only cells
    /// already excluded, with the same justification the threaded
    /// adapter's `mem_snapshot` uses).
    pub observed: Vec<u64>,
    /// The canonical representation of the decoded abstract state.
    pub canonical: Vec<u64>,
    /// The decoded abstract state, rendered for error messages.
    pub state: String,
}

/// A direct-canonicity oracle: maps `mem(C)` to a [`CanonicalView`].
pub type CanonicalOracle = Box<dyn FnMut(&MemSnapshot) -> CanonicalView>;

/// How a [`SimObject`]'s history-independence promise is audited while the
/// workload runs. Linearizability of the full history is always checked
/// afterwards, whatever the variant.
pub enum SimAudit<S: ObjectSpec, I: Implementation<S>> {
    /// Linearizability only: the implementation fixes no canonical form
    /// ([`HiLevel::NotHi`]), so memory monitoring would be meaningless.
    LinOnly,
    /// Same-state-same-memory monitoring ([`HiMonitor`]) at every point the
    /// model permits, with the abstract state supplied by the oracle.
    Monitor {
        /// The observation model matching the object's [`HiLevel`].
        model: ObservationModel,
        /// The abstract state of the current configuration.
        oracle: StateOracle<S, I>,
    },
    /// Direct canonicity at every point the model permits: the observed
    /// representation must equal the canonical representation of the
    /// decoded state. Strictly stronger than [`SimAudit::Monitor`] (which
    /// only compares observations against each other), and what lets an
    /// audit exclude synchronization-only cells.
    DirectCanonical {
        /// The observation model matching the object's [`HiLevel`].
        model: ObservationModel,
        /// The per-point observed/canonical pair.
        oracle: CanonicalOracle,
    },
}

impl<S: ObjectSpec, I: Implementation<S>> SimAudit<S, I> {
    /// [`SimAudit::Monitor`] with the single-mutator state oracle: at any
    /// state-quiescent point the abstract state is the fold of the
    /// completed state-changing operations in invocation order (valid for
    /// SWSR implementations — see [`single_mutator_state`]).
    pub fn single_mutator(model: ObservationModel, spec: S) -> Self
    where
        S: 'static,
    {
        SimAudit::Monitor {
            model,
            oracle: Box::new(move |exec: &Executor<S, I>| {
                single_mutator_state(&spec, exec.history())
            }),
        }
    }

    /// [`SimAudit::Monitor`] with a snapshot-decoding state oracle (for
    /// implementations whose memory encodes the state directly).
    pub fn from_snapshot(
        model: ObservationModel,
        mut decode: impl FnMut(&MemSnapshot) -> S::State + 'static,
    ) -> Self {
        SimAudit::Monitor {
            model,
            oracle: Box::new(move |exec: &Executor<S, I>| decode(&exec.snapshot())),
        }
    }

    /// [`SimAudit::DirectCanonical`] from a snapshot-level oracle.
    pub fn direct_canonical(
        model: ObservationModel,
        mut view: impl FnMut(&MemSnapshot) -> CanonicalView + 'static,
    ) -> Self {
        SimAudit::DirectCanonical {
            model,
            oracle: Box::new(move |snap: &MemSnapshot| view(snap)),
        }
    }

    /// The observation model of the audit, if it audits at all.
    pub fn model(&self) -> Option<ObservationModel> {
        match self {
            SimAudit::LinOnly => None,
            SimAudit::Monitor { model, .. } | SimAudit::DirectCanonical { model, .. } => {
                Some(*model)
            }
        }
    }
}

impl<S: ObjectSpec, I: Implementation<S>> fmt::Debug for SimAudit<S, I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimAudit::LinOnly => write!(f, "LinOnly"),
            SimAudit::Monitor { model, .. } => write!(f, "Monitor({model:?})"),
            SimAudit::DirectCanonical { model, .. } => write!(f, "DirectCanonical({model:?})"),
        }
    }
}

/// The observation model a [`HiLevel`] is audited under: the exact set of
/// configurations at which the level promises canonical memory. `None` for
/// [`HiLevel::NotHi`], which promises nothing.
pub fn model_for(level: HiLevel) -> Option<ObservationModel> {
    match level {
        HiLevel::NotHi => None,
        HiLevel::Quiescent => Some(ObservationModel::Quiescent),
        HiLevel::StateQuiescent => Some(ObservationModel::StateQuiescent),
        HiLevel::Perfect => Some(ObservationModel::Perfect),
    }
}

/// A simulated implementation of an abstract object `(Q, q0, O, R, Δ)`, with
/// a uniform surface for construction metadata and history-independence
/// auditing — the `hi_sim` twin of `hi_api::ConcurrentObject`.
///
/// Every sim step machine in this workspace implements this trait directly
/// (the machine is its own [`SimObject::Machine`]), which is what lets the
/// scenario registry pair each threaded backend with its twin and drive both
/// through one generic checker pair (`hi_api::drive` / [`check_sim_object`])
/// instead of hand-rolling per-scenario workload and oracle glue.
pub trait SimObject<S: ObjectSpec> {
    /// The step machine driven by the executor (usually `Self`).
    type Machine: Implementation<S>;

    /// The object's sequential specification.
    fn spec(&self) -> &S;

    /// The role discipline of this implementation. Must agree with the
    /// threaded twin of the same scenario.
    fn roles(&self) -> Roles;

    /// The history-independence guarantee of this implementation. Must
    /// agree with the threaded twin of the same scenario.
    fn hi_level(&self) -> HiLevel;

    /// The progress guarantee of this implementation — what a crash of some
    /// processes may break for the survivors. Must agree with the threaded
    /// twin of the same scenario; the fault-sweep checker
    /// ([`check_sim_object_faults`](crate::check_sim_object_faults))
    /// enforces it.
    fn progress(&self) -> Progress;

    /// The step machine to execute.
    fn implementation(&self) -> &Self::Machine;

    /// How the [`SimObject::hi_level`] promise is audited. The audit's
    /// observation model must be exactly [`model_for`]`(self.hi_level())`;
    /// [`check_sim_object`] asserts this.
    fn hi_audit(&self) -> SimAudit<S, Self::Machine>;
}

/// Result of a successful [`check_sim_object`] run. `Eq`, so determinism
/// suites can compare two runs under the same seed verbatim.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimObjectReport {
    /// Operations in the induced history.
    pub ops: usize,
    /// Total steps taken by the execution.
    pub steps: u64,
    /// Observation points the HI audit examined (0 iff not audited).
    pub hi_points: u64,
    /// Whether an HI audit ran (`false` only for [`SimAudit::LinOnly`]).
    pub audited: bool,
    /// `mem(C)` of the final (quiescent) configuration.
    pub final_snapshot: MemSnapshot,
}

/// The reusable direct-canonicity observer (the generalization of the
/// registry's old hash-table-only `CanonicalSlotsObserver`): at every point
/// its model permits, compares the oracle's observed representation against
/// the canonical representation of the decoded state, keeping the first
/// mismatch.
pub struct DirectCanonicalObserver {
    model: ObservationModel,
    oracle: CanonicalOracle,
    points: u64,
    violation: Option<String>,
}

impl DirectCanonicalObserver {
    /// Creates the observer.
    pub fn new(model: ObservationModel, oracle: CanonicalOracle) -> Self {
        DirectCanonicalObserver {
            model,
            oracle,
            points: 0,
            violation: None,
        }
    }

    /// Number of permitted observation points examined.
    pub fn points(&self) -> u64 {
        self.points
    }

    /// The first canonicity violation found, if any.
    pub fn violation(&self) -> Option<&str> {
        self.violation.as_deref()
    }

    /// Converts the observer into a result: `Ok(points)` if every examined
    /// point was canonical.
    ///
    /// # Errors
    ///
    /// The rendered first violation, if any.
    pub fn into_result(self) -> Result<u64, String> {
        match self.violation {
            Some(v) => Err(v),
            None => Ok(self.points),
        }
    }
}

impl<S: ObjectSpec, I: Implementation<S>> StepObserver<S, I> for DirectCanonicalObserver {
    fn observe(&mut self, exec: &Executor<S, I>) {
        if self.violation.is_some() || !self.model.permits(exec) {
            return;
        }
        self.points += 1;
        let view = (self.oracle)(&exec.snapshot());
        if view.observed != view.canonical {
            self.violation = Some(format!(
                "at a permitted ({:?}) point, memory {:?} is not the canonical \
                 representation {:?} of state {}",
                self.model, view.observed, view.canonical, view.state
            ));
        }
    }
}

/// The role-mirrored workload of a [`SimObject`] under `seed`: per-role
/// scripts drawn from [`menus_for`] with [`random_script`] — byte-for-byte
/// the generation the threaded driver uses for the twin scenario.
pub fn sim_workload<S: EnumerableSpec>(
    spec: &S,
    roles: Roles,
    ops_per_pid: usize,
    seed: u64,
) -> Workload<S> {
    let menus = menus_for(spec, roles);
    let mut workload = Workload::new(menus.len());
    for (pid, menu) in menus.iter().enumerate() {
        if menu.is_empty() {
            continue; // a role with nothing to do
        }
        for op in random_script(menu, ops_per_pid, handle_seed(seed, pid)) {
            workload.push(pid, op);
        }
    }
    workload
}

/// Drives a [`SimObject`] through a role-mirrored random workload under a
/// seeded scheduler, audits its history-independence promise per
/// [`SimObject::hi_audit`], and checks the induced history linearizes
/// against [`SimObject::spec`] — the simulator half of the registry's
/// generic driver pair.
///
/// # Panics
///
/// Panics if the object's metadata is inconsistent: role count ≠ process
/// count, or audit model ≠ [`model_for`] of the declared [`HiLevel`].
///
/// # Errors
///
/// The first failure among: step-budget exhaustion, an HI violation, a
/// vacuous audit (zero observation points), or a non-linearizable history —
/// rendered, so heterogeneous scenarios can surface them uniformly.
pub fn check_sim_object<S, O>(
    obj: &O,
    seed: u64,
    ops_per_pid: usize,
    max_steps: u64,
) -> Result<SimObjectReport, String>
where
    S: EnumerableSpec,
    O: SimObject<S>,
{
    let imp = obj.implementation();
    let roles = obj.roles();
    assert_eq!(
        roles.num_handles(),
        imp.num_processes(),
        "role discipline {roles:?} disagrees with the step machine's process count"
    );
    let audit = obj.hi_audit();
    assert_eq!(
        audit.model(),
        model_for(obj.hi_level()),
        "audit {audit:?} does not match the declared HI level {:?}",
        obj.hi_level()
    );
    let workload = sim_workload(obj.spec(), roles, ops_per_pid, seed);
    let mut exec = Executor::new(imp.clone());
    let mut sched = Seeded::new(seed);
    let (hi_points, audited) = match audit {
        SimAudit::LinOnly => {
            run_workload(&mut exec, workload, &mut sched, &mut (), max_steps)
                .map_err(|e| e.to_string())?;
            (0, false)
        }
        SimAudit::Monitor { model, mut oracle } => {
            let mut monitor = HiMonitor::new(model);
            {
                let mut observer = |e: &Executor<S, O::Machine>| {
                    if monitor.model().permits(e) {
                        let state = oracle(e);
                        monitor.observe(e, state);
                    }
                };
                run_workload(&mut exec, workload, &mut sched, &mut observer, max_steps)
                    .map_err(|e| e.to_string())?;
            }
            let points = monitor.into_result().map_err(|v| v.to_string())?;
            (points, true)
        }
        SimAudit::DirectCanonical { model, oracle } => {
            let mut observer = DirectCanonicalObserver::new(model, oracle);
            run_workload(&mut exec, workload, &mut sched, &mut observer, max_steps)
                .map_err(|e| e.to_string())?;
            (observer.into_result()?, true)
        }
    };
    if audited && hi_points == 0 {
        return Err("the HI audit examined no observation point".to_string());
    }
    linearize(exec.spec(), exec.history(), &LinOptions::default()).map_err(|e| e.to_string())?;
    Ok(SimObjectReport {
        ops: exec.history().records().len(),
        steps: exec.steps(),
        hi_points,
        audited,
        final_snapshot: exec.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::objects::{MultiRegisterSpec, RegisterOp, RegisterResp};
    use hi_core::Pid;
    use hi_sim::{CellDomain, CellId, MemCtx, ProcessHandle, SharedMem};

    /// A register whose writer leaks a running write count into a second
    /// cell: linearizable, but history independent at no level. Declared
    /// with a configurable claim so the suite can check both the honest
    /// (`LinOnly`) and the lying (`Monitor`/`DirectCanonical`) paths.
    #[derive(Clone, Debug)]
    struct LeakyRegister {
        spec: MultiRegisterSpec,
        claim: HiLevel,
        direct: bool,
        val: CellId,
        count: CellId,
        mem: SharedMem,
    }

    impl LeakyRegister {
        fn new(k: u64, claim: HiLevel, direct: bool) -> Self {
            let mut mem = SharedMem::new();
            let val = mem.alloc("val", CellDomain::Bounded(k + 1), 1);
            let count = mem.alloc("count", CellDomain::Word, 0);
            LeakyRegister {
                spec: MultiRegisterSpec::new(k, 1),
                claim,
                direct,
                val,
                count,
                mem,
            }
        }
    }

    #[derive(Clone, PartialEq, Eq, Debug)]
    enum Pc {
        Idle,
        Read,
        WriteVal(u64),
        Bump,
    }

    #[derive(Clone, PartialEq, Eq, Debug)]
    struct LeakyProc {
        val: CellId,
        count: CellId,
        writes: u64,
        pc: Pc,
    }

    impl ProcessHandle<MultiRegisterSpec> for LeakyProc {
        fn invoke(&mut self, op: RegisterOp) {
            assert_eq!(self.pc, Pc::Idle);
            self.pc = match op {
                RegisterOp::Read => Pc::Read,
                RegisterOp::Write(v) => Pc::WriteVal(v),
            };
        }

        fn is_idle(&self) -> bool {
            self.pc == Pc::Idle
        }

        fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<RegisterResp> {
            match self.pc.clone() {
                Pc::Idle => panic!("no pending op"),
                Pc::Read => {
                    self.pc = Pc::Idle;
                    Some(RegisterResp::Value(ctx.read(self.val)))
                }
                Pc::WriteVal(v) => {
                    ctx.write(self.val, v);
                    self.pc = Pc::Bump;
                    None
                }
                Pc::Bump => {
                    // The leak: publish how many writes have happened.
                    self.writes += 1;
                    ctx.write(self.count, self.writes);
                    self.pc = Pc::Idle;
                    Some(RegisterResp::Ack)
                }
            }
        }

        fn peeked_cell(&self) -> Option<CellId> {
            match self.pc {
                Pc::Idle => None,
                Pc::Read | Pc::WriteVal(_) => Some(self.val),
                Pc::Bump => Some(self.count),
            }
        }
    }

    impl Implementation<MultiRegisterSpec> for LeakyRegister {
        type Process = LeakyProc;

        fn spec(&self) -> &MultiRegisterSpec {
            &self.spec
        }

        fn num_processes(&self) -> usize {
            2
        }

        fn init_memory(&self) -> SharedMem {
            self.mem.clone()
        }

        fn make_process(&self, _pid: Pid) -> LeakyProc {
            LeakyProc {
                val: self.val,
                count: self.count,
                writes: 0,
                pc: Pc::Idle,
            }
        }
    }

    impl SimObject<MultiRegisterSpec> for LeakyRegister {
        type Machine = Self;

        fn spec(&self) -> &MultiRegisterSpec {
            &self.spec
        }

        fn roles(&self) -> Roles {
            Roles::SingleWriterSingleReader
        }

        fn hi_level(&self) -> HiLevel {
            self.claim
        }

        fn progress(&self) -> Progress {
            Progress::WaitFree
        }

        fn implementation(&self) -> &Self {
            self
        }

        fn hi_audit(&self) -> SimAudit<MultiRegisterSpec, Self> {
            let Some(model) = model_for(self.claim) else {
                return SimAudit::LinOnly;
            };
            if self.direct {
                let (val, count) = (self.val, self.count);
                SimAudit::direct_canonical(model, move |snap: &MemSnapshot| CanonicalView {
                    observed: snap.clone(),
                    // The canonical form fixes count = 0; the leak never
                    // restores it, so any audited point after a write fails.
                    canonical: vec![snap[val.0], 0],
                    state: format!("{} (count cell {})", snap[val.0], snap[count.0]),
                })
            } else {
                SimAudit::single_mutator(model, self.spec)
            }
        }
    }

    /// Enough operations that the two-valued writer repeats a value, so the
    /// monitor sees one state with two different count cells.
    const OPS: usize = 20;

    #[test]
    fn honest_leaky_register_passes_lin_only() {
        let obj = LeakyRegister::new(2, HiLevel::NotHi, false);
        let report = check_sim_object(&obj, 11, OPS, 100_000).unwrap();
        assert!(!report.audited);
        assert_eq!(report.hi_points, 0);
    }

    #[test]
    fn monitor_audit_catches_the_leak() {
        let obj = LeakyRegister::new(2, HiLevel::StateQuiescent, false);
        let err = check_sim_object(&obj, 11, OPS, 100_000).unwrap_err();
        assert!(
            err.contains("representations"),
            "expected an HI violation, got: {err}"
        );
    }

    #[test]
    fn direct_canonical_audit_catches_the_leak() {
        let obj = LeakyRegister::new(2, HiLevel::StateQuiescent, true);
        let err = check_sim_object(&obj, 11, OPS, 100_000).unwrap_err();
        assert!(
            err.contains("not the canonical representation"),
            "expected a canonicity violation, got: {err}"
        );
    }

    #[test]
    #[should_panic(expected = "does not match the declared HI level")]
    fn mismatched_audit_model_is_rejected() {
        #[derive(Clone, Debug)]
        struct Mismatched(LeakyRegister);
        impl SimObject<MultiRegisterSpec> for Mismatched {
            type Machine = LeakyRegister;
            fn spec(&self) -> &MultiRegisterSpec {
                &self.0.spec
            }
            fn roles(&self) -> Roles {
                Roles::SingleWriterSingleReader
            }
            fn hi_level(&self) -> HiLevel {
                HiLevel::Perfect
            }
            fn progress(&self) -> Progress {
                Progress::WaitFree
            }
            fn implementation(&self) -> &LeakyRegister {
                &self.0
            }
            fn hi_audit(&self) -> SimAudit<MultiRegisterSpec, LeakyRegister> {
                SimAudit::LinOnly // claims Perfect but audits nothing
            }
        }
        let obj = Mismatched(LeakyRegister::new(2, HiLevel::Perfect, false));
        let _ = check_sim_object(&obj, 1, 4, 10_000);
    }
}
