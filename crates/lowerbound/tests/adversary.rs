//! Integration tests: the §5 adversaries against the workspace's register
//! and queue implementations — Table 1, executed.

use hi_core::objects::{BoundedQueueSpec, MultiRegisterSpec};
use hi_lowerbound::{
    audit_distances, canonical_map, run_adversary, CtScript, QueuePeekScript, Verdict,
};
use hi_queue::PositionalQueue;
use hi_registers::{LockFreeHiRegister, VidyasankarRegister, WaitFreeHiRegister};
use hi_sim::Implementation;

const ROUNDS: u64 = 2_000;
const BUDGET: u64 = 10_000;

#[test]
fn algorithm2_reader_starves() {
    // Theorem 17 in action: Algorithm 2 is state-quiescent HI from binary
    // registers, so the Lemma 16 adversary starves its reader indefinitely.
    for k in [3u64, 4, 5, 8] {
        let imp = LockFreeHiRegister::new(k, 1);
        let script = CtScript::new(MultiRegisterSpec::new(k, 1));
        let report = run_adversary(&imp, &script, ROUNDS, BUDGET).unwrap();
        assert!(
            report.bases_smaller_than_classes,
            "binary cells < {k} classes"
        );
        assert_eq!(report.verdict, Verdict::Starved, "K = {k}");
        assert_eq!(report.rounds, ROUNDS);
    }
}

#[test]
fn algorithm4_defeats_the_adversary() {
    // Algorithm 4 is wait-free: its reader writes (flag/B protocol), which
    // breaks the adversary's canonical-memory assumption; the forked
    // executions diverge and every read completes.
    for k in [3u64, 4, 6] {
        let imp = WaitFreeHiRegister::new(k, 1);
        let script = CtScript::new(MultiRegisterSpec::new(k, 1));
        let report = run_adversary(&imp, &script, ROUNDS, BUDGET).unwrap();
        match report.verdict {
            Verdict::Diverged { solo_outcomes, .. } => {
                assert!(
                    solo_outcomes.iter().all(Option::is_some),
                    "every diverged read completes solo (wait-freedom), K = {k}"
                );
            }
            Verdict::ReaderReturned { .. } => {} // also a win for Algorithm 4
            Verdict::Starved => panic!("Algorithm 4's reader must not starve (K = {k})"),
        }
    }
}

#[test]
fn algorithm1_reader_returns_because_memory_leaks() {
    // Vidyasankar's register is wait-free but not HI: stale 1s above the
    // current value let the reader find a value the adversary did not plan
    // for, so the read returns (or the executions diverge) quickly.
    let imp = VidyasankarRegister::new(4, 1);
    let script = CtScript::new(MultiRegisterSpec::new(4, 1));
    let report = run_adversary(&imp, &script, ROUNDS, BUDGET).unwrap();
    assert_ne!(
        report.verdict,
        Verdict::Starved,
        "Algorithm 1 reads are wait-free"
    );
}

#[test]
fn positional_queue_peek_starves() {
    // Theorem 20 in action: the positional queue is state-quiescent HI from
    // binary registers, so the §5.4 adversary starves Peek.
    for t in [2u32, 3, 5] {
        let spec = BoundedQueueSpec::new(t, 2);
        let imp = PositionalQueue::new(t, 2);
        let script = QueuePeekScript::new(spec);
        let report = run_adversary(&imp, &script, ROUNDS, BUDGET).unwrap();
        assert!(
            report.bases_smaller_than_classes,
            "binary cells < {} classes",
            t + 1
        );
        assert_eq!(report.verdict, Verdict::Starved, "t = {t}");
    }
}

#[test]
fn starvation_grows_with_budget() {
    // The adversary extends the execution without bound: the reader's step
    // count equals the round budget at every scale (Theorem 17's
    // "arbitrarily long executions").
    let imp = LockFreeHiRegister::new(3, 1);
    let script = CtScript::new(MultiRegisterSpec::new(3, 1));
    for rounds in [10u64, 100, 1_000, 5_000] {
        let report = run_adversary(&imp, &script, rounds, BUDGET).unwrap();
        assert_eq!(report.verdict, Verdict::Starved);
        assert_eq!(report.rounds, rounds);
    }
}

#[test]
fn proposition14_distance_audit_register() {
    // Canonical representations of a C_t register from binary cells must
    // contain a pair at distance >= 2 (here: all pairs are at distance 2),
    // so no perfect HI implementation exists (Propositions 6 + 14).
    let imp = LockFreeHiRegister::new(4, 1);
    let script = CtScript::new(MultiRegisterSpec::new(4, 1));
    let reps: Vec<u64> = (1..=4).collect();
    let canon = canonical_map(&imp, &script, &reps, BUDGET);
    let audit = audit_distances(&imp.init_memory(), &canon);
    assert_eq!(audit.max_distance, 2);
    assert!(!audit.perfect_hi_possible);
    assert_eq!(audit.max_cell_states, Some(2));
}

#[test]
fn canonical_map_is_one_hot_for_hi_register() {
    let imp = LockFreeHiRegister::new(3, 1);
    let script = CtScript::new(MultiRegisterSpec::new(3, 1));
    let canon = canonical_map(&imp, &script, &[1, 2, 3], BUDGET);
    assert_eq!(canon[0], vec![1, 0, 0]);
    assert_eq!(canon[1], vec![0, 1, 0]);
    assert_eq!(canon[2], vec![0, 0, 1]);
}
