//! Canonical-map computation and the distance audits of Propositions 6
//! and 14.
//!
//! Proposition 6: in an obstruction-free *perfect* HI implementation, any
//! two states adjacent under a single operation must have canonical
//! representations at Hamming distance ≤ 1. Proposition 14: a `C_t` object
//! (`t ≥ 3`) built from base objects with fewer than `t` states cannot
//! satisfy that — so auditing the distances of a concrete implementation
//! shows *where* perfect HI fails.

use hi_core::{ObjectSpec, Pid};
use hi_sim::{Executor, Implementation, MemSnapshot, SharedMem};

use crate::script::ChangeScript;

/// The changer/mutator process (role convention shared by all single-mutator
/// implementations in this workspace).
pub const CHANGER: Pid = Pid(0);
/// The reader/observer process.
pub const READER: Pid = Pid(1);

/// Computes `can(q)` for each given state by running the change script's
/// operations solo from a fresh initial configuration and snapshotting the
/// quiescent memory.
///
/// Valid for implementations that are (at least) state-quiescent HI for
/// solo changer executions — which is exactly what the §5 adversary assumes.
///
/// # Panics
///
/// Panics if a changer operation fails to complete within `max_steps` solo
/// steps.
pub fn canonical_map<S, I, C>(
    imp: &I,
    script: &C,
    states: &[S::State],
    max_steps: u64,
) -> Vec<MemSnapshot>
where
    S: ObjectSpec,
    I: Implementation<S>,
    C: ChangeScript<S>,
{
    states
        .iter()
        .map(|q| {
            let mut exec = Executor::new(imp.clone());
            let q0 = imp.spec().initial_state();
            for op in script.ops_between(&q0, q) {
                exec.run_op_solo(CHANGER, op, max_steps)
                    .expect("changer operation exceeded its solo step budget");
            }
            exec.snapshot()
        })
        .collect()
}

/// The result of a Proposition 6/14 distance audit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DistanceAudit {
    /// Hamming distance between each pair of representative canonical
    /// representations (`dist[i][j]`).
    pub dist: Vec<Vec<usize>>,
    /// The largest pairwise distance.
    pub max_distance: usize,
    /// Whether all pairs are at distance ≤ 1 — necessary for a perfect HI
    /// implementation of an object whose states are mutually reachable in
    /// one operation (Proposition 6).
    pub perfect_hi_possible: bool,
    /// Number of base objects in the implementation.
    pub cells: usize,
    /// The largest declared base-object state space, if all are bounded.
    pub max_cell_states: Option<u64>,
}

/// Audits the pairwise canonical distances of representative states.
///
/// For a `C_t` object implemented from binary registers this reports
/// `perfect_hi_possible = false` for `t ≥ 3`, exhibiting Proposition 14
/// concretely.
pub fn audit_distances(mem_layout: &SharedMem, canon: &[MemSnapshot]) -> DistanceAudit {
    let k = canon.len();
    let mut dist = vec![vec![0usize; k]; k];
    let mut max_distance = 0;
    for i in 0..k {
        for j in 0..k {
            let d = SharedMem::distance(&canon[i], &canon[j]);
            dist[i][j] = d;
            max_distance = max_distance.max(d);
        }
    }
    let max_cell_states = mem_layout
        .iter()
        .map(|(_, info, _)| info.domain.states())
        .collect::<Option<Vec<_>>>()
        .map(|sizes| sizes.into_iter().max().unwrap_or(0));
    DistanceAudit {
        dist,
        max_distance,
        perfect_hi_possible: max_distance <= 1,
        cells: mem_layout.len(),
        max_cell_states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_distance_matrix() {
        let mut mem = SharedMem::new();
        mem.alloc_array("A", 3, hi_sim::CellDomain::Binary, 0);
        let canon = vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]];
        let audit = audit_distances(&mem, &canon);
        assert_eq!(audit.max_distance, 2);
        assert!(!audit.perfect_hi_possible);
        assert_eq!(audit.max_cell_states, Some(2));
        assert_eq!(audit.dist[0][0], 0);
        assert_eq!(audit.dist[0][1], 2);
    }

    #[test]
    fn distance_one_passes() {
        let mut mem = SharedMem::new();
        mem.alloc("x", hi_sim::CellDomain::Bounded(4), 0);
        let canon = vec![vec![0], vec![1], vec![2]];
        let audit = audit_distances(&mem, &canon);
        assert_eq!(audit.max_distance, 1);
        assert!(audit.perfect_hi_possible);
    }
}
