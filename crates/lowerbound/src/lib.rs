#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Executable impossibility results (paper §5).
//!
//! The paper's Theorem 17 (no wait-free state-quiescent HI implementation of
//! a `C_t` object from base objects with fewer than `t` states) and Theorem
//! 20 (the queue-with-`Peek` analogue) are proved by an explicit adversary
//! construction — Lemma 16 / Lemma 38 — that this crate makes runnable:
//!
//! 1. Compute the canonical representation `can(q)` of each representative
//!    state by solo executions ([`canonical_map`]).
//! 2. Maintain one forked execution per response class, each avoiding its
//!    class, with the reader's local state identical across all of them.
//! 3. Each round: ask the reader which cell `ℓ` it will access next
//!    ([`ProcessHandle::peeked_cell`]), find two representative states whose
//!    canonical representations agree on `ℓ` (they exist because the base
//!    objects have fewer states than there are classes), drive each
//!    execution to a next state avoiding its class, and let the reader take
//!    one step.
//!
//! The reader observes the same value in every execution, so it can never
//! return — in each of them, some response class is forbidden by the
//! linearization. Running the adversary against Algorithm 2 starves its
//! reader forever ([`Verdict::Starved`]); against Algorithm 4 — which
//! escapes the theorem by being only *quiescent* HI, with a reader that
//! writes — the executions diverge and the reads complete
//! ([`Verdict::Diverged`]): exactly the possibility/impossibility boundary
//! of Table 1.
//!
//! [`ProcessHandle::peeked_cell`]: hi_sim::ProcessHandle::peeked_cell

pub mod adversary;
pub mod distance;
pub mod script;

pub use adversary::{run_adversary, AdversaryError, AdversaryReport, Verdict};
pub use distance::{audit_distances, canonical_map, DistanceAudit};
pub use script::{ChangeScript, CtScript, QueuePeekScript};
