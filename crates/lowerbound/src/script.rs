//! Change scripts: how the adversary's "changer" process moves the object
//! between representative states.
//!
//! For `C_t` objects (Definition 13) a single `o_change` operation suffices;
//! for the queue (§5.4) the representatives `∅, {1}, …, {t}` are connected
//! by the one-or-two-operation sequences `S(i1, i2)`, chosen so that `Peek`'s
//! response never passes through a third value.

use hi_core::objects::{BoundedQueueSpec, QueueOp, QueueState};
use hi_core::{CtObject, ObjectSpec};

/// The adversary's view of an object: representative states (one per
/// response class of the distinguished read), the read operation, and the
/// operation sequences moving between representatives.
pub trait ChangeScript<S: ObjectSpec> {
    /// One representative state per response class. The paper's `q_1 … q_t`
    /// (or `q_0 … q_t` for the queue).
    fn representatives(&self) -> Vec<S::State>;

    /// The distinguished read-only operation (`o_read` / `Peek`).
    fn read_op(&self) -> S::Op;

    /// The operations taking the object from `from` to `to`, each to be run
    /// solo to completion by the changer.
    fn ops_between(&self, from: &S::State, to: &S::State) -> Vec<S::Op>;
}

/// The script of a `C_t` object: representatives are the classes'
/// representatives, transitions are single `o_change` operations.
#[derive(Clone, Debug)]
pub struct CtScript<S> {
    spec: S,
}

impl<S: CtObject> CtScript<S> {
    /// Builds the script, verifying the `C_t` properties.
    pub fn new(spec: S) -> Self {
        spec.check_ct();
        CtScript { spec }
    }
}

impl<S: CtObject> ChangeScript<S> for CtScript<S> {
    fn representatives(&self) -> Vec<S::State> {
        (0..self.spec.t())
            .map(|i| self.spec.representative(i))
            .collect()
    }

    fn read_op(&self) -> S::Op {
        self.spec.read_op()
    }

    fn ops_between(&self, from: &S::State, to: &S::State) -> Vec<S::Op> {
        vec![self.spec.change_op(from, to)]
    }
}

/// The §5.4 queue script: representatives `∅, {1}, …, {t}`; transitions are
/// the sequences `S(i1, i2)`:
///
/// * `S(0, i)  = Enqueue(i)`
/// * `S(i, 0)  = Dequeue`
/// * `S(i, j)  = Enqueue(j), Dequeue` — passing through `{i, j}`, from which
///   `Peek` still answers `r_i`, never a third response.
#[derive(Clone, Debug)]
pub struct QueuePeekScript {
    spec: BoundedQueueSpec,
}

impl QueuePeekScript {
    /// Builds the script for a queue over `{1..=t}`.
    ///
    /// # Panics
    ///
    /// Panics if the queue's capacity is below 2 — `S(i, j)` holds two
    /// elements mid-sequence.
    pub fn new(spec: BoundedQueueSpec) -> Self {
        assert!(spec.cap() >= 2, "S(i, j) sequences need capacity >= 2");
        QueuePeekScript { spec }
    }
}

impl ChangeScript<BoundedQueueSpec> for QueuePeekScript {
    fn representatives(&self) -> Vec<QueueState> {
        let mut reps = vec![Vec::new()];
        reps.extend((1..=self.spec.t()).map(|i| vec![i]));
        reps
    }

    fn read_op(&self) -> QueueOp {
        QueueOp::Peek
    }

    fn ops_between(&self, from: &QueueState, to: &QueueState) -> Vec<QueueOp> {
        match (from.first(), to.first()) {
            (None, None) => vec![],
            (None, Some(&j)) => vec![QueueOp::Enqueue(j)],
            (Some(_), None) => vec![QueueOp::Dequeue],
            (Some(&i), Some(&j)) if i == j => vec![],
            (Some(_), Some(&j)) => vec![QueueOp::Enqueue(j), QueueOp::Dequeue],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::objects::MultiRegisterSpec;

    #[test]
    fn ct_script_for_register() {
        let script = CtScript::new(MultiRegisterSpec::new(4, 1));
        assert_eq!(script.representatives(), vec![1, 2, 3, 4]);
        let ops = script.ops_between(&2, &4);
        assert_eq!(ops.len(), 1);
    }

    #[test]
    fn queue_script_s_sequences_stay_within_two_responses() {
        use hi_core::objects::QueueResp;
        let spec = BoundedQueueSpec::new(3, 2);
        let script = QueuePeekScript::new(spec);
        let reps = script.representatives();
        assert_eq!(reps.len(), 4);
        for from in &reps {
            for to in &reps {
                let mut q = from.clone();
                let ok_resps: Vec<QueueResp> = [from, to]
                    .iter()
                    .map(|s| spec.apply(s, &QueueOp::Peek).1)
                    .collect();
                for op in script.ops_between(from, to) {
                    q = spec.apply(&q, &op).0;
                    let (_, peek) = spec.apply(&q, &QueueOp::Peek);
                    assert!(
                        ok_resps.contains(&peek),
                        "S({from:?}, {to:?}) exposed third response {peek:?}"
                    );
                }
                assert_eq!(&q, to, "S({from:?}, {to:?}) missed its target");
            }
        }
    }
}
