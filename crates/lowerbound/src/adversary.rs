//! The Lemma 16 / Lemma 38 reader-starvation adversary, executable.

use std::error::Error;
use std::fmt;

use hi_core::ObjectSpec;
use hi_sim::{Executor, Implementation, MemSnapshot, ProcessHandle};

use crate::distance::{canonical_map, CHANGER, READER};
use crate::script::ChangeScript;

/// How an adversary run ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// All forked executions stayed indistinguishable to the reader and it
    /// never returned within the round budget — the impossibility argument
    /// in action (expected for Algorithm 2 and the positional queue).
    Starved,
    /// The reader returned a response in round `round`, in all executions
    /// simultaneously — the implementation defeats the adversary (would
    /// contradict Theorem 17 if the implementation actually were
    /// state-quiescent HI from small bases).
    ReaderReturned {
        /// The round at which the read completed.
        round: u64,
        /// Debug rendering of the response.
        response: String,
    },
    /// The executions stopped being indistinguishable in round `round` —
    /// the implementation escapes the theorem's assumptions (e.g. Algorithm
    /// 4's reader *writes*, so the canonical-memory assumption the pair
    /// selection relies on breaks). `solo_outcomes[i]` is the response of
    /// execution `i`'s reader when finished solo afterwards.
    Diverged {
        /// The round at which reader states first differed.
        round: u64,
        /// Per-execution solo completion results (`None` = still starved).
        solo_outcomes: Vec<Option<String>>,
    },
}

/// Statistics of an adversary run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AdversaryReport {
    /// The outcome.
    pub verdict: Verdict,
    /// Rounds executed (= reader steps taken in lockstep).
    pub rounds: u64,
    /// Number of forked executions (`t`, or `t + 1` for the queue).
    pub executions: usize,
    /// Whether every base object has fewer states than there are response
    /// classes — the hypothesis of Theorems 17 and 20. When `false`,
    /// starvation is not guaranteed by the theory.
    pub bases_smaller_than_classes: bool,
}

/// Why the adversary could not run at all.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AdversaryError {
    /// The reader's step machine cannot predict its next cell.
    NoPeek,
    /// The readers disagree on the next cell while in identical states —
    /// indicates a broken `ProcessHandle` implementation.
    PeekMismatch,
    /// No two representative states agree on the peeked cell; happens when
    /// a base object has at least as many states as there are classes.
    NoCollidingPair {
        /// The cell index in question.
        cell: usize,
    },
}

impl fmt::Display for AdversaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversaryError::NoPeek => write!(f, "reader does not expose its next cell"),
            AdversaryError::PeekMismatch => {
                write!(f, "identical readers peek different cells")
            }
            AdversaryError::NoCollidingPair { cell } => write!(
                f,
                "no two representatives share a canonical value at cell {cell}; base objects too large"
            ),
        }
    }
}

impl Error for AdversaryError {}

/// Runs the adversary for up to `max_rounds` rounds.
///
/// `solo_budget` bounds every solo changer operation and the post-divergence
/// reader completion runs.
///
/// # Errors
///
/// See [`AdversaryError`]; these indicate the implementation (or its
/// step-machine plumbing) is outside the construction's scope, not a bug in
/// the target.
pub fn run_adversary<S, I, C>(
    imp: &I,
    script: &C,
    max_rounds: u64,
    solo_budget: u64,
) -> Result<AdversaryReport, AdversaryError>
where
    S: ObjectSpec,
    I: Implementation<S>,
    C: ChangeScript<S>,
{
    let reps = script.representatives();
    let t = reps.len();
    assert!(t >= 2, "need at least two response classes");
    let canon: Vec<MemSnapshot> = canonical_map(imp, script, &reps, solo_budget);

    let bases_smaller_than_classes = imp
        .init_memory()
        .iter()
        .all(|(_, info, _)| info.domain.states().is_some_and(|s| s < t as u64));

    // Fork one execution per class; execution i must avoid class i, so it
    // starts at the next class's representative.
    let mut execs: Vec<Executor<S, I>> = Vec::with_capacity(t);
    let mut current: Vec<usize> = Vec::with_capacity(t);
    for i in 0..t {
        let start = (i + 1) % t;
        let mut exec = Executor::new(imp.clone());
        let q0 = imp.spec().initial_state();
        for op in script.ops_between(&q0, &reps[start]) {
            exec.run_op_solo(CHANGER, op, solo_budget)
                .expect("changer operation exceeded its solo budget");
        }
        exec.invoke(READER, script.read_op());
        execs.push(exec);
        current.push(start);
    }

    let mut report = AdversaryReport {
        verdict: Verdict::Starved,
        rounds: 0,
        executions: t,
        bases_smaller_than_classes,
    };

    for round in 0..max_rounds {
        // All readers are in identical local states; they peek one cell.
        let cell = execs[0]
            .process(READER)
            .peeked_cell()
            .ok_or(AdversaryError::NoPeek)?;
        for exec in &execs[1..] {
            if exec.process(READER).peeked_cell() != Some(cell) {
                return Err(AdversaryError::PeekMismatch);
            }
        }
        // Find two classes whose canonical representations agree at `cell`
        // (pigeonhole over the cell's state space).
        let (jx, jy) = {
            let mut found = None;
            'search: for a in 0..t {
                for b in (a + 1)..t {
                    if canon[a][cell.0] == canon[b][cell.0] {
                        found = Some((a, b));
                        break 'search;
                    }
                }
            }
            found.ok_or(AdversaryError::NoCollidingPair { cell: cell.0 })?
        };
        // Drive each execution to a state avoiding its own class.
        for (i, exec) in execs.iter_mut().enumerate() {
            let next = if i == jx { jy } else { jx };
            for op in script.ops_between(&reps[current[i]], &reps[next]) {
                exec.run_op_solo(CHANGER, op, solo_budget)
                    .expect("changer operation exceeded its solo budget");
            }
            current[i] = next;
        }
        // One lockstep reader step.
        report.rounds = round + 1;
        let results: Vec<Option<String>> = execs
            .iter_mut()
            .map(|exec| exec.step(READER).map(|(_, resp)| format!("{resp:?}")))
            .collect();
        let returned = results.iter().flatten().count();
        if returned == t {
            // Indistinguishable readers return together.
            report.verdict = Verdict::ReaderReturned {
                round: round + 1,
                response: results[0].clone().expect("all returned"),
            };
            return Ok(report);
        }
        // Indistinguishability check (the heart of Lemma 16). A partial
        // return is divergence too.
        let diverged = returned > 0
            || execs[1..]
                .iter()
                .any(|exec| exec.process(READER) != execs[0].process(READER));
        if diverged {
            let solo_outcomes = execs
                .iter_mut()
                .zip(&results)
                .map(|(exec, already)| match already {
                    Some(resp) => Some(resp.clone()),
                    None => exec
                        .run_solo(READER, solo_budget)
                        .ok()
                        .map(|(_, resp)| format!("{resp:?}")),
                })
                .collect();
            report.verdict = Verdict::Diverged {
                round: round + 1,
                solo_outcomes,
            };
            return Ok(report);
        }
    }
    Ok(report)
}
