#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Abstract object model for history-independent concurrent objects.
//!
//! This crate provides the *sequential* side of the reproduction of
//! "History-Independent Concurrent Objects" (Attiya, Bender, Farach-Colton,
//! Oshman, Schiller; PODC 2024):
//!
//! * [`ObjectSpec`] — an abstract object `(Q, q0, O, R, Δ)` in the paper's
//!   notation: a set of states with a designated initial state, a set of
//!   operations, a set of responses, and a deterministic transition function.
//! * [`EnumerableSpec`] — objects whose state/operation/response spaces can be
//!   enumerated, which is what lets implementations fix a *canonical memory
//!   representation* for every state at initialization time (Proposition 3 of
//!   the paper) and what the model checkers iterate over.
//! * Concrete specifications used throughout the reproduction: multi-valued
//!   registers, counters, sets, bounded queues with `Peek`, stacks, max
//!   registers and CAS objects (module [`objects`]).
//! * [`History`] — invocation/response histories of concurrent executions,
//!   the raw material of linearizability (module [`history`]).
//! * [`CtObject`] — the class `C_t` of Definition 13, which the paper's
//!   impossibility results (§5) apply to (module [`ct`]).
//! * [`CanonicalMap`] — the `state → memory representation` bookkeeping used
//!   by every history-independence checker (module [`canonical`]).
//! * [`Roles`] / [`HiLevel`] — the role discipline and HI guarantee shared
//!   by the threaded facade (`hi_api::ConcurrentObject`) and its simulator
//!   twin (`hi_spec::SimObject`), plus the role-aware workload generation
//!   both drive with (module [`workload`]).
//!
//! # Example
//!
//! ```
//! use hi_core::objects::{MultiRegisterSpec, RegisterOp, RegisterResp};
//! use hi_core::ObjectSpec;
//!
//! let spec = MultiRegisterSpec::new(4, 1);
//! let q0 = spec.initial_state();
//! let (q1, r) = spec.apply(&q0, &RegisterOp::Write(3));
//! assert_eq!(q1, 3);
//! assert_eq!(r, RegisterResp::Ack);
//! let (q2, r) = spec.apply(&q1, &RegisterOp::Read);
//! assert_eq!(q2, q1, "reads are read-only");
//! assert_eq!(r, RegisterResp::Value(3));
//! ```

pub mod canonical;
pub mod cells;
pub mod ct;
pub mod fingerprint;
pub mod history;
pub mod object;
pub mod objects;
pub mod workload;

pub use canonical::{CanonicalMap, HiViolation};
pub use ct::CtObject;
pub use fingerprint::{Fingerprint, FingerprintWriter};
pub use history::{Event, History, OpId, OpRecord, Pid, SequentialHistory};
pub use object::{EnumerableSpec, HiLevel, ObjectSpec, Progress, Roles};
pub use workload::{
    handle_seed, menus_for, random_script, seeded_shuffle, skewed_script, Arrival, ArrivalGen,
    KeyDist, KeySampler, SplitMix64,
};
