//! Stable configuration fingerprinting for the schedule-space model checker.
//!
//! The exhaustive explorer (`hi_spec::explore`) deduplicates configurations
//! by hashing a *canonical encoding* of everything that determines the
//! future of an exploration node: the memory snapshot, every process's
//! control state, the pending-operation table, the workload cursors and the
//! induced history. Two nodes with equal fingerprints have byte-for-byte
//! identical subtrees, so the second can be pruned and credited with the
//! first's certified results.
//!
//! The hash must therefore be
//!
//! * **deterministic across runs and platforms** — reports are compared in
//!   CI and reduction ratios are recorded as artifacts, so
//!   [`std::collections::hash_map::DefaultHasher`] (unspecified, seedable)
//!   is out;
//! * **wide enough that collisions are not a soundness concern** — a merge
//!   on a colliding fingerprint would silently skip real schedules. We use
//!   128-bit FNV-1a: with the ≤ 10⁷ distinct configurations a small-scope
//!   instance can produce, the collision probability is below 2⁻⁸⁰.
//!
//! Encodings are written through [`FingerprintWriter`]'s
//! [`std::fmt::Write`] impl, so any `Debug`-rendered state can be folded in
//! without allocating intermediate strings. Every step machine in this
//! workspace derives `Debug`, which makes the rendering a faithful
//! injection of the local state.

use std::fmt::{self, Write};

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A configuration fingerprint: a stable 128-bit digest of a canonical
/// encoding.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental 128-bit FNV-1a hasher with a [`std::fmt::Write`] front end.
///
/// # Example
///
/// ```
/// use hi_core::fingerprint::FingerprintWriter;
/// use std::fmt::Write;
///
/// let mut a = FingerprintWriter::new();
/// write!(a, "{:?}", (1u64, "reader")).unwrap();
/// let mut b = FingerprintWriter::new();
/// write!(b, "{:?}", (1u64, "reader")).unwrap();
/// assert_eq!(a.finish(), b.finish());
///
/// let mut c = FingerprintWriter::new();
/// write!(c, "{:?}", (2u64, "reader")).unwrap();
/// assert_ne!(a.finish(), c.finish());
/// ```
#[derive(Clone, Debug)]
pub struct FingerprintWriter {
    state: u128,
}

impl Default for FingerprintWriter {
    fn default() -> Self {
        FingerprintWriter::new()
    }
}

impl FingerprintWriter {
    /// Creates a writer at the FNV-1a offset basis.
    pub fn new() -> Self {
        FingerprintWriter { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one `u64` into the digest (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a whole `u64` slice into the digest, length-prefixed so
    /// adjacent fields cannot alias (`[1] ++ []` vs `[] ++ [1]`).
    pub fn write_u64s(&mut self, vs: &[u64]) {
        self.write_u64(vs.len() as u64);
        for &v in vs {
            self.write_u64(v);
        }
    }

    /// Folds the `Debug` rendering of `value` into the digest, followed by
    /// a field separator so adjacent renderings cannot alias.
    pub fn write_debug<T: fmt::Debug>(&mut self, value: &T) {
        let _ = write!(self, "{value:?}");
        self.write_bytes(&[0x1f]);
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

impl Write for FingerprintWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_offset_basis() {
        assert_eq!(FingerprintWriter::new().finish(), Fingerprint(FNV_OFFSET));
    }

    #[test]
    fn known_vector() {
        // FNV-1a 128 of "a" (standard test vector).
        let mut w = FingerprintWriter::new();
        w.write_bytes(b"a");
        assert_eq!(w.finish(), Fingerprint(0xd228cb696f1a8caf78912b704e4a8964));
    }

    #[test]
    fn length_prefix_prevents_aliasing() {
        let mut a = FingerprintWriter::new();
        a.write_u64s(&[1]);
        a.write_u64s(&[]);
        let mut b = FingerprintWriter::new();
        b.write_u64s(&[]);
        b.write_u64s(&[1]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn debug_separator_prevents_aliasing() {
        let mut a = FingerprintWriter::new();
        a.write_debug(&"xy");
        a.write_debug(&"z");
        let mut b = FingerprintWriter::new();
        b.write_debug(&"x");
        b.write_debug(&"yz");
        assert_ne!(a.finish(), b.finish());
    }
}
