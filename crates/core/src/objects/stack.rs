//! A bounded stack, an additional object for exercising the universal
//! construction (paper §6 applies to arbitrary objects).

use crate::object::{EnumerableSpec, ObjectSpec};

/// Operations of the stack.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StackOp {
    /// Push `v`; a no-op on a full stack (responds [`StackResp::Full`]).
    Push(u32),
    /// Pop the top element.
    Pop,
    /// Return the top element without removing it; read-only.
    Top,
}

/// Responses of the stack.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StackResp {
    /// The top element.
    Value(u32),
    /// The stack is empty, or the default push response.
    Empty,
    /// Push on a full stack.
    Full,
}

/// A bounded LIFO stack over `{1..=t}` with capacity `cap`.
///
/// # Example
///
/// ```
/// use hi_core::ObjectSpec;
/// use hi_core::objects::{StackSpec, StackOp, StackResp};
///
/// let st = StackSpec::new(3, 4);
/// let s = st.run([StackOp::Push(1), StackOp::Push(3)].iter());
/// assert_eq!(st.apply(&s, &StackOp::Top).1, StackResp::Value(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StackSpec {
    t: u32,
    cap: usize,
}

impl StackSpec {
    /// Creates a stack over `{1..=t}` with capacity `cap`.
    ///
    /// # Panics
    ///
    /// Panics unless `t >= 2` and `cap >= 1`.
    pub fn new(t: u32, cap: usize) -> Self {
        assert!(t >= 2, "element domain must have at least two values");
        assert!(cap >= 1, "capacity must be positive");
        StackSpec { t, cap }
    }

    /// The element domain size `t`.
    pub fn t(&self) -> u32 {
        self.t
    }

    /// The capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

impl ObjectSpec for StackSpec {
    /// Elements bottom-first; the top is the last element.
    type State = Vec<u32>;
    type Op = StackOp;
    type Resp = StackResp;

    fn initial_state(&self) -> Vec<u32> {
        Vec::new()
    }

    fn apply(&self, state: &Vec<u32>, op: &StackOp) -> (Vec<u32>, StackResp) {
        match op {
            StackOp::Push(v) => {
                assert!(
                    (1..=self.t).contains(v),
                    "push of out-of-domain element {v}"
                );
                if state.len() >= self.cap {
                    (state.clone(), StackResp::Full)
                } else {
                    let mut s = state.clone();
                    s.push(*v);
                    (s, StackResp::Empty)
                }
            }
            StackOp::Pop => {
                let mut s = state.clone();
                match s.pop() {
                    Some(v) => (s, StackResp::Value(v)),
                    None => (s, StackResp::Empty),
                }
            }
            StackOp::Top => match state.last() {
                Some(v) => (state.clone(), StackResp::Value(*v)),
                None => (state.clone(), StackResp::Empty),
            },
        }
    }

    fn is_read_only(&self, op: &StackOp) -> bool {
        matches!(op, StackOp::Top)
    }
}

impl EnumerableSpec for StackSpec {
    fn states(&self) -> Vec<Vec<u32>> {
        let mut states = vec![Vec::new()];
        let mut frontier = vec![Vec::new()];
        for _ in 0..self.cap {
            let mut next = Vec::new();
            for s in &frontier {
                for v in 1..=self.t {
                    let mut s2: Vec<u32> = s.clone();
                    s2.push(v);
                    next.push(s2);
                }
            }
            states.extend(next.iter().cloned());
            frontier = next;
        }
        states
    }

    fn ops(&self) -> Vec<StackOp> {
        let mut ops = vec![StackOp::Pop, StackOp::Top];
        ops.extend((1..=self.t).map(StackOp::Push));
        ops
    }

    fn responses(&self) -> Vec<StackResp> {
        let mut rs = vec![StackResp::Empty, StackResp::Full];
        rs.extend((1..=self.t).map(StackResp::Value));
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_closed() {
        StackSpec::new(2, 2).check_closed();
    }

    #[test]
    fn lifo_order() {
        let st = StackSpec::new(4, 4);
        let s = st.run([StackOp::Push(1), StackOp::Push(2)].iter());
        let (s, r1) = st.apply(&s, &StackOp::Pop);
        let (_, r2) = st.apply(&s, &StackOp::Pop);
        assert_eq!((r1, r2), (StackResp::Value(2), StackResp::Value(1)));
    }

    #[test]
    fn pop_empty() {
        let st = StackSpec::new(2, 2);
        assert_eq!(st.apply(&vec![], &StackOp::Pop).1, StackResp::Empty);
    }
}
