//! The `t`-valued CAS object with a read operation (paper §5.1).
//!
//! The paper lists this as the second example of a `C_t` member: `Read`
//! distinguishes all `t` values, and `CAS(q, q')` moves from any state `q`
//! to any state `q'` in one operation.

use crate::object::{EnumerableSpec, ObjectSpec};

/// Operations of the CAS object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CasOp {
    /// Return the current value; read-only.
    Read,
    /// `CAS(old, new)`: if the value is `old`, replace it with `new` and
    /// respond `true`, else leave it and respond `false`.
    Cas(u64, u64),
    /// Unconditional write (the paper's CAS objects support read and write).
    Write(u64),
}

/// Responses of the CAS object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CasResp {
    /// Response of [`CasOp::Read`].
    Value(u64),
    /// Response of [`CasOp::Cas`].
    Bool(bool),
    /// Response of [`CasOp::Write`].
    Ack,
}

/// A `t`-valued CAS object over values `1..=t` supporting read, write and
/// compare-and-swap.
///
/// # Example
///
/// ```
/// use hi_core::ObjectSpec;
/// use hi_core::objects::{CasSpec, CasOp, CasResp};
///
/// let c = CasSpec::new(3, 1);
/// let (q, r) = c.apply(&1, &CasOp::Cas(1, 3));
/// assert_eq!((q, r), (3, CasResp::Bool(true)));
/// let (q, r) = c.apply(&q, &CasOp::Cas(1, 2));
/// assert_eq!((q, r), (3, CasResp::Bool(false)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CasSpec {
    t: u64,
    initial: u64,
}

impl CasSpec {
    /// Creates a `t`-valued CAS object with the given initial value.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= initial <= t` and `t >= 2`.
    pub fn new(t: u64, initial: u64) -> Self {
        assert!(t >= 2, "a CAS object needs at least two values");
        assert!((1..=t).contains(&initial), "initial value out of range");
        CasSpec { t, initial }
    }

    /// The number of values, `t`.
    pub fn t(&self) -> u64 {
        self.t
    }
}

impl ObjectSpec for CasSpec {
    type State = u64;
    type Op = CasOp;
    type Resp = CasResp;

    fn initial_state(&self) -> u64 {
        self.initial
    }

    fn apply(&self, state: &u64, op: &CasOp) -> (u64, CasResp) {
        match op {
            CasOp::Read => (*state, CasResp::Value(*state)),
            CasOp::Cas(old, new) => {
                assert!(
                    (1..=self.t).contains(new),
                    "CAS to out-of-range value {new}"
                );
                if state == old {
                    (*new, CasResp::Bool(true))
                } else {
                    (*state, CasResp::Bool(false))
                }
            }
            CasOp::Write(v) => {
                assert!((1..=self.t).contains(v), "write of out-of-range value {v}");
                (*v, CasResp::Ack)
            }
        }
    }

    fn is_read_only(&self, op: &CasOp) -> bool {
        match op {
            CasOp::Read => true,
            CasOp::Cas(old, new) => old == new,
            CasOp::Write(_) => self.t == 1,
        }
    }
}

impl EnumerableSpec for CasSpec {
    fn states(&self) -> Vec<u64> {
        (1..=self.t).collect()
    }

    fn ops(&self) -> Vec<CasOp> {
        let mut ops = vec![CasOp::Read];
        for old in 1..=self.t {
            for new in 1..=self.t {
                ops.push(CasOp::Cas(old, new));
            }
        }
        ops.extend((1..=self.t).map(CasOp::Write));
        ops
    }

    fn responses(&self) -> Vec<CasResp> {
        let mut rs = vec![CasResp::Ack, CasResp::Bool(false), CasResp::Bool(true)];
        rs.extend((1..=self.t).map(CasResp::Value));
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_closed() {
        CasSpec::new(3, 1).check_closed();
    }

    #[test]
    fn cas_failure_preserves_state() {
        let c = CasSpec::new(4, 2);
        let (q, r) = c.apply(&2, &CasOp::Cas(3, 4));
        assert_eq!((q, r), (2, CasResp::Bool(false)));
    }

    #[test]
    fn identity_cas_is_read_only() {
        let c = CasSpec::new(4, 1);
        assert!(c.is_read_only(&CasOp::Cas(2, 2)));
        assert!(!c.is_read_only(&CasOp::Cas(2, 3)));
    }
}
