//! The reporting hash set over `{1..t}` (the follow-up paper's workload).
//!
//! Unlike [`SetSpec`](crate::objects::SetSpec), whose updates are *blind*
//! (they return `Ack`, which is what makes the one-bit-write perfect-HI
//! implementation possible), this set **reports**: `Insert` returns whether
//! the element was newly added, `Remove` whether it was present. This is the
//! natural sequential specification of a hash table's membership interface,
//! and the abstract object implemented by `hi_hashtable`'s Robin Hood
//! tables — where the interesting memory representation is an *array*, not
//! a characteristic vector.

use crate::object::{EnumerableSpec, ObjectSpec};

/// Operations of the reporting hash set over `{1..=t}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HashSetOp {
    /// Add element `e`; reports whether it was newly added.
    Insert(u32),
    /// Remove element `e`; reports whether it was present.
    Remove(u32),
    /// Membership test; read-only.
    Contains(u32),
}

/// Responses of the reporting hash set: every operation answers a boolean.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HashSetResp {
    /// `Insert` → newly added; `Remove` → was present; `Contains` → member.
    Bool(bool),
}

/// A set over the domain `{1..=t}`, `t <= 63`, with reporting updates. The
/// state is a bitmask (bit `e` set iff `e` is in the set), exactly as in
/// [`SetSpec`](crate::objects::SetSpec).
///
/// # Example
///
/// ```
/// use hi_core::ObjectSpec;
/// use hi_core::objects::{HashSetSpec, HashSetOp, HashSetResp};
///
/// let s = HashSetSpec::new(5);
/// let (q, r) = s.apply(&s.initial_state(), &HashSetOp::Insert(3));
/// assert_eq!(r, HashSetResp::Bool(true), "newly added");
/// assert_eq!(s.apply(&q, &HashSetOp::Insert(3)).1, HashSetResp::Bool(false));
/// assert_eq!(s.apply(&q, &HashSetOp::Remove(3)).1, HashSetResp::Bool(true));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HashSetSpec {
    t: u32,
}

impl HashSetSpec {
    /// Creates a reporting set over `{1..=t}`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= t <= 63`.
    pub fn new(t: u32) -> Self {
        assert!((1..=63).contains(&t), "domain size must be in 1..=63");
        HashSetSpec { t }
    }

    /// The domain size `t`.
    pub fn t(&self) -> u32 {
        self.t
    }

    fn check_elem(&self, e: u32) {
        assert!((1..=self.t).contains(&e), "element {e} out of domain");
    }
}

impl ObjectSpec for HashSetSpec {
    /// Bit `e` set iff element `e` is a member.
    type State = u64;
    type Op = HashSetOp;
    type Resp = HashSetResp;

    fn initial_state(&self) -> u64 {
        0
    }

    fn apply(&self, state: &u64, op: &HashSetOp) -> (u64, HashSetResp) {
        match op {
            HashSetOp::Insert(e) => {
                self.check_elem(*e);
                let added = state & (1 << e) == 0;
                (state | (1 << e), HashSetResp::Bool(added))
            }
            HashSetOp::Remove(e) => {
                self.check_elem(*e);
                let present = state & (1 << e) != 0;
                (state & !(1 << e), HashSetResp::Bool(present))
            }
            HashSetOp::Contains(e) => {
                self.check_elem(*e);
                (*state, HashSetResp::Bool(state & (1 << e) != 0))
            }
        }
    }

    fn is_read_only(&self, op: &HashSetOp) -> bool {
        matches!(op, HashSetOp::Contains(_))
    }
}

impl EnumerableSpec for HashSetSpec {
    fn states(&self) -> Vec<u64> {
        // All subsets of {1..t}, as bitmasks over bits 1..=t.
        (0..(1u64 << self.t)).map(|m| m << 1).collect()
    }

    fn ops(&self) -> Vec<HashSetOp> {
        let mut ops = Vec::new();
        for e in 1..=self.t {
            ops.push(HashSetOp::Insert(e));
            ops.push(HashSetOp::Remove(e));
            ops.push(HashSetOp::Contains(e));
        }
        ops
    }

    fn responses(&self) -> Vec<HashSetResp> {
        vec![HashSetResp::Bool(false), HashSetResp::Bool(true)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_closed() {
        HashSetSpec::new(3).check_closed();
    }

    #[test]
    fn reports_membership_transitions() {
        let s = HashSetSpec::new(5);
        let mut q = s.initial_state();
        let (q2, r) = s.apply(&q, &HashSetOp::Insert(2));
        assert_eq!(r, HashSetResp::Bool(true));
        q = q2;
        assert_eq!(
            s.apply(&q, &HashSetOp::Insert(2)).1,
            HashSetResp::Bool(false)
        );
        assert_eq!(
            s.apply(&q, &HashSetOp::Remove(4)).1,
            HashSetResp::Bool(false)
        );
        let (q3, r) = s.apply(&q, &HashSetOp::Remove(2));
        assert_eq!(r, HashSetResp::Bool(true));
        assert_eq!(q3, 0);
    }

    #[test]
    fn contains_is_the_only_read_only_op() {
        let s = HashSetSpec::new(3);
        assert!(s.is_read_only(&HashSetOp::Contains(1)));
        assert!(!s.is_read_only(&HashSetOp::Insert(1)));
        assert!(!s.is_read_only(&HashSetOp::Remove(1)));
    }
}
