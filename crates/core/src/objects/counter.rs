//! A bounded counter supporting increment, decrement and read.
//!
//! The paper's §6.1 uses a counter with fetch-and-increment and
//! fetch-and-decrement as the example of an object whose *history* (was it
//! ever non-zero?) must not leak from the memory representation. The bounds
//! keep the state space finite so the universal construction's codec and the
//! model checkers can enumerate it; increments and decrements saturate.

use crate::object::{EnumerableSpec, ObjectSpec};

/// Operations of a bounded counter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CounterOp {
    /// Add one (saturating at the upper bound); returns the previous value.
    Inc,
    /// Subtract one (saturating at the lower bound); returns the previous value.
    Dec,
    /// Return the current value; read-only.
    Read,
}

/// Responses of a bounded counter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CounterResp {
    /// The value observed by `Read`, or the previous value for `Inc`/`Dec`.
    Value(i64),
    /// Unused placeholder kept for spec completeness of write-like ops.
    Ack,
}

/// A counter over `lo..=hi` supporting fetch-and-increment,
/// fetch-and-decrement and read.
///
/// # Example
///
/// ```
/// use hi_core::ObjectSpec;
/// use hi_core::objects::{CounterSpec, CounterOp, CounterResp};
///
/// let c = CounterSpec::new(-2, 2, 0);
/// let (q, r) = c.apply(&0, &CounterOp::Inc);
/// assert_eq!((q, r), (1, CounterResp::Ack));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CounterSpec {
    lo: i64,
    hi: i64,
    initial: i64,
}

impl CounterSpec {
    /// Creates a counter over `lo..=hi` starting at `initial`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= initial <= hi` and `lo < hi`.
    pub fn new(lo: i64, hi: i64, initial: i64) -> Self {
        assert!(lo < hi, "counter range must contain at least two values");
        assert!((lo..=hi).contains(&initial), "initial value out of range");
        CounterSpec { lo, hi, initial }
    }

    /// The lower bound.
    pub fn lo(&self) -> i64 {
        self.lo
    }

    /// The upper bound.
    pub fn hi(&self) -> i64 {
        self.hi
    }
}

impl ObjectSpec for CounterSpec {
    type State = i64;
    type Op = CounterOp;
    type Resp = CounterResp;

    fn initial_state(&self) -> i64 {
        self.initial
    }

    fn apply(&self, state: &i64, op: &CounterOp) -> (i64, CounterResp) {
        match op {
            CounterOp::Inc => ((*state + 1).min(self.hi), CounterResp::Ack),
            CounterOp::Dec => ((*state - 1).max(self.lo), CounterResp::Ack),
            CounterOp::Read => (*state, CounterResp::Value(*state)),
        }
    }

    fn is_read_only(&self, op: &CounterOp) -> bool {
        matches!(op, CounterOp::Read)
    }
}

impl EnumerableSpec for CounterSpec {
    fn states(&self) -> Vec<i64> {
        (self.lo..=self.hi).collect()
    }

    fn ops(&self) -> Vec<CounterOp> {
        vec![CounterOp::Inc, CounterOp::Dec, CounterOp::Read]
    }

    fn responses(&self) -> Vec<CounterResp> {
        let mut rs = vec![CounterResp::Ack];
        rs.extend((self.lo..=self.hi).map(CounterResp::Value));
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_closed() {
        CounterSpec::new(-1, 3, 0).check_closed();
    }

    #[test]
    fn saturation() {
        let c = CounterSpec::new(0, 1, 0);
        assert_eq!(c.apply(&1, &CounterOp::Inc).0, 1);
        assert_eq!(c.apply(&0, &CounterOp::Dec).0, 0);
    }

    #[test]
    fn inc_dec_round_trip() {
        let c = CounterSpec::new(-5, 5, 0);
        let q = c.run([CounterOp::Inc, CounterOp::Inc, CounterOp::Dec].iter());
        assert_eq!(q, 1);
    }
}
