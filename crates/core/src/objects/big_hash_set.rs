//! The big-domain reporting hash set: [`HashSetSpec`]'s interface over
//! domains far beyond the 63-element bitmask, for the sharded scale-out
//! backends (`hi_shard`).
//!
//! Two pieces:
//!
//! * [`KeySetSpec`] — the trait both set specifications share: any
//!   [`EnumerableSpec`] speaking [`HashSetOp`]/[`HashSetResp`] whose state
//!   is (isomorphic to) a key set. Adapters generic over `KeySetSpec` can
//!   serve the 63-element bitmask spec and the million-key spec with one
//!   code path, converting states to and from explicit key lists.
//! * [`BigHashSetSpec`] — the same sequential object as [`HashSetSpec`]
//!   but with `State = Vec<u32>` (sorted keys), so the domain bound is
//!   memory, not a machine word. Its state space is only *enumerable* for
//!   small `t`; beyond that [`EnumerableSpec::states`] panics loudly, and
//!   drivers that enumerate states (the model checker, `check_closed`)
//!   must be given a small instance — exactly the downsizing discipline
//!   the scenario registry already applies.

use crate::object::{EnumerableSpec, ObjectSpec};
use crate::objects::hash_set::{HashSetOp, HashSetResp, HashSetSpec};

/// A reporting set specification whose abstract state is a key set over
/// `{1..=domain()}`. The common face of [`HashSetSpec`] (bitmask state,
/// `domain <= 63`) and [`BigHashSetSpec`] (sorted-vector state, any
/// domain), letting one generic adapter translate between abstract states
/// and the explicit key lists the sharded backends canonicalize.
pub trait KeySetSpec: EnumerableSpec<Op = HashSetOp, Resp = HashSetResp> {
    /// The domain size `t`: elements range over `1..=t`.
    fn domain(&self) -> u32;

    /// The abstract state holding exactly `keys` (each in `1..=domain()`,
    /// duplicates ignored).
    fn state_from_keys(&self, keys: &[u32]) -> Self::State;

    /// The key set of `state`, sorted ascending.
    fn keys_of_state(&self, state: &Self::State) -> Vec<u32>;
}

impl KeySetSpec for HashSetSpec {
    fn domain(&self) -> u32 {
        self.t()
    }

    fn state_from_keys(&self, keys: &[u32]) -> u64 {
        keys.iter().fold(0u64, |mask, &k| {
            assert!(
                (1..=self.t()).contains(&k),
                "element {k} out of domain in key list"
            );
            mask | (1 << k)
        })
    }

    fn keys_of_state(&self, state: &u64) -> Vec<u32> {
        (1..=self.t()).filter(|e| state & (1 << e) != 0).collect()
    }
}

/// The largest domain whose `2^t` states [`BigHashSetSpec::states`] will
/// enumerate before panicking. Big enough for every downsized model-check
/// instance, small enough that nothing enumerates a million-key state
/// space by accident.
pub const BIG_SET_ENUMERABLE_T: u32 = 16;

/// A reporting set over `{1..=t}` for arbitrary `t`, with sorted-key-vector
/// state. Sequentially indistinguishable from [`HashSetSpec`] on shared
/// domains (`state_is_mask_equivalent` below pins this), but free of the
/// 63-element bitmask ceiling — the specification the sharded table's
/// soak scenarios run at a million keys.
///
/// # Example
///
/// ```
/// use hi_core::ObjectSpec;
/// use hi_core::objects::{BigHashSetSpec, HashSetOp, HashSetResp};
///
/// let s = BigHashSetSpec::new(1 << 20);
/// let (q, r) = s.apply(&s.initial_state(), &HashSetOp::Insert(999_983));
/// assert_eq!(r, HashSetResp::Bool(true), "newly added");
/// assert_eq!(s.apply(&q, &HashSetOp::Contains(999_983)).1, HashSetResp::Bool(true));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BigHashSetSpec {
    t: u32,
}

impl BigHashSetSpec {
    /// Creates a reporting set over `{1..=t}`.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` (key 0 is reserved by every backend for empty
    /// slots).
    pub fn new(t: u32) -> Self {
        assert!(t >= 1, "domain size must be at least 1");
        BigHashSetSpec { t }
    }

    /// The domain size `t`.
    pub fn t(&self) -> u32 {
        self.t
    }

    fn check_elem(&self, e: u32) {
        assert!((1..=self.t).contains(&e), "element {e} out of domain");
    }
}

impl ObjectSpec for BigHashSetSpec {
    /// The member keys, sorted ascending (so `Eq`/`Hash` see one
    /// representation per abstract set — the spec itself is canonical).
    type State = Vec<u32>;
    type Op = HashSetOp;
    type Resp = HashSetResp;

    fn initial_state(&self) -> Vec<u32> {
        Vec::new()
    }

    fn apply(&self, state: &Vec<u32>, op: &HashSetOp) -> (Vec<u32>, HashSetResp) {
        match op {
            HashSetOp::Insert(e) => {
                self.check_elem(*e);
                match state.binary_search(e) {
                    Ok(_) => (state.clone(), HashSetResp::Bool(false)),
                    Err(at) => {
                        let mut next = state.clone();
                        next.insert(at, *e);
                        (next, HashSetResp::Bool(true))
                    }
                }
            }
            HashSetOp::Remove(e) => {
                self.check_elem(*e);
                match state.binary_search(e) {
                    Ok(at) => {
                        let mut next = state.clone();
                        next.remove(at);
                        (next, HashSetResp::Bool(true))
                    }
                    Err(_) => (state.clone(), HashSetResp::Bool(false)),
                }
            }
            HashSetOp::Contains(e) => {
                self.check_elem(*e);
                (
                    state.clone(),
                    HashSetResp::Bool(state.binary_search(e).is_ok()),
                )
            }
        }
    }

    fn is_read_only(&self, op: &HashSetOp) -> bool {
        matches!(op, HashSetOp::Contains(_))
    }
}

impl EnumerableSpec for BigHashSetSpec {
    /// All `2^t` subsets — **only** for `t <= BIG_SET_ENUMERABLE_T`.
    ///
    /// # Panics
    ///
    /// Panics for larger domains: a big-domain instance must never be
    /// handed to a state-enumerating driver; downsize it first (as the
    /// scenario registry's 5th-argument small instances do).
    fn states(&self) -> Vec<Vec<u32>> {
        assert!(
            self.t <= BIG_SET_ENUMERABLE_T,
            "BigHashSetSpec::states() over t = {} would enumerate 2^{} states; \
             use a downsized instance (t <= {BIG_SET_ENUMERABLE_T}) for \
             state-enumerating drivers",
            self.t,
            self.t
        );
        (0..(1u64 << self.t))
            .map(|mask| {
                (1..=self.t)
                    .filter(|e| mask & (1 << (e - 1)) != 0)
                    .collect()
            })
            .collect()
    }

    fn ops(&self) -> Vec<HashSetOp> {
        let mut ops = Vec::with_capacity(3 * self.t as usize);
        for e in 1..=self.t {
            ops.push(HashSetOp::Insert(e));
            ops.push(HashSetOp::Remove(e));
            ops.push(HashSetOp::Contains(e));
        }
        ops
    }

    fn responses(&self) -> Vec<HashSetResp> {
        vec![HashSetResp::Bool(false), HashSetResp::Bool(true)]
    }
}

impl KeySetSpec for BigHashSetSpec {
    fn domain(&self) -> u32 {
        self.t
    }

    fn state_from_keys(&self, keys: &[u32]) -> Vec<u32> {
        let mut sorted: Vec<u32> = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &k in &sorted {
            self.check_elem(k);
        }
        sorted
    }

    fn keys_of_state(&self, state: &Vec<u32>) -> Vec<u32> {
        state.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_closed_small() {
        BigHashSetSpec::new(3).check_closed();
    }

    #[test]
    #[should_panic(expected = "would enumerate")]
    fn states_refuses_big_domains() {
        let _ = BigHashSetSpec::new(BIG_SET_ENUMERABLE_T + 1).states();
    }

    #[test]
    fn state_is_mask_equivalent() {
        // On a shared domain, BigHashSetSpec and HashSetSpec are the same
        // sequential object: identical responses, key-set-isomorphic states,
        // under an arbitrary op script.
        let t = 6;
        let big = BigHashSetSpec::new(t);
        let small = HashSetSpec::new(t);
        let script = [
            HashSetOp::Insert(3),
            HashSetOp::Insert(5),
            HashSetOp::Insert(3),
            HashSetOp::Contains(5),
            HashSetOp::Remove(3),
            HashSetOp::Remove(3),
            HashSetOp::Contains(3),
            HashSetOp::Insert(1),
            HashSetOp::Remove(5),
        ];
        let mut qb = big.initial_state();
        let mut qs = small.initial_state();
        for op in script {
            let (nb, rb) = big.apply(&qb, &op);
            let (ns, rs) = small.apply(&qs, &op);
            assert_eq!(rb, rs, "responses diverged at {op:?}");
            qb = nb;
            qs = ns;
            assert_eq!(qb, small.keys_of_state(&qs), "states diverged at {op:?}");
        }
    }

    #[test]
    fn key_set_roundtrips_through_both_specs() {
        let keys = [2u32, 9, 4];
        let big = BigHashSetSpec::new(10);
        let small = HashSetSpec::new(10);
        assert_eq!(big.state_from_keys(&keys), vec![2, 4, 9]);
        assert_eq!(
            big.keys_of_state(&big.state_from_keys(&keys)),
            small.keys_of_state(&small.state_from_keys(&keys)),
        );
        assert_eq!(big.domain(), 10);
        assert_eq!(small.domain(), 10);
    }

    #[test]
    fn contains_is_the_only_read_only_op() {
        let s = BigHashSetSpec::new(3);
        assert!(s.is_read_only(&HashSetOp::Contains(1)));
        assert!(!s.is_read_only(&HashSetOp::Insert(1)));
        assert!(!s.is_read_only(&HashSetOp::Remove(1)));
    }
}
