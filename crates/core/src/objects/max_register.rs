//! The max register (paper §5.1).
//!
//! A max register returns the maximum value ever written to it. The paper
//! uses it as the example of an object *not* in `C_t`: once the object
//! reaches state `m` it can never return to a smaller state, so the
//! state-connectivity requirement of Definition 13 fails — and indeed a
//! wait-free state-quiescent HI implementation from binary registers exists
//! (`hi-registers::max_register`), circumventing Theorem 17.

use crate::object::{EnumerableSpec, ObjectSpec};
use crate::objects::register::{RegisterOp, RegisterResp};

/// Operations of the max register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MaxRegisterOp {
    /// Raise the register to `max(current, v)`.
    WriteMax(u64),
    /// Return the maximum value written so far; read-only.
    ReadMax,
}

/// A max register over values `1..=K` with initial value 1 (the minimum).
///
/// Responses reuse [`RegisterResp`].
///
/// # Example
///
/// ```
/// use hi_core::ObjectSpec;
/// use hi_core::objects::{MaxRegisterSpec, MaxRegisterOp, RegisterResp};
///
/// let m = MaxRegisterSpec::new(5);
/// let q = m.run([MaxRegisterOp::WriteMax(4), MaxRegisterOp::WriteMax(2)].iter());
/// assert_eq!(m.apply(&q, &MaxRegisterOp::ReadMax).1, RegisterResp::Value(4));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MaxRegisterSpec {
    k: u64,
}

impl MaxRegisterSpec {
    /// Creates a max register over `1..=k`.
    ///
    /// # Panics
    ///
    /// Panics unless `k >= 2`.
    pub fn new(k: u64) -> Self {
        assert!(k >= 2, "a max register needs at least two values");
        MaxRegisterSpec { k }
    }

    /// The number of values, `K`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Converts a max-register op to the plain-register op vocabulary, for
    /// implementations that share machinery with Algorithm 1.
    pub fn as_register_op(op: &MaxRegisterOp) -> RegisterOp {
        match op {
            MaxRegisterOp::WriteMax(v) => RegisterOp::Write(*v),
            MaxRegisterOp::ReadMax => RegisterOp::Read,
        }
    }
}

impl ObjectSpec for MaxRegisterSpec {
    type State = u64;
    type Op = MaxRegisterOp;
    type Resp = RegisterResp;

    fn initial_state(&self) -> u64 {
        1
    }

    fn apply(&self, state: &u64, op: &MaxRegisterOp) -> (u64, RegisterResp) {
        match op {
            MaxRegisterOp::WriteMax(v) => {
                assert!((1..=self.k).contains(v), "write of out-of-range value {v}");
                ((*state).max(*v), RegisterResp::Ack)
            }
            MaxRegisterOp::ReadMax => (*state, RegisterResp::Value(*state)),
        }
    }

    fn is_read_only(&self, op: &MaxRegisterOp) -> bool {
        // WriteMax(1) can never raise the state above the minimum, so it is
        // read-only in the paper's sense; larger writes are state-changing.
        matches!(op, MaxRegisterOp::ReadMax | MaxRegisterOp::WriteMax(1))
    }

    fn is_mutator_op(&self, op: &MaxRegisterOp) -> bool {
        // WriteMax(1) is read-only yet still a *write*: it belongs to the
        // single writer, not to the reader role.
        matches!(op, MaxRegisterOp::WriteMax(_))
    }
}

impl EnumerableSpec for MaxRegisterSpec {
    fn states(&self) -> Vec<u64> {
        (1..=self.k).collect()
    }

    fn ops(&self) -> Vec<MaxRegisterOp> {
        let mut ops = vec![MaxRegisterOp::ReadMax];
        ops.extend((1..=self.k).map(MaxRegisterOp::WriteMax));
        ops
    }

    fn responses(&self) -> Vec<RegisterResp> {
        let mut rs = vec![RegisterResp::Ack];
        rs.extend((1..=self.k).map(RegisterResp::Value));
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_closed() {
        MaxRegisterSpec::new(4).check_closed();
    }

    #[test]
    fn monotone() {
        let m = MaxRegisterSpec::new(6);
        let mut q = m.initial_state();
        for v in [3, 1, 5, 2] {
            let prev = q;
            q = m.apply(&q, &MaxRegisterOp::WriteMax(v)).0;
            assert!(q >= prev, "max register never decreases");
        }
        assert_eq!(q, 5);
    }

    #[test]
    fn write_min_is_read_only() {
        let m = MaxRegisterSpec::new(3);
        assert!(m.is_read_only(&MaxRegisterOp::WriteMax(1)));
        assert!(!m.is_read_only(&MaxRegisterOp::WriteMax(2)));
    }
}
