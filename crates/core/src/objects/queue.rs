//! The bounded queue with `Peek` (paper §5.4).
//!
//! The paper extends its impossibility result to a queue with elements from
//! `{1..t}` and a read-only `Peek` operation. The queue is bounded here so
//! the state space stays finite for enumeration; the paper's lower-bound
//! executions only ever hold at most two elements, so a small capacity
//! suffices to reproduce them.

use crate::object::{EnumerableSpec, ObjectSpec};

/// The state of a bounded queue: the elements in order, front first.
pub type QueueState = Vec<u32>;

/// Operations of the queue.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum QueueOp {
    /// Append `v` at the back. A no-op on a full queue (responds
    /// [`QueueResp::Full`]).
    Enqueue(u32),
    /// Remove and return the front element.
    Dequeue,
    /// Return the front element without removing it; read-only.
    Peek,
}

/// Responses of the queue. The paper's response space is
/// `{r_0, …, r_t}` with `r_0 = ∅` for the empty queue; [`QueueResp::Empty`]
/// plays the role of `r_0` and also serves as the default enqueue response.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum QueueResp {
    /// The front element (`r_i` for element `i`).
    Value(u32),
    /// The queue is empty (`r_0`), or the default response of `Enqueue`.
    Empty,
    /// Enqueue on a full (bounded) queue.
    Full,
}

/// A bounded FIFO queue over elements `{1..=t}` with capacity `cap`,
/// supporting `Enqueue`, `Dequeue` and a read-only `Peek`.
///
/// # Example
///
/// ```
/// use hi_core::ObjectSpec;
/// use hi_core::objects::{BoundedQueueSpec, QueueOp, QueueResp};
///
/// let q = BoundedQueueSpec::new(3, 4);
/// let s = q.run([QueueOp::Enqueue(2), QueueOp::Enqueue(3)].iter());
/// assert_eq!(q.apply(&s, &QueueOp::Peek).1, QueueResp::Value(2));
/// let (s2, r) = q.apply(&s, &QueueOp::Dequeue);
/// assert_eq!(r, QueueResp::Value(2));
/// assert_eq!(q.apply(&s2, &QueueOp::Peek).1, QueueResp::Value(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BoundedQueueSpec {
    t: u32,
    cap: usize,
}

impl BoundedQueueSpec {
    /// Creates a queue over `{1..=t}` with capacity `cap`.
    ///
    /// # Panics
    ///
    /// Panics unless `t >= 2` and `cap >= 1` (the paper's §5.4 needs at
    /// least domain size 2 and room for two elements; capacity 1 is allowed
    /// for degenerate tests).
    pub fn new(t: u32, cap: usize) -> Self {
        assert!(t >= 2, "element domain must have at least two values");
        assert!(cap >= 1, "capacity must be positive");
        BoundedQueueSpec { t, cap }
    }

    /// The element domain size `t`.
    pub fn t(&self) -> u32 {
        self.t
    }

    /// The capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

impl ObjectSpec for BoundedQueueSpec {
    type State = QueueState;
    type Op = QueueOp;
    type Resp = QueueResp;

    fn initial_state(&self) -> QueueState {
        Vec::new()
    }

    fn apply(&self, state: &QueueState, op: &QueueOp) -> (QueueState, QueueResp) {
        match op {
            QueueOp::Enqueue(v) => {
                assert!(
                    (1..=self.t).contains(v),
                    "enqueue of out-of-domain element {v}"
                );
                if state.len() >= self.cap {
                    (state.clone(), QueueResp::Full)
                } else {
                    let mut s = state.clone();
                    s.push(*v);
                    (s, QueueResp::Empty)
                }
            }
            QueueOp::Dequeue => {
                if state.is_empty() {
                    (state.clone(), QueueResp::Empty)
                } else {
                    let mut s = state.clone();
                    let front = s.remove(0);
                    (s, QueueResp::Value(front))
                }
            }
            QueueOp::Peek => match state.first() {
                Some(front) => (state.clone(), QueueResp::Value(*front)),
                None => (state.clone(), QueueResp::Empty),
            },
        }
    }

    fn is_read_only(&self, op: &QueueOp) -> bool {
        matches!(op, QueueOp::Peek)
    }
}

impl EnumerableSpec for BoundedQueueSpec {
    fn states(&self) -> Vec<QueueState> {
        // All element sequences of length 0..=cap, in length-lexicographic order.
        let mut states = vec![Vec::new()];
        let mut frontier = vec![Vec::new()];
        for _ in 0..self.cap {
            let mut next = Vec::new();
            for s in &frontier {
                for v in 1..=self.t {
                    let mut s2: Vec<u32> = s.clone();
                    s2.push(v);
                    next.push(s2);
                }
            }
            states.extend(next.iter().cloned());
            frontier = next;
        }
        states
    }

    fn ops(&self) -> Vec<QueueOp> {
        let mut ops = vec![QueueOp::Dequeue, QueueOp::Peek];
        ops.extend((1..=self.t).map(QueueOp::Enqueue));
        ops
    }

    fn responses(&self) -> Vec<QueueResp> {
        let mut rs = vec![QueueResp::Empty, QueueResp::Full];
        rs.extend((1..=self.t).map(QueueResp::Value));
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_closed() {
        BoundedQueueSpec::new(2, 2).check_closed();
    }

    #[test]
    fn state_count() {
        // 1 + t + t^2 for cap=2.
        assert_eq!(BoundedQueueSpec::new(3, 2).states().len(), 1 + 3 + 9);
    }

    #[test]
    fn fifo_order() {
        let q = BoundedQueueSpec::new(4, 4);
        let s = q.run(
            [
                QueueOp::Enqueue(1),
                QueueOp::Enqueue(2),
                QueueOp::Enqueue(3),
            ]
            .iter(),
        );
        let (s, r1) = q.apply(&s, &QueueOp::Dequeue);
        let (_, r2) = q.apply(&s, &QueueOp::Dequeue);
        assert_eq!((r1, r2), (QueueResp::Value(1), QueueResp::Value(2)));
    }

    #[test]
    fn paper_s_sequence() {
        // §5.4: S(i1, i2) = Enqueue(i2), Dequeue moves {i1} to {i2} while Peek
        // only ever observes r_{i1} or r_{i2}.
        let q = BoundedQueueSpec::new(3, 2);
        let s1 = vec![1u32];
        let (mid, _) = q.apply(&s1, &QueueOp::Enqueue(2));
        assert_eq!(q.apply(&mid, &QueueOp::Peek).1, QueueResp::Value(1));
        let (s2, _) = q.apply(&mid, &QueueOp::Dequeue);
        assert_eq!(s2, vec![2]);
        assert_eq!(q.apply(&s2, &QueueOp::Peek).1, QueueResp::Value(2));
    }

    #[test]
    fn full_queue() {
        let q = BoundedQueueSpec::new(2, 1);
        let s = q.run([QueueOp::Enqueue(1)].iter());
        let (s2, r) = q.apply(&s, &QueueOp::Enqueue(2));
        assert_eq!(r, QueueResp::Full);
        assert_eq!(s2, s);
    }
}
