//! The multi-valued read/write register (paper §4).

use crate::object::{EnumerableSpec, ObjectSpec};

/// Operations of a multi-valued register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegisterOp {
    /// Return the current value; read-only.
    Read,
    /// Set the value; the paper's `o_change` for this object.
    Write(u64),
}

/// Responses of a multi-valued register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegisterResp {
    /// Response of [`RegisterOp::Read`].
    Value(u64),
    /// Response of [`RegisterOp::Write`].
    Ack,
}

/// A `K`-valued register over values `1..=K`, the motivating object of the
/// paper's §4. It is a member of the class `C_t` with `t = K`: `Read`
/// distinguishes all `K` states and `Write` moves between any two states in
/// one operation.
///
/// # Example
///
/// ```
/// use hi_core::ObjectSpec;
/// use hi_core::objects::{MultiRegisterSpec, RegisterOp, RegisterResp};
///
/// let reg = MultiRegisterSpec::new(3, 2);
/// assert_eq!(reg.apply(&reg.initial_state(), &RegisterOp::Read).1,
///            RegisterResp::Value(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MultiRegisterSpec {
    k: u64,
    initial: u64,
}

impl MultiRegisterSpec {
    /// Creates a `K`-valued register with the given initial value.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= initial <= k` and `k >= 2`.
    pub fn new(k: u64, initial: u64) -> Self {
        assert!(k >= 2, "a register needs at least two values");
        assert!((1..=k).contains(&initial), "initial value out of range");
        MultiRegisterSpec { k, initial }
    }

    /// The number of values, `K`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The initial value `v0`.
    pub fn initial_value(&self) -> u64 {
        self.initial
    }
}

impl ObjectSpec for MultiRegisterSpec {
    type State = u64;
    type Op = RegisterOp;
    type Resp = RegisterResp;

    fn initial_state(&self) -> u64 {
        self.initial
    }

    fn apply(&self, state: &u64, op: &RegisterOp) -> (u64, RegisterResp) {
        match op {
            RegisterOp::Read => (*state, RegisterResp::Value(*state)),
            RegisterOp::Write(v) => {
                assert!((1..=self.k).contains(v), "write of out-of-range value {v}");
                (*v, RegisterResp::Ack)
            }
        }
    }

    fn is_read_only(&self, op: &RegisterOp) -> bool {
        matches!(op, RegisterOp::Read)
    }
}

impl EnumerableSpec for MultiRegisterSpec {
    fn states(&self) -> Vec<u64> {
        (1..=self.k).collect()
    }

    fn ops(&self) -> Vec<RegisterOp> {
        let mut ops = vec![RegisterOp::Read];
        ops.extend((1..=self.k).map(RegisterOp::Write));
        ops
    }

    fn responses(&self) -> Vec<RegisterResp> {
        let mut rs = vec![RegisterResp::Ack];
        rs.extend((1..=self.k).map(RegisterResp::Value));
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_closed() {
        assert_eq!(MultiRegisterSpec::new(4, 1).check_closed(), 4 * 5);
    }

    #[test]
    fn read_is_read_only() {
        let reg = MultiRegisterSpec::new(3, 1);
        assert!(reg.is_read_only(&RegisterOp::Read));
        assert!(!reg.is_read_only(&RegisterOp::Write(2)));
    }

    #[test]
    fn write_then_read() {
        let reg = MultiRegisterSpec::new(5, 1);
        let q = reg.run([RegisterOp::Write(3), RegisterOp::Write(5)].iter());
        assert_eq!(q, 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_initial() {
        MultiRegisterSpec::new(3, 0);
    }
}
