//! A bounded min-priority queue — the paper's related work cites
//! history-independent priority queues (Buchbinder & Petrank [16]); here it
//! serves as another object wrapped by the universal construction.

use crate::object::{EnumerableSpec, ObjectSpec};

/// Operations of the priority queue.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PQueueOp {
    /// Add `v` to the multiset; a no-op when full (responds
    /// [`PQueueResp::Full`]).
    Insert(u32),
    /// Remove and return the minimum.
    ExtractMin,
    /// Return the minimum without removing it; read-only.
    FindMin,
}

/// Responses of the priority queue.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PQueueResp {
    /// The (extracted or found) minimum.
    Value(u32),
    /// The queue is empty, or the default insert response.
    Empty,
    /// Insert on a full queue.
    Full,
}

/// A bounded min-priority queue over priorities `{1..=t}` with capacity
/// `cap`. The state is the sorted multiset of stored priorities — itself a
/// canonical form, so two histories reaching the same multiset share a
/// state (and the universal construction then shares their memory).
///
/// # Example
///
/// ```
/// use hi_core::ObjectSpec;
/// use hi_core::objects::{PQueueSpec, PQueueOp, PQueueResp};
///
/// let pq = PQueueSpec::new(5, 4);
/// let s = pq.run([PQueueOp::Insert(4), PQueueOp::Insert(2), PQueueOp::Insert(4)].iter());
/// assert_eq!(pq.apply(&s, &PQueueOp::FindMin).1, PQueueResp::Value(2));
/// let (s, r) = pq.apply(&s, &PQueueOp::ExtractMin);
/// assert_eq!(r, PQueueResp::Value(2));
/// assert_eq!(pq.apply(&s, &PQueueOp::FindMin).1, PQueueResp::Value(4));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PQueueSpec {
    t: u32,
    cap: usize,
}

impl PQueueSpec {
    /// Creates a priority queue over `{1..=t}` with capacity `cap`.
    ///
    /// # Panics
    ///
    /// Panics unless `t >= 2` and `cap >= 1`.
    pub fn new(t: u32, cap: usize) -> Self {
        assert!(t >= 2, "priority domain must have at least two values");
        assert!(cap >= 1, "capacity must be positive");
        PQueueSpec { t, cap }
    }

    /// The priority domain size.
    pub fn t(&self) -> u32 {
        self.t
    }

    /// The capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

impl ObjectSpec for PQueueSpec {
    /// The stored priorities, sorted ascending (a canonical multiset form).
    type State = Vec<u32>;
    type Op = PQueueOp;
    type Resp = PQueueResp;

    fn initial_state(&self) -> Vec<u32> {
        Vec::new()
    }

    fn apply(&self, state: &Vec<u32>, op: &PQueueOp) -> (Vec<u32>, PQueueResp) {
        match op {
            PQueueOp::Insert(v) => {
                assert!((1..=self.t).contains(v), "priority {v} out of domain");
                if state.len() >= self.cap {
                    (state.clone(), PQueueResp::Full)
                } else {
                    let mut s = state.clone();
                    let pos = s.partition_point(|&x| x <= *v);
                    s.insert(pos, *v);
                    (s, PQueueResp::Empty)
                }
            }
            PQueueOp::ExtractMin => {
                if state.is_empty() {
                    (state.clone(), PQueueResp::Empty)
                } else {
                    let mut s = state.clone();
                    let min = s.remove(0);
                    (s, PQueueResp::Value(min))
                }
            }
            PQueueOp::FindMin => match state.first() {
                Some(&min) => (state.clone(), PQueueResp::Value(min)),
                None => (state.clone(), PQueueResp::Empty),
            },
        }
    }

    fn is_read_only(&self, op: &PQueueOp) -> bool {
        matches!(op, PQueueOp::FindMin)
    }
}

impl EnumerableSpec for PQueueSpec {
    fn states(&self) -> Vec<Vec<u32>> {
        // All sorted multisets of size 0..=cap over {1..=t}.
        let mut states = vec![Vec::new()];
        let mut frontier = vec![Vec::new()];
        for _ in 0..self.cap {
            let mut next = Vec::new();
            for s in &frontier {
                let lo = s.last().copied().unwrap_or(1);
                for v in lo..=self.t {
                    let mut s2: Vec<u32> = s.clone();
                    s2.push(v);
                    next.push(s2);
                }
            }
            states.extend(next.iter().cloned());
            frontier = next;
        }
        states
    }

    fn ops(&self) -> Vec<PQueueOp> {
        let mut ops = vec![PQueueOp::ExtractMin, PQueueOp::FindMin];
        ops.extend((1..=self.t).map(PQueueOp::Insert));
        ops
    }

    fn responses(&self) -> Vec<PQueueResp> {
        let mut rs = vec![PQueueResp::Empty, PQueueResp::Full];
        rs.extend((1..=self.t).map(PQueueResp::Value));
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_closed() {
        PQueueSpec::new(3, 2).check_closed();
    }

    #[test]
    fn state_count_is_multisets() {
        // Multisets of size <= 2 over 3 priorities: 1 + 3 + 6 = 10.
        assert_eq!(PQueueSpec::new(3, 2).states().len(), 10);
    }

    #[test]
    fn extract_orders_by_priority() {
        let pq = PQueueSpec::new(5, 5);
        let s = pq.run(
            [
                PQueueOp::Insert(3),
                PQueueOp::Insert(1),
                PQueueOp::Insert(5),
            ]
            .iter(),
        );
        let (s, r1) = pq.apply(&s, &PQueueOp::ExtractMin);
        let (s, r2) = pq.apply(&s, &PQueueOp::ExtractMin);
        let (_, r3) = pq.apply(&s, &PQueueOp::ExtractMin);
        assert_eq!(
            (r1, r2, r3),
            (
                PQueueResp::Value(1),
                PQueueResp::Value(3),
                PQueueResp::Value(5)
            )
        );
    }

    #[test]
    fn multiset_state_is_insertion_order_independent() {
        let pq = PQueueSpec::new(4, 4);
        let a = pq.run(
            [
                PQueueOp::Insert(2),
                PQueueOp::Insert(4),
                PQueueOp::Insert(2),
            ]
            .iter(),
        );
        let b = pq.run(
            [
                PQueueOp::Insert(4),
                PQueueOp::Insert(2),
                PQueueOp::Insert(2),
            ]
            .iter(),
        );
        assert_eq!(a, b);
    }
}
