//! The set over `{1..t}` (paper §5.1).
//!
//! The paper notes the set is *not* in `C_t` — its operations return only
//! success/failure, so no single operation distinguishes its `2^t` states —
//! and that it has a trivially perfect-HI implementation from `t` binary
//! registers. Insert and remove here are *blind* (they return `Ack` rather
//! than reporting whether the element was present); this is what makes the
//! one-bit-write implementation in `hi-registers` possible with a single
//! primitive step per update.

use crate::object::{EnumerableSpec, ObjectSpec};

/// Operations of the set over `{1..t}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SetOp {
    /// Add element `e`; blind (no membership report).
    Insert(u32),
    /// Remove element `e`; blind.
    Remove(u32),
    /// Membership test; read-only.
    Contains(u32),
}

/// Responses of the set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SetResp {
    /// Response of [`SetOp::Contains`].
    Bool(bool),
    /// Response of the blind updates.
    Ack,
}

/// A set over the domain `{1..=t}`, `t <= 63`, with the state represented as
/// a bitmask (bit `e` set iff `e` is in the set).
///
/// # Example
///
/// ```
/// use hi_core::ObjectSpec;
/// use hi_core::objects::{SetSpec, SetOp, SetResp};
///
/// let s = SetSpec::new(4);
/// let q = s.run([SetOp::Insert(2), SetOp::Insert(4), SetOp::Remove(2)].iter());
/// assert_eq!(s.apply(&q, &SetOp::Contains(4)).1, SetResp::Bool(true));
/// assert_eq!(s.apply(&q, &SetOp::Contains(2)).1, SetResp::Bool(false));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SetSpec {
    t: u32,
}

impl SetSpec {
    /// Creates a set over `{1..=t}`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= t <= 63`.
    pub fn new(t: u32) -> Self {
        assert!((1..=63).contains(&t), "domain size must be in 1..=63");
        SetSpec { t }
    }

    /// The domain size `t`.
    pub fn t(&self) -> u32 {
        self.t
    }

    fn check_elem(&self, e: u32) {
        assert!((1..=self.t).contains(&e), "element {e} out of domain");
    }
}

impl ObjectSpec for SetSpec {
    /// Bit `e` set iff element `e` is a member.
    type State = u64;
    type Op = SetOp;
    type Resp = SetResp;

    fn initial_state(&self) -> u64 {
        0
    }

    fn apply(&self, state: &u64, op: &SetOp) -> (u64, SetResp) {
        match op {
            SetOp::Insert(e) => {
                self.check_elem(*e);
                (state | (1 << e), SetResp::Ack)
            }
            SetOp::Remove(e) => {
                self.check_elem(*e);
                (state & !(1 << e), SetResp::Ack)
            }
            SetOp::Contains(e) => {
                self.check_elem(*e);
                (*state, SetResp::Bool(state & (1 << e) != 0))
            }
        }
    }

    fn is_read_only(&self, op: &SetOp) -> bool {
        matches!(op, SetOp::Contains(_))
    }
}

impl EnumerableSpec for SetSpec {
    fn states(&self) -> Vec<u64> {
        // All subsets of {1..t}, as bitmasks over bits 1..=t.
        (0..(1u64 << self.t)).map(|m| m << 1).collect()
    }

    fn ops(&self) -> Vec<SetOp> {
        let mut ops = Vec::new();
        for e in 1..=self.t {
            ops.push(SetOp::Insert(e));
            ops.push(SetOp::Remove(e));
            ops.push(SetOp::Contains(e));
        }
        ops
    }

    fn responses(&self) -> Vec<SetResp> {
        vec![SetResp::Ack, SetResp::Bool(false), SetResp::Bool(true)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_closed() {
        SetSpec::new(3).check_closed();
    }

    #[test]
    fn insert_remove_idempotent() {
        let s = SetSpec::new(5);
        let q1 = s.apply(&0, &SetOp::Insert(3)).0;
        let q2 = s.apply(&q1, &SetOp::Insert(3)).0;
        assert_eq!(q1, q2, "insert is idempotent");
        let q3 = s.apply(&q2, &SetOp::Remove(3)).0;
        assert_eq!(q3, 0);
    }

    #[test]
    fn state_count() {
        assert_eq!(SetSpec::new(4).states().len(), 16);
    }
}
