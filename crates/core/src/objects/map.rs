//! A small key-value map (dictionary), an additional object for the
//! universal construction (§6 applies to arbitrary objects).

use crate::object::{EnumerableSpec, ObjectSpec};

/// Operations of the map.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MapOp {
    /// Bind key `k` to value `v` (overwriting).
    Put(u32, u32),
    /// Unbind key `k`.
    Delete(u32),
    /// Look up key `k`; read-only.
    Get(u32),
}

/// Responses of the map.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MapResp {
    /// The value bound to the key.
    Value(u32),
    /// The key is unbound.
    Missing,
    /// Response of the updates.
    Ack,
}

/// A map from keys `{1..=keys}` to values `{1..=vals}`.
///
/// The state is a vector indexed by key (0 = unbound), so the state space
/// has `(vals + 1)^keys` elements — keep both parameters small when feeding
/// it to the universal construction's codec.
///
/// # Example
///
/// ```
/// use hi_core::ObjectSpec;
/// use hi_core::objects::{MapSpec, MapOp, MapResp};
///
/// let m = MapSpec::new(2, 3);
/// let s = m.run([MapOp::Put(1, 3), MapOp::Put(2, 1), MapOp::Delete(2)].iter());
/// assert_eq!(m.apply(&s, &MapOp::Get(1)).1, MapResp::Value(3));
/// assert_eq!(m.apply(&s, &MapOp::Get(2)).1, MapResp::Missing);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MapSpec {
    keys: u32,
    vals: u32,
}

impl MapSpec {
    /// Creates a map over keys `{1..=keys}` and values `{1..=vals}`.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are at least 1 and the state space
    /// stays below `2^20` (the enumeration guard).
    pub fn new(keys: u32, vals: u32) -> Self {
        assert!(keys >= 1 && vals >= 1);
        let states = (u64::from(vals) + 1)
            .checked_pow(keys)
            .expect("state space overflow");
        assert!(
            states < (1 << 20),
            "state space too large to enumerate ({states})"
        );
        MapSpec { keys, vals }
    }

    /// The number of keys.
    pub fn keys(&self) -> u32 {
        self.keys
    }

    /// The number of values.
    pub fn vals(&self) -> u32 {
        self.vals
    }

    fn check_key(&self, k: u32) {
        assert!((1..=self.keys).contains(&k), "key {k} out of domain");
    }
}

impl ObjectSpec for MapSpec {
    /// `state[k - 1]` is the value bound to key `k`, or 0.
    type State = Vec<u32>;
    type Op = MapOp;
    type Resp = MapResp;

    fn initial_state(&self) -> Vec<u32> {
        vec![0; self.keys as usize]
    }

    fn apply(&self, state: &Vec<u32>, op: &MapOp) -> (Vec<u32>, MapResp) {
        match op {
            MapOp::Put(k, v) => {
                self.check_key(*k);
                assert!((1..=self.vals).contains(v), "value {v} out of domain");
                let mut s = state.clone();
                s[(*k - 1) as usize] = *v;
                (s, MapResp::Ack)
            }
            MapOp::Delete(k) => {
                self.check_key(*k);
                let mut s = state.clone();
                s[(*k - 1) as usize] = 0;
                (s, MapResp::Ack)
            }
            MapOp::Get(k) => {
                self.check_key(*k);
                let v = state[(*k - 1) as usize];
                let resp = if v == 0 {
                    MapResp::Missing
                } else {
                    MapResp::Value(v)
                };
                (state.clone(), resp)
            }
        }
    }

    fn is_read_only(&self, op: &MapOp) -> bool {
        matches!(op, MapOp::Get(_))
    }
}

impl EnumerableSpec for MapSpec {
    fn states(&self) -> Vec<Vec<u32>> {
        let mut states = vec![Vec::new()];
        for _ in 0..self.keys {
            let mut next = Vec::new();
            for s in &states {
                for v in 0..=self.vals {
                    let mut s2 = s.clone();
                    s2.push(v);
                    next.push(s2);
                }
            }
            states = next;
        }
        states
    }

    fn ops(&self) -> Vec<MapOp> {
        let mut ops = Vec::new();
        for k in 1..=self.keys {
            ops.push(MapOp::Get(k));
            ops.push(MapOp::Delete(k));
            for v in 1..=self.vals {
                ops.push(MapOp::Put(k, v));
            }
        }
        ops
    }

    fn responses(&self) -> Vec<MapResp> {
        let mut rs = vec![MapResp::Ack, MapResp::Missing];
        rs.extend((1..=self.vals).map(MapResp::Value));
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_closed() {
        MapSpec::new(2, 2).check_closed();
    }

    #[test]
    fn state_count() {
        assert_eq!(MapSpec::new(2, 2).states().len(), 9); // (2+1)^2
    }

    #[test]
    fn put_overwrites() {
        let m = MapSpec::new(2, 3);
        let s = m.run([MapOp::Put(1, 2), MapOp::Put(1, 3)].iter());
        assert_eq!(m.apply(&s, &MapOp::Get(1)).1, MapResp::Value(3));
    }

    #[test]
    fn delete_is_idempotent() {
        let m = MapSpec::new(2, 2);
        let s1 = m.run([MapOp::Put(1, 1), MapOp::Delete(1)].iter());
        let s2 = m.run([MapOp::Delete(1)].iter());
        assert_eq!(s1, s2);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_map_rejected() {
        MapSpec::new(10, 3); // 4^10 = 2^20 states: over the guard
    }
}
