//! An atomic snapshot object: `m` single-writer components with a `Scan`
//! that returns all of them at once. A classic shared-memory object, here
//! as another instance for the universal construction (§6) — Algorithm 5
//! gives it wait-freedom and history independence for free.

use crate::object::{EnumerableSpec, ObjectSpec};

/// Operations of the snapshot object.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SnapshotOp {
    /// Set component `i` (0-based) to `v`.
    Update(usize, u32),
    /// Return all components atomically; read-only.
    Scan,
}

/// Responses of the snapshot object.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SnapshotResp {
    /// Response of [`SnapshotOp::Update`].
    Ack,
    /// The component vector returned by [`SnapshotOp::Scan`].
    View(Vec<u32>),
}

/// An `m`-component snapshot object over values `0..=vals`.
///
/// # Example
///
/// ```
/// use hi_core::ObjectSpec;
/// use hi_core::objects::{SnapshotSpec, SnapshotOp, SnapshotResp};
///
/// let s = SnapshotSpec::new(3, 2);
/// let q = s.run([SnapshotOp::Update(0, 2), SnapshotOp::Update(2, 1)].iter());
/// assert_eq!(s.apply(&q, &SnapshotOp::Scan).1, SnapshotResp::View(vec![2, 0, 1]));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SnapshotSpec {
    m: usize,
    vals: u32,
}

impl SnapshotSpec {
    /// Creates an `m`-component snapshot over values `0..=vals`.
    ///
    /// # Panics
    ///
    /// Panics unless `m >= 1`, `vals >= 1`, and the state space
    /// `(vals+1)^m` stays below `2^20`.
    pub fn new(m: usize, vals: u32) -> Self {
        assert!(m >= 1 && vals >= 1);
        let states = (u64::from(vals) + 1)
            .checked_pow(m as u32)
            .expect("state space overflow");
        assert!(
            states < (1 << 20),
            "state space too large to enumerate ({states})"
        );
        SnapshotSpec { m, vals }
    }

    /// The number of components.
    pub fn components(&self) -> usize {
        self.m
    }
}

impl ObjectSpec for SnapshotSpec {
    type State = Vec<u32>;
    type Op = SnapshotOp;
    type Resp = SnapshotResp;

    fn initial_state(&self) -> Vec<u32> {
        vec![0; self.m]
    }

    fn apply(&self, state: &Vec<u32>, op: &SnapshotOp) -> (Vec<u32>, SnapshotResp) {
        match op {
            SnapshotOp::Update(i, v) => {
                assert!(*i < self.m, "component {i} out of range");
                assert!(*v <= self.vals, "value {v} out of range");
                let mut s = state.clone();
                s[*i] = *v;
                (s, SnapshotResp::Ack)
            }
            SnapshotOp::Scan => (state.clone(), SnapshotResp::View(state.clone())),
        }
    }

    fn is_read_only(&self, op: &SnapshotOp) -> bool {
        matches!(op, SnapshotOp::Scan)
    }
}

impl EnumerableSpec for SnapshotSpec {
    fn states(&self) -> Vec<Vec<u32>> {
        let mut states = vec![Vec::new()];
        for _ in 0..self.m {
            let mut next = Vec::new();
            for s in &states {
                for v in 0..=self.vals {
                    let mut s2 = s.clone();
                    s2.push(v);
                    next.push(s2);
                }
            }
            states = next;
        }
        states
    }

    fn ops(&self) -> Vec<SnapshotOp> {
        let mut ops = vec![SnapshotOp::Scan];
        for i in 0..self.m {
            for v in 0..=self.vals {
                ops.push(SnapshotOp::Update(i, v));
            }
        }
        ops
    }

    fn responses(&self) -> Vec<SnapshotResp> {
        let mut rs = vec![SnapshotResp::Ack];
        rs.extend(self.states().into_iter().map(SnapshotResp::View));
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_closed() {
        SnapshotSpec::new(2, 2).check_closed();
    }

    #[test]
    fn scan_sees_all_updates() {
        let s = SnapshotSpec::new(3, 3);
        let q = s.run(
            [
                SnapshotOp::Update(1, 3),
                SnapshotOp::Update(0, 1),
                SnapshotOp::Update(1, 2),
            ]
            .iter(),
        );
        assert_eq!(
            s.apply(&q, &SnapshotOp::Scan).1,
            SnapshotResp::View(vec![1, 2, 0])
        );
    }

    #[test]
    fn state_count() {
        assert_eq!(SnapshotSpec::new(2, 2).states().len(), 9);
    }
}
