//! Concrete object specifications used throughout the reproduction.
//!
//! Each specification implements [`ObjectSpec`](crate::ObjectSpec) and, where
//! the state space is finite, [`EnumerableSpec`](crate::EnumerableSpec).
//! The paper's examples map onto these as follows:
//!
//! * [`MultiRegisterSpec`] — the SWSR `K`-valued register of §4 and §5.3
//!   (a member of `C_t` with `t = K`).
//! * [`CasSpec`] — the `t`-valued CAS object with a read operation (§5.1's
//!   second `C_t` example).
//! * [`MaxRegisterSpec`] — the max register of §5.1, *not* in `C_t`.
//! * [`SetSpec`] — the set over `{1..t}` of §5.1, *not* in `C_t`, with a
//!   trivially perfect-HI implementation.
//! * [`HashSetSpec`] — the *reporting* set over `{1..t}` (updates return
//!   whether they changed membership): the abstract object of the
//!   `hi_hashtable` Robin Hood tables.
//! * [`BigHashSetSpec`] — the same reporting set with sorted-key-vector
//!   state, for domains beyond the 63-bit mask (the `hi_shard` scale-out
//!   workloads); [`KeySetSpec`] is the trait the two set specs share.
//! * [`BoundedQueueSpec`] — the queue with `Peek` of §5.4.
//! * [`CounterSpec`], [`StackSpec`], [`MapSpec`] — additional objects
//!   exercised by the universal construction (§6).

mod big_hash_set;
mod cas;
mod counter;
mod hash_set;
mod map;
mod max_register;
mod pqueue;
mod queue;
mod register;
mod set;
mod snapshot;
mod stack;

pub use big_hash_set::{BigHashSetSpec, KeySetSpec, BIG_SET_ENUMERABLE_T};
pub use cas::{CasOp, CasResp, CasSpec};
pub use counter::{CounterOp, CounterResp, CounterSpec};
pub use hash_set::{HashSetOp, HashSetResp, HashSetSpec};
pub use map::{MapOp, MapResp, MapSpec};
pub use max_register::{MaxRegisterOp, MaxRegisterSpec};
pub use pqueue::{PQueueOp, PQueueResp, PQueueSpec};
pub use queue::{BoundedQueueSpec, QueueOp, QueueResp, QueueState};
pub use register::{MultiRegisterSpec, RegisterOp, RegisterResp};
pub use set::{SetOp, SetResp, SetSpec};
pub use snapshot::{SnapshotOp, SnapshotResp, SnapshotSpec};
pub use stack::{StackOp, StackResp, StackSpec};
