//! Role-aware workload generation, shared by the threaded driver
//! (`hi_api::drive`) and the simulator checker (`hi_spec::check_sim_object`).
//!
//! Both worlds draw their per-role operation scripts from the same menus
//! ([`menus_for`]) with the same generator ([`random_script`]) and the same
//! per-role seed derivation ([`handle_seed`]), so a scenario's threaded
//! backend and its simulator twin face mirrored workloads *by construction*
//! rather than by per-scenario convention.

use crate::object::{EnumerableSpec, Roles};

/// A minimal splitmix64 generator: deterministic workloads without a
/// dependency on the vendored `rand` stub.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

impl SplitMix64 {
    /// Uniform in `[0, 1)`: the top 53 bits of the next output, so the
    /// conversion to `f64` is exact.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Builds a deterministic random script of `len` operations drawn from
/// `menu`.
pub fn random_script<Op: Clone>(menu: &[Op], len: usize, seed: u64) -> Vec<Op> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| menu[rng.below(menu.len())].clone())
        .collect()
}

/// How a workload's operation *ranks* are distributed: the shape of a
/// service-load key popularity curve. The service harness samples a rank
/// per submitted operation and maps it through a seeded shuffle of the
/// operation menu, so "rank 0 is hottest" becomes "one hot (op, key) pair"
/// without the generator knowing anything about the operation type.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDist {
    /// Every rank equally likely (the tight-loop benchmarks' shape).
    Uniform,
    /// Zipfian with exponent `theta`: rank `i` is drawn with probability
    /// proportional to `1 / (i + 1)^theta`. `theta = 0` degenerates to
    /// uniform; web/cache traces are commonly fitted near `theta ≈ 1`.
    Zipfian {
        /// The skew exponent (≥ 0).
        theta: f64,
    },
}

/// A sampler of ranks in `0..n` under a [`KeyDist`], deterministic given
/// the caller's [`SplitMix64`] stream.
#[derive(Clone, Debug)]
pub struct KeySampler {
    n: usize,
    /// Cumulative rank probabilities (`None` for the uniform fast path).
    cdf: Option<Vec<f64>>,
}

impl KeySampler {
    /// Builds a sampler over `n > 0` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or a Zipfian `theta` is negative or non-finite.
    pub fn new(dist: KeyDist, n: usize) -> Self {
        assert!(n > 0, "a sampler needs at least one rank");
        let cdf = match dist {
            KeyDist::Uniform => None,
            KeyDist::Zipfian { theta } => {
                assert!(
                    theta.is_finite() && theta >= 0.0,
                    "Zipfian theta must be finite and >= 0, got {theta}"
                );
                let mut acc = 0.0;
                let mut cdf: Vec<f64> = (0..n)
                    .map(|i| {
                        acc += 1.0 / ((i + 1) as f64).powf(theta);
                        acc
                    })
                    .collect();
                let total = acc;
                for c in &mut cdf {
                    *c /= total;
                }
                Some(cdf)
            }
        };
        KeySampler { n, cdf }
    }

    /// The number of ranks.
    pub fn ranks(&self) -> usize {
        self.n
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        match &self.cdf {
            None => rng.below(self.n),
            Some(cdf) => {
                let u = rng.unit();
                // First rank whose cumulative probability exceeds u; the
                // final entry is 1.0 (up to rounding), so clamp covers the
                // u ≈ 1 edge.
                cdf.partition_point(|&c| c <= u).min(self.n - 1)
            }
        }
    }
}

/// Domain-separation constant of [`seeded_shuffle`] (kept out of the seed
/// the scripts draw from, so shuffling and sampling are independent).
const SHUFFLE_SALT: u64 = 0x1b87_3c93_a2f4_55d1;

/// A deterministic Fisher–Yates shuffle of `items` under `seed`: the
/// rank-to-operation assignment of a skewed workload, so the hot rank is a
/// seed-dependent menu entry instead of always the first.
pub fn seeded_shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = SplitMix64::new(seed ^ SHUFFLE_SALT);
    for i in (1..items.len()).rev() {
        items.swap(i, rng.below(i + 1));
    }
}

/// Builds a deterministic script of `len` operations drawn from `menu`
/// under a rank distribution: ranks are sampled from `dist` and mapped
/// through a seeded shuffle of the menu. `KeyDist::Uniform` reproduces
/// [`random_script`]'s shape (though not its exact byte stream).
pub fn skewed_script<Op: Clone>(menu: &[Op], len: usize, seed: u64, dist: KeyDist) -> Vec<Op> {
    let mut ranked: Vec<Op> = menu.to_vec();
    seeded_shuffle(&mut ranked, seed);
    let sampler = KeySampler::new(dist, ranked.len());
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| ranked[sampler.sample(&mut rng)].clone())
        .collect()
}

/// The arrival process of one logical client: when operations are
/// *submitted*, independent of what they are.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrival {
    /// Back-to-back submission (closed-loop load).
    Steady,
    /// On/off duty cycle: `on` operations back-to-back, then `off` idle
    /// ticks, repeated. What a tick means (a yield, a sleep quantum) is the
    /// harness's choice; the generator only shapes the pattern.
    Bursty {
        /// Operations per burst (> 0).
        on: u32,
        /// Idle ticks between bursts.
        off: u32,
    },
}

/// A deterministic arrival-gap generator: for each submitted operation,
/// the number of idle ticks to insert *before* it. Seeding offsets the
/// duty-cycle phase so a fleet of clients does not burst in lockstep.
#[derive(Clone, Debug)]
pub struct ArrivalGen {
    arrival: Arrival,
    /// Operations submitted in the current burst.
    pos: u32,
}

impl ArrivalGen {
    /// Builds the generator; under [`Arrival::Bursty`] the starting phase
    /// is `seed % on`.
    ///
    /// # Panics
    ///
    /// Panics if a bursty `on` length is zero.
    pub fn new(arrival: Arrival, seed: u64) -> Self {
        let pos = match arrival {
            Arrival::Steady => 0,
            Arrival::Bursty { on, .. } => {
                assert!(on > 0, "a burst must contain at least one operation");
                (seed % on as u64) as u32
            }
        };
        ArrivalGen { arrival, pos }
    }

    /// Idle ticks before the next operation is submitted.
    pub fn next_gap(&mut self) -> u32 {
        match self.arrival {
            Arrival::Steady => 0,
            Arrival::Bursty { on, off } => {
                if self.pos >= on {
                    self.pos = 1;
                    off
                } else {
                    self.pos += 1;
                    0
                }
            }
        }
    }
}

/// The seed of role `i`'s script under a driver seed.
pub fn handle_seed(seed: u64, i: usize) -> u64 {
    seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The per-role operation menus of `spec` under a role discipline: entry
/// `i` lists the operations role `i` may invoke, in `spec.ops()` order.
///
/// * [`Roles::SingleWriterSingleReader`]: the mutator (role 0) owns every
///   mutator operation (`ObjectSpec::is_mutator_op`), the observer (role 1)
///   the rest.
/// * [`Roles::MultiProcess`]: every role gets every operation it owns under
///   [`ObjectSpec::op_owner`](crate::ObjectSpec::op_owner) (process-agnostic operations go to everyone).
///
/// # Example
///
/// ```
/// use hi_core::objects::{MultiRegisterSpec, RegisterOp};
/// use hi_core::{menus_for, Roles};
///
/// let menus = menus_for(&MultiRegisterSpec::new(2, 1), Roles::SingleWriterSingleReader);
/// assert_eq!(menus[0], vec![RegisterOp::Write(1), RegisterOp::Write(2)]);
/// assert_eq!(menus[1], vec![RegisterOp::Read]);
/// ```
pub fn menus_for<S: EnumerableSpec>(spec: &S, roles: Roles) -> Vec<Vec<S::Op>> {
    let all = spec.ops();
    match roles {
        Roles::SingleWriterSingleReader => vec![
            all.iter()
                .filter(|op| spec.is_mutator_op(op))
                .cloned()
                .collect(),
            all.iter()
                .filter(|op| !spec.is_mutator_op(op))
                .cloned()
                .collect(),
        ],
        Roles::MultiProcess { n } => (0..n)
            .map(|pid| {
                all.iter()
                    .filter(|op| spec.op_owner(op).map_or(true, |owner| owner == pid))
                    .cloned()
                    .collect()
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectSpec;
    use crate::objects::{BoundedQueueSpec, CounterOp, CounterSpec, MultiRegisterSpec, QueueOp};

    #[test]
    fn splitmix_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn scripts_draw_only_from_the_menu() {
        let menu = vec![1u8, 2, 3];
        let script = random_script(&menu, 100, 7);
        assert_eq!(script.len(), 100);
        assert!(script.iter().all(|v| menu.contains(v)));
    }

    #[test]
    fn handle_seeds_differ_per_role() {
        assert_ne!(handle_seed(9, 0), handle_seed(9, 1));
    }

    #[test]
    fn swsr_menus_split_by_read_onlyness() {
        let spec = BoundedQueueSpec::new(2, 3);
        let menus = menus_for(&spec, Roles::SingleWriterSingleReader);
        assert_eq!(menus.len(), 2);
        assert!(menus[0].iter().all(|op| !spec.is_read_only(op)));
        assert!(menus[0].contains(&QueueOp::Dequeue));
        assert_eq!(menus[1], vec![QueueOp::Peek]);
    }

    #[test]
    fn multiprocess_menus_are_symmetric_without_owners() {
        let spec = CounterSpec::new(0, 3, 0);
        let menus = menus_for(&spec, Roles::MultiProcess { n: 3 });
        assert_eq!(menus.len(), 3);
        for menu in &menus {
            assert_eq!(*menu, vec![CounterOp::Inc, CounterOp::Dec, CounterOp::Read]);
        }
    }

    #[test]
    fn zipfian_top_rank_frequency_is_in_the_analytic_band() {
        // n = 100, theta = 1: p(rank 0) = 1 / H_100 ≈ 0.1928. A 100k-sample
        // run must land well inside ±0.02 of that.
        let sampler = KeySampler::new(KeyDist::Zipfian { theta: 1.0 }, 100);
        let mut rng = SplitMix64::new(0xd157);
        let samples = 100_000;
        let mut counts = [0usize; 100];
        for _ in 0..samples {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let top = counts[0] as f64 / samples as f64;
        assert!(
            (0.17..0.22).contains(&top),
            "top-rank frequency {top} outside the Zipf(1) band around 0.193"
        );
        // The curve must actually be skewed: rank 0 dominates mid-ranks.
        assert!(
            counts[0] > counts[49] * 10,
            "rank 0 ({}) should dwarf rank 49 ({})",
            counts[0],
            counts[49]
        );
    }

    #[test]
    fn zipfian_theta_zero_degenerates_to_uniform() {
        let sampler = KeySampler::new(KeyDist::Zipfian { theta: 0.0 }, 50);
        let mut rng = SplitMix64::new(7);
        let samples = 100_000;
        let mut counts = [0usize; 50];
        for _ in 0..samples {
            counts[sampler.sample(&mut rng)] += 1;
        }
        // Expected 2000 per rank; 5σ ≈ 220.
        for (rank, &c) in counts.iter().enumerate() {
            assert!(
                (1700..2300).contains(&c),
                "rank {rank} drew {c} times, far from the uniform 2000"
            );
        }
    }

    #[test]
    fn skewed_scripts_are_byte_equal_per_seed() {
        let menu: Vec<u32> = (0..24).collect();
        for dist in [
            KeyDist::Uniform,
            KeyDist::Zipfian { theta: 0.8 },
            KeyDist::Zipfian { theta: 1.2 },
        ] {
            let a = skewed_script(&menu, 5_000, 0xabcd, dist);
            let b = skewed_script(&menu, 5_000, 0xabcd, dist);
            assert_eq!(a, b, "two runs under one seed must be identical");
            let c = skewed_script(&menu, 5_000, 0xabce, dist);
            assert_ne!(a, c, "a different seed must change the stream");
            assert!(a.iter().all(|v| menu.contains(v)));
        }
    }

    #[test]
    fn skewed_script_hot_entry_depends_on_the_seed() {
        // The seeded shuffle must decouple "hottest rank" from "first menu
        // entry": across a handful of seeds the hot entry varies.
        let menu: Vec<u32> = (0..16).collect();
        let hot_of = |seed: u64| {
            let script = skewed_script(&menu, 4_000, seed, KeyDist::Zipfian { theta: 1.2 });
            let mut counts = [0usize; 16];
            for v in script {
                counts[v as usize] += 1;
            }
            (0..16).max_by_key(|&i| counts[i]).unwrap()
        };
        let hots: std::collections::BTreeSet<usize> = (0..6).map(|s| hot_of(s as u64)).collect();
        assert!(
            hots.len() > 1,
            "hot entry {hots:?} never moved across six seeds"
        );
    }

    #[test]
    fn bursty_arrivals_follow_the_duty_cycle() {
        let mut gen = ArrivalGen::new(Arrival::Bursty { on: 4, off: 3 }, 0);
        let gaps: Vec<u32> = (0..12).map(|_| gen.next_gap()).collect();
        assert_eq!(gaps, vec![0, 0, 0, 0, 3, 0, 0, 0, 3, 0, 0, 0]);
        // Seeding shifts the phase but preserves the cycle structure.
        let mut shifted = ArrivalGen::new(Arrival::Bursty { on: 4, off: 3 }, 2);
        let shifted_gaps: Vec<u32> = (0..12).map(|_| shifted.next_gap()).collect();
        assert_eq!(shifted_gaps, vec![0, 0, 3, 0, 0, 0, 3, 0, 0, 0, 3, 0]);
        assert_eq!(
            shifted_gaps.iter().filter(|&&g| g != 0).count(),
            3,
            "one off-phase per four submissions"
        );
        let mut steady = ArrivalGen::new(Arrival::Steady, 9);
        assert!((0..100).all(|_| steady.next_gap() == 0));
    }

    #[test]
    fn menus_cover_every_op_exactly_per_role_discipline() {
        let spec = MultiRegisterSpec::new(3, 1);
        let menus = menus_for(&spec, Roles::SingleWriterSingleReader);
        let mut flat: Vec<_> = menus.concat();
        flat.sort_by_key(|op| format!("{op:?}"));
        let mut all = spec.ops();
        all.sort_by_key(|op| format!("{op:?}"));
        assert_eq!(flat, all, "SWSR menus partition the operation set");
    }
}
