//! Role-aware workload generation, shared by the threaded driver
//! (`hi_api::drive`) and the simulator checker (`hi_spec::check_sim_object`).
//!
//! Both worlds draw their per-role operation scripts from the same menus
//! ([`menus_for`]) with the same generator ([`random_script`]) and the same
//! per-role seed derivation ([`handle_seed`]), so a scenario's threaded
//! backend and its simulator twin face mirrored workloads *by construction*
//! rather than by per-scenario convention.

use crate::object::{EnumerableSpec, Roles};

/// A minimal splitmix64 generator: deterministic workloads without a
/// dependency on the vendored `rand` stub.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Builds a deterministic random script of `len` operations drawn from
/// `menu`.
pub fn random_script<Op: Clone>(menu: &[Op], len: usize, seed: u64) -> Vec<Op> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| menu[rng.below(menu.len())].clone())
        .collect()
}

/// The seed of role `i`'s script under a driver seed.
pub fn handle_seed(seed: u64, i: usize) -> u64 {
    seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The per-role operation menus of `spec` under a role discipline: entry
/// `i` lists the operations role `i` may invoke, in `spec.ops()` order.
///
/// * [`Roles::SingleWriterSingleReader`]: the mutator (role 0) owns every
///   mutator operation (`ObjectSpec::is_mutator_op`), the observer (role 1)
///   the rest.
/// * [`Roles::MultiProcess`]: every role gets every operation it owns under
///   [`ObjectSpec::op_owner`](crate::ObjectSpec::op_owner) (process-agnostic operations go to everyone).
///
/// # Example
///
/// ```
/// use hi_core::objects::{MultiRegisterSpec, RegisterOp};
/// use hi_core::{menus_for, Roles};
///
/// let menus = menus_for(&MultiRegisterSpec::new(2, 1), Roles::SingleWriterSingleReader);
/// assert_eq!(menus[0], vec![RegisterOp::Write(1), RegisterOp::Write(2)]);
/// assert_eq!(menus[1], vec![RegisterOp::Read]);
/// ```
pub fn menus_for<S: EnumerableSpec>(spec: &S, roles: Roles) -> Vec<Vec<S::Op>> {
    let all = spec.ops();
    match roles {
        Roles::SingleWriterSingleReader => vec![
            all.iter()
                .filter(|op| spec.is_mutator_op(op))
                .cloned()
                .collect(),
            all.iter()
                .filter(|op| !spec.is_mutator_op(op))
                .cloned()
                .collect(),
        ],
        Roles::MultiProcess { n } => (0..n)
            .map(|pid| {
                all.iter()
                    .filter(|op| spec.op_owner(op).map_or(true, |owner| owner == pid))
                    .cloned()
                    .collect()
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectSpec;
    use crate::objects::{BoundedQueueSpec, CounterOp, CounterSpec, MultiRegisterSpec, QueueOp};

    #[test]
    fn splitmix_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn scripts_draw_only_from_the_menu() {
        let menu = vec![1u8, 2, 3];
        let script = random_script(&menu, 100, 7);
        assert_eq!(script.len(), 100);
        assert!(script.iter().all(|v| menu.contains(v)));
    }

    #[test]
    fn handle_seeds_differ_per_role() {
        assert_ne!(handle_seed(9, 0), handle_seed(9, 1));
    }

    #[test]
    fn swsr_menus_split_by_read_onlyness() {
        let spec = BoundedQueueSpec::new(2, 3);
        let menus = menus_for(&spec, Roles::SingleWriterSingleReader);
        assert_eq!(menus.len(), 2);
        assert!(menus[0].iter().all(|op| !spec.is_read_only(op)));
        assert!(menus[0].contains(&QueueOp::Dequeue));
        assert_eq!(menus[1], vec![QueueOp::Peek]);
    }

    #[test]
    fn multiprocess_menus_are_symmetric_without_owners() {
        let spec = CounterSpec::new(0, 3, 0);
        let menus = menus_for(&spec, Roles::MultiProcess { n: 3 });
        assert_eq!(menus.len(), 3);
        for menu in &menus {
            assert_eq!(*menu, vec![CounterOp::Inc, CounterOp::Dec, CounterOp::Read]);
        }
    }

    #[test]
    fn menus_cover_every_op_exactly_per_role_discipline() {
        let spec = MultiRegisterSpec::new(3, 1);
        let menus = menus_for(&spec, Roles::SingleWriterSingleReader);
        let mut flat: Vec<_> = menus.concat();
        flat.sort_by_key(|op| format!("{op:?}"));
        let mut all = spec.ops();
        all.sort_by_key(|op| format!("{op:?}"));
        assert_eq!(flat, all, "SWSR menus partition the operation set");
    }
}
