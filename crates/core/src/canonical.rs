//! Canonical-representation bookkeeping.
//!
//! A deterministic implementation is history independent iff every abstract
//! state has a unique canonical memory representation fixed at
//! initialization (Proposition 3, following Hartline et al.). The checkers
//! observe `(state, memory)` pairs at allowed observation points and use a
//! [`CanonicalMap`] to detect two different memories for the same state —
//! an [`HiViolation`].

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::hash::Hash;

/// A learned mapping from abstract states to their canonical memory
/// representations.
///
/// # Example
///
/// ```
/// use hi_core::CanonicalMap;
///
/// let mut canon: CanonicalMap<u64, Vec<u64>> = CanonicalMap::new();
/// canon.observe(3, vec![0, 0, 1]).unwrap();
/// canon.observe(3, vec![0, 0, 1]).unwrap();
/// assert!(canon.observe(3, vec![1, 0, 1]).is_err(), "second representation for state 3");
/// ```
#[derive(Clone, Debug, Default)]
pub struct CanonicalMap<Q, M> {
    map: HashMap<Q, M>,
    observations: u64,
}

impl<Q, M> CanonicalMap<Q, M>
where
    Q: Clone + Eq + Hash + fmt::Debug,
    M: Clone + Eq + fmt::Debug,
{
    /// Creates an empty map.
    pub fn new() -> Self {
        CanonicalMap {
            map: HashMap::new(),
            observations: 0,
        }
    }

    /// Records that `state` was observed with memory representation `mem`.
    ///
    /// # Errors
    ///
    /// Returns an [`HiViolation`] if `state` was previously observed with a
    /// different representation.
    pub fn observe(&mut self, state: Q, mem: M) -> Result<(), HiViolation<Q, M>> {
        self.observations += 1;
        match self.map.get(&state) {
            Some(prev) if *prev != mem => Err(HiViolation {
                state,
                first: prev.clone(),
                second: mem,
            }),
            Some(_) => Ok(()),
            None => {
                self.map.insert(state, mem);
                Ok(())
            }
        }
    }

    /// The canonical representation learned for `state`, if observed.
    pub fn canonical(&self, state: &Q) -> Option<&M> {
        self.map.get(state)
    }

    /// Number of distinct states observed.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no state has been observed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total number of observations recorded (including repeats).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Iterates over `(state, canonical representation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Q, &M)> {
        self.map.iter()
    }

    /// Checks that distinct states map to distinct representations.
    ///
    /// Injectivity is not required by history independence itself, but it
    /// holds for every construction in the paper and failing it usually
    /// indicates a decoding bug, so the test suites assert it.
    pub fn check_injective(&self) -> Result<(), (Q, Q)> {
        let mut seen: Vec<(&M, &Q)> = Vec::with_capacity(self.map.len());
        for (q, m) in &self.map {
            if let Some((_, q0)) = seen.iter().find(|(m0, _)| *m0 == m) {
                return Err(((*q0).clone(), q.clone()));
            }
            seen.push((m, q));
        }
        Ok(())
    }
}

/// Evidence that an implementation is not history independent: one abstract
/// state was observed with two different memory representations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HiViolation<Q, M> {
    /// The abstract state observed twice.
    pub state: Q,
    /// The first memory representation recorded for it.
    pub first: M,
    /// The conflicting representation.
    pub second: M,
}

impl<Q: fmt::Debug, M: fmt::Debug> fmt::Display for HiViolation<Q, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "state {:?} observed with two memory representations: {:?} and {:?}",
            self.state, self.first, self.second
        )
    }
}

impl<Q: fmt::Debug, M: fmt::Debug> Error for HiViolation<Q, M> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_observations_accumulate() {
        let mut canon: CanonicalMap<u32, Vec<u64>> = CanonicalMap::new();
        for v in 0..10u32 {
            canon.observe(v, vec![u64::from(v)]).unwrap();
            canon.observe(v, vec![u64::from(v)]).unwrap();
        }
        assert_eq!(canon.len(), 10);
        assert_eq!(canon.observations(), 20);
        assert!(canon.check_injective().is_ok());
    }

    #[test]
    fn violation_reports_both_representations() {
        let mut canon: CanonicalMap<u32, Vec<u64>> = CanonicalMap::new();
        canon.observe(1, vec![7]).unwrap();
        let err = canon.observe(1, vec![8]).unwrap_err();
        assert_eq!(err.first, vec![7]);
        assert_eq!(err.second, vec![8]);
        assert!(err.to_string().contains("two memory representations"));
    }

    #[test]
    fn injectivity_check() {
        let mut canon: CanonicalMap<u32, Vec<u64>> = CanonicalMap::new();
        canon.observe(1, vec![7]).unwrap();
        canon.observe(2, vec![7]).unwrap();
        let (a, b) = canon.check_injective().unwrap_err();
        assert_ne!(a, b);
    }
}
