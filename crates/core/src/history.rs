//! Invocation/response histories of concurrent executions.
//!
//! An execution `α` induces a history `H(α)` consisting only of the
//! invocations and responses of high-level operations (paper §2). The
//! linearizability checker in `hi-spec` consumes these histories.

use std::collections::HashMap;
use std::fmt;

use crate::object::ObjectSpec;

/// A process identifier, `p_1 … p_n` in the paper (0-based here).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub usize);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A unique identifier for one high-level operation instance, used to match
/// an invocation with its response.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub u64);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One event of a history: an invocation or a matching response.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Event<O, R> {
    /// Process `pid` invokes operation `op`; `id` names this instance.
    Invoke {
        /// The invoking process.
        pid: Pid,
        /// The operation instance.
        id: OpId,
        /// The invoked operation.
        op: O,
    },
    /// Operation `id` by process `pid` returns `resp`.
    Return {
        /// The responding process.
        pid: Pid,
        /// The operation instance.
        id: OpId,
        /// The response.
        resp: R,
    },
}

impl<O, R> Event<O, R> {
    /// The process this event belongs to.
    pub fn pid(&self) -> Pid {
        match self {
            Event::Invoke { pid, .. } | Event::Return { pid, .. } => *pid,
        }
    }

    /// The operation instance this event belongs to.
    pub fn id(&self) -> OpId {
        match self {
            Event::Invoke { id, .. } | Event::Return { id, .. } => *id,
        }
    }
}

/// A complete record of one operation extracted from a [`History`]:
/// its interval in the history plus its response, if it completed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpRecord<O, R> {
    /// Operation instance id.
    pub id: OpId,
    /// Invoking process.
    pub pid: Pid,
    /// The invoked operation.
    pub op: O,
    /// Index of the invocation event in the history.
    pub invoked_at: usize,
    /// Index of the response event, if the operation completed.
    pub returned_at: Option<usize>,
    /// The response, if the operation completed.
    pub resp: Option<R>,
}

impl<O, R> OpRecord<O, R> {
    /// Whether the operation completed in the history.
    pub fn is_complete(&self) -> bool {
        self.returned_at.is_some()
    }

    /// Whether this operation returned strictly before `other` was invoked
    /// (the real-time order that linearizations must respect).
    pub fn precedes(&self, other: &Self) -> bool {
        match self.returned_at {
            Some(r) => r < other.invoked_at,
            None => false,
        }
    }
}

/// A history: an alternating record of invocations and responses, in the
/// order they occurred in the execution.
///
/// # Example
///
/// ```
/// use hi_core::{History, Pid};
///
/// let mut h: History<&str, u64> = History::new();
/// let id = h.invoke(Pid(0), "read");
/// assert!(!h.is_quiescent());
/// h.ret(id, 7);
/// assert!(h.is_quiescent());
/// assert_eq!(h.records().len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct History<O, R> {
    events: Vec<Event<O, R>>,
    next_id: u64,
    /// `pid -> currently pending op id`, for matching returns.
    pending: HashMap<Pid, OpId>,
}

impl<O: Clone, R: Clone> History<O, R> {
    /// Creates an empty history.
    pub fn new() -> Self {
        History {
            events: Vec::new(),
            next_id: 0,
            pending: HashMap::new(),
        }
    }

    /// Records an invocation by `pid` and returns the fresh operation id.
    ///
    /// # Panics
    ///
    /// Panics if `pid` already has a pending operation: processes are
    /// sequential threads of control (paper §2).
    pub fn invoke(&mut self, pid: Pid, op: O) -> OpId {
        assert!(
            !self.pending.contains_key(&pid),
            "{pid} invoked an operation while one is pending"
        );
        let id = OpId(self.next_id);
        self.next_id += 1;
        self.pending.insert(pid, id);
        self.events.push(Event::Invoke { pid, id, op });
        id
    }

    /// Records the response of the pending operation `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the pending operation of its process.
    pub fn ret(&mut self, id: OpId, resp: R) {
        let pid = self
            .events
            .iter()
            .find_map(|e| match e {
                Event::Invoke { pid, id: i, .. } if *i == id => Some(*pid),
                _ => None,
            })
            .unwrap_or_else(|| panic!("return for unknown operation {id}"));
        assert_eq!(
            self.pending.get(&pid),
            Some(&id),
            "return does not match pending op"
        );
        self.pending.remove(&pid);
        self.events.push(Event::Return { pid, id, resp });
    }

    /// The events in occurrence order.
    pub fn events(&self) -> &[Event<O, R>] {
        &self.events
    }

    /// Number of events (invocations plus responses).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether no operation is pending. A configuration at the end of such a
    /// history is *quiescent* (paper §2).
    pub fn is_quiescent(&self) -> bool {
        self.pending.is_empty()
    }

    /// The ids of pending operations, in invocation order.
    pub fn pending_ids(&self) -> Vec<OpId> {
        let mut ids: Vec<_> = self.pending.values().copied().collect();
        ids.sort();
        ids
    }

    /// Extracts one [`OpRecord`] per invocation, in invocation order.
    pub fn records(&self) -> Vec<OpRecord<O, R>> {
        let mut records: Vec<OpRecord<O, R>> = Vec::new();
        let mut index: HashMap<OpId, usize> = HashMap::new();
        for (i, ev) in self.events.iter().enumerate() {
            match ev {
                Event::Invoke { pid, id, op } => {
                    index.insert(*id, records.len());
                    records.push(OpRecord {
                        id: *id,
                        pid: *pid,
                        op: op.clone(),
                        invoked_at: i,
                        returned_at: None,
                        resp: None,
                    });
                }
                Event::Return { id, resp, .. } => {
                    let at = index[id];
                    records[at].returned_at = Some(i);
                    records[at].resp = Some(resp.clone());
                }
            }
        }
        records
    }

    /// Whether the history is sequential: every invocation is immediately
    /// followed by its matching response.
    pub fn is_sequential(&self) -> bool {
        let mut i = 0;
        while i < self.events.len() {
            match &self.events[i] {
                Event::Invoke { id, .. } => match self.events.get(i + 1) {
                    Some(Event::Return { id: rid, .. }) if rid == id => i += 2,
                    _ => return false,
                },
                Event::Return { .. } => return false,
            }
        }
        true
    }
}

/// A sequential history: a list of `(op, resp)` pairs.
///
/// For a sequential history `H`, [`SequentialHistory::state`] computes
/// `state(H)`: the state reached by applying the operations from the initial
/// state (paper §2). [`SequentialHistory::matches_spec`] checks membership in
/// the sequential specification.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SequentialHistory<O, R> {
    /// The `(operation, response)` pairs in order.
    pub steps: Vec<(O, R)>,
}

impl<O: Clone + Eq, R: Clone + Eq> SequentialHistory<O, R> {
    /// Creates a sequential history from `(op, resp)` pairs.
    pub fn new(steps: Vec<(O, R)>) -> Self {
        SequentialHistory { steps }
    }

    /// `state(H)`: the state reached from `q0` by this operation sequence.
    pub fn state<S>(&self, spec: &S) -> S::State
    where
        S: ObjectSpec<Op = O, Resp = R>,
    {
        spec.run(self.steps.iter().map(|(op, _)| op))
    }

    /// Whether every response matches the sequential specification.
    pub fn matches_spec<S>(&self, spec: &S) -> bool
    where
        S: ObjectSpec<Op = O, Resp = R>,
    {
        let mut q = spec.initial_state();
        for (op, resp) in &self.steps {
            let (q2, r) = spec.apply(&q, op);
            if r != *resp {
                return false;
            }
            q = q2;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::{MultiRegisterSpec, RegisterOp, RegisterResp};

    #[test]
    fn history_matching() {
        let mut h: History<RegisterOp, RegisterResp> = History::new();
        let a = h.invoke(Pid(0), RegisterOp::Write(2));
        let b = h.invoke(Pid(1), RegisterOp::Read);
        assert_eq!(h.pending_ids(), vec![a, b]);
        h.ret(a, RegisterResp::Ack);
        h.ret(b, RegisterResp::Value(2));
        assert!(h.is_quiescent());
        let recs = h.records();
        assert_eq!(recs.len(), 2);
        assert!(!recs[0].precedes(&recs[1]), "overlapping ops are unordered");
    }

    #[test]
    #[should_panic(expected = "pending")]
    fn double_invoke_panics() {
        let mut h: History<RegisterOp, RegisterResp> = History::new();
        h.invoke(Pid(0), RegisterOp::Read);
        h.invoke(Pid(0), RegisterOp::Read);
    }

    #[test]
    fn sequential_history_state() {
        let spec = MultiRegisterSpec::new(5, 1);
        let h = SequentialHistory::new(vec![
            (RegisterOp::Write(4), RegisterResp::Ack),
            (RegisterOp::Read, RegisterResp::Value(4)),
            (RegisterOp::Write(2), RegisterResp::Ack),
        ]);
        assert!(h.matches_spec(&spec));
        assert_eq!(h.state(&spec), 2);
        let bad = SequentialHistory::new(vec![(RegisterOp::Read, RegisterResp::Value(3))]);
        assert!(!bad.matches_spec(&spec));
    }

    #[test]
    fn sequential_detection() {
        let mut h: History<RegisterOp, RegisterResp> = History::new();
        let a = h.invoke(Pid(0), RegisterOp::Write(2));
        h.ret(a, RegisterResp::Ack);
        let b = h.invoke(Pid(1), RegisterOp::Read);
        h.ret(b, RegisterResp::Value(2));
        assert!(h.is_sequential());
        let mut h2: History<RegisterOp, RegisterResp> = History::new();
        h2.invoke(Pid(0), RegisterOp::Write(2));
        h2.invoke(Pid(1), RegisterOp::Read);
        assert!(!h2.is_sequential());
    }
}
