//! The abstract object model: `(Q, q0, O, R, Δ)`.

use std::fmt;
use std::hash::Hash;

/// An abstract object in the sense of the paper's §2: a deterministic state
/// machine `(Q, q0, O, R, Δ)`.
///
/// `State`, `Op` and `Resp` correspond to `Q`, `O` and `R`;
/// [`initial_state`](ObjectSpec::initial_state) is `q0` and
/// [`apply`](ObjectSpec::apply) is `Δ : Q × O → Q × R`.
///
/// All states are assumed reachable from the initial state (the paper makes
/// the same assumption); the model checkers in `hi-spec` verify this for the
/// concrete specs in this crate.
///
/// # Example
///
/// ```
/// use hi_core::ObjectSpec;
/// use hi_core::objects::{CounterSpec, CounterOp, CounterResp};
///
/// let spec = CounterSpec::new(0, 3, 0);
/// let (q, r) = spec.apply(&spec.initial_state(), &CounterOp::Inc);
/// assert_eq!((q, r), (1, CounterResp::Ack));
/// ```
pub trait ObjectSpec: Clone + fmt::Debug {
    /// The state space `Q`.
    type State: Clone + Eq + Hash + fmt::Debug;
    /// The operation set `O`.
    type Op: Clone + Eq + Hash + fmt::Debug;
    /// The response set `R`.
    type Resp: Clone + Eq + Hash + fmt::Debug;

    /// The designated initial state `q0`.
    fn initial_state(&self) -> Self::State;

    /// The sequential specification `Δ(q, o) = (q', r)`.
    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Resp);

    /// Whether `op` is *read-only*: it never changes the state of the object,
    /// from any state.
    ///
    /// The paper calls an operation *state-changing* if there exist states
    /// `q ≠ q'` such that the operation moves the object from `q` to `q'`;
    /// read-only is the negation. This distinction defines *state-quiescent*
    /// configurations (Definition 7): no state-changing operation pending.
    fn is_read_only(&self, op: &Self::Op) -> bool;

    /// Whether `op` belongs to the *mutator* role under a single-writer
    /// discipline ([`Roles::SingleWriterSingleReader`]).
    ///
    /// Defaults to "every state-changing operation". Override only for
    /// operations that are write-shaped yet provably never change state —
    /// `WriteMax(1)` of the max register is read-only in the paper's sense
    /// (it can never raise the state above the minimum) but still belongs
    /// to the writer.
    fn is_mutator_op(&self, op: &Self::Op) -> bool {
        !self.is_read_only(op)
    }

    /// The process that owns `op`, if the operation set is process-relative
    /// (`None` means any process may invoke it).
    ///
    /// Most objects are process-agnostic and keep the default. The R-LLSC
    /// object of §6.1 is the exception: `LL`/`VL`/`SC`/`RL` carry the
    /// invoking process because their semantics reference *the caller's*
    /// reservation. Role-aware workload builders
    /// ([`workload::menus_for`](crate::workload::menus_for)) use this to
    /// hand each process exactly the operations it may invoke.
    fn op_owner(&self, _op: &Self::Op) -> Option<usize> {
        None
    }

    /// Applies a sequence of operations from the initial state and returns
    /// the resulting state, discarding responses.
    fn run<'a, I>(&self, ops: I) -> Self::State
    where
        I: IntoIterator<Item = &'a Self::Op>,
        Self::Op: 'a,
    {
        let mut q = self.initial_state();
        for op in ops {
            q = self.apply(&q, op).0;
        }
        q
    }
}

/// How many handles (threaded world) or processes (simulated world) an
/// implementation serves, and what each may do.
///
/// The paper's algorithms fall into two disciplines: the §4/§5 constructions
/// are *single-writer single-reader* (their correctness proofs lean on the
/// mutator being alone), while Algorithm 5 is symmetric over `n` processes.
/// Keeping the by-construction discipline visible lets generic drivers route
/// operations only to the roles that may perform them — identically for a
/// `ConcurrentObject` on real threads and a `SimObject` in the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Roles {
    /// Exactly two roles: role 0 is the single mutator (writer), role 1 the
    /// single observer (reader). Covers the SWSR registers and the
    /// positional queue (whose "writer" is the enqueue/dequeue mutator and
    /// "reader" the peeker).
    SingleWriterSingleReader,
    /// `n` symmetric roles; every role may invoke every operation it owns
    /// (see [`ObjectSpec::op_owner`]).
    MultiProcess {
        /// The number of processes sharing the object.
        n: usize,
    },
}

impl Roles {
    /// The number of handles (threaded) or processes (simulated) of this
    /// role discipline.
    pub fn num_handles(&self) -> usize {
        match self {
            Roles::SingleWriterSingleReader => 2,
            Roles::MultiProcess { n } => *n,
        }
    }
}

/// The history-independence guarantee an implementation provides, i.e. at
/// which configurations its memory representation must equal the canonical
/// representation of its abstract state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum HiLevel {
    /// No guarantee: the memory may leak operation history (Algorithm 1).
    NotHi,
    /// Canonical whenever no operation at all is pending (Definition 8,
    /// Algorithm 4).
    Quiescent,
    /// Canonical whenever no *state-changing* operation is pending
    /// (Definition 7; Algorithms 2+3, the positional queue, Algorithm 5).
    StateQuiescent,
    /// Canonical in every configuration (Definition 5, Algorithm 6).
    Perfect,
}

impl HiLevel {
    /// Whether a quiescent-point audit (`memory == canonical`) is
    /// meaningful for this level. Every level except [`HiLevel::NotHi`]
    /// promises canonical memory at full quiescence.
    pub fn auditable(&self) -> bool {
        *self != HiLevel::NotHi
    }
}

/// The progress guarantee an implementation provides, i.e. what a crash of
/// some processes is allowed to break for the survivors.
///
/// In the asynchronous model a crashed process is one that never takes
/// another step; its memory contribution stays static. The fault checkers
/// use this class to decide how hard to push an implementation:
///
/// - wait-free operations must complete within a bounded step budget even
///   with *every* other process crashed mid-operation;
/// - lock-free operations must complete once the crashed peers are static
///   (a static memory cannot starve a retry loop);
/// - helping constructions additionally promise that a crashed process's
///   announced operation is applied *exactly once* by the survivors;
/// - blocking operations may wedge forever when a crash lands inside a
///   critical section — a crash may legitimately prevent completion, and
///   the checker only verifies that whatever did complete linearizes and
///   that the memory stays canonical at the permitted observation points.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Progress {
    /// Every operation completes in a bounded number of its own steps,
    /// regardless of what other processes do — including crashing
    /// (Algorithms 3, 4, 6; the max register; the HI set).
    WaitFree,
    /// Some operation may be starved by *active* interference, but every
    /// operation completes once all other processes are static
    /// (Algorithm 2's reader loop).
    LockFree,
    /// Lock-free via announce-and-help (Algorithm 5): survivors complete a
    /// crashed process's announced operation on its behalf, exactly once.
    Helping,
    /// A crash inside a critical section can block other operations forever
    /// (the positional queue's Peek across a crashed dequeue; the hash
    /// table's seqlock held by a crashed updater).
    Blocking,
}

impl Progress {
    /// Whether survivors are guaranteed to complete after peers crash:
    /// `true` for every class except [`Progress::Blocking`].
    pub fn completes_under_crashes(&self) -> bool {
        *self != Progress::Blocking
    }

    /// Whether the implementation helps crashed peers' announced operations
    /// to completion (the exactly-once obligation the fault checker
    /// enforces for [`Progress::Helping`]).
    pub fn helps(&self) -> bool {
        *self == Progress::Helping
    }
}

/// An [`ObjectSpec`] whose state, operation and response spaces are finite
/// and enumerable.
///
/// Enumerability is what allows an implementation to fix a canonical
/// representation for every state *at initialization* (the requirement that
/// Proposition 3 of the paper places on deterministic history-independent
/// implementations), and what lets the exhaustive checkers in `hi-spec`
/// cover the whole state space.
///
/// Implementations must enumerate deterministically: two calls return the
/// same ordering. The universal construction's codec relies on this to
/// assign the same bit pattern to the same state in every execution.
pub trait EnumerableSpec: ObjectSpec {
    /// All states of the object, in a deterministic order. The initial state
    /// must be included.
    fn states(&self) -> Vec<Self::State>;

    /// All operations of the object, in a deterministic order.
    fn ops(&self) -> Vec<Self::Op>;

    /// All responses of the object, in a deterministic order. Every response
    /// reachable via `apply` from an enumerated state must be included.
    fn responses(&self) -> Vec<Self::Resp>;

    /// Sanity-check the enumeration: every `apply` on an enumerated state
    /// stays within the enumerated state/response sets.
    ///
    /// Returns the number of `(state, op)` pairs checked.
    ///
    /// # Panics
    ///
    /// Panics if the enumeration is not closed under `apply`, if the initial
    /// state is missing, or if the enumeration contains duplicates.
    fn check_closed(&self) -> usize {
        use std::collections::HashSet;
        let states = self.states();
        let ops = self.ops();
        let resps = self.responses();
        let state_set: HashSet<_> = states.iter().cloned().collect();
        let resp_set: HashSet<_> = resps.iter().cloned().collect();
        assert_eq!(
            state_set.len(),
            states.len(),
            "duplicate states in enumeration"
        );
        assert_eq!(
            resp_set.len(),
            resps.len(),
            "duplicate responses in enumeration"
        );
        assert!(
            state_set.contains(&self.initial_state()),
            "initial state missing from enumeration"
        );
        let mut checked = 0;
        for q in &states {
            for op in &ops {
                let (q2, r) = self.apply(q, op);
                assert!(
                    state_set.contains(&q2),
                    "apply({q:?}, {op:?}) leaves state space"
                );
                assert!(
                    resp_set.contains(&r),
                    "apply({q:?}, {op:?}) response {r:?} not enumerated"
                );
                if self.is_read_only(op) {
                    assert_eq!(q2, *q, "read-only op {op:?} changed state {q:?}");
                }
                checked += 1;
            }
        }
        checked
    }
}
