//! Shared helpers for threaded backends built from `AtomicU8` binary cells.
//!
//! The paper's constructions (§4, §5) build multi-valued objects from arrays
//! of *binary* base registers. Every threaded backend in this workspace
//! realizes such an array as a `Box<[AtomicU8]>` and snapshots it cell by
//! cell with sequentially consistent loads; these helpers are that shared
//! idiom, used by `hi_registers::threaded`, `hi_queue::threaded` and the
//! `hi-api` adapters instead of per-crate copies.
//!
//! A cell-by-cell snapshot is *not* an atomic snapshot of the whole array:
//! it only equals `mem(C)` at quiescent points of the caller's protocol,
//! which is exactly where the paper's HI definitions observe memory.

use std::sync::atomic::{AtomicU8, Ordering};

/// The memory ordering used by all threaded backends (the paper assumes
/// atomic base registers, i.e. sequential consistency).
pub const CELL_ORD: Ordering = Ordering::SeqCst;

/// Allocates `len` binary cells, all zero.
pub fn zero_bits(len: usize) -> Box<[AtomicU8]> {
    (0..len).map(|_| AtomicU8::new(0)).collect()
}

/// Allocates cells `1..=k` with exactly `A[v0] = 1` (the canonical one-hot
/// representation of value `v0`); all zero when `v0 = 0`.
pub fn one_hot_bits(k: u64, v0: u64) -> Box<[AtomicU8]> {
    (1..=k).map(|v| AtomicU8::new(u8::from(v == v0))).collect()
}

/// Reads every cell with [`CELL_ORD`] and widens to the `Vec<u64>` shape all
/// `mem(C)` snapshots in this workspace use.
pub fn snapshot_bits(bits: &[AtomicU8]) -> Vec<u64> {
    bits.iter().map(|b| u64::from(b.load(CELL_ORD))).collect()
}

/// The smallest index `v` in `1..=len` with `bits[v-1] = 1`, or `None` if
/// the array is all zero. At quiescent points of the §4 register algorithms
/// this is the current value (their readers return the smallest set index).
pub fn lowest_set(bits: &[AtomicU8]) -> Option<u64> {
    bits.iter()
        .position(|b| b.load(CELL_ORD) == 1)
        .map(|i| i as u64 + 1)
}

/// Decodes a characteristic-vector snapshot (entry `e-1` holds element `e`'s
/// bit) into the `SetSpec`/`HashSetSpec` state shape: a bitmask with bit `e`
/// set iff element `e` is present. The one decode both the threaded HI-set
/// backend and the registry's sim oracles share.
pub fn mask_of_bits(snap: &[u64]) -> u64 {
    snap.iter().enumerate().fold(0u64, |mask, (i, &b)| {
        if b == 1 {
            mask | (1 << (i as u64 + 1))
        } else {
            mask
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_snapshot_round_trip() {
        let bits = one_hot_bits(5, 3);
        assert_eq!(snapshot_bits(&bits), vec![0, 0, 1, 0, 0]);
        assert_eq!(lowest_set(&bits), Some(3));
    }

    #[test]
    fn zero_bits_have_no_set_index() {
        let bits = zero_bits(4);
        assert_eq!(snapshot_bits(&bits), vec![0, 0, 0, 0]);
        assert_eq!(lowest_set(&bits), None);
    }
}
