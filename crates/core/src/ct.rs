//! The class `C_t` of Definition 13, which the paper's impossibility results
//! (Theorem 17, Corollary 18) apply to.
//!
//! An object is in `C_t` if its state space can be partitioned into `t`
//! nonempty classes `X_1 … X_t` such that
//!
//! 1. a read-only operation `o_read` returns distinct responses from states
//!    in distinct classes, and
//! 2. any state is reachable from any other state by a single operation
//!    `o_change(q, q')`.
//!
//! The executable adversary in `hi-lowerbound` consumes this trait.

use crate::object::ObjectSpec;
use crate::objects::{CasOp, CasSpec, MultiRegisterSpec, RegisterOp};

/// An object in the class `C_t` (Definition 13).
///
/// Implementors must guarantee the two properties above; the
/// [`check_ct`](CtObject::check_ct) method verifies them over the
/// representatives.
pub trait CtObject: ObjectSpec {
    /// The number of classes `t` (at least 2; the impossibility results need
    /// `t >= 3`).
    fn t(&self) -> usize;

    /// The class index (in `0..t`) of a state.
    fn class_of(&self, state: &Self::State) -> usize;

    /// The distinguished read-only operation `o_read`.
    fn read_op(&self) -> Self::Op;

    /// An operation `o_change(from, to)` that moves the object from state
    /// `from` to state `to`.
    fn change_op(&self, from: &Self::State, to: &Self::State) -> Self::Op;

    /// A representative state `q_i ∈ X_i` for class `i`.
    fn representative(&self, class: usize) -> Self::State;

    /// Verifies the `C_t` properties over the class representatives:
    /// distinct `o_read` responses across classes, and `o_change`
    /// correctness between every ordered representative pair.
    ///
    /// # Panics
    ///
    /// Panics if a property fails.
    fn check_ct(&self) {
        let t = self.t();
        assert!(t >= 2, "C_t requires t >= 2");
        let read = self.read_op();
        assert!(self.is_read_only(&read), "o_read must be read-only");
        let reps: Vec<_> = (0..t).map(|i| self.representative(i)).collect();
        let mut responses = Vec::new();
        for (i, q) in reps.iter().enumerate() {
            assert_eq!(
                self.class_of(q),
                i,
                "representative of class {i} is misclassified"
            );
            let (_, r) = self.apply(q, &read);
            assert!(
                !responses.contains(&r),
                "o_read response {r:?} repeats across classes"
            );
            responses.push(r);
        }
        for from in &reps {
            for to in &reps {
                if from == to {
                    continue;
                }
                let op = self.change_op(from, to);
                let (q2, _) = self.apply(from, &op);
                assert_eq!(&q2, to, "o_change({from:?}, {to:?}) missed its target");
            }
        }
    }
}

impl CtObject for MultiRegisterSpec {
    fn t(&self) -> usize {
        self.k() as usize
    }

    fn class_of(&self, state: &u64) -> usize {
        (*state - 1) as usize
    }

    fn read_op(&self) -> RegisterOp {
        RegisterOp::Read
    }

    fn change_op(&self, _from: &u64, to: &u64) -> RegisterOp {
        RegisterOp::Write(*to)
    }

    fn representative(&self, class: usize) -> u64 {
        class as u64 + 1
    }
}

impl CtObject for CasSpec {
    fn t(&self) -> usize {
        CasSpec::t(self) as usize
    }

    fn class_of(&self, state: &u64) -> usize {
        (*state - 1) as usize
    }

    fn read_op(&self) -> CasOp {
        CasOp::Read
    }

    fn change_op(&self, from: &u64, to: &u64) -> CasOp {
        CasOp::Cas(*from, *to)
    }

    fn representative(&self, class: usize) -> u64 {
        class as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_in_ct() {
        MultiRegisterSpec::new(5, 1).check_ct();
    }

    #[test]
    fn cas_is_in_ct() {
        CasSpec::new(4, 2).check_ct();
    }

    #[test]
    fn register_classes_are_singleton_values() {
        let reg = MultiRegisterSpec::new(3, 1);
        for v in 1..=3 {
            assert_eq!(reg.class_of(&v), (v - 1) as usize);
            assert_eq!(reg.representative((v - 1) as usize), v);
        }
    }
}
