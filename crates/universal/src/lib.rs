#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Algorithm 5: the wait-free, state-quiescent history-independent
//! *universal* construction from releasable LL/SC (paper §6).
//!
//! Any object `A` with an enumerable state space can be implemented
//! wait-free and state-quiescent HI from CAS base objects large enough to
//! hold `A`'s full state. The construction:
//!
//! * `head` — an R-LLSC cell holding `⟨q, ⊥⟩` between operations, or
//!   `⟨q', ⟨rsp, j⟩⟩` while the response of the operation that moved the
//!   object to `q'` (invoked by process `j`) has not yet been delivered.
//! * `announce[1..n]` — one R-LLSC cell per process, holding `⊥`, the
//!   process's announced operation, or its response.
//!
//! Applying an operation is a three-stage protocol (Figure 3): (1) CAS
//! `head` from `⟨q, ⊥⟩` to `⟨q', ⟨rsp, j⟩⟩`; (2) overwrite `announce[j]`
//! with `rsp`; (3) clear `head` back to `⟨q', ⊥⟩`. Any process can perform
//! any stage (helping, driven by a rotating local priority), which gives
//! wait-freedom; the *clearing* — of responses, announcements, and R-LLSC
//! contexts (`RL`) — is what the paper adds to make helping history
//! independent.
//!
//! This crate provides:
//!
//! * [`Codec`] — fixes the bit-level canonical representation of every
//!   state/op/response *at construction time* (Proposition 3's requirement).
//! * [`SimUniversal`] — Algorithm 5 as simulator step machines over
//!   [`hi_llsc::LlscOp`] sub-machines, with the `||` interleavings of lines
//!   6, 18 and 25 modeled as strict left/right alternation.
//! * [`AtomicUniversal`] — the threaded backend over
//!   [`hi_llsc::PackedRLlsc`].
//! * [`CasUniversal`] — the §6 intro baseline: a single CAS cell holding the
//!   state; perfect HI but only lock-free.
//! * [`LeakyUniversal`] — a deliberately *non*-HI contrast: [`CasUniversal`]
//!   plus a never-cleared per-process operation ledger, modeling the
//!   operation records that prior universal constructions [19, 26–28] keep.
//! * [`ModeTracker`] — checks Invariant 22's `A_i → B_{i+1} → A_{i+1}` head
//!   alternation on live executions.

pub mod cas_universal;
pub mod codec;
pub mod leaky;
pub mod mode;
pub mod sim;
pub mod threaded;

pub use cas_universal::CasUniversal;
pub use codec::{AnnValue, Codec};
pub use leaky::LeakyUniversal;
pub use mode::{Mode, ModeTracker};
pub use sim::{SimUniversal, UniversalProcess};
pub use threaded::{AtomicUniversal, UniversalHandle};
