//! The §6 intro baseline: a single CAS cell holding the encoded state.
//!
//! "When the full state of the object can be stored in a single memory cell,
//! there is a simple lock-free universal implementation": read the cell,
//! compute the new state, CAS it in, retry on interference. The memory is a
//! fixed bijection of the abstract state, so the implementation is *perfect*
//! HI — but a process can fail its CAS forever, so it is only lock-free.
//! Algorithm 5 exists to add wait-freedom without giving up HI.

use std::sync::Arc;

use hi_core::{EnumerableSpec, Pid};
use hi_sim::{CellDomain, CellId, Implementation, MemCtx, MemSnapshot, ProcessHandle, SharedMem};

use crate::codec::Codec;

/// The lock-free perfect-HI single-cell universal construction.
#[derive(Clone, Debug)]
pub struct CasUniversal<S: EnumerableSpec> {
    spec: S,
    codec: Arc<Codec<S>>,
    cell: CellId,
    mem: SharedMem,
    n: usize,
}

impl<S: EnumerableSpec> CasUniversal<S> {
    /// Creates the object for `spec` shared by `n` processes.
    pub fn new(spec: S, n: usize) -> Self {
        // Reuse the head encoding with resp = ⊥; only state bits are used.
        let codec = Arc::new(Codec::new(&spec, n.max(1)));
        let mut mem = SharedMem::new();
        let states = spec.states().len() as u64;
        let cell = mem.alloc(
            "state",
            CellDomain::Bounded(states.next_power_of_two().max(2)),
            codec.enc_head(&spec.initial_state(), None),
        );
        CasUniversal {
            spec,
            codec,
            cell,
            mem,
            n,
        }
    }

    /// Decodes the abstract state from a snapshot.
    pub fn abstract_state(&self, snap: &MemSnapshot) -> S::State {
        self.codec.dec_head(snap[self.cell.0]).0
    }

    /// The canonical (and only possible) representation of state `q`.
    pub fn canonical(&self, q: &S::State) -> MemSnapshot {
        vec![self.codec.enc_head(q, None)]
    }
}

/// Program counter of one [`CasUniversal`] operation.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Pc<O> {
    Idle,
    /// Read the cell (for a read-only op: compute and return).
    Read {
        op: O,
    },
    /// CAS `old -> new`; on failure go back to `Read`.
    Swap {
        op: O,
        old: u64,
        new: u64,
    },
}

/// The per-process step machine of [`CasUniversal`].
#[derive(Clone, Debug)]
pub struct CasUniversalProcess<S: EnumerableSpec> {
    spec: S,
    codec: Arc<Codec<S>>,
    cell: CellId,
    pc: Pc<S::Op>,
}

impl<S: EnumerableSpec> PartialEq for CasUniversalProcess<S> {
    fn eq(&self, other: &Self) -> bool {
        self.cell == other.cell && self.pc == other.pc
    }
}

impl<S: EnumerableSpec> ProcessHandle<S> for CasUniversalProcess<S> {
    fn invoke(&mut self, op: S::Op) {
        assert_eq!(self.pc, Pc::Idle, "operation already pending");
        self.pc = Pc::Read { op };
    }

    fn is_idle(&self) -> bool {
        self.pc == Pc::Idle
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<S::Resp> {
        match std::mem::replace(&mut self.pc, Pc::Idle) {
            Pc::Idle => panic!("step of idle process"),
            Pc::Read { op } => {
                let old = ctx.read(self.cell);
                let (q, _) = self.codec.dec_head(old);
                let (q2, rsp) = self.spec.apply(&q, &op);
                if self.spec.is_read_only(&op) || q2 == q {
                    // No state change needed: done after one read.
                    return Some(rsp);
                }
                let new = self.codec.enc_head(&q2, None);
                self.pc = Pc::Swap { op, old, new };
                None
            }
            Pc::Swap { op, old, new } => {
                if ctx.cas(self.cell, old, new) {
                    let (q, _) = self.codec.dec_head(old);
                    let (_, rsp) = self.spec.apply(&q, &op);
                    Some(rsp)
                } else {
                    self.pc = Pc::Read { op }; // lock-free retry
                    None
                }
            }
        }
    }

    fn peeked_cell(&self) -> Option<CellId> {
        match self.pc {
            Pc::Idle => None,
            _ => Some(self.cell),
        }
    }
}

impl<S: EnumerableSpec> Implementation<S> for CasUniversal<S> {
    type Process = CasUniversalProcess<S>;

    fn spec(&self) -> &S {
        &self.spec
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn init_memory(&self) -> SharedMem {
        self.mem.clone()
    }

    fn make_process(&self, _pid: Pid) -> CasUniversalProcess<S> {
        CasUniversalProcess {
            spec: self.spec.clone(),
            codec: Arc::clone(&self.codec),
            cell: self.cell,
            pc: Pc::Idle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::objects::{CounterOp, CounterResp, CounterSpec};
    use hi_sim::Executor;

    fn counter(n: usize) -> CasUniversal<CounterSpec> {
        CasUniversal::new(CounterSpec::new(0, 10, 0), n)
    }

    #[test]
    fn solo_round_trip() {
        let mut exec = Executor::new(counter(2));
        exec.run_op_solo(Pid(0), CounterOp::Inc, 10).unwrap();
        exec.run_op_solo(Pid(1), CounterOp::Inc, 10).unwrap();
        assert_eq!(
            exec.run_op_solo(Pid(0), CounterOp::Read, 10).unwrap(),
            CounterResp::Value(2)
        );
    }

    #[test]
    fn memory_is_always_canonical() {
        // Perfect HI: even mid-operation, the single cell holds exactly the
        // current abstract state.
        let imp = counter(2);
        let mut exec = Executor::new(imp.clone());
        exec.invoke(Pid(0), CounterOp::Inc);
        exec.invoke(Pid(1), CounterOp::Inc);
        for pid in [0, 1, 0, 1, 0, 1, 0, 1] {
            if exec.can_step(Pid(pid)) {
                exec.step(Pid(pid));
            }
            let q = imp.abstract_state(&exec.snapshot());
            assert_eq!(exec.snapshot(), imp.canonical(&q));
        }
    }

    #[test]
    fn cas_retry_on_interference() {
        // p0 reads, p1 completes an Inc, p0's CAS fails and retries.
        let mut exec = Executor::new(counter(2));
        exec.invoke(Pid(0), CounterOp::Inc);
        exec.step(Pid(0)); // p0 read 0
        exec.run_op_solo(Pid(1), CounterOp::Inc, 10).unwrap(); // p1: 0 -> 1
        exec.run_solo(Pid(0), 10).unwrap(); // p0 retries and lands 1 -> 2
        assert_eq!(
            exec.run_op_solo(Pid(1), CounterOp::Read, 10).unwrap(),
            CounterResp::Value(2)
        );
    }

    #[test]
    fn saturating_op_with_no_state_change_is_one_step() {
        let spec = CounterSpec::new(0, 1, 0);
        let mut exec = Executor::new(CasUniversal::new(spec, 1));
        exec.run_op_solo(Pid(0), CounterOp::Inc, 10).unwrap();
        exec.invoke(Pid(0), CounterOp::Inc); // saturates: no state change
        assert!(exec.step(Pid(0)).is_some());
    }
}
