//! The threaded backend of Algorithm 5 over [`PackedRLlsc`] words.
//!
//! The `||` interleavings of lines 6, 18 and 25 become poll loops over the
//! single-attempt R-LLSC operations: one `ll_attempt` (one read + one CAS),
//! then one escape check, repeated — each iteration makes progress exactly
//! like the simulator's left/right alternation.

use std::sync::atomic::{AtomicBool, Ordering};

use hi_core::EnumerableSpec;
use hi_llsc::PackedRLlsc;

use crate::codec::{AnnValue, Codec};

/// The wait-free state-quiescent HI universal object, threaded.
///
/// # Example
///
/// ```
/// use hi_core::objects::{CounterSpec, CounterOp, CounterResp};
/// use hi_universal::AtomicUniversal;
///
/// let u = AtomicUniversal::new(CounterSpec::new(0, 100, 0), 2);
/// let mut h0 = u.handle(0);
/// let mut h1 = u.handle(1);
/// h0.apply(CounterOp::Inc);
/// h1.apply(CounterOp::Inc);
/// assert_eq!(h0.apply(CounterOp::Read), CounterResp::Value(2));
/// assert_eq!(u.snapshot(), u.canonical(&2));
/// ```
#[derive(Debug)]
pub struct AtomicUniversal<S: EnumerableSpec> {
    spec: S,
    codec: Codec<S>,
    head: PackedRLlsc,
    ann: Vec<PackedRLlsc>,
    claimed: Vec<AtomicBool>,
    n: usize,
    release: bool,
}

impl<S: EnumerableSpec> AtomicUniversal<S> {
    /// Creates the object for `spec`, shared by `n` processes.
    pub fn new(spec: S, n: usize) -> Self {
        let codec = Codec::new(&spec, n);
        let head = PackedRLlsc::new(
            codec.head_layout(),
            codec.initial_head(&spec.initial_state()),
        );
        let ann = (0..n)
            .map(|_| PackedRLlsc::new(codec.ann_layout(), codec.enc_ann_bot()))
            .collect();
        let claimed = (0..n).map(|_| AtomicBool::new(false)).collect();
        AtomicUniversal {
            spec,
            codec,
            head,
            ann,
            claimed,
            n,
            release: true,
        }
    }

    /// The §6.1 ablation: Algorithm 5 without the red `RL` lines. Still
    /// linearizable and wait-free, but leftover context bits leak history —
    /// see `SimUniversal::without_release` for the simulator twin and the
    /// `ablation_release` integration tests.
    pub fn without_release(spec: S, n: usize) -> Self {
        let mut u = AtomicUniversal::new(spec, n);
        u.release = false;
        u
    }

    /// The object's specification.
    pub fn spec(&self) -> &S {
        &self.spec
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether the `RL` clearing lines are enabled (false only for the
    /// [`without_release`](AtomicUniversal::without_release) ablation).
    pub fn releases(&self) -> bool {
        self.release
    }

    /// Claims the handle of process `pid` (each pid may be claimed once).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or already claimed.
    pub fn handle(&self, pid: usize) -> UniversalHandle<'_, S> {
        assert!(pid < self.n, "pid {pid} out of range");
        assert!(
            !self.claimed[pid].swap(true, Ordering::SeqCst),
            "handle for pid {pid} already claimed"
        );
        UniversalHandle {
            u: self,
            pid,
            priority: pid,
        }
    }

    /// Claims all `n` handles at once, releasing any earlier claims first —
    /// sound because the `&mut` receiver proves no handle is outstanding.
    /// This is the construction surface the `hi-api` facade drives.
    pub fn handles(&mut self) -> Vec<UniversalHandle<'_, S>> {
        for c in &self.claimed {
            c.store(false, Ordering::SeqCst);
        }
        let this: &Self = self;
        (0..this.n).map(|pid| this.handle(pid)).collect()
    }

    /// Raw memory snapshot: the head word then the announce words. Only an
    /// atomic snapshot at state-quiescent points of the caller's protocol.
    pub fn snapshot(&self) -> Vec<u64> {
        let mut snap = vec![self.head.raw()];
        snap.extend(self.ann.iter().map(PackedRLlsc::raw));
        snap
    }

    /// The canonical representation of state `q` under
    /// [`snapshot`](AtomicUniversal::snapshot).
    pub fn canonical(&self, q: &S::State) -> Vec<u64> {
        let mut snap = vec![self.codec.head_layout().reset(self.codec.enc_head(q, None))];
        snap.extend(std::iter::repeat(0).take(self.n));
        snap
    }

    /// Decodes the current abstract state from `head`.
    pub fn abstract_state(&self) -> S::State {
        self.codec.dec_head(self.head.load()).0
    }
}

/// A per-process handle on an [`AtomicUniversal`] object.
#[derive(Debug)]
pub struct UniversalHandle<'a, S: EnumerableSpec> {
    u: &'a AtomicUniversal<S>,
    pid: usize,
    priority: usize,
}

impl<S: EnumerableSpec> UniversalHandle<'_, S> {
    /// Applies `op` and returns its response. Wait-free for state-changing
    /// operations (via announce/helping), one load for read-only ones.
    pub fn apply(&mut self, op: S::Op) -> S::Resp {
        if self.u.spec.is_read_only(&op) {
            let (q, _) = self.u.codec.dec_head(self.u.head.load());
            self.u.spec.apply(&q, &op).1
        } else {
            self.apply_state_changing(&op)
        }
    }

    fn apply_state_changing(&mut self, op: &S::Op) -> S::Resp {
        let i = self.pid;
        let u = self.u;
        let c = &u.codec;
        u.ann[i].store(c.enc_ann_op(op)); // line 4
        'outer: loop {
            if c.dec_ann(u.ann[i].load()).is_resp() {
                break 'outer; // line 5
            }
            // Line 6: LL(head) ∥ response check.
            let head_val = loop {
                if let Some(v) = u.head.ll_attempt(i) {
                    break v;
                }
                if c.dec_ann(u.ann[i].load()).is_resp() {
                    break 'outer; // 6R: goto line 24
                }
            };
            let (q, r) = c.dec_head(head_val);
            match r {
                None => {
                    // Lines 8–15: pick an operation (helped or own), apply.
                    let (apply_op, j) = match c.dec_ann(u.ann[self.priority].load()) {
                        AnnValue::Op(help) => (help, self.priority),
                        _ => {
                            if !c.dec_ann(u.ann[i].load()).is_op() {
                                continue 'outer; // line 11
                            }
                            (op.clone(), i)
                        }
                    };
                    let (state, rsp) = u.spec.apply(&q, &apply_op);
                    if u.head.sc(i, c.enc_head(&state, Some((&rsp, j)))) {
                        self.priority = (self.priority + 1) % u.n; // line 15
                    }
                }
                Some((rsp, j)) => {
                    // Line 18: LL(announce[j]) ∥ response check.
                    let a_val = loop {
                        if let Some(a) = u.ann[j].ll_attempt(i) {
                            break Some(a);
                        }
                        if c.dec_ann(u.ann[i].load()).is_resp() {
                            if u.release {
                                u.ann[j].rl(i); // 18R.2
                            }
                            break None;
                        }
                    };
                    let Some(a_val) = a_val else { break 'outer };
                    let a = c.dec_ann(a_val);
                    if u.head.vl(i) {
                        // line 19
                        if a.is_op() {
                            u.ann[j].sc(i, c.enc_ann_resp(&rsp)); // line 20
                        }
                        u.head.sc(i, c.enc_head(&q, None)); // line 21
                    }
                    if matches!(a, AnnValue::Bot) && u.release {
                        u.ann[j].rl(i); // line 22
                    }
                }
            }
        }
        // Line 24.
        let response = match c.dec_ann(u.ann[i].load()) {
            AnnValue::Resp(r) => r,
            other => panic!("announce[{i}] held {other:?} at line 24, expected a response"),
        };
        // Line 25: LL(head) ∥ "my response is gone" check.
        let ll_result = loop {
            if let Some(v) = u.head.ll_attempt(i) {
                break Some(v);
            }
            let (_, r) = c.dec_head(u.head.load());
            if !matches!(r, Some((_, j)) if j == i) {
                break None; // 25R.2: goto line 27
            }
        };
        match ll_result {
            Some(v) => {
                let (q, r) = c.dec_head(v);
                if matches!(r, Some((_, j)) if j == i) {
                    u.head.sc(i, c.enc_head(&q, None)); // line 26
                } else if u.release {
                    u.head.rl(i); // line 27
                }
            }
            None => {
                if u.release {
                    u.head.rl(i); // line 27
                }
            }
        }
        u.ann[i].store(c.enc_ann_bot()); // line 28
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::objects::{
        BoundedQueueSpec, CounterOp, CounterResp, CounterSpec, QueueOp, QueueResp,
    };

    #[test]
    fn sequential_counter() {
        let u = AtomicUniversal::new(CounterSpec::new(-5, 5, 0), 2);
        let mut h = u.handle(0);
        h.apply(CounterOp::Inc);
        h.apply(CounterOp::Inc);
        h.apply(CounterOp::Dec);
        assert_eq!(h.apply(CounterOp::Read), CounterResp::Value(1));
        assert_eq!(u.snapshot(), u.canonical(&1));
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn double_claim_rejected() {
        let u = AtomicUniversal::new(CounterSpec::new(0, 1, 0), 2);
        let _a = u.handle(0);
        let _b = u.handle(0);
    }

    #[test]
    fn concurrent_increments_all_count() {
        let n = 4;
        let per_thread = 500;
        let u = AtomicUniversal::new(CounterSpec::new(0, (n * per_thread) as i64, 0), n);
        std::thread::scope(|s| {
            for pid in 0..n {
                let mut h = u.handle(pid);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        h.apply(CounterOp::Inc);
                    }
                });
            }
        });
        assert_eq!(u.abstract_state(), (n * per_thread) as i64);
        assert_eq!(u.snapshot(), u.canonical(&((n * per_thread) as i64)));
    }

    #[test]
    fn concurrent_queue_preserves_elements() {
        // Two producers, one consumer thread over a universal queue.
        let spec = BoundedQueueSpec::new(4, 8);
        let u = AtomicUniversal::new(spec, 3);
        let consumed: Vec<u32> = std::thread::scope(|s| {
            for pid in 0..2u32 {
                let mut h = u.handle(pid as usize);
                s.spawn(move || {
                    for _ in 0..200 {
                        h.apply(QueueOp::Enqueue(pid + 1));
                    }
                });
            }
            let mut h = u.handle(2);
            let consumer = s.spawn(move || {
                let mut got = Vec::new();
                let mut empties = 0;
                while got.len() < 400 && empties < 1_000_000 {
                    match h.apply(QueueOp::Dequeue) {
                        QueueResp::Value(v) => got.push(v),
                        _ => empties += 1,
                    }
                }
                got
            });
            consumer.join().unwrap()
        });
        // Not all 400 are guaranteed (the bounded queue drops on full), but
        // everything consumed must be a produced value.
        assert!(consumed.iter().all(|v| *v == 1 || *v == 2));
        assert!(!consumed.is_empty());
    }

    #[test]
    fn quiescent_memory_identical_across_histories() {
        let mk = || {
            let u = AtomicUniversal::new(CounterSpec::new(0, 10, 0), 2);
            {
                let mut h = u.handle(0);
                h.apply(CounterOp::Inc);
            }
            u
        };
        let u1 = mk();
        // Second history: up, down, up via both handles.
        let u2 = AtomicUniversal::new(CounterSpec::new(0, 10, 0), 2);
        {
            let mut h0 = u2.handle(0);
            let mut h1 = u2.handle(1);
            h0.apply(CounterOp::Inc);
            h1.apply(CounterOp::Inc);
            h0.apply(CounterOp::Dec);
        }
        assert_eq!(u1.snapshot(), u2.snapshot());
    }
}
