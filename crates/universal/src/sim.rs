//! Algorithm 5 as simulator step machines.
//!
//! Every numbered line of the paper's pseudocode maps to a program-counter
//! variant;
//! the R-LLSC operations are [`LlscOp`] sub-machines advanced one primitive
//! per step; the `||` interleavings of lines 6, 18 and 25 alternate strictly
//! between their left (LL attempt) and right (escape check) sides — a legal
//! instantiation of the paper's "unspecified but finite" interleaving.

use std::sync::Arc;

use hi_core::{EnumerableSpec, HiLevel, ObjectSpec, Pid, Progress, Roles};
use hi_llsc::{LlscLayout, LlscOp};
use hi_sim::{CellDomain, CellId, Implementation, MemCtx, MemSnapshot, ProcessHandle, SharedMem};
use hi_spec::{ObservationModel, SimAudit, SimObject};

use crate::codec::{AnnValue, Codec};

/// Program counter of one `Apply`/`ApplyReadOnly` (generic over the object's
/// state/op/response types so equality derives without bounding the spec).
#[derive(Clone, PartialEq, Eq, Debug)]
enum Pc<Q, O, R> {
    Idle,
    /// `ApplyReadOnly` lines 1–3: one `Load(head)`.
    ReadOnly {
        op: O,
    },
    /// Line 4: `Store(announce[i], op)`.
    Announce {
        op: O,
    },
    /// Line 5: `Load(announce[i])`, loop while not a response.
    LoopCheck {
        op: O,
    },
    /// Line 6: `LL(head)` ∥ response check.
    Ll6 {
        op: O,
        sub: LlscOp,
        right: bool,
    },
    /// Line 8: `Load(announce[priority])`.
    LoadHelp {
        op: O,
        q: Q,
    },
    /// Line 11: `Load(announce[i])`.
    LoadOwn {
        op: O,
        q: Q,
    },
    /// Line 14: `SC(head, ⟨state, ⟨rsp, j⟩⟩)`.
    Sc14 {
        op: O,
        sub: LlscOp,
    },
    /// Line 18: `LL(announce[j])` ∥ response check.
    Ll18 {
        op: O,
        q: Q,
        j: usize,
        rsp: R,
        sub: LlscOp,
        right: bool,
    },
    /// Line 18R.2: `RL(announce[j])` before escaping to line 24.
    Rl18 {
        op: O,
        sub: LlscOp,
    },
    /// Line 19: `VL(head)` (one read), with `a ∈ O` so line 20 follows on
    /// success.
    Vl19 {
        op: O,
        q: Q,
        j: usize,
        rsp: R,
    },
    /// Line 19 when `a ∉ O`: line 20 will be skipped either way.
    Vl19NonOp {
        op: O,
        q: Q,
        j: usize,
        a_bot: bool,
    },
    /// Line 20: `SC(announce[j], rsp)`.
    Sc20 {
        op: O,
        q: Q,
        j: usize,
        a_bot: bool,
        sub: LlscOp,
    },
    /// Line 21: `SC(head, ⟨q, ⊥⟩)`.
    Sc21 {
        op: O,
        j: usize,
        a_bot: bool,
        sub: LlscOp,
    },
    /// Line 22: `RL(announce[j])`.
    Rl22 {
        op: O,
        sub: LlscOp,
    },
    /// Line 24: `Load(announce[i])` — the response.
    ReadResp,
    /// Line 25: `LL(head)` ∥ "my response gone" check.
    Ll25 {
        resp: R,
        sub: LlscOp,
        right: bool,
    },
    /// Line 26: `SC(head, ⟨q, ⊥⟩)` clearing our own response.
    Sc26 {
        resp: R,
        sub: LlscOp,
    },
    /// Line 27: `RL(head)`.
    Rl27 {
        resp: R,
        sub: LlscOp,
    },
    /// Line 28: `Store(announce[i], ⊥)`.
    ClearAnn {
        resp: R,
    },
}

/// Algorithm 5 over `n` processes: `head` plus `announce[0..n]`, all R-LLSC
/// cells implemented by Algorithm 6 over single CAS words.
///
/// Wait-free, linearizable and state-quiescent HI (Theorem 32) for any
/// enumerable object spec.
#[derive(Clone, Debug)]
pub struct SimUniversal<S: EnumerableSpec> {
    spec: S,
    codec: Arc<Codec<S>>,
    head: CellId,
    ann: Vec<CellId>,
    mem: SharedMem,
    n: usize,
    release: bool,
}

impl<S: EnumerableSpec> SimUniversal<S> {
    /// Creates the universal object for `spec` shared by `n` processes.
    pub fn new(spec: S, n: usize) -> Self {
        let codec = Arc::new(Codec::new(&spec, n));
        let mut mem = SharedMem::new();
        let head_domain = match codec.head_layout().states() {
            Some(s) => CellDomain::Bounded(s),
            None => CellDomain::Word,
        };
        let ann_domain = match codec.ann_layout().states() {
            Some(s) => CellDomain::Bounded(s),
            None => CellDomain::Word,
        };
        let initial = codec
            .head_layout()
            .reset(codec.initial_head(&spec.initial_state()));
        let head = mem.alloc("head", head_domain, initial);
        let ann: Vec<CellId> = (0..n)
            .map(|i| mem.alloc(format!("announce[{i}]"), ann_domain, 0))
            .collect();
        SimUniversal {
            spec,
            codec,
            head,
            ann,
            mem,
            n,
            release: true,
        }
    }

    /// The ablation of the paper's §6.1 red lines: Algorithm 5 *without*
    /// the `RL` operations (lines 18R.2, 22 and 27). The construction stays
    /// linearizable and wait-free, but leftover R-LLSC context bits reveal
    /// that operations were attempted — it is not even quiescent HI, which
    /// is exactly why the paper extends LL/SC with release.
    pub fn without_release(spec: S, n: usize) -> Self {
        let mut imp = SimUniversal::new(spec, n);
        imp.release = false;
        imp
    }

    /// Whether the `RL` clearing lines are enabled (they are, except for the
    /// [`without_release`](SimUniversal::without_release) ablation).
    pub fn release_enabled(&self) -> bool {
        self.release
    }

    /// The shared codec (for threaded twins and tests).
    pub fn codec(&self) -> &Codec<S> {
        &self.codec
    }

    /// Decodes the `head` cell of a snapshot into
    /// `(state, pending response)`.
    pub fn head_value(&self, snap: &MemSnapshot) -> (S::State, Option<(S::Resp, usize)>) {
        let raw = snap[self.head.0];
        self.codec.dec_head(self.codec.head_layout().val(raw))
    }

    /// The abstract state recorded in `head` — the state oracle for the HI
    /// monitors (Lemma 25: `state(h_uc(α))` is the state component of
    /// `head`).
    pub fn abstract_state(&self, snap: &MemSnapshot) -> S::State {
        self.head_value(snap).0
    }

    /// Decodes the `announce[pid]` cell of a snapshot.
    pub fn announce_value(&self, snap: &MemSnapshot, pid: usize) -> AnnValue<S> {
        let raw = snap[self.ann[pid].0];
        self.codec.dec_ann(self.codec.ann_layout().val(raw))
    }

    /// The canonical memory representation of state `q`: `head = ⟨q, ⊥⟩`
    /// with empty context, all announce cells `⊥` with empty context.
    pub fn canonical(&self, q: &S::State) -> MemSnapshot {
        let mut snap = vec![0u64; self.n + 1];
        snap[self.head.0] = self.codec.head_layout().reset(self.codec.enc_head(q, None));
        snap
    }
}

type PcOf<S> = Pc<<S as ObjectSpec>::State, <S as ObjectSpec>::Op, <S as ObjectSpec>::Resp>;

/// The per-process step machine of [`SimUniversal`].
#[derive(Clone, Debug)]
pub struct UniversalProcess<S: EnumerableSpec> {
    spec: S,
    codec: Arc<Codec<S>>,
    head: CellId,
    ann: Vec<CellId>,
    pid: usize,
    n: usize,
    /// Algorithm 5's rotating helping priority (local, persists across
    /// operations).
    priority: usize,
    /// Whether the RL clearing lines are enabled (§6.1 red lines).
    release: bool,
    pc: PcOf<S>,
}

impl<S: EnumerableSpec> PartialEq for UniversalProcess<S> {
    fn eq(&self, other: &Self) -> bool {
        // The codec is identical by construction; local state is what
        // distinguishes two processes.
        self.pid == other.pid && self.priority == other.priority && self.pc == other.pc
    }
}

impl<S: EnumerableSpec> UniversalProcess<S> {
    fn hl(&self) -> LlscLayout {
        self.codec.head_layout()
    }

    fn al(&self) -> LlscLayout {
        self.codec.ann_layout()
    }

    /// Reads `announce[who]` (one primitive) and decodes it.
    fn load_ann(&self, ctx: &mut MemCtx<'_>, who: usize) -> AnnValue<S> {
        let raw = ctx.read(self.ann[who]);
        self.codec.dec_ann(self.al().val(raw))
    }

    /// The rotating helping priority (exposed for progress tests).
    pub fn priority(&self) -> usize {
        self.priority
    }
}

impl<S: EnumerableSpec> ProcessHandle<S> for UniversalProcess<S> {
    fn invoke(&mut self, op: S::Op) {
        assert_eq!(self.pc, Pc::Idle, "operation already pending");
        self.pc = if self.spec.is_read_only(&op) {
            Pc::ReadOnly { op }
        } else {
            Pc::Announce { op }
        };
    }

    fn is_idle(&self) -> bool {
        self.pc == Pc::Idle
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<S::Resp> {
        let i = self.pid;
        match std::mem::replace(&mut self.pc, Pc::Idle) {
            Pc::Idle => panic!("step of idle process"),

            Pc::ReadOnly { op } => {
                let raw = ctx.read(self.head);
                let (q, _) = self.codec.dec_head(self.hl().val(raw));
                let (_, rsp) = self.spec.apply(&q, &op);
                return Some(rsp);
            }

            Pc::Announce { op } => {
                ctx.write(self.ann[i], self.al().reset(self.codec.enc_ann_op(&op)));
                self.pc = Pc::LoopCheck { op };
            }

            Pc::LoopCheck { op } => {
                if self.load_ann(ctx, i).is_resp() {
                    self.pc = Pc::ReadResp;
                } else {
                    self.pc = Pc::Ll6 {
                        op,
                        sub: LlscOp::ll(i, self.head),
                        right: false,
                    };
                }
            }

            Pc::Ll6 { op, mut sub, right } => {
                if right {
                    if self.load_ann(ctx, i).is_resp() {
                        self.pc = Pc::ReadResp; // 6R.2: goto line 24
                    } else {
                        self.pc = Pc::Ll6 {
                            op,
                            sub,
                            right: false,
                        };
                    }
                } else {
                    match sub.step(&self.hl(), ctx) {
                        Some(res) => {
                            let (q, r) = self.codec.dec_head(res.val());
                            self.pc = match r {
                                None => Pc::LoadHelp { op, q },
                                Some((rsp, j)) => Pc::Ll18 {
                                    op,
                                    q,
                                    j,
                                    rsp,
                                    sub: LlscOp::ll(i, self.ann[j]),
                                    right: false,
                                },
                            };
                        }
                        None => {
                            self.pc = Pc::Ll6 {
                                op,
                                sub,
                                right: true,
                            }
                        }
                    }
                }
            }

            Pc::LoadHelp { op, q } => {
                if let AnnValue::Op(help) = self.load_ann(ctx, self.priority) {
                    let (state, rsp) = self.spec.apply(&q, &help);
                    let new = self.codec.enc_head(&state, Some((&rsp, self.priority)));
                    self.pc = Pc::Sc14 {
                        op,
                        sub: LlscOp::sc(i, self.head, new),
                    };
                } else {
                    self.pc = Pc::LoadOwn { op, q };
                }
            }

            Pc::LoadOwn { op, q } => {
                if self.load_ann(ctx, i).is_op() {
                    let (state, rsp) = self.spec.apply(&q, &op);
                    let new = self.codec.enc_head(&state, Some((&rsp, i)));
                    self.pc = Pc::Sc14 {
                        op,
                        sub: LlscOp::sc(i, self.head, new),
                    };
                } else {
                    self.pc = Pc::LoopCheck { op }; // line 11: continue
                }
            }

            Pc::Sc14 { op, mut sub } => match sub.step(&self.hl(), ctx) {
                Some(res) => {
                    if res.bool() {
                        self.priority = (self.priority + 1) % self.n; // line 15
                    }
                    self.pc = Pc::LoopCheck { op }; // line 23: continue
                }
                None => self.pc = Pc::Sc14 { op, sub },
            },

            Pc::Ll18 {
                op,
                q,
                j,
                rsp,
                mut sub,
                right,
            } => {
                if right {
                    if self.load_ann(ctx, i).is_resp() {
                        // 18R.2: RL(announce[j]), then goto line 24.
                        self.pc = if self.release {
                            Pc::Rl18 {
                                op,
                                sub: LlscOp::rl(i, self.ann[j]),
                            }
                        } else {
                            Pc::ReadResp
                        };
                    } else {
                        self.pc = Pc::Ll18 {
                            op,
                            q,
                            j,
                            rsp,
                            sub,
                            right: false,
                        };
                    }
                } else {
                    match sub.step(&self.al(), ctx) {
                        Some(res) => {
                            let a = self.codec.dec_ann(res.val());
                            // Stash membership; line 19 is next.
                            let (a_op, a_bot) = (a.is_op(), matches!(a, AnnValue::Bot));
                            self.pc = if a_op {
                                Pc::Vl19 { op, q, j, rsp }
                            } else {
                                // a ∉ O: line 20 will be skipped; remember ⊥-ness.
                                Pc::Vl19NonOp { op, q, j, a_bot }
                            };
                        }
                        None => {
                            self.pc = Pc::Ll18 {
                                op,
                                q,
                                j,
                                rsp,
                                sub,
                                right: true,
                            }
                        }
                    }
                }
            }

            Pc::Rl18 { op, mut sub } => match sub.step(&self.al(), ctx) {
                Some(_) => self.pc = Pc::ReadResp,
                None => self.pc = Pc::Rl18 { op, sub },
            },

            Pc::Vl19 { op, q, j, rsp } => {
                let raw = ctx.read(self.head);
                if self.hl().has(raw, i) {
                    let new = self.codec.enc_ann_resp(&rsp);
                    self.pc = Pc::Sc20 {
                        op,
                        q,
                        j,
                        a_bot: false,
                        sub: LlscOp::sc(i, self.ann[j], new),
                    };
                } else {
                    // VL failed and a ∈ O: no RL (line 22 skipped).
                    self.pc = Pc::LoopCheck { op };
                }
            }

            Pc::Vl19NonOp { op, q, j, a_bot } => {
                let raw = ctx.read(self.head);
                if self.hl().has(raw, i) {
                    // a ∉ O: skip line 20, go straight to line 21.
                    let new = self.codec.enc_head(&q, None);
                    self.pc = Pc::Sc21 {
                        op,
                        j,
                        a_bot,
                        sub: LlscOp::sc(i, self.head, new),
                    };
                } else if a_bot && self.release {
                    self.pc = Pc::Rl22 {
                        op,
                        sub: LlscOp::rl(i, self.ann[j]),
                    };
                } else {
                    self.pc = Pc::LoopCheck { op };
                }
            }

            Pc::Sc20 {
                op,
                q,
                j,
                a_bot,
                mut sub,
            } => match sub.step(&self.al(), ctx) {
                Some(_) => {
                    let new = self.codec.enc_head(&q, None);
                    self.pc = Pc::Sc21 {
                        op,
                        j,
                        a_bot,
                        sub: LlscOp::sc(i, self.head, new),
                    };
                }
                None => {
                    self.pc = Pc::Sc20 {
                        op,
                        q,
                        j,
                        a_bot,
                        sub,
                    }
                }
            },

            Pc::Sc21 {
                op,
                j,
                a_bot,
                mut sub,
            } => match sub.step(&self.hl(), ctx) {
                Some(_) => {
                    self.pc = if a_bot && self.release {
                        Pc::Rl22 {
                            op,
                            sub: LlscOp::rl(i, self.ann[j]),
                        }
                    } else {
                        Pc::LoopCheck { op }
                    };
                }
                None => self.pc = Pc::Sc21 { op, j, a_bot, sub },
            },

            Pc::Rl22 { op, mut sub } => match sub.step(&self.al(), ctx) {
                Some(_) => self.pc = Pc::LoopCheck { op },
                None => self.pc = Pc::Rl22 { op, sub },
            },

            Pc::ReadResp => match self.load_ann(ctx, i) {
                AnnValue::Resp(resp) => {
                    self.pc = Pc::Ll25 {
                        resp,
                        sub: LlscOp::ll(i, self.head),
                        right: false,
                    };
                }
                other => panic!("announce[{i}] held {other:?} at line 24, expected a response"),
            },

            Pc::Ll25 {
                resp,
                mut sub,
                right,
            } => {
                if right {
                    let raw = ctx.read(self.head);
                    let (_, r) = self.codec.dec_head(self.hl().val(raw));
                    if !matches!(r, Some((_, j)) if j == i) {
                        // 25R.2: our response is gone; goto line 27.
                        self.pc = if self.release {
                            Pc::Rl27 {
                                resp,
                                sub: LlscOp::rl(i, self.head),
                            }
                        } else {
                            Pc::ClearAnn { resp }
                        };
                    } else {
                        self.pc = Pc::Ll25 {
                            resp,
                            sub,
                            right: false,
                        };
                    }
                } else {
                    match sub.step(&self.hl(), ctx) {
                        Some(res) => {
                            let (q, r) = self.codec.dec_head(res.val());
                            self.pc = if matches!(r, Some((_, j)) if j == i) {
                                let new = self.codec.enc_head(&q, None);
                                Pc::Sc26 {
                                    resp,
                                    sub: LlscOp::sc(i, self.head, new),
                                }
                            } else if self.release {
                                Pc::Rl27 {
                                    resp,
                                    sub: LlscOp::rl(i, self.head),
                                }
                            } else {
                                Pc::ClearAnn { resp }
                            };
                        }
                        None => {
                            self.pc = Pc::Ll25 {
                                resp,
                                sub,
                                right: true,
                            }
                        }
                    }
                }
            }

            Pc::Sc26 { resp, mut sub } => match sub.step(&self.hl(), ctx) {
                Some(_) => self.pc = Pc::ClearAnn { resp },
                None => self.pc = Pc::Sc26 { resp, sub },
            },

            Pc::Rl27 { resp, mut sub } => match sub.step(&self.hl(), ctx) {
                Some(_) => self.pc = Pc::ClearAnn { resp },
                None => self.pc = Pc::Rl27 { resp, sub },
            },

            Pc::ClearAnn { resp } => {
                ctx.write(self.ann[i], self.al().reset(self.codec.enc_ann_bot()));
                return Some(resp);
            }
        }
        None
    }

    fn peeked_cell(&self) -> Option<CellId> {
        let i = self.pid;
        Some(match &self.pc {
            Pc::Idle => return None,
            Pc::ReadOnly { .. } | Pc::Vl19 { .. } | Pc::Vl19NonOp { .. } => self.head,
            Pc::Announce { .. }
            | Pc::LoopCheck { .. }
            | Pc::LoadOwn { .. }
            | Pc::ReadResp
            | Pc::ClearAnn { .. } => self.ann[i],
            Pc::LoadHelp { .. } => self.ann[self.priority],
            Pc::Ll6 { sub, right, .. } => {
                if *right {
                    self.ann[i]
                } else {
                    sub.cell()
                }
            }
            Pc::Ll18 { sub, right, .. } => {
                if *right {
                    self.ann[i]
                } else {
                    sub.cell()
                }
            }
            Pc::Ll25 { sub, right, .. } => {
                if *right {
                    self.head
                } else {
                    sub.cell()
                }
            }
            Pc::Sc14 { sub, .. }
            | Pc::Rl18 { sub, .. }
            | Pc::Sc20 { sub, .. }
            | Pc::Sc21 { sub, .. }
            | Pc::Rl22 { sub, .. }
            | Pc::Sc26 { sub, .. }
            | Pc::Rl27 { sub, .. } => sub.cell(),
        })
    }
}

impl<S: EnumerableSpec> Implementation<S> for SimUniversal<S> {
    type Process = UniversalProcess<S>;

    fn spec(&self) -> &S {
        &self.spec
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn init_memory(&self) -> SharedMem {
        self.mem.clone()
    }

    fn make_process(&self, pid: Pid) -> UniversalProcess<S> {
        assert!(pid.0 < self.n);
        UniversalProcess {
            spec: self.spec.clone(),
            codec: Arc::clone(&self.codec),
            head: self.head,
            ann: self.ann.clone(),
            pid: pid.0,
            n: self.n,
            priority: pid.0,
            release: self.release,
            pc: Pc::Idle,
        }
    }
}

impl<S: EnumerableSpec + 'static> SimObject<S> for SimUniversal<S> {
    type Machine = Self;

    fn spec(&self) -> &S {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::MultiProcess { n: self.n }
    }

    fn hi_level(&self) -> HiLevel {
        // `without_release` drops the RL clearing that buys HI (§6.1).
        if self.release {
            HiLevel::StateQuiescent
        } else {
            HiLevel::NotHi
        }
    }

    fn progress(&self) -> Progress {
        // Algorithm 5 announces every operation and helps the whole
        // announce array before swinging the head: a crashed process's
        // announced operation is completed (exactly once) by any survivor,
        // with or without the RL clearing.
        Progress::Helping
    }

    fn implementation(&self) -> &Self {
        self
    }

    fn hi_audit(&self) -> SimAudit<S, Self> {
        if !self.release {
            return SimAudit::LinOnly;
        }
        // Lemma 25: the state component of `head` is the abstract state.
        let oracle = self.clone();
        SimAudit::from_snapshot(ObservationModel::StateQuiescent, move |snap| {
            oracle.abstract_state(snap)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::objects::{CounterOp, CounterResp, CounterSpec};
    use hi_sim::Executor;

    fn counter(n: usize) -> SimUniversal<CounterSpec> {
        SimUniversal::new(CounterSpec::new(0, 10, 0), n)
    }

    #[test]
    fn solo_ops_round_trip() {
        let mut exec = Executor::new(counter(2));
        assert_eq!(
            exec.run_op_solo(Pid(0), CounterOp::Inc, 200).unwrap(),
            CounterResp::Ack
        );
        assert_eq!(
            exec.run_op_solo(Pid(1), CounterOp::Inc, 200).unwrap(),
            CounterResp::Ack
        );
        assert_eq!(
            exec.run_op_solo(Pid(0), CounterOp::Read, 10).unwrap(),
            CounterResp::Value(2)
        );
    }

    #[test]
    fn memory_canonical_after_solo_ops() {
        let imp = counter(3);
        let mut exec = Executor::new(imp.clone());
        exec.run_op_solo(Pid(0), CounterOp::Inc, 200).unwrap();
        exec.run_op_solo(Pid(1), CounterOp::Inc, 200).unwrap();
        exec.run_op_solo(Pid(2), CounterOp::Dec, 200).unwrap();
        assert_eq!(exec.snapshot(), imp.canonical(&1));
    }

    #[test]
    fn counter_back_at_zero_leaves_no_trace() {
        // The paper's §6 motivating leak: a counter that was non-zero in the
        // past must be indistinguishable from one that never moved.
        let imp = counter(2);
        let mut busy = Executor::new(imp.clone());
        for _ in 0..3 {
            busy.run_op_solo(Pid(0), CounterOp::Inc, 200).unwrap();
            busy.run_op_solo(Pid(1), CounterOp::Dec, 200).unwrap();
        }
        let mut idle = Executor::new(imp.clone());
        idle.run_op_solo(Pid(1), CounterOp::Read, 10).unwrap();
        assert_eq!(busy.snapshot(), idle.snapshot());
        assert_eq!(busy.snapshot(), imp.canonical(&0));
    }

    #[test]
    fn helping_completes_a_stalled_operation() {
        // p0 announces Inc and stalls right after the announce store; p1's
        // operation applies p0's op for it (priority helping).
        let imp = counter(2);
        let mut exec = Executor::new(imp.clone());
        exec.invoke(Pid(0), CounterOp::Inc);
        exec.step(Pid(0)); // line 4: announce
                           // p1 runs a full Inc solo; since priority_1 = 1 initially it applies
                           // its own op first, but within bounded steps it must rotate and help.
        exec.run_op_solo(Pid(1), CounterOp::Inc, 500).unwrap();
        // After p1's operations, p0's op may or may not yet be applied; run
        // one more p1 op to force the rotation through p0.
        exec.run_op_solo(Pid(1), CounterOp::Inc, 500).unwrap();
        // p0 finishes: its announce already holds a response or its op gets
        // applied now.
        let (_, resp) = exec.run_solo(Pid(0), 500).unwrap();
        assert_eq!(resp, CounterResp::Ack);
        assert_eq!(
            exec.run_op_solo(Pid(1), CounterOp::Read, 10).unwrap(),
            CounterResp::Value(3)
        );
    }

    #[test]
    fn read_only_op_is_single_step_and_writes_nothing() {
        let imp = counter(2);
        let mut exec = Executor::new(imp.clone());
        exec.run_op_solo(Pid(0), CounterOp::Inc, 200).unwrap();
        let before = exec.snapshot();
        exec.invoke(Pid(1), CounterOp::Read);
        let done = exec.step(Pid(1));
        assert_eq!(done.map(|(_, r)| r), Some(CounterResp::Value(1)));
        assert_eq!(exec.snapshot(), before, "read-only ops leave no trace");
    }

    #[test]
    fn abstract_state_decodes_head() {
        let imp = counter(2);
        let mut exec = Executor::new(imp.clone());
        exec.run_op_solo(Pid(0), CounterOp::Inc, 200).unwrap();
        assert_eq!(imp.abstract_state(&exec.snapshot()), 1);
        let (q, r) = imp.head_value(&exec.snapshot());
        assert_eq!((q, r), (1, None));
    }
}
