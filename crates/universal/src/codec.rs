//! Bit-level canonical representations for the universal construction.
//!
//! The codec enumerates the object's states, operations and responses once,
//! at construction, and never again — so the mapping from abstract values to
//! bit patterns is fixed at initialization, exactly the form of canonical
//! representation that Proposition 3 requires of deterministic HI
//! implementations. (An interning table extended lazily during execution
//! would order entries by first use and thereby leak the history.)

use std::collections::HashMap;

use hi_core::EnumerableSpec;
use hi_llsc::LlscLayout;

/// Decoded contents of an `announce` cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AnnValue<S: EnumerableSpec> {
    /// `⊥`: no pending operation.
    Bot,
    /// An announced operation awaiting application.
    Op(S::Op),
    /// The response of an applied operation awaiting delivery.
    Resp(S::Resp),
}

impl<S: EnumerableSpec> AnnValue<S> {
    /// Whether this is a response (the `∈ R` test of Algorithm 5).
    pub fn is_resp(&self) -> bool {
        matches!(self, AnnValue::Resp(_))
    }

    /// Whether this is an operation (the `∈ O` test).
    pub fn is_op(&self) -> bool {
        matches!(self, AnnValue::Op(_))
    }
}

fn bits_for(count: usize) -> u32 {
    debug_assert!(count >= 1);
    (usize::BITS - (count - 1).leading_zeros()).max(1)
}

/// The fixed encoder/decoder for one object spec and process count.
///
/// `head` values encode `⟨state, ⊥⟩` or `⟨state, ⟨resp, pid⟩⟩`; `announce`
/// values encode `⊥`, an operation, or a response. Both include the R-LLSC
/// context bits via their [`LlscLayout`]s.
///
/// # Example
///
/// ```
/// use hi_core::objects::{CounterSpec, CounterResp};
/// use hi_universal::Codec;
///
/// let spec = CounterSpec::new(0, 7, 0);
/// let codec = Codec::new(&spec, 4);
/// let h = codec.enc_head(&5, Some((&CounterResp::Ack, 2)));
/// let (q, r) = codec.dec_head(h);
/// assert_eq!(q, 5);
/// assert_eq!(r, Some((CounterResp::Ack, 2)));
/// ```
#[derive(Clone, Debug)]
pub struct Codec<S: EnumerableSpec> {
    states: Vec<S::State>,
    state_idx: HashMap<S::State, u64>,
    ops: Vec<S::Op>,
    op_idx: HashMap<S::Op, u64>,
    resps: Vec<S::Resp>,
    resp_idx: HashMap<S::Resp, u64>,
    n: usize,
    state_bits: u32,
    resp_bits: u32,
    pid_bits: u32,
    payload_bits: u32,
    head_layout: LlscLayout,
    ann_layout: LlscLayout,
}

impl<S: EnumerableSpec> Codec<S> {
    /// Builds the codec for `spec` shared by `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if the head or announce encoding (value bits + `n` context
    /// bits) does not fit in 64 bits — the construction requires base
    /// objects with `O(s · 2^n)` states and refuses to truncate.
    pub fn new(spec: &S, n: usize) -> Self {
        assert!(n >= 1, "at least one process required");
        let states = spec.states();
        let ops = spec.ops();
        let resps = spec.responses();
        let state_idx: HashMap<_, _> = states
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, q)| (q, i as u64))
            .collect();
        let op_idx: HashMap<_, _> = ops
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, o)| (o, i as u64))
            .collect();
        let resp_idx: HashMap<_, _> = resps
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, r)| (r, i as u64))
            .collect();
        assert_eq!(state_idx.len(), states.len(), "duplicate states");
        assert_eq!(op_idx.len(), ops.len(), "duplicate ops");
        assert_eq!(resp_idx.len(), resps.len(), "duplicate responses");

        let state_bits = bits_for(states.len());
        let resp_bits = bits_for(resps.len());
        let pid_bits = bits_for(n);
        let payload_bits = bits_for(ops.len()).max(resp_bits);
        // head value: tag(1) | pid | resp | state
        let head_val_bits = 1 + pid_bits + resp_bits + state_bits;
        // announce value: tag(2) | payload
        let ann_val_bits = 2 + payload_bits;
        let head_layout = LlscLayout::new(head_val_bits, n);
        let ann_layout = LlscLayout::new(ann_val_bits, n);
        Codec {
            states,
            state_idx,
            ops,
            op_idx,
            resps,
            resp_idx,
            n,
            state_bits,
            resp_bits,
            pid_bits,
            payload_bits,
            head_layout,
            ann_layout,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The R-LLSC layout of the `head` cell.
    pub fn head_layout(&self) -> LlscLayout {
        self.head_layout
    }

    /// The R-LLSC layout of the `announce` cells.
    pub fn ann_layout(&self) -> LlscLayout {
        self.ann_layout
    }

    /// Encodes a `head` value `⟨state, ⊥⟩` or `⟨state, ⟨resp, pid⟩⟩`.
    pub fn enc_head(&self, state: &S::State, resp: Option<(&S::Resp, usize)>) -> u64 {
        let q = self.state_idx[state];
        match resp {
            None => q,
            Some((r, pid)) => {
                assert!(pid < self.n);
                let r = self.resp_idx[r];
                let tag_shift = self.state_bits + self.resp_bits + self.pid_bits;
                (1u64 << tag_shift)
                    | ((pid as u64) << (self.state_bits + self.resp_bits))
                    | (r << self.state_bits)
                    | q
            }
        }
    }

    /// Decodes a `head` value.
    pub fn dec_head(&self, v: u64) -> (S::State, Option<(S::Resp, usize)>) {
        let tag_shift = self.state_bits + self.resp_bits + self.pid_bits;
        let state_mask = (1u64 << self.state_bits) - 1;
        let q = self.states[(v & state_mask) as usize].clone();
        if v >> tag_shift == 0 {
            (q, None)
        } else {
            let resp_mask = (1u64 << self.resp_bits) - 1;
            let pid_mask = (1u64 << self.pid_bits) - 1;
            let r = self.resps[((v >> self.state_bits) & resp_mask) as usize].clone();
            let pid = ((v >> (self.state_bits + self.resp_bits)) & pid_mask) as usize;
            (q, Some((r, pid)))
        }
    }

    /// The encoding of `announce = ⊥` (all-zero value).
    pub fn enc_ann_bot(&self) -> u64 {
        0
    }

    /// Encodes an announced operation.
    pub fn enc_ann_op(&self, op: &S::Op) -> u64 {
        (1u64 << self.payload_bits) | self.op_idx[op]
    }

    /// Encodes a delivered response.
    pub fn enc_ann_resp(&self, resp: &S::Resp) -> u64 {
        (2u64 << self.payload_bits) | self.resp_idx[resp]
    }

    /// Decodes an `announce` value.
    pub fn dec_ann(&self, v: u64) -> AnnValue<S> {
        let payload = v & ((1u64 << self.payload_bits) - 1);
        match v >> self.payload_bits {
            0 => AnnValue::Bot,
            1 => AnnValue::Op(self.ops[payload as usize].clone()),
            2 => AnnValue::Resp(self.resps[payload as usize].clone()),
            tag => panic!("corrupt announce tag {tag}"),
        }
    }

    /// The initial `head` value: `⟨q0, ⊥⟩` for the given initial state.
    pub fn initial_head(&self, initial: &S::State) -> u64 {
        self.enc_head(initial, None)
    }

    /// The enumerated states (in canonical index order).
    pub fn states(&self) -> &[S::State] {
        &self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::objects::{CounterOp, CounterResp, CounterSpec, SetOp, SetSpec};

    #[test]
    fn head_round_trip_all_states() {
        let spec = CounterSpec::new(-2, 4, 0);
        let codec = Codec::new(&spec, 3);
        for q in spec_states(&spec) {
            let v = codec.enc_head(&q, None);
            assert_eq!(codec.dec_head(v), (q, None));
            for pid in 0..3 {
                for r in [
                    CounterResp::Ack,
                    CounterResp::Value(-2),
                    CounterResp::Value(4),
                ] {
                    let v = codec.enc_head(&q, Some((&r, pid)));
                    assert_eq!(codec.dec_head(v), (q, Some((r, pid))));
                }
            }
        }
    }

    fn spec_states(spec: &CounterSpec) -> Vec<i64> {
        use hi_core::EnumerableSpec;
        spec.states()
    }

    #[test]
    fn announce_round_trip() {
        let spec = SetSpec::new(4);
        let codec = Codec::new(&spec, 2);
        assert_eq!(codec.dec_ann(codec.enc_ann_bot()), AnnValue::Bot);
        let op = SetOp::Insert(3);
        assert_eq!(codec.dec_ann(codec.enc_ann_op(&op)), AnnValue::Op(op));
        let r = hi_core::objects::SetResp::Bool(true);
        assert_eq!(codec.dec_ann(codec.enc_ann_resp(&r)), AnnValue::Resp(r));
    }

    #[test]
    fn bot_encoding_is_zero() {
        // The all-zero announce cell is ⊥ with empty context: the canonical
        // idle representation.
        let codec = Codec::new(&SetSpec::new(2), 2);
        assert_eq!(codec.enc_ann_bot(), 0);
    }

    #[test]
    fn distinct_encodings() {
        let spec = CounterSpec::new(0, 3, 0);
        let codec = Codec::new(&spec, 2);
        let mut seen = std::collections::HashSet::new();
        for q in [0i64, 1, 2, 3] {
            assert!(seen.insert(codec.enc_head(&q, None)));
            for pid in 0..2 {
                for r in [CounterResp::Ack, CounterResp::Value(1)] {
                    assert!(seen.insert(codec.enc_head(&q, Some((&r, pid)))));
                }
            }
        }
    }

    #[test]
    fn op_is_not_resp() {
        let spec = CounterSpec::new(0, 1, 0);
        let codec = Codec::new(&spec, 1);
        let v = codec.enc_ann_op(&CounterOp::Inc);
        assert!(codec.dec_ann(v).is_op());
        assert!(!codec.dec_ann(v).is_resp());
    }
}
