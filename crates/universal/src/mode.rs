//! Mode tracking for Algorithm 5 (Invariant 22 / Figure 3).
//!
//! The algorithm alternates between modes `A_i` (head = `⟨q, ⊥⟩`) and `B_i`
//! (head = `⟨q, ⟨rsp, j⟩⟩`): each write to `head` either installs a response
//! (A→B, the *first stage*, which also changes the state) or clears one
//! (B→A, the *third stage*, which must preserve the state). [`ModeTracker`]
//! watches a live execution's head values and reports any violation.

use std::error::Error;
use std::fmt;

/// The mode of the algorithm, derived from the head value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// `head = ⟨q, ⊥⟩`: in-between operations.
    A,
    /// `head = ⟨q, ⟨rsp, j⟩⟩`: an operation has been applied, its response
    /// not yet delivered and cleared.
    B,
}

/// A violation of Invariant 22.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ModeViolation {
    /// Human-readable description of the broken transition.
    pub detail: String,
}

impl fmt::Display for ModeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Invariant 22 violated: {}", self.detail)
    }
}

impl Error for ModeViolation {}

/// Observes the sequence of head values `(state_token, has_resp)` and checks
/// Invariant 22: consecutive head writes alternate
/// `⟨q, ⊥⟩ → ⟨q', r ≠ ⊥⟩ → ⟨q', ⊥⟩ → …`, with B→A transitions preserving
/// the state component.
///
/// The tracker is representation-agnostic: callers feed it an opaque state
/// token (e.g. the encoded state bits) plus the response flag.
///
/// # Example
///
/// ```
/// use hi_universal::ModeTracker;
///
/// let mut t = ModeTracker::new(0, false); // A_0: ⟨q0, ⊥⟩
/// t.observe(5, true).unwrap();            // B_1: ⟨q1, ⟨r, j⟩⟩
/// t.observe(5, false).unwrap();           // A_1: ⟨q1, ⊥⟩
/// assert_eq!(t.transitions(), 2);
/// assert!(t.observe(7, false).is_err(), "A → A with a state change");
/// ```
#[derive(Clone, Debug)]
pub struct ModeTracker {
    state: u64,
    has_resp: bool,
    transitions: u64,
    a_to_b: u64,
}

impl ModeTracker {
    /// Creates a tracker from the initial head value.
    pub fn new(state: u64, has_resp: bool) -> Self {
        ModeTracker {
            state,
            has_resp,
            transitions: 0,
            a_to_b: 0,
        }
    }

    /// The current mode.
    pub fn mode(&self) -> Mode {
        if self.has_resp {
            Mode::B
        } else {
            Mode::A
        }
    }

    /// Total head writes observed.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Number of A→B transitions observed — the number of *linearized*
    /// state-changing operations (Lemma 23).
    pub fn linearized_ops(&self) -> u64 {
        self.a_to_b
    }

    /// Feeds the next observed head value. A no-op if the value is unchanged
    /// (head was not written).
    ///
    /// # Errors
    ///
    /// Returns a [`ModeViolation`] if the transition breaks Invariant 22.
    pub fn observe(&mut self, state: u64, has_resp: bool) -> Result<(), ModeViolation> {
        if state == self.state && has_resp == self.has_resp {
            return Ok(());
        }
        self.transitions += 1;
        let outcome = match (self.has_resp, has_resp) {
            (false, true) => {
                // A -> B: the first stage; the state may change.
                self.a_to_b += 1;
                Ok(())
            }
            (true, false) => {
                // B -> A: the third stage; the state must be preserved.
                if state == self.state {
                    Ok(())
                } else {
                    Err(ModeViolation {
                        detail: format!(
                            "B->A transition changed the state ({} -> {})",
                            self.state, state
                        ),
                    })
                }
            }
            (false, false) => Err(ModeViolation {
                detail: format!("A->A head write ({} -> {})", self.state, state),
            }),
            (true, true) => Err(ModeViolation {
                detail: format!("B->B head write ({} -> {})", self.state, state),
            }),
        };
        self.state = state;
        self.has_resp = has_resp;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_alternation() {
        let mut t = ModeTracker::new(0, false);
        for i in 1..=10u64 {
            t.observe(i, true).unwrap();
            assert_eq!(t.mode(), Mode::B);
            t.observe(i, false).unwrap();
            assert_eq!(t.mode(), Mode::A);
        }
        assert_eq!(t.linearized_ops(), 10);
        assert_eq!(t.transitions(), 20);
    }

    #[test]
    fn unchanged_value_is_not_a_transition() {
        let mut t = ModeTracker::new(3, false);
        t.observe(3, false).unwrap();
        assert_eq!(t.transitions(), 0);
    }

    #[test]
    fn b_to_a_must_preserve_state() {
        let mut t = ModeTracker::new(0, false);
        t.observe(4, true).unwrap();
        let err = t.observe(5, false).unwrap_err();
        assert!(err.to_string().contains("changed the state"));
    }

    #[test]
    fn double_a_write_is_flagged() {
        let mut t = ModeTracker::new(0, false);
        assert!(t.observe(1, false).is_err());
    }
}
