//! A deliberately non-HI universal construction, for contrast.
//!
//! The paper notes that prior universal constructions [19, 26–28] "keep
//! information about completed operations, such as their responses" and are
//! therefore not history independent. [`LeakyUniversal`] models that defect
//! minimally: it is [`CasUniversal`](crate::CasUniversal)'s CAS loop plus a
//! per-process *operation ledger* — a cell each process bumps after every
//! successful state change and never clears. The ledger wrecks every notion
//! of HI (two histories reaching the same state leave different counters),
//! which is exactly what the HI monitors in `hi-spec` detect; see the
//! `universal_hi` integration tests and the `forensic_audit` example.

use std::sync::Arc;

use hi_core::{EnumerableSpec, Pid};
use hi_sim::{CellDomain, CellId, Implementation, MemCtx, MemSnapshot, ProcessHandle, SharedMem};

use crate::codec::Codec;

/// The leaky universal construction: lock-free, linearizable, **not** HI.
#[derive(Clone, Debug)]
pub struct LeakyUniversal<S: EnumerableSpec> {
    spec: S,
    codec: Arc<Codec<S>>,
    cell: CellId,
    ledger: Vec<CellId>,
    mem: SharedMem,
    n: usize,
}

impl<S: EnumerableSpec> LeakyUniversal<S> {
    /// Creates the object for `spec` shared by `n` processes.
    pub fn new(spec: S, n: usize) -> Self {
        let codec = Arc::new(Codec::new(&spec, n.max(1)));
        let mut mem = SharedMem::new();
        let states = spec.states().len() as u64;
        let cell = mem.alloc(
            "state",
            CellDomain::Bounded(states.next_power_of_two().max(2)),
            codec.enc_head(&spec.initial_state(), None),
        );
        let ledger: Vec<CellId> = (0..n)
            .map(|i| mem.alloc(format!("ops[{i}]"), CellDomain::Word, 0))
            .collect();
        LeakyUniversal {
            spec,
            codec,
            cell,
            ledger,
            mem,
            n,
        }
    }

    /// Decodes the abstract state from a snapshot.
    pub fn abstract_state(&self, snap: &MemSnapshot) -> S::State {
        self.codec.dec_head(snap[self.cell.0]).0
    }

    /// The per-process operation counts visible in a snapshot — the leak.
    pub fn ledger(&self, snap: &MemSnapshot) -> Vec<u64> {
        self.ledger.iter().map(|c| snap[c.0]).collect()
    }
}

/// Program counter of one [`LeakyUniversal`] operation.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Pc<O> {
    Idle,
    Read {
        op: O,
    },
    Swap {
        op: O,
        old: u64,
        new: u64,
    },
    /// The leak: record the completed operation in the invoker's ledger.
    Bump {
        resp_new_count: u64,
    },
}

/// The per-process step machine of [`LeakyUniversal`].
#[derive(Clone, Debug)]
pub struct LeakyUniversalProcess<S: EnumerableSpec> {
    spec: S,
    codec: Arc<Codec<S>>,
    cell: CellId,
    my_ledger: CellId,
    applied: u64,
    pc: Pc<S::Op>,
    staged_resp: Option<S::Resp>,
}

impl<S: EnumerableSpec> PartialEq for LeakyUniversalProcess<S> {
    fn eq(&self, other: &Self) -> bool {
        self.cell == other.cell
            && self.my_ledger == other.my_ledger
            && self.applied == other.applied
            && self.pc == other.pc
            && self.staged_resp == other.staged_resp
    }
}

impl<S: EnumerableSpec> ProcessHandle<S> for LeakyUniversalProcess<S> {
    fn invoke(&mut self, op: S::Op) {
        assert_eq!(self.pc, Pc::Idle, "operation already pending");
        self.pc = Pc::Read { op };
    }

    fn is_idle(&self) -> bool {
        self.pc == Pc::Idle
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<S::Resp> {
        match std::mem::replace(&mut self.pc, Pc::Idle) {
            Pc::Idle => panic!("step of idle process"),
            Pc::Read { op } => {
                let old = ctx.read(self.cell);
                let (q, _) = self.codec.dec_head(old);
                let (q2, rsp) = self.spec.apply(&q, &op);
                if self.spec.is_read_only(&op) {
                    return Some(rsp);
                }
                if q2 == q {
                    // Still bump the ledger: the op completed.
                    self.staged_resp = Some(rsp);
                    self.pc = Pc::Bump {
                        resp_new_count: self.applied + 1,
                    };
                    return None;
                }
                let new = self.codec.enc_head(&q2, None);
                self.pc = Pc::Swap { op, old, new };
                None
            }
            Pc::Swap { op, old, new } => {
                if ctx.cas(self.cell, old, new) {
                    let (q, _) = self.codec.dec_head(old);
                    let (_, rsp) = self.spec.apply(&q, &op);
                    self.staged_resp = Some(rsp);
                    self.pc = Pc::Bump {
                        resp_new_count: self.applied + 1,
                    };
                } else {
                    self.pc = Pc::Read { op };
                }
                None
            }
            Pc::Bump { resp_new_count } => {
                ctx.write(self.my_ledger, resp_new_count);
                self.applied = resp_new_count;
                Some(self.staged_resp.take().expect("staged response missing"))
            }
        }
    }

    fn peeked_cell(&self) -> Option<CellId> {
        match self.pc {
            Pc::Idle => None,
            Pc::Bump { .. } => Some(self.my_ledger),
            _ => Some(self.cell),
        }
    }
}

impl<S: EnumerableSpec> Implementation<S> for LeakyUniversal<S> {
    type Process = LeakyUniversalProcess<S>;

    fn spec(&self) -> &S {
        &self.spec
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn init_memory(&self) -> SharedMem {
        self.mem.clone()
    }

    fn make_process(&self, pid: Pid) -> LeakyUniversalProcess<S> {
        assert!(pid.0 < self.n);
        LeakyUniversalProcess {
            spec: self.spec.clone(),
            codec: Arc::clone(&self.codec),
            cell: self.cell,
            my_ledger: self.ledger[pid.0],
            applied: 0,
            pc: Pc::Idle,
            staged_resp: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::objects::{CounterOp, CounterResp, CounterSpec};
    use hi_sim::Executor;

    #[test]
    fn linearizable_but_leaky() {
        let imp = LeakyUniversal::new(CounterSpec::new(0, 10, 0), 2);
        // History 1: inc, dec (back to 0).
        let mut busy = Executor::new(imp.clone());
        busy.run_op_solo(Pid(0), CounterOp::Inc, 10).unwrap();
        busy.run_op_solo(Pid(0), CounterOp::Dec, 10).unwrap();
        // History 2: nothing.
        let idle = Executor::new(imp.clone());
        // Same abstract state...
        assert_eq!(
            imp.abstract_state(&busy.snapshot()),
            imp.abstract_state(&idle.snapshot())
        );
        // ...different memory: the ledger reveals the two operations.
        assert_ne!(busy.snapshot(), idle.snapshot());
        assert_eq!(imp.ledger(&busy.snapshot()), vec![2, 0]);
    }

    #[test]
    fn responses_are_correct() {
        let imp = LeakyUniversal::new(CounterSpec::new(0, 10, 0), 2);
        let mut exec = Executor::new(imp);
        exec.run_op_solo(Pid(0), CounterOp::Inc, 10).unwrap();
        exec.run_op_solo(Pid(1), CounterOp::Inc, 10).unwrap();
        assert_eq!(
            exec.run_op_solo(Pid(0), CounterOp::Read, 10).unwrap(),
            CounterResp::Value(2)
        );
    }
}
