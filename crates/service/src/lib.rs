#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! A heavy-traffic service harness over every
//! [`ConcurrentObject`](hi_api::ConcurrentObject): N logical clients
//! multiplexed over one worker thread per role, with bounded `mpsc`
//! ingress queues, hash-sharded dispatch, explicit backpressure, periodic
//! drain-barrier HI audits, and tail-latency observability.
//!
//! The conformance driver ([`hi_api::drive`]) answers *"is the object
//! correct under adversarial interleavings?"*; this crate answers the
//! complementary service-shaped question: *"does the history-independence
//! guarantee survive sustained, skewed, bursty production-like load — and
//! what does its tail latency look like?"*. Concretely:
//!
//! * [`service`] — the runner: [`run_soak`](service::run_soak) drives an
//!   object through epochs of sharded client load, bringing it
//!   state-quiescent at every epoch boundary (a *drain barrier*) so the
//!   `mem(C) == canonical(state)` audit runs mid-soak; quiescence at the
//!   barrier is enforced by the borrow checker, not by timing.
//!   [`soak_watchdogged`](service::soak_watchdogged) wraps a whole soak in
//!   the deadline watchdog so wedges fail structured in CI.
//! * [`soak`] — the registry: named scenarios pairing objects with load
//!   shapes (uniform / Zipfian / bursty), iterated by the soak suites, the
//!   `service_latency` bench and the CI `service-soak` job.
//!
//! Every applied operation is traced through three spans — ingress →
//! dequeue (`queue_wait`), dequeue → completion (`service`), and the
//! end-to-end interval — into the log-scale histograms of
//! [`hi_bench::hist`], merged and per worker, so a fat tail is
//! attributable to the queue or the backend. [`SoakReport`] also carries
//! a [`ServiceMetrics`] block (per-epoch load vs audit-pause time, the
//! watchdog's progress snapshot, and the online-audit verdict): backends
//! declaring [`HiLevel::Perfect`](hi_api::HiLevel) are additionally
//! probed *mid-flight*, between barriers, via
//! [`handles_with_probe`](hi_api::ConcurrentObject::handles_with_probe).
//!
//! Threads and `std::sync::mpsc` only — no async runtime, nothing
//! vendored.
//!
//! # Example
//!
//! ```
//! use hi_api::UniversalObject;
//! use hi_core::objects::CounterSpec;
//! use hi_service::{run_soak, SoakConfig};
//!
//! let mut obj = UniversalObject::new(CounterSpec::new(-10, 10, 0), 2);
//! let cfg = SoakConfig { total_ops: 600, clients: 4, mid_audits: 2, ..SoakConfig::default() };
//! let report = run_soak(&mut obj, &cfg).unwrap();
//! assert_eq!(report.ops_applied, 600);
//! assert_eq!(report.audits.len(), 3, "two mid-soak barriers plus the final audit");
//! assert!(report.audits.iter().all(|a| a.audited));
//! ```

pub mod metrics;
pub mod service;
pub mod soak;

pub use metrics::{EpochMetrics, OnlineAudit, ServiceMetrics};
pub use service::{
    run_soak, run_soak_with, soak_watchdogged, AuditPoint, AuditRecord, Backpressure, SoakConfig,
    SoakError, SoakReport, WorkerStats,
};
pub use soak::{soak_registry, soak_scenario, SoakProfile, SoakScenario};
