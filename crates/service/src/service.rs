//! The service runner: N logical clients multiplexed over M worker
//! threads driving one [`ConcurrentObject`], with bounded ingress queues,
//! hash-sharded dispatch, per-operation latency recording, and periodic
//! drain barriers at which the object is *state-quiescent by construction*
//! so the history-independence audit can run mid-soak.
//!
//! # Architecture
//!
//! ```text
//!   logical clients (N)        ingress (bounded mpsc)      workers (M = one per handle)
//!   ┌──────────────┐  rank ┌──────────────────────┐  recv  ┌──────────────────┐
//!   │ rng + KeyDist │──────▶ sync_channel(depth) ──────────▶ handle.apply(op) │
//!   │ + ArrivalGen  │ shard └──────────────────────┘        │ latency histo    │
//!   └──────────────┘                ...                     └──────────────────┘
//!        (client threads round-robin their clients; an op for a given
//!         rank always lands on the same worker — the one whose role menu
//!         owns it, hash-picked among the eligible)
//!
//!   every epoch: clients exhaust their budget → senders drop → workers
//!   drain and exit → the thread scope ends → *all handles are dropped* →
//!   drain barrier: mem_snapshot() vs canonical(abstract_state()), then
//!   handles are re-split and the next epoch begins.
//! ```
//!
//! The drain barrier leans on the facade's contract: handles borrow the
//! object, and [`ConcurrentObject::handles`] takes `&mut self`, so the
//! audit — which needs `&mut`-level quiet access — *cannot compile* while
//! any operation is in flight. "Audit observed a non-quiescent point" is a
//! type error here, not a runtime race.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hi_api::{
    ConcurrentObject, MetricsSnapshot, ObjectHandle, ProbeVerdict, ProgressCounters, SampledAudit,
};
use hi_bench::hist::Histogram;

use crate::metrics::{EpochMetrics, OnlineAudit, ServiceMetrics};
use hi_core::workload::{
    handle_seed, seeded_shuffle, Arrival, ArrivalGen, KeyDist, KeySampler, SplitMix64,
};
use hi_core::{menus_for, EnumerableSpec};

/// Decorrelates the drain barrier's sampled-audit shard selection from the
/// workload seed's other derivations.
const SAMPLED_AUDIT_SALT: u64 = 0x5a3d_a0d1_7b65_93c5;

/// The one memory ordering of this crate: the gauges and flags here are
/// monitoring data (queue depths, abort latches), never a publication
/// channel for object state — the objects under test do their own
/// synchronization.
const GAUGE_ORD: Ordering = Ordering::Relaxed;

/// What a client does when the ingress queue of the owning worker is full.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backpressure {
    /// Wait for space: closed-loop load, every submitted operation is
    /// eventually applied, the queue wait shows up as latency.
    Block,
    /// Drop the operation and record the rejection: open-loop load
    /// shedding, the reject count shows up in the report.
    Reject,
}

/// Configuration of one soak run.
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// Logical clients (each with its own deterministic op stream).
    pub clients: usize,
    /// OS threads multiplexing the clients (clamped to `clients`).
    pub client_threads: usize,
    /// Total operations submitted across the whole soak (split evenly
    /// over epochs, then over clients).
    pub total_ops: usize,
    /// Ingress queue bound per worker.
    pub queue_depth: usize,
    /// Full-queue policy.
    pub backpressure: Backpressure,
    /// Popularity curve of the operation space.
    pub key_dist: KeyDist,
    /// Arrival process of each client.
    pub arrival: Arrival,
    /// Mid-soak drain barriers; the run has `mid_audits + 1` epochs and
    /// audits at the end of every one (so `mid_audits + 1` audit points,
    /// the last at full completion).
    pub mid_audits: usize,
    /// Workload seed: fixes every client's op stream and the rank→worker
    /// sharding.
    pub seed: u64,
    /// Wall-clock budget of a [`soak_watchdogged`] run.
    pub deadline: Duration,
    /// Per-op span tracing: when `true` every envelope is stamped at
    /// ingress, dequeue and completion, and the report splits end-to-end
    /// latency into queue wait + service time (per scenario and per
    /// worker). When `false` the workers run the untraced PR-8 path — one
    /// end-to-end sample per op, no extra clock reads — and the span
    /// histograms stay empty.
    pub trace: bool,
    /// Upper bound on online (non-barrier) HI probe samples per epoch, for
    /// backends that hand out an [`hi_api::OnlineProbe`]
    /// ([`hi_api::HiLevel::Perfect`] only). `0` disables probing.
    pub online_probes: usize,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            clients: 32,
            client_threads: 4,
            total_ops: 40_000,
            queue_depth: 1024,
            backpressure: Backpressure::Block,
            key_dist: KeyDist::Uniform,
            arrival: Arrival::Steady,
            mid_audits: 3,
            seed: 0x5eed,
            deadline: Duration::from_secs(120),
            trace: true,
            online_probes: 32,
        }
    }
}

impl SoakConfig {
    fn validate(&self) {
        assert!(self.clients > 0, "a soak needs at least one client");
        assert!(self.queue_depth > 0, "a bounded queue needs capacity");
    }

    /// Operations of epoch `e` out of `epochs`.
    fn epoch_ops(&self, e: usize, epochs: usize) -> usize {
        self.total_ops / epochs + usize::from(e < self.total_ops % epochs)
    }

    /// Operations of client `c` within an epoch of `epoch_ops` total.
    fn client_ops(&self, epoch_ops: usize, c: usize) -> usize {
        epoch_ops / self.clients + usize::from(c < epoch_ops % self.clients)
    }

    /// The RNG of client `c` in epoch `e` — also what the watchdog's
    /// dry-run uses to precompute per-worker planned totals, so the two
    /// must never drift.
    fn client_rng(&self, e: usize, c: usize) -> SplitMix64 {
        // Epoch-salted so re-split epochs draw fresh streams.
        let epoch_seed = self.seed.wrapping_add((e as u64).wrapping_mul(0x9e37_79b9));
        SplitMix64::new(handle_seed(epoch_seed, c))
    }
}

/// One audit point of a soak: the drain barrier at the end of an epoch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AuditRecord {
    /// The epoch this barrier closed (0-based).
    pub epoch: usize,
    /// Cumulative operations applied when the barrier was reached.
    pub applied: usize,
    /// Whether the mem==canonical comparison ran (`false` only for
    /// objects whose [`hi_api::HiLevel`] fixes no canonical form).
    pub audited: bool,
}

/// What an audit observer sees at a drain barrier, while the object is
/// state-quiescent and before the next epoch begins.
#[derive(Debug)]
pub struct AuditPoint<'a> {
    /// The epoch this barrier closed (0-based).
    pub epoch: usize,
    /// Cumulative operations applied so far.
    pub applied: usize,
    /// Whether the mem==canonical comparison ran.
    pub audited: bool,
    /// The quiescent `mem(C)`.
    pub mem: &'a [u64],
}

/// Per-worker counters and span histograms of one soak.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WorkerStats {
    /// The worker index (= handle index, role order).
    pub worker: usize,
    /// Operations this worker applied.
    pub applied: usize,
    /// The deepest its ingress queue ever got (sampled at dequeue).
    pub max_queue_depth: usize,
    /// End-to-end latency of this worker's operations, nanoseconds.
    pub latency: Histogram,
    /// Ingress-to-dequeue wait of this worker's operations (empty when
    /// tracing is off).
    pub queue_wait: Histogram,
    /// Dequeue-to-completion service time of this worker's operations
    /// (empty when tracing is off).
    pub service: Histogram,
}

/// Result of a successful soak.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Operations accepted into an ingress queue.
    pub ops_submitted: usize,
    /// Operations applied by workers (== submitted unless a run is cut
    /// short).
    pub ops_applied: usize,
    /// Operations dropped by [`Backpressure::Reject`].
    pub ops_rejected: usize,
    /// Submissions that found a full queue under [`Backpressure::Block`]
    /// (the op still went through after the wait).
    pub sends_blocked: usize,
    /// Every drain barrier, in order; the last entry is the final audit.
    pub audits: Vec<AuditRecord>,
    /// Wall-clock time of the whole soak (epochs + barriers).
    pub elapsed: Duration,
    /// Submission-to-response latency of every applied op, nanoseconds.
    pub latency: Histogram,
    /// Ingress-to-dequeue wait of every applied op (empty when
    /// [`SoakConfig::trace`] is off): how long ops sat in the bounded
    /// queues before a worker picked them up.
    pub queue_wait: Histogram,
    /// Dequeue-to-completion service time of every applied op (empty when
    /// tracing is off): what the object itself cost, queue wait excluded.
    pub service: Histogram,
    /// Per-worker throughput, queue-depth gauges and span histograms.
    pub workers: Vec<WorkerStats>,
    /// One entry per drain barrier at which the backend offered a
    /// **sampled** big-domain audit instead of the full-image comparison
    /// (see [`hi_api::ConcurrentObject::sampled_audit`]); empty for
    /// backends whose full canonical image is compared outright.
    pub sampled_audits: Vec<SampledAudit>,
    /// Wall-clock attribution (load vs audit pause, per epoch), final
    /// progress counters and the online-audit ledger.
    pub metrics: ServiceMetrics,
}

impl SoakReport {
    /// Gross applied throughput in operations per second: the whole
    /// wall-clock, drain-barrier audit pauses included.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops_applied as f64 / self.elapsed.max(Duration::from_nanos(1)).as_secs_f64()
    }

    /// Audit-excluded throughput: operations per second of *load* time
    /// only, so the cost of the drain-barrier audits is visible as the gap
    /// to [`ops_per_sec`](SoakReport::ops_per_sec) instead of smeared into
    /// it.
    pub fn ops_per_sec_load(&self) -> f64 {
        let load = self
            .elapsed
            .saturating_sub(self.metrics.audit_pause_total())
            .max(Duration::from_nanos(1));
        self.ops_applied as f64 / load.as_secs_f64()
    }
}

/// Why a soak failed.
#[derive(Clone, Debug)]
pub enum SoakError {
    /// A drain barrier found non-canonical memory: the HI guarantee broke
    /// under service load.
    NotCanonical {
        /// The epoch whose barrier failed.
        epoch: usize,
        /// The decoded abstract state, rendered.
        state: String,
        /// The observed quiescent memory.
        mem: Vec<u64>,
        /// The expected canonical representation.
        canonical: Vec<u64>,
    },
    /// A drain barrier's **sampled** big-domain audit found a violation:
    /// an exhaustively-checked shard off its canonical image, or a
    /// spot-checked structural invariant (capacity word, routing,
    /// displacement) broken.
    SampledNotCanonical {
        /// The epoch whose barrier failed.
        epoch: usize,
        /// The first violation, rendered by the backend.
        detail: String,
    },
    /// An online (non-barrier) probe observed non-canonical memory on a
    /// [`hi_api::HiLevel::Perfect`] backend: the perfect-HI guarantee —
    /// canonical memory in *every* configuration — broke mid-flight.
    ProbeNotCanonical {
        /// The epoch whose load phase the probe sampled.
        epoch: usize,
        /// The decoded abstract state, rendered.
        state: String,
        /// The observed mid-flight memory.
        mem: Vec<u64>,
    },
    /// A worker or client thread panicked.
    Panicked {
        /// The worker index, when a worker; `None` for a client thread or
        /// the driver itself.
        worker: Option<usize>,
        /// The rendered panic payload.
        message: String,
    },
    /// The watchdog fired: the soak did not finish within the deadline.
    /// The wedged driver thread is abandoned; this is what CI reports
    /// instead of a hang.
    Wedged {
        /// The expired deadline.
        after: Duration,
        /// Per-worker applied/planned progress at wedge time (the
        /// [`MetricsSnapshot`] the metrics API exposes).
        progress: MetricsSnapshot,
    },
}

impl fmt::Display for SoakError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoakError::NotCanonical {
                epoch,
                state,
                mem,
                canonical,
            } => write!(
                f,
                "drain barrier of epoch {epoch}: quiescent memory of state {state} is {mem:?}, \
                 expected canonical {canonical:?}"
            ),
            SoakError::SampledNotCanonical { epoch, detail } => write!(
                f,
                "sampled audit at the drain barrier of epoch {epoch}: {detail}"
            ),
            SoakError::ProbeNotCanonical { epoch, state, mem } => write!(
                f,
                "online probe in epoch {epoch}: mid-flight memory {mem:?} is not the canonical \
                 representation of any state (decoded {state}) on a Perfect-HI backend"
            ),
            SoakError::Panicked { worker, message } => match worker {
                Some(w) => write!(f, "worker {w} panicked: {message}"),
                None => write!(f, "client/driver thread panicked: {message}"),
            },
            SoakError::Wedged { after, progress } => {
                write!(
                    f,
                    "soak wedged: not drained after {after:?}; progress {}/{} ops;",
                    progress.applied(),
                    progress.planned()
                )?;
                for hp in progress.stalled() {
                    write!(f, " worker {} ({}/{})", hp.handle, hp.applied, hp.planned)?;
                }
                Ok(())
            }
        }
    }
}

impl Error for SoakError {}

/// An operation in flight from a client to its worker, stamped at
/// submission so the recorded latency covers queue wait plus service.
struct Envelope<Op> {
    op: Op,
    submitted: Instant,
}

/// The precomputed dispatch table: entry `r` is the operation of rank `r`
/// (after a seeded shuffle of the op space) and the worker that owns it.
/// A given operation always lands on the same worker — required for
/// role-restricted ops, and what makes a hot rank a hot *shard* for the
/// symmetric ones.
fn dispatch_table<S: EnumerableSpec>(
    spec: &S,
    menus: &[Vec<S::Op>],
    seed: u64,
) -> Vec<(S::Op, usize)> {
    let mut ops = spec.ops();
    seeded_shuffle(&mut ops, seed);
    // Fully-symmetric fast path: when every role's menu spans the whole op
    // space, the eligibility filter below always yields `0..workers` in
    // order, so `eligible[pick] == pick` — same table, without the
    // O(|ops|² · workers) membership scan, which the big-domain sharded
    // scenarios (millions of ops) cannot afford.
    let symmetric = menus.iter().all(|menu| menu.len() == ops.len());
    ops.into_iter()
        .enumerate()
        .map(|(r, op)| {
            let w = if symmetric {
                SplitMix64::new(handle_seed(seed, r)).below(menus.len())
            } else {
                let eligible: Vec<usize> = menus
                    .iter()
                    .enumerate()
                    .filter(|(_, menu)| menu.contains(&op))
                    .map(|(w, _)| w)
                    .collect();
                assert!(
                    !eligible.is_empty(),
                    "no worker role owns operation {op:?}; menus_for() should cover every op"
                );
                let pick = SplitMix64::new(handle_seed(seed, r)).below(eligible.len());
                eligible[pick]
            };
            (op, w)
        })
        .collect()
}

/// Dry-runs every client's sampling (no object, no threads) to compute how
/// many operations the soak will route to each worker — the `planned`
/// side of the watchdog's [`ProgressCounters`]. Exact under
/// [`Backpressure::Block`]; an upper bound under `Reject`.
fn planned_per_worker<S: EnumerableSpec>(
    table: &[(S::Op, usize)],
    sampler: &KeySampler,
    workers: usize,
    cfg: &SoakConfig,
) -> Vec<usize> {
    let epochs = cfg.mid_audits + 1;
    let mut planned = vec![0usize; workers];
    for e in 0..epochs {
        let epoch_ops = cfg.epoch_ops(e, epochs);
        for c in 0..cfg.clients {
            let mut rng = cfg.client_rng(e, c);
            for _ in 0..cfg.client_ops(epoch_ops, c) {
                planned[table[sampler.sample(&mut rng)].1] += 1;
            }
        }
    }
    planned
}

/// What one worker thread hands back when its shard drains.
struct WorkerOut {
    latency: Histogram,
    queue_wait: Histogram,
    service: Histogram,
    applied: usize,
    max_depth: usize,
}

/// What the prober thread (online non-barrier HI audits) hands back.
struct ProbeOut {
    taken: usize,
    passed: usize,
    first_failure: Option<ProbeVerdict>,
}

/// What one epoch hands back to the soak loop.
struct EpochOut {
    submitted: usize,
    rejected: usize,
    blocked: usize,
    applied: usize,
    latency: Histogram,
    queue_wait: Histogram,
    service: Histogram,
    workers: Vec<WorkerOut>,
    probes: ProbeOut,
}

/// Per-client submission state within an epoch.
struct ClientState {
    rng: SplitMix64,
    arrival: ArrivalGen,
    left: usize,
}

/// Runs one epoch: split handles, pump `epoch_ops` operations through the
/// sharded queues, drain, and return with every handle dropped.
#[allow(clippy::too_many_arguments)]
fn run_epoch<S, O>(
    obj: &mut O,
    menus: &[Vec<S::Op>],
    table: &[(S::Op, usize)],
    sampler: &KeySampler,
    cfg: &SoakConfig,
    epoch: usize,
    epoch_ops: usize,
    progress: &ProgressCounters,
) -> Result<EpochOut, SoakError>
where
    S: EnumerableSpec,
    S::Op: Send + Sync,
    O: ConcurrentObject<S>,
{
    let (handles, probe) = obj.handles_with_probe();
    assert_eq!(
        handles.len(),
        menus.len(),
        "handles() disagrees with the declared role discipline"
    );
    let workers = handles.len();
    let mut txs = Vec::with_capacity(workers);
    let mut rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = mpsc::sync_channel::<Envelope<S::Op>>(cfg.queue_depth);
        txs.push(tx);
        rxs.push(rx);
    }
    let depth: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
    let abort = AtomicBool::new(false);
    let probing_done = AtomicBool::new(false);

    let mut out = EpochOut {
        submitted: 0,
        rejected: 0,
        blocked: 0,
        applied: 0,
        latency: Histogram::new(),
        queue_wait: Histogram::new(),
        service: Histogram::new(),
        workers: Vec::with_capacity(workers),
        probes: ProbeOut {
            taken: 0,
            passed: 0,
            first_failure: None,
        },
    };

    let verdict: Result<(), SoakError> = std::thread::scope(|s| {
        // --- workers: one per handle, draining their shard until every
        // client sender is gone.
        let trace = cfg.trace;
        let mut worker_joins = Vec::with_capacity(workers);
        for ((w, mut handle), rx) in handles.into_iter().enumerate().zip(rxs) {
            assert!(
                menus[w].iter().all(|op| handle.supports(op)),
                "worker {w} does not support its role menu"
            );
            let depth = &depth[w];
            worker_joins.push(s.spawn(move || {
                let mut wo = WorkerOut {
                    latency: Histogram::new(),
                    queue_wait: Histogram::new(),
                    service: Histogram::new(),
                    applied: 0,
                    max_depth: 0,
                };
                while let Ok(env) = rx.recv() {
                    // Gauge read at dequeue: depth including this op.
                    wo.max_depth = wo.max_depth.max(depth.fetch_sub(1, GAUGE_ORD));
                    if trace {
                        // Span stamps: ingress (on the envelope), dequeue,
                        // complete — so the end-to-end latency splits into
                        // queue wait + service time, per op.
                        let dequeued = Instant::now();
                        let _resp = handle.apply(env.op);
                        let completed = Instant::now();
                        let wait = dequeued.duration_since(env.submitted);
                        let serve = completed.duration_since(dequeued);
                        wo.queue_wait.record(wait.as_nanos() as u64);
                        wo.service.record(serve.as_nanos() as u64);
                        wo.latency
                            .record(completed.duration_since(env.submitted).as_nanos() as u64);
                    } else {
                        // The untraced path: identical op application, one
                        // clock read per op, end-to-end only.
                        let _resp = handle.apply(env.op);
                        wo.latency.record(env.submitted.elapsed().as_nanos() as u64);
                    }
                    wo.applied += 1;
                    progress.bump(w);
                }
                wo
            }));
        }

        // --- online prober: for Perfect-HI backends only, sample the
        // memory representation at seeded non-barrier points while the
        // workers are mid-flight, and audit each sample for canonicality.
        // The first sample is immediate (every epoch gets at least one);
        // later samples sit behind seeded yield backoffs so they land at
        // arbitrary interleaving points rather than a fixed cadence.
        let prober_join = probe.filter(|_| cfg.online_probes > 0).map(|p| {
            let probing_done = &probing_done;
            let mut rng = SplitMix64::new(handle_seed(cfg.seed ^ 0x0b5e_9ed5, epoch));
            s.spawn(move || {
                let mut po = ProbeOut {
                    taken: 0,
                    passed: 0,
                    first_failure: None,
                };
                loop {
                    let verdict = p.sample();
                    po.taken += 1;
                    if verdict.canonical {
                        po.passed += 1;
                    } else if po.first_failure.is_none() {
                        po.first_failure = Some(verdict);
                    }
                    if po.taken >= cfg.online_probes || probing_done.load(GAUGE_ORD) {
                        return po;
                    }
                    for _ in 0..rng.below(4096) {
                        std::thread::yield_now();
                    }
                }
            })
        });

        // --- client threads: each multiplexes a contiguous slice of the
        // logical clients, round-robin, with per-client rank sampling and
        // arrival gaps.
        let threads = cfg.client_threads.clamp(1, cfg.clients);
        let mut client_joins = Vec::with_capacity(threads);
        for t in 0..threads {
            let txs: Vec<SyncSender<Envelope<S::Op>>> = txs.clone();
            let depth = &depth;
            let abort = &abort;
            let my_clients: Vec<usize> = (0..cfg.clients).filter(|c| c % threads == t).collect();
            client_joins.push(s.spawn(move || {
                let mut states: Vec<ClientState> = my_clients
                    .iter()
                    .map(|&c| ClientState {
                        rng: cfg.client_rng(epoch, c),
                        arrival: ArrivalGen::new(cfg.arrival, handle_seed(cfg.seed, c)),
                        left: cfg.client_ops(epoch_ops, c),
                    })
                    .collect();
                let (mut submitted, mut rejected, mut blocked) = (0usize, 0usize, 0usize);
                loop {
                    let mut all_done = true;
                    for cs in &mut states {
                        if cs.left == 0 {
                            continue;
                        }
                        if abort.load(GAUGE_ORD) {
                            return (submitted, rejected, blocked);
                        }
                        all_done = false;
                        cs.left -= 1;
                        for _ in 0..cs.arrival.next_gap() {
                            std::thread::yield_now();
                        }
                        let (op, w) = &table[sampler.sample(&mut cs.rng)];
                        let env = Envelope {
                            op: op.clone(),
                            submitted: Instant::now(),
                        };
                        // Gauge bumped before the send so the worker's
                        // decrement can never underflow.
                        depth[*w].fetch_add(1, GAUGE_ORD);
                        match txs[*w].try_send(env) {
                            Ok(()) => submitted += 1,
                            Err(TrySendError::Full(env)) => match cfg.backpressure {
                                Backpressure::Block => {
                                    blocked += 1;
                                    if txs[*w].send(env).is_ok() {
                                        submitted += 1;
                                    } else {
                                        depth[*w].fetch_sub(1, GAUGE_ORD);
                                        abort.store(true, GAUGE_ORD);
                                    }
                                }
                                Backpressure::Reject => {
                                    depth[*w].fetch_sub(1, GAUGE_ORD);
                                    rejected += 1;
                                }
                            },
                            Err(TrySendError::Disconnected(_)) => {
                                // The worker died (panicked); stop and let
                                // the join below surface its payload.
                                depth[*w].fetch_sub(1, GAUGE_ORD);
                                abort.store(true, GAUGE_ORD);
                            }
                        }
                    }
                    if all_done {
                        return (submitted, rejected, blocked);
                    }
                }
            }));
        }
        // Only the clients hold senders now; when they finish, the
        // channels disconnect and the workers drain out.
        drop(txs);

        let mut client_panic: Option<String> = None;
        for j in client_joins {
            match j.join() {
                Ok((submitted, rejected, blocked)) => {
                    out.submitted += submitted;
                    out.rejected += rejected;
                    out.blocked += blocked;
                }
                Err(payload) => {
                    abort.store(true, GAUGE_ORD);
                    client_panic = Some(panic_message(payload));
                }
            }
        }
        let mut worker_panic: Option<(usize, String)> = None;
        for (w, j) in worker_joins.into_iter().enumerate() {
            match j.join() {
                Ok(wo) => {
                    out.latency.merge(&wo.latency);
                    out.queue_wait.merge(&wo.queue_wait);
                    out.service.merge(&wo.service);
                    out.applied += wo.applied;
                    out.workers.push(wo);
                }
                Err(payload) => {
                    out.workers.push(WorkerOut {
                        latency: Histogram::new(),
                        queue_wait: Histogram::new(),
                        service: Histogram::new(),
                        applied: 0,
                        max_depth: 0,
                    });
                    worker_panic = Some((w, panic_message(payload)));
                }
            }
        }
        // The epoch is drained; release the prober (it may also have
        // stopped on its own after exhausting its sample budget).
        probing_done.store(true, GAUGE_ORD);
        if let Some(j) = prober_join {
            match j.join() {
                Ok(po) => out.probes = po,
                Err(payload) => {
                    if worker_panic.is_none() {
                        return Err(SoakError::Panicked {
                            worker: None,
                            message: panic_message(payload),
                        });
                    }
                }
            }
        }
        // A worker panic explains a client abort, so it wins the report.
        if let Some((w, message)) = worker_panic {
            return Err(SoakError::Panicked {
                worker: Some(w),
                message,
            });
        }
        if let Some(message) = client_panic {
            return Err(SoakError::Panicked {
                worker: None,
                message,
            });
        }
        Ok(())
    });
    verdict.map(|()| out)
}

/// Renders a panic payload the way the default hook would.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`run_soak`] with an observer invoked at every drain barrier, while
/// the object is state-quiescent (all handles dropped) and before the
/// next epoch re-splits them. This is the hook the drain-barrier tests
/// use to prove the audit point is quiet by construction.
///
/// # Errors
///
/// [`SoakError::NotCanonical`] if a barrier's HI audit fails,
/// [`SoakError::Panicked`] if a worker or client thread panics.
pub fn run_soak_with<S, O, F>(
    obj: &mut O,
    cfg: &SoakConfig,
    mut observe: F,
) -> Result<SoakReport, SoakError>
where
    S: EnumerableSpec,
    S::Op: Send + Sync,
    O: ConcurrentObject<S>,
    F: FnMut(&AuditPoint<'_>),
{
    run_soak_core(obj, cfg, &mut observe, None)
}

/// Drives `obj` through a full soak: `mid_audits + 1` epochs of sharded
/// service load with a drain-barrier HI audit after each. See the module
/// docs for the architecture.
///
/// # Errors
///
/// As [`run_soak_with`].
pub fn run_soak<S, O>(obj: &mut O, cfg: &SoakConfig) -> Result<SoakReport, SoakError>
where
    S: EnumerableSpec,
    S::Op: Send + Sync,
    O: ConcurrentObject<S>,
{
    run_soak_core(obj, cfg, &mut |_| {}, None)
}

fn run_soak_core<S, O>(
    obj: &mut O,
    cfg: &SoakConfig,
    observe: &mut dyn FnMut(&AuditPoint<'_>),
    progress: Option<&ProgressCounters>,
) -> Result<SoakReport, SoakError>
where
    S: EnumerableSpec,
    S::Op: Send + Sync,
    O: ConcurrentObject<S>,
{
    cfg.validate();
    let spec = obj.spec().clone();
    let menus = menus_for(&spec, obj.roles());
    let table = dispatch_table(&spec, &menus, cfg.seed);
    let sampler = KeySampler::new(cfg.key_dist, table.len());
    let auditable = obj.hi_level().auditable();
    let epochs = cfg.mid_audits + 1;

    // Progress counters always exist so the report's metrics carry the
    // final per-worker applied/planned snapshot; the watchdogged path
    // passes its own (shared with the watchdog) instead.
    let owned_counters;
    let counters = match progress {
        Some(p) => p,
        None => {
            owned_counters =
                ProgressCounters::new(planned_per_worker::<S>(&table, &sampler, menus.len(), cfg));
            &owned_counters
        }
    };

    let start = Instant::now();
    let mut report = SoakReport {
        ops_submitted: 0,
        ops_applied: 0,
        ops_rejected: 0,
        sends_blocked: 0,
        audits: Vec::with_capacity(epochs),
        elapsed: Duration::ZERO,
        latency: Histogram::new(),
        queue_wait: Histogram::new(),
        service: Histogram::new(),
        workers: (0..menus.len())
            .map(|w| WorkerStats {
                worker: w,
                applied: 0,
                max_queue_depth: 0,
                latency: Histogram::new(),
                queue_wait: Histogram::new(),
                service: Histogram::new(),
            })
            .collect(),
        sampled_audits: Vec::new(),
        metrics: ServiceMetrics {
            progress: counters.snapshot(),
            epochs: Vec::with_capacity(epochs),
            online: if cfg.online_probes == 0 {
                OnlineAudit::Disabled
            } else {
                // Refined to Sampled below, the first time an epoch
                // actually hands back probe samples.
                OnlineAudit::Unsupported
            },
        },
    };

    // Maintenance (online resize) totals at the last barrier, so each
    // epoch's metrics carry the delta — what *this* epoch's load paid.
    let mut maint_prev = obj.maintenance().unwrap_or_default();

    for epoch in 0..epochs {
        let epoch_ops = cfg.epoch_ops(epoch, epochs);
        let load_start = Instant::now();
        let out = run_epoch(
            obj, &menus, &table, &sampler, cfg, epoch, epoch_ops, counters,
        )?;
        let load = load_start.elapsed();
        report.ops_submitted += out.submitted;
        report.ops_rejected += out.rejected;
        report.sends_blocked += out.blocked;
        report.ops_applied += out.applied;
        report.latency.merge(&out.latency);
        report.queue_wait.merge(&out.queue_wait);
        report.service.merge(&out.service);
        for (ws, wo) in report.workers.iter_mut().zip(&out.workers) {
            ws.applied += wo.applied;
            ws.max_queue_depth = ws.max_queue_depth.max(wo.max_depth);
            ws.latency.merge(&wo.latency);
            ws.queue_wait.merge(&wo.queue_wait);
            ws.service.merge(&wo.service);
        }

        // Online probe verdicts: a failed sample on a Perfect backend is a
        // mid-flight HI violation, reported like a failed barrier audit.
        if let Some(v) = out.probes.first_failure {
            return Err(SoakError::ProbeNotCanonical {
                epoch,
                state: v.state,
                mem: v.mem,
            });
        }
        if out.probes.taken > 0 {
            report.metrics.online = OnlineAudit::Sampled;
        }

        // Drain barrier: the epoch scope has ended, so every handle is
        // dropped and the object is state-quiescent. The borrow checker
        // enforces this — `mem_snapshot()` here cannot alias a live
        // worker.
        let pause_start = Instant::now();
        let mem = obj.mem_snapshot();
        if auditable {
            // Big-domain backends offer a sampled composed audit; prefer
            // it exactly when offered — the full-image comparison stays
            // the barrier check everywhere else.
            if let Some(sample) =
                obj.sampled_audit(handle_seed(cfg.seed ^ SAMPLED_AUDIT_SALT, epoch))
            {
                if let Some(detail) = sample.failure.clone() {
                    return Err(SoakError::SampledNotCanonical { epoch, detail });
                }
                report.sampled_audits.push(sample);
            } else {
                let state = obj.abstract_state();
                let canonical = obj
                    .canonical(&state)
                    .expect("auditable HiLevel must fix a canonical form");
                if mem != canonical {
                    return Err(SoakError::NotCanonical {
                        epoch,
                        state: format!("{state:?}"),
                        mem,
                        canonical,
                    });
                }
            }
        }
        observe(&AuditPoint {
            epoch,
            applied: report.ops_applied,
            audited: auditable,
            mem: &mem,
        });
        report.audits.push(AuditRecord {
            epoch,
            applied: report.ops_applied,
            audited: auditable,
        });
        let maint_now = obj.maintenance().unwrap_or_default();
        report.metrics.epochs.push(EpochMetrics {
            epoch,
            ops_applied: out.applied,
            load,
            audit_pause: pause_start.elapsed(),
            probes: out.probes.taken,
            probes_passed: out.probes.passed,
            resizes: maint_now.resizes - maint_prev.resizes,
            resize_pause: maint_now
                .resize_pause
                .saturating_sub(maint_prev.resize_pause),
        });
        maint_prev = maint_now;
    }
    report.elapsed = start.elapsed();
    report.metrics.progress = counters.snapshot();
    Ok(report)
}

/// What the watchdogged driver thread reports before soaking: the live
/// per-worker counters the watchdog diagnoses a wedge from.
struct Preflight {
    counters: Arc<ProgressCounters>,
}

/// [`run_soak`], but un-hangable: the object is constructed and soaked
/// inside a detached driver thread and the caller waits at most
/// `cfg.deadline` for the verdict; on expiry the wedged thread is
/// abandoned and [`SoakError::Wedged`] carries the per-worker
/// [`MetricsSnapshot`]. The soak-registry path runs through this, so a
/// backend that wedges under service load fails structured in CI instead
/// of hanging the job.
///
/// # Errors
///
/// As [`run_soak`], plus [`SoakError::Wedged`] on deadline expiry and
/// [`SoakError::Panicked`] for a panicking constructor.
pub fn soak_watchdogged<S, O>(
    make: impl FnOnce() -> O + Send + 'static,
    cfg: &SoakConfig,
) -> Result<SoakReport, SoakError>
where
    S: EnumerableSpec + 'static,
    S::Op: Send + Sync,
    S::State: Send,
    O: ConcurrentObject<S>,
{
    let (pre_tx, pre_rx) = mpsc::channel::<Preflight>();
    let (done_tx, done_rx) = mpsc::channel::<Result<SoakReport, SoakError>>();
    let cfg = *cfg;
    std::thread::Builder::new()
        .name("hi-soak-watchdogged".into())
        .spawn(move || {
            let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut obj = make();
                let spec = obj.spec().clone();
                let menus = menus_for(&spec, obj.roles());
                let table = dispatch_table(&spec, &menus, cfg.seed);
                let sampler = KeySampler::new(cfg.key_dist, table.len());
                let planned = planned_per_worker::<S>(&table, &sampler, menus.len(), &cfg);
                let counters = Arc::new(ProgressCounters::new(planned));
                let _ = pre_tx.send(Preflight {
                    counters: Arc::clone(&counters),
                });
                run_soak_core(&mut obj, &cfg, &mut |_| {}, Some(&counters))
            }));
            let _ = done_tx.send(verdict.unwrap_or_else(|payload| {
                Err(SoakError::Panicked {
                    worker: None,
                    message: panic_message(payload),
                })
            }));
        })
        .expect("spawn watchdogged soak driver thread");

    let start = Instant::now();
    let pre = pre_rx.recv_timeout(cfg.deadline).ok();
    let remaining = cfg.deadline.saturating_sub(start.elapsed());
    match done_rx.recv_timeout(remaining) {
        Ok(verdict) => verdict,
        Err(mpsc::RecvTimeoutError::Disconnected) => Err(SoakError::Panicked {
            worker: None,
            message: "soak driver thread died without reporting".into(),
        }),
        Err(mpsc::RecvTimeoutError::Timeout) => Err(SoakError::Wedged {
            after: cfg.deadline,
            progress: pre.map_or(
                MetricsSnapshot {
                    handles: Vec::new(),
                },
                |p| p.counters.snapshot(),
            ),
        }),
    }
}
