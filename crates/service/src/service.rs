//! The service runner: N logical clients multiplexed over M worker
//! threads driving one [`ConcurrentObject`], with bounded ingress queues,
//! hash-sharded dispatch, per-operation latency recording, and periodic
//! drain barriers at which the object is *state-quiescent by construction*
//! so the history-independence audit can run mid-soak.
//!
//! # Architecture
//!
//! ```text
//!   logical clients (N)        ingress (bounded mpsc)      workers (M = one per handle)
//!   ┌──────────────┐  rank ┌──────────────────────┐  recv  ┌──────────────────┐
//!   │ rng + KeyDist │──────▶ sync_channel(depth) ──────────▶ handle.apply(op) │
//!   │ + ArrivalGen  │ shard └──────────────────────┘        │ latency histo    │
//!   └──────────────┘                ...                     └──────────────────┘
//!        (client threads round-robin their clients; an op for a given
//!         rank always lands on the same worker — the one whose role menu
//!         owns it, hash-picked among the eligible)
//!
//!   every epoch: clients exhaust their budget → senders drop → workers
//!   drain and exit → the thread scope ends → *all handles are dropped* →
//!   drain barrier: mem_snapshot() vs canonical(abstract_state()), then
//!   handles are re-split and the next epoch begins.
//! ```
//!
//! The drain barrier leans on the facade's contract: handles borrow the
//! object, and [`ConcurrentObject::handles`] takes `&mut self`, so the
//! audit — which needs `&mut`-level quiet access — *cannot compile* while
//! any operation is in flight. "Audit observed a non-quiescent point" is a
//! type error here, not a runtime race.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hi_api::{ConcurrentObject, MetricsSnapshot, ObjectHandle, ProgressCounters};
use hi_bench::hist::Histogram;
use hi_core::workload::{
    handle_seed, seeded_shuffle, Arrival, ArrivalGen, KeyDist, KeySampler, SplitMix64,
};
use hi_core::{menus_for, EnumerableSpec};

/// The one memory ordering of this crate: the gauges and flags here are
/// monitoring data (queue depths, abort latches), never a publication
/// channel for object state — the objects under test do their own
/// synchronization.
const GAUGE_ORD: Ordering = Ordering::Relaxed;

/// What a client does when the ingress queue of the owning worker is full.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backpressure {
    /// Wait for space: closed-loop load, every submitted operation is
    /// eventually applied, the queue wait shows up as latency.
    Block,
    /// Drop the operation and record the rejection: open-loop load
    /// shedding, the reject count shows up in the report.
    Reject,
}

/// Configuration of one soak run.
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// Logical clients (each with its own deterministic op stream).
    pub clients: usize,
    /// OS threads multiplexing the clients (clamped to `clients`).
    pub client_threads: usize,
    /// Total operations submitted across the whole soak (split evenly
    /// over epochs, then over clients).
    pub total_ops: usize,
    /// Ingress queue bound per worker.
    pub queue_depth: usize,
    /// Full-queue policy.
    pub backpressure: Backpressure,
    /// Popularity curve of the operation space.
    pub key_dist: KeyDist,
    /// Arrival process of each client.
    pub arrival: Arrival,
    /// Mid-soak drain barriers; the run has `mid_audits + 1` epochs and
    /// audits at the end of every one (so `mid_audits + 1` audit points,
    /// the last at full completion).
    pub mid_audits: usize,
    /// Workload seed: fixes every client's op stream and the rank→worker
    /// sharding.
    pub seed: u64,
    /// Wall-clock budget of a [`soak_watchdogged`] run.
    pub deadline: Duration,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            clients: 32,
            client_threads: 4,
            total_ops: 40_000,
            queue_depth: 1024,
            backpressure: Backpressure::Block,
            key_dist: KeyDist::Uniform,
            arrival: Arrival::Steady,
            mid_audits: 3,
            seed: 0x5eed,
            deadline: Duration::from_secs(120),
        }
    }
}

impl SoakConfig {
    fn validate(&self) {
        assert!(self.clients > 0, "a soak needs at least one client");
        assert!(self.queue_depth > 0, "a bounded queue needs capacity");
    }

    /// Operations of epoch `e` out of `epochs`.
    fn epoch_ops(&self, e: usize, epochs: usize) -> usize {
        self.total_ops / epochs + usize::from(e < self.total_ops % epochs)
    }

    /// Operations of client `c` within an epoch of `epoch_ops` total.
    fn client_ops(&self, epoch_ops: usize, c: usize) -> usize {
        epoch_ops / self.clients + usize::from(c < epoch_ops % self.clients)
    }

    /// The RNG of client `c` in epoch `e` — also what the watchdog's
    /// dry-run uses to precompute per-worker planned totals, so the two
    /// must never drift.
    fn client_rng(&self, e: usize, c: usize) -> SplitMix64 {
        // Epoch-salted so re-split epochs draw fresh streams.
        let epoch_seed = self.seed.wrapping_add((e as u64).wrapping_mul(0x9e37_79b9));
        SplitMix64::new(handle_seed(epoch_seed, c))
    }
}

/// One audit point of a soak: the drain barrier at the end of an epoch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AuditRecord {
    /// The epoch this barrier closed (0-based).
    pub epoch: usize,
    /// Cumulative operations applied when the barrier was reached.
    pub applied: usize,
    /// Whether the mem==canonical comparison ran (`false` only for
    /// objects whose [`hi_api::HiLevel`] fixes no canonical form).
    pub audited: bool,
}

/// What an audit observer sees at a drain barrier, while the object is
/// state-quiescent and before the next epoch begins.
#[derive(Debug)]
pub struct AuditPoint<'a> {
    /// The epoch this barrier closed (0-based).
    pub epoch: usize,
    /// Cumulative operations applied so far.
    pub applied: usize,
    /// Whether the mem==canonical comparison ran.
    pub audited: bool,
    /// The quiescent `mem(C)`.
    pub mem: &'a [u64],
}

/// Per-worker counters of one soak.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WorkerStats {
    /// The worker index (= handle index, role order).
    pub worker: usize,
    /// Operations this worker applied.
    pub applied: usize,
    /// The deepest its ingress queue ever got (sampled at dequeue).
    pub max_queue_depth: usize,
}

/// Result of a successful soak.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Operations accepted into an ingress queue.
    pub ops_submitted: usize,
    /// Operations applied by workers (== submitted unless a run is cut
    /// short).
    pub ops_applied: usize,
    /// Operations dropped by [`Backpressure::Reject`].
    pub ops_rejected: usize,
    /// Submissions that found a full queue under [`Backpressure::Block`]
    /// (the op still went through after the wait).
    pub sends_blocked: usize,
    /// Every drain barrier, in order; the last entry is the final audit.
    pub audits: Vec<AuditRecord>,
    /// Wall-clock time of the whole soak (epochs + barriers).
    pub elapsed: Duration,
    /// Submission-to-response latency of every applied op, nanoseconds.
    pub latency: Histogram,
    /// Per-worker throughput and queue-depth gauges.
    pub workers: Vec<WorkerStats>,
}

impl SoakReport {
    /// Applied throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops_applied as f64 / self.elapsed.max(Duration::from_nanos(1)).as_secs_f64()
    }
}

/// Why a soak failed.
#[derive(Clone, Debug)]
pub enum SoakError {
    /// A drain barrier found non-canonical memory: the HI guarantee broke
    /// under service load.
    NotCanonical {
        /// The epoch whose barrier failed.
        epoch: usize,
        /// The decoded abstract state, rendered.
        state: String,
        /// The observed quiescent memory.
        mem: Vec<u64>,
        /// The expected canonical representation.
        canonical: Vec<u64>,
    },
    /// A worker or client thread panicked.
    Panicked {
        /// The worker index, when a worker; `None` for a client thread or
        /// the driver itself.
        worker: Option<usize>,
        /// The rendered panic payload.
        message: String,
    },
    /// The watchdog fired: the soak did not finish within the deadline.
    /// The wedged driver thread is abandoned; this is what CI reports
    /// instead of a hang.
    Wedged {
        /// The expired deadline.
        after: Duration,
        /// Per-worker applied/planned progress at wedge time (the
        /// [`MetricsSnapshot`] the metrics API exposes).
        progress: MetricsSnapshot,
    },
}

impl fmt::Display for SoakError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoakError::NotCanonical {
                epoch,
                state,
                mem,
                canonical,
            } => write!(
                f,
                "drain barrier of epoch {epoch}: quiescent memory of state {state} is {mem:?}, \
                 expected canonical {canonical:?}"
            ),
            SoakError::Panicked { worker, message } => match worker {
                Some(w) => write!(f, "worker {w} panicked: {message}"),
                None => write!(f, "client/driver thread panicked: {message}"),
            },
            SoakError::Wedged { after, progress } => {
                write!(
                    f,
                    "soak wedged: not drained after {after:?}; progress {}/{} ops;",
                    progress.applied(),
                    progress.planned()
                )?;
                for hp in progress.stalled() {
                    write!(f, " worker {} ({}/{})", hp.handle, hp.applied, hp.planned)?;
                }
                Ok(())
            }
        }
    }
}

impl Error for SoakError {}

/// An operation in flight from a client to its worker, stamped at
/// submission so the recorded latency covers queue wait plus service.
struct Envelope<Op> {
    op: Op,
    submitted: Instant,
}

/// The precomputed dispatch table: entry `r` is the operation of rank `r`
/// (after a seeded shuffle of the op space) and the worker that owns it.
/// A given operation always lands on the same worker — required for
/// role-restricted ops, and what makes a hot rank a hot *shard* for the
/// symmetric ones.
fn dispatch_table<S: EnumerableSpec>(
    spec: &S,
    menus: &[Vec<S::Op>],
    seed: u64,
) -> Vec<(S::Op, usize)> {
    let mut ops = spec.ops();
    seeded_shuffle(&mut ops, seed);
    ops.into_iter()
        .enumerate()
        .map(|(r, op)| {
            let eligible: Vec<usize> = menus
                .iter()
                .enumerate()
                .filter(|(_, menu)| menu.contains(&op))
                .map(|(w, _)| w)
                .collect();
            assert!(
                !eligible.is_empty(),
                "no worker role owns operation {op:?}; menus_for() should cover every op"
            );
            let pick = SplitMix64::new(handle_seed(seed, r)).below(eligible.len());
            (op, eligible[pick])
        })
        .collect()
}

/// Dry-runs every client's sampling (no object, no threads) to compute how
/// many operations the soak will route to each worker — the `planned`
/// side of the watchdog's [`ProgressCounters`]. Exact under
/// [`Backpressure::Block`]; an upper bound under `Reject`.
fn planned_per_worker<S: EnumerableSpec>(
    table: &[(S::Op, usize)],
    sampler: &KeySampler,
    workers: usize,
    cfg: &SoakConfig,
) -> Vec<usize> {
    let epochs = cfg.mid_audits + 1;
    let mut planned = vec![0usize; workers];
    for e in 0..epochs {
        let epoch_ops = cfg.epoch_ops(e, epochs);
        for c in 0..cfg.clients {
            let mut rng = cfg.client_rng(e, c);
            for _ in 0..cfg.client_ops(epoch_ops, c) {
                planned[table[sampler.sample(&mut rng)].1] += 1;
            }
        }
    }
    planned
}

/// What one epoch hands back to the soak loop.
struct EpochOut {
    submitted: usize,
    rejected: usize,
    blocked: usize,
    applied: usize,
    latency: Histogram,
    worker_applied: Vec<usize>,
    worker_max_depth: Vec<usize>,
}

/// Per-client submission state within an epoch.
struct ClientState {
    rng: SplitMix64,
    arrival: ArrivalGen,
    left: usize,
}

/// Runs one epoch: split handles, pump `epoch_ops` operations through the
/// sharded queues, drain, and return with every handle dropped.
#[allow(clippy::too_many_arguments)]
fn run_epoch<S, O>(
    obj: &mut O,
    menus: &[Vec<S::Op>],
    table: &[(S::Op, usize)],
    sampler: &KeySampler,
    cfg: &SoakConfig,
    epoch: usize,
    epoch_ops: usize,
    progress: Option<&ProgressCounters>,
) -> Result<EpochOut, SoakError>
where
    S: EnumerableSpec,
    S::Op: Send + Sync,
    O: ConcurrentObject<S>,
{
    let handles = obj.handles();
    assert_eq!(
        handles.len(),
        menus.len(),
        "handles() disagrees with the declared role discipline"
    );
    let workers = handles.len();
    let mut txs = Vec::with_capacity(workers);
    let mut rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = mpsc::sync_channel::<Envelope<S::Op>>(cfg.queue_depth);
        txs.push(tx);
        rxs.push(rx);
    }
    let depth: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
    let abort = AtomicBool::new(false);

    let mut out = EpochOut {
        submitted: 0,
        rejected: 0,
        blocked: 0,
        applied: 0,
        latency: Histogram::new(),
        worker_applied: vec![0; workers],
        worker_max_depth: vec![0; workers],
    };

    let verdict: Result<(), SoakError> = std::thread::scope(|s| {
        // --- workers: one per handle, draining their shard until every
        // client sender is gone.
        let mut worker_joins = Vec::with_capacity(workers);
        for ((w, mut handle), rx) in handles.into_iter().enumerate().zip(rxs) {
            assert!(
                menus[w].iter().all(|op| handle.supports(op)),
                "worker {w} does not support its role menu"
            );
            let depth = &depth[w];
            worker_joins.push(s.spawn(move || {
                let mut hist = Histogram::new();
                let mut applied = 0usize;
                let mut max_depth = 0usize;
                while let Ok(env) = rx.recv() {
                    // Gauge read at dequeue: depth including this op.
                    max_depth = max_depth.max(depth.fetch_sub(1, GAUGE_ORD));
                    let _resp = handle.apply(env.op);
                    hist.record(env.submitted.elapsed().as_nanos() as u64);
                    applied += 1;
                    if let Some(p) = progress {
                        p.bump(w);
                    }
                }
                (hist, applied, max_depth)
            }));
        }

        // --- client threads: each multiplexes a contiguous slice of the
        // logical clients, round-robin, with per-client rank sampling and
        // arrival gaps.
        let threads = cfg.client_threads.clamp(1, cfg.clients);
        let mut client_joins = Vec::with_capacity(threads);
        for t in 0..threads {
            let txs: Vec<SyncSender<Envelope<S::Op>>> = txs.clone();
            let depth = &depth;
            let abort = &abort;
            let my_clients: Vec<usize> = (0..cfg.clients).filter(|c| c % threads == t).collect();
            client_joins.push(s.spawn(move || {
                let mut states: Vec<ClientState> = my_clients
                    .iter()
                    .map(|&c| ClientState {
                        rng: cfg.client_rng(epoch, c),
                        arrival: ArrivalGen::new(cfg.arrival, handle_seed(cfg.seed, c)),
                        left: cfg.client_ops(epoch_ops, c),
                    })
                    .collect();
                let (mut submitted, mut rejected, mut blocked) = (0usize, 0usize, 0usize);
                loop {
                    let mut all_done = true;
                    for cs in &mut states {
                        if cs.left == 0 {
                            continue;
                        }
                        if abort.load(GAUGE_ORD) {
                            return (submitted, rejected, blocked);
                        }
                        all_done = false;
                        cs.left -= 1;
                        for _ in 0..cs.arrival.next_gap() {
                            std::thread::yield_now();
                        }
                        let (op, w) = &table[sampler.sample(&mut cs.rng)];
                        let env = Envelope {
                            op: op.clone(),
                            submitted: Instant::now(),
                        };
                        // Gauge bumped before the send so the worker's
                        // decrement can never underflow.
                        depth[*w].fetch_add(1, GAUGE_ORD);
                        match txs[*w].try_send(env) {
                            Ok(()) => submitted += 1,
                            Err(TrySendError::Full(env)) => match cfg.backpressure {
                                Backpressure::Block => {
                                    blocked += 1;
                                    if txs[*w].send(env).is_ok() {
                                        submitted += 1;
                                    } else {
                                        depth[*w].fetch_sub(1, GAUGE_ORD);
                                        abort.store(true, GAUGE_ORD);
                                    }
                                }
                                Backpressure::Reject => {
                                    depth[*w].fetch_sub(1, GAUGE_ORD);
                                    rejected += 1;
                                }
                            },
                            Err(TrySendError::Disconnected(_)) => {
                                // The worker died (panicked); stop and let
                                // the join below surface its payload.
                                depth[*w].fetch_sub(1, GAUGE_ORD);
                                abort.store(true, GAUGE_ORD);
                            }
                        }
                    }
                    if all_done {
                        return (submitted, rejected, blocked);
                    }
                }
            }));
        }
        // Only the clients hold senders now; when they finish, the
        // channels disconnect and the workers drain out.
        drop(txs);

        let mut client_panic: Option<String> = None;
        for j in client_joins {
            match j.join() {
                Ok((submitted, rejected, blocked)) => {
                    out.submitted += submitted;
                    out.rejected += rejected;
                    out.blocked += blocked;
                }
                Err(payload) => {
                    abort.store(true, GAUGE_ORD);
                    client_panic = Some(panic_message(payload));
                }
            }
        }
        let mut worker_panic: Option<(usize, String)> = None;
        for (w, j) in worker_joins.into_iter().enumerate() {
            match j.join() {
                Ok((hist, applied, max_depth)) => {
                    out.latency.merge(&hist);
                    out.applied += applied;
                    out.worker_applied[w] = applied;
                    out.worker_max_depth[w] = max_depth;
                }
                Err(payload) => worker_panic = Some((w, panic_message(payload))),
            }
        }
        // A worker panic explains a client abort, so it wins the report.
        if let Some((w, message)) = worker_panic {
            return Err(SoakError::Panicked {
                worker: Some(w),
                message,
            });
        }
        if let Some(message) = client_panic {
            return Err(SoakError::Panicked {
                worker: None,
                message,
            });
        }
        Ok(())
    });
    verdict.map(|()| out)
}

/// Renders a panic payload the way the default hook would.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`run_soak`] with an observer invoked at every drain barrier, while
/// the object is state-quiescent (all handles dropped) and before the
/// next epoch re-splits them. This is the hook the drain-barrier tests
/// use to prove the audit point is quiet by construction.
///
/// # Errors
///
/// [`SoakError::NotCanonical`] if a barrier's HI audit fails,
/// [`SoakError::Panicked`] if a worker or client thread panics.
pub fn run_soak_with<S, O, F>(
    obj: &mut O,
    cfg: &SoakConfig,
    mut observe: F,
) -> Result<SoakReport, SoakError>
where
    S: EnumerableSpec,
    S::Op: Send + Sync,
    O: ConcurrentObject<S>,
    F: FnMut(&AuditPoint<'_>),
{
    run_soak_core(obj, cfg, &mut observe, None)
}

/// Drives `obj` through a full soak: `mid_audits + 1` epochs of sharded
/// service load with a drain-barrier HI audit after each. See the module
/// docs for the architecture.
///
/// # Errors
///
/// As [`run_soak_with`].
pub fn run_soak<S, O>(obj: &mut O, cfg: &SoakConfig) -> Result<SoakReport, SoakError>
where
    S: EnumerableSpec,
    S::Op: Send + Sync,
    O: ConcurrentObject<S>,
{
    run_soak_core(obj, cfg, &mut |_| {}, None)
}

fn run_soak_core<S, O>(
    obj: &mut O,
    cfg: &SoakConfig,
    observe: &mut dyn FnMut(&AuditPoint<'_>),
    progress: Option<&ProgressCounters>,
) -> Result<SoakReport, SoakError>
where
    S: EnumerableSpec,
    S::Op: Send + Sync,
    O: ConcurrentObject<S>,
{
    cfg.validate();
    let spec = obj.spec().clone();
    let menus = menus_for(&spec, obj.roles());
    let table = dispatch_table(&spec, &menus, cfg.seed);
    let sampler = KeySampler::new(cfg.key_dist, table.len());
    let auditable = obj.hi_level().auditable();
    let epochs = cfg.mid_audits + 1;

    let start = Instant::now();
    let mut report = SoakReport {
        ops_submitted: 0,
        ops_applied: 0,
        ops_rejected: 0,
        sends_blocked: 0,
        audits: Vec::with_capacity(epochs),
        elapsed: Duration::ZERO,
        latency: Histogram::new(),
        workers: (0..menus.len())
            .map(|w| WorkerStats {
                worker: w,
                applied: 0,
                max_queue_depth: 0,
            })
            .collect(),
    };

    for epoch in 0..epochs {
        let epoch_ops = cfg.epoch_ops(epoch, epochs);
        let out = run_epoch(
            obj, &menus, &table, &sampler, cfg, epoch, epoch_ops, progress,
        )?;
        report.ops_submitted += out.submitted;
        report.ops_rejected += out.rejected;
        report.sends_blocked += out.blocked;
        report.ops_applied += out.applied;
        report.latency.merge(&out.latency);
        for (ws, (&applied, &depth)) in report
            .workers
            .iter_mut()
            .zip(out.worker_applied.iter().zip(&out.worker_max_depth))
        {
            ws.applied += applied;
            ws.max_queue_depth = ws.max_queue_depth.max(depth);
        }

        // Drain barrier: the epoch scope has ended, so every handle is
        // dropped and the object is state-quiescent. The borrow checker
        // enforces this — `mem_snapshot()` here cannot alias a live
        // worker.
        let mem = obj.mem_snapshot();
        if auditable {
            let state = obj.abstract_state();
            let canonical = obj
                .canonical(&state)
                .expect("auditable HiLevel must fix a canonical form");
            if mem != canonical {
                return Err(SoakError::NotCanonical {
                    epoch,
                    state: format!("{state:?}"),
                    mem,
                    canonical,
                });
            }
        }
        observe(&AuditPoint {
            epoch,
            applied: report.ops_applied,
            audited: auditable,
            mem: &mem,
        });
        report.audits.push(AuditRecord {
            epoch,
            applied: report.ops_applied,
            audited: auditable,
        });
    }
    report.elapsed = start.elapsed();
    Ok(report)
}

/// What the watchdogged driver thread reports before soaking: the live
/// per-worker counters the watchdog diagnoses a wedge from.
struct Preflight {
    counters: Arc<ProgressCounters>,
}

/// [`run_soak`], but un-hangable: the object is constructed and soaked
/// inside a detached driver thread and the caller waits at most
/// `cfg.deadline` for the verdict; on expiry the wedged thread is
/// abandoned and [`SoakError::Wedged`] carries the per-worker
/// [`MetricsSnapshot`]. The soak-registry path runs through this, so a
/// backend that wedges under service load fails structured in CI instead
/// of hanging the job.
///
/// # Errors
///
/// As [`run_soak`], plus [`SoakError::Wedged`] on deadline expiry and
/// [`SoakError::Panicked`] for a panicking constructor.
pub fn soak_watchdogged<S, O>(
    make: impl FnOnce() -> O + Send + 'static,
    cfg: &SoakConfig,
) -> Result<SoakReport, SoakError>
where
    S: EnumerableSpec + 'static,
    S::Op: Send + Sync,
    S::State: Send,
    O: ConcurrentObject<S>,
{
    let (pre_tx, pre_rx) = mpsc::channel::<Preflight>();
    let (done_tx, done_rx) = mpsc::channel::<Result<SoakReport, SoakError>>();
    let cfg = *cfg;
    std::thread::Builder::new()
        .name("hi-soak-watchdogged".into())
        .spawn(move || {
            let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut obj = make();
                let spec = obj.spec().clone();
                let menus = menus_for(&spec, obj.roles());
                let table = dispatch_table(&spec, &menus, cfg.seed);
                let sampler = KeySampler::new(cfg.key_dist, table.len());
                let planned = planned_per_worker::<S>(&table, &sampler, menus.len(), &cfg);
                let counters = Arc::new(ProgressCounters::new(planned));
                let _ = pre_tx.send(Preflight {
                    counters: Arc::clone(&counters),
                });
                run_soak_core(&mut obj, &cfg, &mut |_| {}, Some(&counters))
            }));
            let _ = done_tx.send(verdict.unwrap_or_else(|payload| {
                Err(SoakError::Panicked {
                    worker: None,
                    message: panic_message(payload),
                })
            }));
        })
        .expect("spawn watchdogged soak driver thread");

    let start = Instant::now();
    let pre = pre_rx.recv_timeout(cfg.deadline).ok();
    let remaining = cfg.deadline.saturating_sub(start.elapsed());
    match done_rx.recv_timeout(remaining) {
        Ok(verdict) => verdict,
        Err(mpsc::RecvTimeoutError::Disconnected) => Err(SoakError::Panicked {
            worker: None,
            message: "soak driver thread died without reporting".into(),
        }),
        Err(mpsc::RecvTimeoutError::Timeout) => Err(SoakError::Wedged {
            after: cfg.deadline,
            progress: pre.map_or(
                MetricsSnapshot {
                    handles: Vec::new(),
                },
                |p| p.counters.snapshot(),
            ),
        }),
    }
}
