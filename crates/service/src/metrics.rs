//! Structured service metrics: where a soak's wall-clock went and what the
//! online observers saw, built on the [`MetricsSnapshot`] progress API the
//! watchdog already exposes.
//!
//! The soak loop's time splits into *load* phases (handles live, traffic
//! flowing) and *audit pauses* (drain barriers: handles dropped, the
//! `mem == canonical` comparison running). PR 8 smeared the pauses into one
//! end-to-end wall-clock; this module accounts for them per epoch, so audit
//! cost is a number in the report instead of unattributable tail noise, and
//! throughput can be stated both gross and audit-excluded.

use std::time::Duration;

use hi_api::MetricsSnapshot;

/// Whether a soak ran online (non-barrier) HI probes, and why not if not.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OnlineAudit {
    /// The backend is [`hi_api::HiLevel::Perfect`] and handed out an
    /// [`hi_api::OnlineProbe`]; a prober thread sampled it at seeded
    /// non-barrier points while operations were in flight.
    Sampled,
    /// The backend declined the probe — the honest outcome for
    /// state-quiescent and weaker HI levels, whose memory is only fixed at
    /// the drain barriers.
    Unsupported,
    /// The caller disabled probing (`online_probes: 0` in the config).
    Disabled,
}

/// Per-epoch timing and observation counters of one soak.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EpochMetrics {
    /// The epoch index (0-based).
    pub epoch: usize,
    /// Operations applied within this epoch.
    pub ops_applied: usize,
    /// The load phase: handles split, traffic pumped, queues drained.
    pub load: Duration,
    /// The drain-barrier pause that closed this epoch: `mem_snapshot`,
    /// the HI audit, and the observer callback.
    pub audit_pause: Duration,
    /// Online HI probe samples taken during this epoch's load phase.
    pub probes: usize,
    /// How many of them found canonical memory.
    pub probes_passed: usize,
    /// Online capacity migrations the backend performed during this
    /// epoch's load phase (zero for backends without maintenance).
    pub resizes: u64,
    /// Wall time operations spent inside those migrations — maintenance
    /// cost attributed to this epoch, not smeared into tail latency.
    pub resize_pause: Duration,
}

/// The structured metrics snapshot of a finished soak: the per-worker
/// progress counters (the same [`MetricsSnapshot`] the watchdog reads
/// live), per-epoch wall-clock attribution, and the online-audit ledger.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ServiceMetrics {
    /// Final per-worker applied/planned counters. Planned counts come from
    /// the driver's dry-run of every client's sampling — exact under
    /// [`crate::Backpressure::Block`], an upper bound under `Reject`
    /// (rejected operations never reach their worker).
    pub progress: MetricsSnapshot,
    /// One entry per epoch, in order.
    pub epochs: Vec<EpochMetrics>,
    /// Whether online probes ran, were unsupported, or were disabled.
    pub online: OnlineAudit,
}

impl ServiceMetrics {
    /// Total time spent inside drain-barrier audits across all epochs.
    pub fn audit_pause_total(&self) -> Duration {
        self.epochs.iter().map(|e| e.audit_pause).sum()
    }

    /// Total time spent in load phases (epoch durations minus barriers).
    pub fn load_total(&self) -> Duration {
        self.epochs.iter().map(|e| e.load).sum()
    }

    /// Online probe samples taken across all epochs.
    pub fn probes(&self) -> usize {
        self.epochs.iter().map(|e| e.probes).sum()
    }

    /// Online probe samples that found canonical memory.
    pub fn probes_passed(&self) -> usize {
        self.epochs.iter().map(|e| e.probes_passed).sum()
    }

    /// Online capacity migrations across all epochs.
    pub fn resizes(&self) -> u64 {
        self.epochs.iter().map(|e| e.resizes).sum()
    }

    /// Total time operations spent inside migrations across all epochs.
    pub fn resize_pause_total(&self) -> Duration {
        self.epochs.iter().map(|e| e.resize_pause).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> ServiceMetrics {
        ServiceMetrics {
            progress: MetricsSnapshot {
                handles: Vec::new(),
            },
            epochs: vec![
                EpochMetrics {
                    epoch: 0,
                    ops_applied: 10,
                    load: Duration::from_millis(4),
                    audit_pause: Duration::from_micros(30),
                    probes: 3,
                    probes_passed: 3,
                    resizes: 2,
                    resize_pause: Duration::from_micros(15),
                },
                EpochMetrics {
                    epoch: 1,
                    ops_applied: 10,
                    load: Duration::from_millis(6),
                    audit_pause: Duration::from_micros(70),
                    probes: 2,
                    probes_passed: 1,
                    resizes: 1,
                    resize_pause: Duration::from_micros(5),
                },
            ],
            online: OnlineAudit::Sampled,
        }
    }

    #[test]
    fn totals_sum_over_epochs() {
        let m = metrics();
        assert_eq!(m.audit_pause_total(), Duration::from_micros(100));
        assert_eq!(m.load_total(), Duration::from_millis(10));
        assert_eq!(m.probes(), 5);
        assert_eq!(m.probes_passed(), 4);
        assert_eq!(m.resizes(), 3);
        assert_eq!(m.resize_pause_total(), Duration::from_micros(20));
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = ServiceMetrics {
            progress: MetricsSnapshot {
                handles: Vec::new(),
            },
            epochs: Vec::new(),
            online: OnlineAudit::Disabled,
        };
        assert_eq!(m.audit_pause_total(), Duration::ZERO);
        assert_eq!(m.probes(), 0);
        assert_eq!(m.resizes(), 0);
        assert_eq!(m.resize_pause_total(), Duration::ZERO);
    }
}
