//! The soak registry: named heavy-traffic scenarios over the workspace's
//! [`ConcurrentObject`] backends, each pairing an object with a popularity
//! curve ([`KeyDist`]) and an arrival process ([`Arrival`]) and running
//! through the watchdogged soak driver — so the service-layer suites, the
//! `service_latency` bench and the CI soak job all iterate one list.

use hi_api::adapters::{
    HashTableObject, HiSetObject, LlscObject, QueueObject, ShardedTableObject, UniversalObject,
};
use hi_api::ConcurrentObject;
use hi_core::objects::{
    BigHashSetSpec, BoundedQueueSpec, CounterSpec, HashSetSpec, MultiRegisterSpec, SetSpec,
};
use hi_core::{Arrival, EnumerableSpec, KeyDist};
use hi_llsc::RLlscSpec;

use crate::service::{soak_watchdogged, Backpressure, SoakConfig, SoakError, SoakReport};

/// The monomorphic soak runner of one scenario (captures only the entry's
/// constructor, a fn pointer).
type SoakRunner = Box<dyn Fn(&SoakConfig) -> Result<SoakReport, SoakError> + Send + Sync>;

/// One named soak scenario: an object constructor plus the load shape it
/// is soaked under. The scenario's distribution and arrival override
/// whatever the caller's [`SoakConfig`] carries — the load shape is part
/// of the scenario's identity, everything else (op counts, queue depth,
/// seed, deadline) is the caller's.
pub struct SoakScenario {
    /// Stable name, `soak/family-shape` style (e.g. `"soak/hashtable-zipf"`).
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// The popularity curve this scenario soaks under.
    pub key_dist: KeyDist,
    /// The arrival process of every client.
    pub arrival: Arrival,
    /// Scenario-fixed full-queue policy; `None` defers to the caller's
    /// config. Set (via [`SoakScenario::shedding`]) for scenarios whose
    /// identity *is* the load-shedding path.
    pub backpressure: Option<Backpressure>,
    /// Scenario-fixed ingress queue bound; `None` defers to the caller's
    /// config. Paired with [`Backpressure::Reject`] to guarantee real
    /// queue pressure at any op count.
    pub queue_depth: Option<usize>,
    run: SoakRunner,
}

impl SoakScenario {
    /// Declares a soak scenario from its shared data: the threaded
    /// constructor and the load shape. The runner goes through
    /// [`soak_watchdogged`], so a wedged backend resolves to a structured
    /// [`SoakError::Wedged`] within the config's deadline instead of
    /// hanging the suite.
    pub fn of<S, T>(
        name: &'static str,
        about: &'static str,
        key_dist: KeyDist,
        arrival: Arrival,
        threaded: fn() -> T,
    ) -> SoakScenario
    where
        S: EnumerableSpec + 'static,
        S::Op: Send + Sync,
        S::State: Send,
        T: ConcurrentObject<S> + 'static,
    {
        SoakScenario {
            name,
            about,
            key_dist,
            arrival,
            backpressure: None,
            queue_depth: None,
            run: Box::new(move |cfg| soak_watchdogged(threaded, cfg)),
        }
    }

    /// Fixes the scenario to open-loop load shedding: [`Backpressure::
    /// Reject`] behind a queue of the given depth, regardless of the
    /// caller's config. A shallow depth in front of a slow object makes
    /// rejection a certainty under load, so the reject path is exercised
    /// (and its accounting auditable) in every run, not just unlucky ones.
    #[must_use]
    pub fn shedding(mut self, queue_depth: usize) -> SoakScenario {
        self.backpressure = Some(Backpressure::Reject);
        self.queue_depth = Some(queue_depth);
        self
    }

    /// Soaks the scenario's object under its load shape, taking op counts,
    /// audit cadence, seed and deadline from `cfg`. The scenario's own
    /// `key_dist`/`arrival` — and, when fixed, `backpressure`/`queue_depth`
    /// — override the caller's: the load shape is part of the scenario's
    /// identity.
    ///
    /// # Errors
    ///
    /// Any [`SoakError`] from the underlying [`soak_watchdogged`] run.
    pub fn run(&self, cfg: &SoakConfig) -> Result<SoakReport, SoakError> {
        let cfg = SoakConfig {
            key_dist: self.key_dist,
            arrival: self.arrival,
            backpressure: self.backpressure.unwrap_or(cfg.backpressure),
            queue_depth: self.queue_depth.unwrap_or(cfg.queue_depth),
            ..*cfg
        };
        (self.run)(&cfg)
    }
}

// ---------------------------------------------------------------------------
// Scenario parameters. Larger than the conformance registry's: a soak wants
// a key space wide enough that Zipfian skew means something, and hash-table
// capacity stays above the spec's key count (the never-full invariant).
// ---------------------------------------------------------------------------

const SOAK_HT_T: u32 = 16;
const SOAK_HT_CAP: usize = 29;
const SOAK_HT_N: usize = 4;
const SOAK_SET_T: u32 = 24;
const SOAK_SET_N: usize = 4;
const SOAK_QUEUE_T: u32 = 3;
const SOAK_QUEUE_CAP: usize = 6;
const SOAK_UCOUNTER_N: usize = 3;
const SOAK_UREG_K: u64 = 8;
const SOAK_UREG_N: usize = 2;
const SOAK_LLSC_V: u64 = 16;
const SOAK_LLSC_N: usize = 4;
/// Queue bound of the load-shedding scenario: shallow enough that the slow
/// universal counter's ingress overflows under any client count, so the
/// reject path sees real traffic in every run.
const SOAK_REJECT_DEPTH: usize = 4;
/// The big-domain sharded scenarios: a ≥1M-key domain (so the sampled
/// barrier audit, not the full-image comparison, is what certifies HI) and
/// a smaller uniform variant. `base = 2` keeps every shard's first inserts
/// crossing capacity boundaries, so online resizes happen mid-epoch at any
/// op count.
const SOAK_SHARD_T: u32 = 1 << 20;
const SOAK_SHARD_S: usize = 8;
const SOAK_SHARD_U_T: u32 = 1 << 16;
const SOAK_SHARD_U_S: usize = 4;
const SOAK_SHARD_BASE: usize = 2;
const SOAK_SHARD_N: usize = 3;

/// All registered soak scenarios: every object family the acceptance bar
/// names (the HI hash table under Zipfian skew, the universal
/// construction, the set, the positional queue) under the three load
/// shapes (uniform / Zipfian / bursty).
pub fn soak_registry() -> Vec<SoakScenario> {
    vec![
        SoakScenario::of(
            "soak/hashtable-zipf",
            "Robin Hood HI hash table under Zipfian key skew: hot ranks hammer hot slots",
            KeyDist::Zipfian { theta: 1.1 },
            Arrival::Steady,
            || HashTableObject::new(HashSetSpec::new(SOAK_HT_T), SOAK_HT_CAP, SOAK_HT_N),
        ),
        SoakScenario::of(
            "soak/hashtable-uniform",
            "the same table under uniform load: the skew-free baseline",
            KeyDist::Uniform,
            Arrival::Steady,
            || HashTableObject::new(HashSetSpec::new(SOAK_HT_T), SOAK_HT_CAP, SOAK_HT_N),
        ),
        SoakScenario::of(
            "soak/set-zipf",
            "§5.1 perfect-HI set under mild Zipfian skew, four symmetric roles",
            KeyDist::Zipfian { theta: 0.9 },
            Arrival::Steady,
            || HiSetObject::new(SetSpec::new(SOAK_SET_T), SOAK_SET_N),
        ),
        SoakScenario::of(
            "soak/queue-swsr-bursty",
            "positional HI queue under bursty arrivals: on/off duty-cycle per client",
            KeyDist::Uniform,
            Arrival::Bursty { on: 64, off: 16 },
            || QueueObject::new(BoundedQueueSpec::new(SOAK_QUEUE_T, SOAK_QUEUE_CAP)),
        ),
        SoakScenario::of(
            "soak/universal-counter-bursty",
            "Algorithm 5 over the bounded counter under bursty arrivals",
            KeyDist::Uniform,
            Arrival::Bursty { on: 32, off: 8 },
            || UniversalObject::new(CounterSpec::new(-300, 300, 0), SOAK_UCOUNTER_N),
        ),
        SoakScenario::of(
            "soak/universal-register-zipf",
            "Algorithm 5 over a multi-valued register under Zipfian op skew",
            KeyDist::Zipfian { theta: 1.0 },
            Arrival::Steady,
            || UniversalObject::new(MultiRegisterSpec::new(SOAK_UREG_K, 1), SOAK_UREG_N),
        ),
        SoakScenario::of(
            "soak/universal-counter-reject",
            "the universal counter behind a shallow shedding queue: the reject path under \
             guaranteed pressure",
            KeyDist::Uniform,
            Arrival::Steady,
            || UniversalObject::new(CounterSpec::new(-300, 300, 0), SOAK_UCOUNTER_N),
        )
        .shedding(SOAK_REJECT_DEPTH),
        SoakScenario::of(
            "soak/sharded-zipf-1m",
            "sharded table-of-tables over a 2^20-key domain under Zipfian skew: online \
             resizes mid-epoch, composed per-shard sampled audits at every barrier",
            KeyDist::Zipfian { theta: 1.05 },
            Arrival::Steady,
            || {
                ShardedTableObject::new(
                    BigHashSetSpec::new(SOAK_SHARD_T),
                    SOAK_SHARD_S,
                    SOAK_SHARD_BASE,
                    SOAK_SHARD_N,
                )
            },
        ),
        SoakScenario::of(
            "soak/sharded-uniform",
            "the sharded table over a 2^16-key domain under uniform load: every shard \
             grows in step, resizes spread evenly",
            KeyDist::Uniform,
            Arrival::Steady,
            || {
                ShardedTableObject::new(
                    BigHashSetSpec::new(SOAK_SHARD_U_T),
                    SOAK_SHARD_U_S,
                    SOAK_SHARD_BASE,
                    SOAK_SHARD_N,
                )
            },
        ),
        SoakScenario::of(
            "soak/llsc-zipf",
            "Algorithm 6's packed releasable LL/SC word under Zipfian op skew — the second \
             perfect-HI backend, so online probes sample it mid-flight",
            KeyDist::Zipfian { theta: 1.0 },
            Arrival::Steady,
            || LlscObject::new(RLlscSpec::new(SOAK_LLSC_V, 0, SOAK_LLSC_N)),
        ),
    ]
}

/// Looks up a soak scenario by name.
pub fn soak_scenario(name: &str) -> Option<SoakScenario> {
    soak_registry().into_iter().find(|s| s.name == name)
}

/// How hard a soak run leans on the registry: the standing CI/bench
/// configuration, or the `HI_SOAK_PROFILE=long` overnight profile that
/// scales op counts ~50× and audits proportionally more epochs. The knob
/// is explicit — callers read the environment once
/// ([`SoakProfile::from_env`]) and [`apply`](SoakProfile::apply) the
/// result — so nothing in the harness consults the environment behind the
/// caller's back, and tests can exercise `Long` directly on tiny configs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SoakProfile {
    /// The caller's config as-is: the CI and bench default.
    #[default]
    Default,
    /// The long-soak profile: ~50× the operations, ~5× the drain
    /// barriers, 10× the deadline. Selected by `HI_SOAK_PROFILE=long`.
    Long,
}

impl SoakProfile {
    /// Reads `HI_SOAK_PROFILE` from the environment: `long` (any case)
    /// selects [`SoakProfile::Long`], anything else — including unset —
    /// the default.
    pub fn from_env() -> SoakProfile {
        match std::env::var("HI_SOAK_PROFILE") {
            Ok(v) if v.eq_ignore_ascii_case("long") => SoakProfile::Long,
            _ => SoakProfile::Default,
        }
    }

    /// Scales `cfg` to this profile. [`SoakProfile::Default`] returns it
    /// unchanged; [`SoakProfile::Long`] multiplies the op budget ~50×,
    /// audits ~5× as many epochs, and stretches the watchdog deadline to
    /// match.
    #[must_use]
    pub fn apply(self, cfg: &SoakConfig) -> SoakConfig {
        match self {
            SoakProfile::Default => *cfg,
            SoakProfile::Long => SoakConfig {
                total_ops: cfg.total_ops.saturating_mul(50),
                mid_audits: cfg.mid_audits.saturating_mul(5),
                deadline: cfg.deadline.saturating_mul(10),
                ..*cfg
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::run_soak;
    use hi_api::HiSetObject;
    use std::time::Duration;

    #[test]
    fn long_profile_scales_the_knobs_that_matter() {
        let base = SoakConfig {
            total_ops: 40,
            mid_audits: 2,
            deadline: Duration::from_secs(30),
            ..SoakConfig::default()
        };
        assert_eq!(SoakProfile::Default.apply(&base).total_ops, 40);
        let long = SoakProfile::Long.apply(&base);
        assert_eq!(long.total_ops, 2_000);
        assert_eq!(long.mid_audits, 10);
        assert_eq!(long.deadline, Duration::from_secs(300));
        assert_eq!(long.clients, base.clients, "load shape is untouched");
        assert_eq!(long.seed, base.seed);
    }

    #[test]
    fn long_profile_drives_a_real_soak() {
        // The profile applied to a deliberately tiny base config: the
        // scaled run stays cheap but proves `Long` produces a config the
        // harness accepts end to end (the CI-affordable stand-in for the
        // overnight HI_SOAK_PROFILE=long run).
        let tiny = SoakConfig {
            total_ops: 8,
            clients: 4,
            mid_audits: 1,
            ..SoakConfig::default()
        };
        let cfg = SoakProfile::Long.apply(&tiny);
        let mut obj = HiSetObject::new(hi_core::objects::SetSpec::new(8), 2);
        let report = run_soak(&mut obj, &cfg).unwrap();
        assert_eq!(report.ops_applied, 400);
        assert_eq!(report.audits.len(), 6, "5 mid barriers + the final one");
    }
}
