//! Tail latency of every soak-registry scenario under heavy service load,
//! emitted as a machine-readable `BENCH_service_latency.json` at the
//! workspace root (revision-keyed, like the throughput bench).
//!
//! Each scenario soaks its object through `HI_SOAK_OPS` operations
//! (default one million) of sharded client traffic with mid-soak
//! drain-barrier HI audits, and records the submission-to-response
//! latency distribution (p50/p90/p99/p999/max) from the log-scale
//! histogram, the span attribution (queue-wait and service-time
//! quantiles), gross and audit-excluded throughput, the barrier audit
//! count, and the online (mid-flight) HI probe counts on Perfect-HI
//! backends. The committed JSON is the baseline the CI `bench-delta`
//! job diffs fresh runs against (`hi_bench::delta`).
//!
//! ```sh
//! cargo bench --bench service_latency                 # 1M ops/scenario
//! HI_SOAK_OPS=40000 cargo bench --bench service_latency   # CI scale
//! HI_SOAK_PROFILE=long cargo bench --bench service_latency # 50x soak
//! ```

use std::time::Duration;

use hi_bench::json::{write_latency_summary, LatencyRecord};
use hi_service::{soak_registry, SoakConfig, SoakProfile};

const SEED: u64 = 0xbe7c;

fn main() {
    let total_ops: usize = std::env::var("HI_SOAK_OPS")
        .ok()
        .map(|v| v.parse().expect("HI_SOAK_OPS must be an op count"))
        .unwrap_or(1_000_000);
    let cfg = SoakConfig {
        total_ops,
        // Deadline scaled to the op count: the slowest backend (the
        // universal construction) clears ~100k ops/sec in release mode.
        deadline: Duration::from_secs(60 + (total_ops / 20_000) as u64),
        seed: SEED,
        ..SoakConfig::default()
    };
    // The long profile multiplies on top of HI_SOAK_OPS (and stretches the
    // deadline with it), so both knobs compose.
    let cfg = SoakProfile::from_env().apply(&cfg);

    let mut records = Vec::new();
    println!(
        "{:34} {:>9} {:>11} {:>11} {:>8} {:>8} {:>8} {:>9} {:>9} {:>7} {:>8}",
        "scenario",
        "ops",
        "ops/sec",
        "load/sec",
        "p50",
        "p99",
        "p999",
        "wait_p99",
        "serve_p99",
        "probes",
        "resizes"
    );
    for scenario in soak_registry() {
        let report = match scenario.run(&cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: soak failed: {e}", scenario.name);
                std::process::exit(1);
            }
        };
        let summary = report.latency.summary();
        let queue_wait = report.queue_wait.summary();
        let service = report.service.summary();
        let probes = report.metrics.probes();
        let resizes = report.metrics.resizes();
        println!(
            "{:34} {:>9} {:>11.0} {:>11.0} {:>8} {:>8} {:>8} {:>9} {:>9} {:>7} {:>8}",
            scenario.name,
            report.ops_applied,
            report.ops_per_sec(),
            report.ops_per_sec_load(),
            summary.p50,
            summary.p99,
            summary.p999,
            queue_wait.p99,
            service.p99,
            probes,
            resizes,
        );
        records.push(LatencyRecord {
            scenario: scenario.name.to_string(),
            ops: report.ops_applied,
            rejected: report.ops_rejected,
            audits: report.audits.len(),
            online_probes: probes,
            online_probes_passed: report.metrics.probes_passed(),
            elapsed: report.elapsed,
            audit_pause: report.metrics.audit_pause_total(),
            resizes,
            resize_pause: report.metrics.resize_pause_total(),
            latency: summary,
            queue_wait,
            service,
        });
    }
    match write_latency_summary("service_latency", &records) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write JSON summary: {e}"),
    }
}
