//! Real-thread backend of the positional HI queue on `AtomicU8` cells.
//!
//! Single-mutator single-observer, enforced by [`AtomicPositionalQueue::split`]
//! handing out exactly one non-cloneable handle per role.

use std::sync::atomic::AtomicU8;

use hi_core::cells::{snapshot_bits, zero_bits, CELL_ORD as ORD};

/// Threaded positional HI queue over `{1..=t}` with capacity `cap`.
#[derive(Debug)]
pub struct AtomicPositionalQueue {
    /// `slots[s * t + (e-1)]` is `Q[s][e]`.
    slots: Box<[AtomicU8]>,
    /// `len[l]` is `LEN[l]`.
    len: Box<[AtomicU8]>,
    t: u32,
    cap: usize,
}

impl AtomicPositionalQueue {
    /// Creates an empty queue.
    pub fn new(t: u32, cap: usize) -> Self {
        assert!(t >= 2 && cap >= 1);
        AtomicPositionalQueue {
            slots: zero_bits(cap * t as usize),
            len: zero_bits(cap),
            t,
            cap,
        }
    }

    fn q(&self, s: usize, e: u32) -> &AtomicU8 {
        &self.slots[s * self.t as usize + (e - 1) as usize]
    }

    /// Memory snapshot: all `Q` cells then all `LEN` cells. Only an atomic
    /// snapshot at quiescent points of the caller's protocol.
    pub fn snapshot(&self) -> Vec<u64> {
        let mut snap = snapshot_bits(&self.slots);
        snap.extend(snapshot_bits(&self.len));
        snap
    }

    /// Decodes the abstract queue state (front first) from memory. Only
    /// meaningful at quiescent points, where the representation is canonical:
    /// `LEN` is a unary prefix and slot `s` holds exactly one set element bit.
    pub fn decode_state(&self) -> Vec<u32> {
        let len = self.len.iter().take_while(|l| l.load(ORD) == 1).count();
        (0..len)
            .map(|s| {
                (1..=self.t)
                    .find(|e| self.q(s, *e).load(ORD) == 1)
                    .expect("invariant broken: occupied slot with no element bit")
            })
            .collect()
    }

    /// The canonical representation of an abstract state under
    /// [`snapshot`](AtomicPositionalQueue::snapshot).
    pub fn canonical(&self, state: &[u32]) -> Vec<u64> {
        let t = self.t as usize;
        let mut snap = vec![0u64; self.cap * t + self.cap];
        for (s, &e) in state.iter().enumerate() {
            snap[s * t + (e as usize - 1)] = 1;
        }
        for l in 0..state.len() {
            snap[self.cap * t + l] = 1;
        }
        snap
    }

    /// Splits into the single mutator and single observer handles.
    ///
    /// May be called repeatedly (the `&mut` receiver guarantees quiescence):
    /// the mutator's local mirror is reconstructed from the canonical memory,
    /// so a re-split after earlier mutations picks up where they left off.
    pub fn split(&mut self) -> (QueueMutator<'_>, QueuePeeker<'_>) {
        let mirror = self.decode_state();
        (QueueMutator { q: self, mirror }, QueuePeeker { q: self })
    }
}

/// The mutating handle: `enqueue` and `dequeue`, both wait-free.
#[derive(Debug)]
pub struct QueueMutator<'a> {
    q: &'a AtomicPositionalQueue,
    mirror: Vec<u32>,
}

impl QueueMutator<'_> {
    /// Appends `v`; returns `false` if the queue is full.
    pub fn enqueue(&mut self, v: u32) -> bool {
        assert!((1..=self.q.t).contains(&v));
        if self.mirror.len() >= self.q.cap {
            return false;
        }
        let s = self.mirror.len();
        self.q.q(s, v).store(1, ORD);
        self.q.len[s].store(1, ORD);
        self.mirror.push(v);
        true
    }

    /// Removes and returns the front element, if any.
    pub fn dequeue(&mut self) -> Option<u32> {
        if self.mirror.is_empty() {
            return None;
        }
        let len = self.mirror.len();
        self.q.len[len - 1].store(0, ORD);
        self.q.q(0, self.mirror[0]).store(0, ORD);
        for s in 1..len {
            // Move before clear: the element is never absent from memory.
            self.q.q(s - 1, self.mirror[s]).store(1, ORD);
            self.q.q(s, self.mirror[s]).store(0, ORD);
        }
        Some(self.mirror.remove(0))
    }

    /// Current length (mutator-local, exact).
    pub fn len(&self) -> usize {
        self.mirror.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.mirror.is_empty()
    }
}

/// The observing handle: `peek`, lock-free.
#[derive(Debug)]
pub struct QueuePeeker<'a> {
    q: &'a AtomicPositionalQueue,
}

impl QueuePeeker<'_> {
    /// One scan attempt: `Some(None)` = empty, `Some(Some(v))` = front `v`,
    /// `None` = front moved mid-scan, retry.
    pub fn try_peek(&self) -> Option<Option<u32>> {
        if self.q.len[0].load(ORD) == 0 {
            return Some(None);
        }
        for e in 1..=self.q.t {
            if self.q.q(0, e).load(ORD) == 1 {
                return Some(Some(e));
            }
        }
        None
    }

    /// The front element (`None` = empty). Lock-free: retries while the
    /// mutator keeps shifting.
    pub fn peek(&self) -> Option<u32> {
        loop {
            if let Some(result) = self.try_peek() {
                return result;
            }
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_round_trip() {
        let mut q = AtomicPositionalQueue::new(4, 4);
        let (mut m, p) = q.split();
        assert!(m.enqueue(3));
        assert!(m.enqueue(1));
        assert_eq!(p.peek(), Some(3));
        assert_eq!(m.dequeue(), Some(3));
        assert_eq!(p.peek(), Some(1));
        assert_eq!(m.dequeue(), Some(1));
        assert_eq!(m.dequeue(), None);
        assert_eq!(p.peek(), None);
    }

    #[test]
    fn canonical_memory_when_quiescent() {
        let mut q = AtomicPositionalQueue::new(3, 3);
        {
            let (mut m, _p) = q.split();
            m.enqueue(2);
            m.enqueue(1);
            m.dequeue();
        }
        assert_eq!(q.snapshot(), q.canonical(&[1]));
    }

    #[test]
    fn concurrent_peeks_see_fronts() {
        let mut q = AtomicPositionalQueue::new(5, 8);
        let (mut m, p) = q.split();
        std::thread::scope(|s| {
            s.spawn(|| {
                for round in 0..2_000u32 {
                    m.enqueue(round % 5 + 1);
                    if round % 3 == 0 {
                        m.dequeue();
                    }
                    while m.len() > 4 {
                        m.dequeue();
                    }
                }
            });
            s.spawn(|| {
                for _ in 0..2_000 {
                    if let Some(v) = p.peek() {
                        assert!((1..=5).contains(&v));
                    }
                }
            });
        });
    }
}
