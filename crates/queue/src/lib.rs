#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! A lock-free, state-quiescent history-independent queue with `Peek` from
//! binary registers.
//!
//! The paper's §5.4 proves that no *wait-free* state-quiescent HI queue with
//! `Peek` can be built from small base objects. This crate provides the
//! companion possibility result in the style of Algorithm 2: a queue that
//! *is* state-quiescent HI from binary registers, at the price of a
//! lock-free (starvable) `Peek` — the concrete target that the executable
//! Theorem 20 adversary in `hi-lowerbound` starves.
//!
//! # Representation
//!
//! For a queue over elements `{1..=t}` with capacity `cap`:
//!
//! * `Q[s][e]` (binary, `cap × t` cells): 1 iff slot `s` holds element `e`;
//!   slot 0 is the front, occupied slots are a prefix.
//! * `LEN[l]` (binary, `cap` cells): 1 iff the queue holds more than `l`
//!   elements (unary prefix encoding of the length).
//!
//! Both are functions of the abstract state alone, so every state-quiescent
//! configuration is canonical. The mutator (pid 0) keeps a local mirror of
//! the queue — it is the only process that changes state, so the mirror is
//! always exact — and shifts elements front-ward on dequeue, *moving each
//! element before clearing its old slot* so that no element ever vanishes
//! from the memory mid-operation.
//!
//! The reader (pid 1) implements `Peek` as a retry loop: read `LEN[0]`
//! (empty ⇒ return `Empty`), scan the front slot's `t` bits, retry if the
//! front moved away mid-scan. Exactly like Algorithm 2's reader, the loop is
//! lock-free but not wait-free.

pub mod threaded;

use hi_core::objects::{BoundedQueueSpec, QueueOp, QueueResp};
use hi_core::{HiLevel, Pid, Progress, Roles};
use hi_sim::{CellDomain, CellId, Implementation, MemCtx, ProcessHandle, SharedMem};
use hi_spec::{ObservationModel, SimAudit, SimObject};

/// The positional HI queue. pid 0 is the mutator (`Enqueue`/`Dequeue`,
/// wait-free), pid 1 the observer (`Peek`, lock-free). State-quiescent HI.
#[derive(Clone, Debug)]
pub struct PositionalQueue {
    spec: BoundedQueueSpec,
    /// `slots[s][e-1]` is the cell of `Q[s][e]`.
    slots: Vec<Vec<CellId>>,
    /// `len_cells[l]` is the cell of `LEN[l]`.
    len_cells: Vec<CellId>,
    mem: SharedMem,
}

impl PositionalQueue {
    /// Creates a queue over `{1..=t}` with capacity `cap`, initially empty.
    pub fn new(t: u32, cap: usize) -> Self {
        let spec = BoundedQueueSpec::new(t, cap);
        let mut mem = SharedMem::new();
        let slots: Vec<Vec<CellId>> = (0..cap)
            .map(|s| {
                (1..=t)
                    .map(|e| mem.alloc(format!("Q[{s}][{e}]"), CellDomain::Binary, 0))
                    .collect()
            })
            .collect();
        let len_cells: Vec<CellId> = (0..cap)
            .map(|l| mem.alloc(format!("LEN[{l}]"), CellDomain::Binary, 0))
            .collect();
        PositionalQueue {
            spec,
            slots,
            len_cells,
            mem,
        }
    }

    /// The canonical memory representation of an abstract queue state.
    pub fn canonical(&self, state: &[u32]) -> Vec<u64> {
        let t = self.spec.t() as usize;
        let cap = self.spec.cap();
        let mut snap = vec![0u64; cap * t + cap];
        for (s, &e) in state.iter().enumerate() {
            snap[s * t + (e as usize - 1)] = 1;
        }
        for l in 0..state.len() {
            snap[cap * t + l] = 1;
        }
        snap
    }
}

/// Mutator program counter.
#[derive(Clone, PartialEq, Eq, Debug)]
enum MutPc {
    Idle,
    /// Respond without touching memory (`Enqueue` on full, `Dequeue` on
    /// empty).
    Trivial {
        resp: QueueResp,
    },
    /// Enqueue: write `Q[len][v] <- 1`.
    EnqElem {
        v: u32,
    },
    /// Enqueue: write `LEN[len] <- 1`.
    EnqLen {
        v: u32,
    },
    /// Dequeue: write `LEN[len-1] <- 0`.
    DeqLen,
    /// Dequeue: write `Q[0][front] <- 0`.
    DeqClearFront,
    /// Dequeue: write `Q[s-1][mirror[s]] <- 1` (move before clear).
    DeqMove {
        s: usize,
    },
    /// Dequeue: write `Q[s][mirror[s]] <- 0`.
    DeqClearOld {
        s: usize,
    },
}

/// Reader program counter (`Peek` retry loop).
#[derive(Clone, PartialEq, Eq, Debug)]
enum ReadPc {
    Idle,
    /// Read `LEN[0]`; 0 means empty.
    CheckLen,
    /// Read `Q[0][e]`, scanning the front slot.
    ScanFront {
        e: u32,
    },
}

/// The per-process step machine of [`PositionalQueue`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PositionalQueueProcess {
    t: u32,
    cap: usize,
    slots: Vec<Vec<CellId>>,
    len_cells: Vec<CellId>,
    is_mutator: bool,
    /// Mutator-local mirror of the abstract state (front first).
    mirror: Vec<u32>,
    mpc: MutPc,
    rpc: ReadPc,
}

impl PositionalQueueProcess {
    fn q(&self, s: usize, e: u32) -> CellId {
        self.slots[s][(e - 1) as usize]
    }

    /// The front-slot element index the reader is about to probe, if it is
    /// mid-scan (used by tests and the adversary).
    pub fn scanning_elem(&self) -> Option<u32> {
        match self.rpc {
            ReadPc::ScanFront { e } => Some(e),
            _ => None,
        }
    }
}

impl ProcessHandle<BoundedQueueSpec> for PositionalQueueProcess {
    fn invoke(&mut self, op: QueueOp) {
        assert!(self.is_idle(), "operation already pending");
        match (self.is_mutator, op) {
            (true, QueueOp::Enqueue(v)) => {
                self.mpc = if self.mirror.len() >= self.cap {
                    MutPc::Trivial {
                        resp: QueueResp::Full,
                    }
                } else {
                    MutPc::EnqElem { v }
                };
            }
            (true, QueueOp::Dequeue) => {
                self.mpc = if self.mirror.is_empty() {
                    MutPc::Trivial {
                        resp: QueueResp::Empty,
                    }
                } else {
                    MutPc::DeqLen
                };
            }
            (false, QueueOp::Peek) => self.rpc = ReadPc::CheckLen,
            (is_mutator, op) => {
                let role = if is_mutator { "mutator" } else { "observer" };
                panic!("{role} cannot invoke {op:?}");
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.mpc == MutPc::Idle && self.rpc == ReadPc::Idle
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<QueueResp> {
        if self.is_mutator {
            self.step_mutator(ctx)
        } else {
            self.step_reader(ctx)
        }
    }

    fn peeked_cell(&self) -> Option<CellId> {
        if self.is_mutator {
            match &self.mpc {
                MutPc::Idle | MutPc::Trivial { .. } => None,
                MutPc::EnqElem { v } => Some(self.q(self.mirror.len(), *v)),
                MutPc::EnqLen { .. } => Some(self.len_cells[self.mirror.len()]),
                MutPc::DeqLen => Some(self.len_cells[self.mirror.len() - 1]),
                MutPc::DeqClearFront => Some(self.q(0, self.mirror[0])),
                MutPc::DeqMove { s } => Some(self.q(*s - 1, self.mirror[*s])),
                MutPc::DeqClearOld { s } => Some(self.q(*s, self.mirror[*s])),
            }
        } else {
            match &self.rpc {
                ReadPc::Idle => None,
                ReadPc::CheckLen => Some(self.len_cells[0]),
                ReadPc::ScanFront { e } => Some(self.q(0, *e)),
            }
        }
    }
}

impl PositionalQueueProcess {
    fn step_mutator(&mut self, ctx: &mut MemCtx<'_>) -> Option<QueueResp> {
        match self.mpc.clone() {
            MutPc::Idle => panic!("step of idle mutator"),
            MutPc::Trivial { resp } => {
                self.mpc = MutPc::Idle;
                Some(resp)
            }
            MutPc::EnqElem { v } => {
                ctx.write(self.q(self.mirror.len(), v), 1);
                self.mpc = MutPc::EnqLen { v };
                None
            }
            MutPc::EnqLen { v } => {
                ctx.write(self.len_cells[self.mirror.len()], 1);
                self.mirror.push(v);
                self.mpc = MutPc::Idle;
                Some(QueueResp::Empty)
            }
            MutPc::DeqLen => {
                ctx.write(self.len_cells[self.mirror.len() - 1], 0);
                self.mpc = MutPc::DeqClearFront;
                None
            }
            MutPc::DeqClearFront => {
                ctx.write(self.q(0, self.mirror[0]), 0);
                self.mpc = if self.mirror.len() > 1 {
                    MutPc::DeqMove { s: 1 }
                } else {
                    MutPc::Idle
                };
                self.maybe_finish_dequeue()
            }
            MutPc::DeqMove { s } => {
                ctx.write(self.q(s - 1, self.mirror[s]), 1);
                self.mpc = MutPc::DeqClearOld { s };
                None
            }
            MutPc::DeqClearOld { s } => {
                ctx.write(self.q(s, self.mirror[s]), 0);
                self.mpc = if s + 1 < self.mirror.len() {
                    MutPc::DeqMove { s: s + 1 }
                } else {
                    MutPc::Idle
                };
                self.maybe_finish_dequeue()
            }
        }
    }

    fn maybe_finish_dequeue(&mut self) -> Option<QueueResp> {
        if self.mpc == MutPc::Idle {
            let front = self.mirror.remove(0);
            Some(QueueResp::Value(front))
        } else {
            None
        }
    }

    fn step_reader(&mut self, ctx: &mut MemCtx<'_>) -> Option<QueueResp> {
        match self.rpc.clone() {
            ReadPc::Idle => panic!("step of idle reader"),
            ReadPc::CheckLen => {
                if ctx.read(self.len_cells[0]) == 0 {
                    self.rpc = ReadPc::Idle;
                    Some(QueueResp::Empty)
                } else {
                    self.rpc = ReadPc::ScanFront { e: 1 };
                    None
                }
            }
            ReadPc::ScanFront { e } => {
                if ctx.read(self.q(0, e)) == 1 {
                    self.rpc = ReadPc::Idle;
                    Some(QueueResp::Value(e))
                } else if e < self.t {
                    self.rpc = ReadPc::ScanFront { e: e + 1 };
                    None
                } else {
                    // Front moved mid-scan: retry (lock-free loop).
                    self.rpc = ReadPc::CheckLen;
                    None
                }
            }
        }
    }
}

impl Implementation<BoundedQueueSpec> for PositionalQueue {
    type Process = PositionalQueueProcess;

    fn spec(&self) -> &BoundedQueueSpec {
        &self.spec
    }

    fn num_processes(&self) -> usize {
        2
    }

    fn init_memory(&self) -> SharedMem {
        self.mem.clone()
    }

    fn make_process(&self, pid: Pid) -> PositionalQueueProcess {
        assert!(pid.0 < 2, "the positional queue has exactly two processes");
        PositionalQueueProcess {
            t: self.spec.t(),
            cap: self.spec.cap(),
            slots: self.slots.clone(),
            len_cells: self.len_cells.clone(),
            is_mutator: pid.0 == 0,
            mirror: Vec::new(),
            mpc: MutPc::Idle,
            rpc: ReadPc::Idle,
        }
    }
}

impl SimObject<BoundedQueueSpec> for PositionalQueue {
    type Machine = Self;

    fn spec(&self) -> &BoundedQueueSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::SingleWriterSingleReader
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::StateQuiescent
    }

    fn progress(&self) -> Progress {
        // Peek spins while LEN says non-empty but the front slot is clear:
        // a mutator crash between the front clear and the move-up wedges it
        // forever (see `tests/crash_tolerance.rs`).
        Progress::Blocking
    }

    fn implementation(&self) -> &Self {
        self
    }

    fn hi_audit(&self) -> SimAudit<BoundedQueueSpec, Self> {
        SimAudit::single_mutator(ObservationModel::StateQuiescent, self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::ObjectSpec;
    use hi_sim::Executor;

    const M: Pid = Pid(0);
    const R: Pid = Pid(1);

    #[test]
    fn fifo_round_trip() {
        let mut exec = Executor::new(PositionalQueue::new(3, 4));
        exec.run_op_solo(M, QueueOp::Enqueue(2), 100).unwrap();
        exec.run_op_solo(M, QueueOp::Enqueue(3), 100).unwrap();
        exec.run_op_solo(M, QueueOp::Enqueue(1), 100).unwrap();
        assert_eq!(
            exec.run_op_solo(R, QueueOp::Peek, 100).unwrap(),
            QueueResp::Value(2)
        );
        assert_eq!(
            exec.run_op_solo(M, QueueOp::Dequeue, 100).unwrap(),
            QueueResp::Value(2)
        );
        assert_eq!(
            exec.run_op_solo(R, QueueOp::Peek, 100).unwrap(),
            QueueResp::Value(3)
        );
        assert_eq!(
            exec.run_op_solo(M, QueueOp::Dequeue, 100).unwrap(),
            QueueResp::Value(3)
        );
        assert_eq!(
            exec.run_op_solo(M, QueueOp::Dequeue, 100).unwrap(),
            QueueResp::Value(1)
        );
        assert_eq!(
            exec.run_op_solo(M, QueueOp::Dequeue, 100).unwrap(),
            QueueResp::Empty
        );
        assert_eq!(
            exec.run_op_solo(R, QueueOp::Peek, 100).unwrap(),
            QueueResp::Empty
        );
    }

    #[test]
    fn memory_is_canonical_after_each_mutation() {
        let imp = PositionalQueue::new(3, 3);
        let mut exec = Executor::new(imp.clone());
        let script = [
            QueueOp::Enqueue(1),
            QueueOp::Enqueue(3),
            QueueOp::Dequeue,
            QueueOp::Enqueue(2),
            QueueOp::Enqueue(2),
            QueueOp::Dequeue,
            QueueOp::Dequeue,
            QueueOp::Dequeue,
        ];
        let mut state: Vec<u32> = Vec::new();
        for op in script {
            exec.run_op_solo(M, op, 100).unwrap();
            state = exec.spec().apply(&state, &op).0;
            assert_eq!(exec.snapshot(), imp.canonical(&state), "after {op:?}");
        }
    }

    #[test]
    fn same_state_same_memory_different_histories() {
        // [2] reached via Enq(2) vs via Enq(1),Enq(2),Deq: identical memory.
        let imp = PositionalQueue::new(3, 3);
        let mut e1 = Executor::new(imp.clone());
        e1.run_op_solo(M, QueueOp::Enqueue(2), 100).unwrap();
        let mut e2 = Executor::new(imp);
        e2.run_op_solo(M, QueueOp::Enqueue(1), 100).unwrap();
        e2.run_op_solo(M, QueueOp::Enqueue(2), 100).unwrap();
        e2.run_op_solo(M, QueueOp::Dequeue, 100).unwrap();
        assert_eq!(e1.snapshot(), e2.snapshot());
    }

    #[test]
    fn peek_starves_under_hostile_mutator() {
        // §5.4's phenomenon: S(i,j) = Enqueue(j), Dequeue sequences keep the
        // front element away from the reader's scan cursor.
        let t = 3;
        let mut exec = Executor::new(PositionalQueue::new(t, 2));
        exec.run_op_solo(M, QueueOp::Enqueue(2), 100).unwrap(); // front = 2
        exec.invoke(R, QueueOp::Peek);
        let mut front = 2u32;
        for _ in 0..300 {
            assert!(
                exec.step(R).is_none(),
                "peek must not return under this schedule"
            );
            // Move the front to a value the reader is not about to read.
            let avoid = exec.process(R).scanning_elem().unwrap_or(0);
            let next = (1..=t).find(|v| *v != avoid && *v != front).unwrap();
            exec.run_op_solo(M, QueueOp::Enqueue(next), 100).unwrap();
            exec.run_op_solo(M, QueueOp::Dequeue, 100).unwrap();
            front = next;
        }
        assert!(exec.can_step(R), "peek still pending after 300 rounds");
    }

    #[test]
    fn peek_returns_when_run_solo() {
        let mut exec = Executor::new(PositionalQueue::new(3, 2));
        exec.run_op_solo(M, QueueOp::Enqueue(1), 100).unwrap();
        exec.invoke(R, QueueOp::Peek);
        exec.step(R);
        exec.run_op_solo(M, QueueOp::Enqueue(3), 100).unwrap();
        exec.run_op_solo(M, QueueOp::Dequeue, 100).unwrap();
        let (_, resp) = exec.run_solo(R, 100).unwrap();
        assert_eq!(resp, QueueResp::Value(3));
    }

    #[test]
    fn full_and_empty_are_single_local_steps() {
        let mut exec = Executor::new(PositionalQueue::new(2, 1));
        assert_eq!(
            exec.run_op_solo(M, QueueOp::Dequeue, 1).unwrap(),
            QueueResp::Empty
        );
        exec.run_op_solo(M, QueueOp::Enqueue(1), 100).unwrap();
        assert_eq!(
            exec.run_op_solo(M, QueueOp::Enqueue(2), 1).unwrap(),
            QueueResp::Full
        );
    }
}
