//! Threaded backend of Algorithm 6 on one `AtomicU64`.
//!
//! Blocking operations follow Algorithm 6's CAS retry loops (lock-free);
//! the `*_attempt` variants perform exactly one read(+CAS) round and are
//! the building blocks for Algorithm 5's `||` interleavings, where a process
//! must alternate between trying an `LL` and checking whether another
//! process already finished its work.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::pack::LlscLayout;

const ORD: Ordering = Ordering::SeqCst;

/// An R-LLSC object packed into one atomic word.
///
/// # Example
///
/// ```
/// use hi_llsc::{LlscLayout, PackedRLlsc};
///
/// let x = PackedRLlsc::new(LlscLayout::new(8, 4), 7);
/// assert_eq!(x.ll(2), 7);
/// assert!(x.vl(2));
/// assert!(x.sc(2, 9));
/// assert_eq!(x.load(), 9);
/// assert!(!x.vl(2), "SC cleared the context");
/// ```
#[derive(Debug)]
pub struct PackedRLlsc {
    cell: AtomicU64,
    layout: LlscLayout,
}

impl PackedRLlsc {
    /// Creates the object holding `v0` with an empty context.
    pub fn new(layout: LlscLayout, v0: u64) -> Self {
        PackedRLlsc {
            cell: AtomicU64::new(layout.reset(v0)),
            layout,
        }
    }

    /// The packing layout.
    pub fn layout(&self) -> LlscLayout {
        self.layout
    }

    /// The raw cell contents: `pack(val, context)`. This *is* the memory
    /// representation of the object (perfect HI).
    pub fn raw(&self) -> u64 {
        self.cell.load(ORD)
    }

    /// One `LL` attempt: one read plus one CAS. `Some(val)` on success.
    pub fn ll_attempt(&self, pid: usize) -> Option<u64> {
        let cur = self.cell.load(ORD);
        let new = self.layout.with_pid(cur, pid);
        self.cell
            .compare_exchange(cur, new, ORD, ORD)
            .ok()
            .map(|_| self.layout.val(cur))
    }

    /// `LL`: adds `pid` to the context and returns the value. Lock-free.
    pub fn ll(&self, pid: usize) -> u64 {
        loop {
            if let Some(v) = self.ll_attempt(pid) {
                return v;
            }
            std::hint::spin_loop();
        }
    }

    /// `VL`: whether `pid` is still in the context. Wait-free (one read).
    pub fn vl(&self, pid: usize) -> bool {
        self.layout.has(self.cell.load(ORD), pid)
    }

    /// One `SC` attempt. `Some(true)`: installed; `Some(false)`: the link is
    /// gone, the SC has failed definitively; `None`: CAS interference, retry.
    pub fn sc_attempt(&self, pid: usize, new_val: u64) -> Option<bool> {
        let cur = self.cell.load(ORD);
        if !self.layout.has(cur, pid) {
            return Some(false);
        }
        match self
            .cell
            .compare_exchange(cur, self.layout.reset(new_val), ORD, ORD)
        {
            Ok(_) => Some(true),
            Err(_) => None,
        }
    }

    /// `SC`: if `pid` is linked, installs `new_val` with an empty context.
    /// Lock-free.
    pub fn sc(&self, pid: usize, new_val: u64) -> bool {
        loop {
            if let Some(outcome) = self.sc_attempt(pid, new_val) {
                return outcome;
            }
            std::hint::spin_loop();
        }
    }

    /// One `RL` attempt. `Some(())`: released (or was never linked);
    /// `None`: CAS interference, retry.
    pub fn rl_attempt(&self, pid: usize) -> Option<()> {
        let cur = self.cell.load(ORD);
        if !self.layout.has(cur, pid) {
            return Some(());
        }
        self.cell
            .compare_exchange(cur, self.layout.without_pid(cur, pid), ORD, ORD)
            .ok()
            .map(|_| ())
    }

    /// `RL`: removes `pid` from the context. Lock-free; always returns
    /// `true` (kept for interface parity with the paper).
    pub fn rl(&self, pid: usize) -> bool {
        loop {
            if self.rl_attempt(pid).is_some() {
                return true;
            }
            std::hint::spin_loop();
        }
    }

    /// `Load`: the current value. Wait-free.
    pub fn load(&self) -> u64 {
        self.layout.val(self.cell.load(ORD))
    }

    /// `Store`: installs `new_val` with an empty context. Wait-free.
    pub fn store(&self, new_val: u64) {
        self.cell.store(self.layout.reset(new_val), ORD);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: usize) -> PackedRLlsc {
        PackedRLlsc::new(LlscLayout::new(16, n), 0)
    }

    #[test]
    fn sc_fails_after_interfering_store() {
        let x = obj(2);
        assert_eq!(x.ll(0), 0);
        x.store(5);
        assert!(!x.sc(0, 9));
        assert_eq!(x.load(), 5);
    }

    #[test]
    fn rl_erases_context_bit() {
        let x = obj(3);
        x.ll(1);
        assert!(x.vl(1));
        x.rl(1);
        assert!(!x.vl(1));
        assert_eq!(
            x.raw(),
            x.layout().reset(0),
            "no trace of the released link"
        );
    }

    #[test]
    fn attempt_variants_report_interference() {
        let x = obj(2);
        x.ll(0);
        // SC attempt by an unlinked process fails definitively.
        assert_eq!(x.sc_attempt(1, 3), Some(false));
        // Linked process succeeds.
        assert_eq!(x.sc_attempt(0, 3), Some(true));
        assert_eq!(x.load(), 3);
    }

    #[test]
    fn concurrent_sc_at_most_one_winner() {
        // n threads all LL then SC; exactly one SC per round may win.
        let n = 4;
        let x = obj(n);
        let wins: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|pid| {
                    let x = &x;
                    s.spawn(move || {
                        let mut wins = 0u64;
                        for round in 0..1_000u64 {
                            x.ll(pid);
                            if x.sc(pid, round % 7) {
                                wins += 1;
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total: u64 = wins.iter().sum();
        assert!(total >= 1, "lock-freedom: someone must win");
        assert!(total <= 4_000);
        assert_eq!(
            x.layout().context(x.raw()),
            0,
            "all contexts eventually cleared or consumed"
        );
    }
}
