#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Algorithm 6: a lock-free, perfect-HI *releasable* LL/SC (R-LLSC) object
//! from a single atomic CAS word.
//!
//! A context-aware LL/SC object has state `(val, context)` where `context`
//! is the set of processes whose load-link is still valid. The paper extends
//! the classic interface with a **release** (`RL`) operation that removes
//! the caller from the context — without it, leftover context bits would
//! reveal that operations were attempted in the past, breaching history
//! independence (§6, "Achieving history independence").
//!
//! The implementation stores `(val, c_1 … c_n)` bit-packed in one CAS word,
//! so the mapping from abstract R-LLSC state to memory is a fixed bijection:
//! *perfect* HI (Theorem 28). `LL`, `SC` and `RL` are CAS retry loops and
//! hence lock-free, not wait-free; Algorithm 5 recovers wait-freedom at the
//! layer above (Lemmas 29–31).
//!
//! Three views are provided:
//!
//! * [`RLlscSpec`] — the abstract object `(Q, q0, O, R, Δ)`, for the
//!   linearizability checker.
//! * [`SimRLlsc`] / [`LlscOp`] — simulator step machines; [`LlscOp`] is a
//!   *sub*-machine that `hi-universal` embeds inside Algorithm 5's apply
//!   loop.
//! * [`PackedRLlsc`] — the threaded `AtomicU64` backend, with single-attempt
//!   variants (`ll_attempt`) for Algorithm 5's `||` interleavings.

pub mod pack;
pub mod sim;
pub mod spec;
pub mod threaded;

pub use pack::LlscLayout;
pub use sim::{LlscOp, LlscResult, SimRLlsc, SimRLlscProcess};
pub use spec::{RLlscOp, RLlscResp, RLlscSpec};
pub use threaded::PackedRLlsc;
