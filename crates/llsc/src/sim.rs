//! Simulator step machines for Algorithm 6.
//!
//! [`LlscOp`] is a *sub-machine*: one R-LLSC operation over one cell,
//! advanced one primitive at a time. It is used standalone by [`SimRLlsc`]
//! (to check Algorithm 6 itself against [`RLlscSpec`]) and embedded by
//! `hi-universal` inside Algorithm 5's apply loop.

use hi_core::{HiLevel, Pid, Progress, Roles};
use hi_sim::{CellDomain, CellId, Implementation, MemCtx, ProcessHandle, SharedMem};
use hi_spec::{ObservationModel, SimAudit, SimObject};

use crate::pack::LlscLayout;
use crate::spec::{RLlscOp, RLlscResp, RLlscSpec};

/// The result of a completed R-LLSC sub-operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LlscResult {
    /// Returned by `LL`/`Load`.
    Val(u64),
    /// Returned by `VL`/`SC`/`RL`/`Store`.
    Bool(bool),
}

impl LlscResult {
    /// Unwraps a value result.
    ///
    /// # Panics
    ///
    /// Panics on a boolean result.
    pub fn val(self) -> u64 {
        match self {
            LlscResult::Val(v) => v,
            LlscResult::Bool(b) => panic!("expected value result, got Bool({b})"),
        }
    }

    /// Unwraps a boolean result.
    ///
    /// # Panics
    ///
    /// Panics on a value result.
    pub fn bool(self) -> bool {
        match self {
            LlscResult::Bool(b) => b,
            LlscResult::Val(v) => panic!("expected boolean result, got Val({v})"),
        }
    }
}

/// One in-flight R-LLSC operation on one cell, as a resumable sub-machine.
/// Each [`step`](LlscOp::step) performs exactly one primitive (a read, a
/// write, or a CAS) following Algorithm 6 line by line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LlscOp {
    /// Algorithm 6 lines 1–6: read, then CAS in the caller's context bit.
    Ll {
        /// Invoking process.
        pid: usize,
        /// Target cell.
        cell: CellId,
        /// The last read value, if the next step is the CAS.
        cur: Option<u64>,
    },
    /// Lines 12–13: one read.
    Vl {
        /// Invoking process.
        pid: usize,
        /// Target cell.
        cell: CellId,
    },
    /// Lines 7–11: read; fail fast if unlinked, else CAS to `(new, ∅)`.
    Sc {
        /// Invoking process.
        pid: usize,
        /// Target cell.
        cell: CellId,
        /// Value to install.
        new_val: u64,
        /// The last read value, if the next step is the CAS.
        cur: Option<u64>,
    },
    /// Lines 14–20: read; succeed fast if already unlinked, else CAS the
    /// caller's bit away.
    Rl {
        /// Invoking process.
        pid: usize,
        /// Target cell.
        cell: CellId,
        /// The last read value, if the next step is the CAS.
        cur: Option<u64>,
    },
    /// Lines 21–22: one read.
    Load {
        /// Target cell.
        cell: CellId,
    },
    /// Lines 23–24: one write.
    Store {
        /// Target cell.
        cell: CellId,
        /// Value to install.
        new_val: u64,
    },
}

impl LlscOp {
    /// Starts an `LL` by `pid` on `cell`.
    pub fn ll(pid: usize, cell: CellId) -> Self {
        LlscOp::Ll {
            pid,
            cell,
            cur: None,
        }
    }

    /// Starts a `VL` by `pid` on `cell`.
    pub fn vl(pid: usize, cell: CellId) -> Self {
        LlscOp::Vl { pid, cell }
    }

    /// Starts an `SC` by `pid` on `cell` installing `new_val`.
    pub fn sc(pid: usize, cell: CellId, new_val: u64) -> Self {
        LlscOp::Sc {
            pid,
            cell,
            new_val,
            cur: None,
        }
    }

    /// Starts an `RL` by `pid` on `cell`.
    pub fn rl(pid: usize, cell: CellId) -> Self {
        LlscOp::Rl {
            pid,
            cell,
            cur: None,
        }
    }

    /// Starts a `Load` on `cell`.
    pub fn load(cell: CellId) -> Self {
        LlscOp::Load { cell }
    }

    /// Starts a `Store` on `cell` installing `new_val`.
    pub fn store(cell: CellId, new_val: u64) -> Self {
        LlscOp::Store { cell, new_val }
    }

    /// The cell this operation targets (also the cell its next step
    /// accesses).
    pub fn cell(&self) -> CellId {
        match self {
            LlscOp::Ll { cell, .. }
            | LlscOp::Vl { cell, .. }
            | LlscOp::Sc { cell, .. }
            | LlscOp::Rl { cell, .. }
            | LlscOp::Load { cell }
            | LlscOp::Store { cell, .. } => *cell,
        }
    }

    /// Advances the operation by one primitive. Returns the result when the
    /// operation completes.
    pub fn step(&mut self, layout: &LlscLayout, ctx: &mut MemCtx<'_>) -> Option<LlscResult> {
        match self {
            LlscOp::Ll { pid, cell, cur } => match cur.take() {
                None => {
                    *cur = Some(ctx.read(*cell));
                    None
                }
                Some(old) => {
                    if ctx.cas(*cell, old, layout.with_pid(old, *pid)) {
                        Some(LlscResult::Val(layout.val(old)))
                    } else {
                        None // re-read on the next step
                    }
                }
            },
            LlscOp::Vl { pid, cell } => {
                let v = ctx.read(*cell);
                Some(LlscResult::Bool(layout.has(v, *pid)))
            }
            LlscOp::Sc {
                pid,
                cell,
                new_val,
                cur,
            } => match cur.take() {
                None => {
                    let v = ctx.read(*cell);
                    if layout.has(v, *pid) {
                        *cur = Some(v);
                        None
                    } else {
                        Some(LlscResult::Bool(false))
                    }
                }
                Some(old) => {
                    if ctx.cas(*cell, old, layout.reset(*new_val)) {
                        Some(LlscResult::Bool(true))
                    } else {
                        None
                    }
                }
            },
            LlscOp::Rl { pid, cell, cur } => match cur.take() {
                None => {
                    let v = ctx.read(*cell);
                    if layout.has(v, *pid) {
                        *cur = Some(v);
                        None
                    } else {
                        Some(LlscResult::Bool(true))
                    }
                }
                Some(old) => {
                    if ctx.cas(*cell, old, layout.without_pid(old, *pid)) {
                        Some(LlscResult::Bool(true))
                    } else {
                        None
                    }
                }
            },
            LlscOp::Load { cell } => {
                let v = ctx.read(*cell);
                Some(LlscResult::Val(layout.val(v)))
            }
            LlscOp::Store { cell, new_val } => {
                ctx.write(*cell, layout.reset(*new_val));
                Some(LlscResult::Bool(true))
            }
        }
    }
}

/// Algorithm 6 as a standalone [`Implementation`] of [`RLlscSpec`]: one
/// `Word` cell, `n` processes, each operation an [`LlscOp`] sub-machine.
/// Perfect HI: the cell is a fixed bijection of the abstract state.
#[derive(Clone, Debug)]
pub struct SimRLlsc {
    spec: RLlscSpec,
    layout: LlscLayout,
    cell: CellId,
    mem: SharedMem,
}

impl SimRLlsc {
    /// Creates an R-LLSC object over values `0..v` with initial value `v0`
    /// for `n` processes.
    pub fn new(v: u64, v0: u64, n: usize) -> Self {
        let spec = RLlscSpec::new(v, v0, n);
        let val_bits = 64 - (v - 1).leading_zeros().max(1);
        let layout = LlscLayout::new(val_bits.max(1), n);
        let mut mem = SharedMem::new();
        let domain = match layout.states() {
            Some(s) => CellDomain::Bounded(s),
            None => CellDomain::Word,
        };
        let cell = mem.alloc("X", domain, layout.reset(v0));
        SimRLlsc {
            spec,
            layout,
            cell,
            mem,
        }
    }

    /// The packing layout (shared with embedding algorithms).
    pub fn layout(&self) -> LlscLayout {
        self.layout
    }

    /// Decodes a memory snapshot into the abstract `(val, context)` state.
    pub fn decode(&self, snapshot: &[u64]) -> (u64, u64) {
        let cell = snapshot[self.cell.0];
        (self.layout.val(cell), self.layout.context(cell))
    }
}

/// The per-process step machine of [`SimRLlsc`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimRLlscProcess {
    pid: usize,
    cell: CellId,
    layout: LlscLayout,
    pending: Option<LlscOp>,
}

impl ProcessHandle<RLlscSpec> for SimRLlscProcess {
    fn invoke(&mut self, op: RLlscOp) {
        assert!(self.pending.is_none(), "operation already pending");
        if let Some(pid) = op.pid() {
            assert_eq!(
                pid, self.pid,
                "operation pid must match the invoking process"
            );
        }
        self.pending = Some(match op {
            RLlscOp::Ll { pid } => LlscOp::ll(pid, self.cell),
            RLlscOp::Vl { pid } => LlscOp::vl(pid, self.cell),
            RLlscOp::Sc { pid, new } => LlscOp::sc(pid, self.cell, new),
            RLlscOp::Rl { pid } => LlscOp::rl(pid, self.cell),
            RLlscOp::Load => LlscOp::load(self.cell),
            RLlscOp::Store { new } => LlscOp::store(self.cell, new),
        });
    }

    fn is_idle(&self) -> bool {
        self.pending.is_none()
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<RLlscResp> {
        let op = self.pending.as_mut().expect("step of idle process");
        match op.step(&self.layout, ctx) {
            Some(LlscResult::Val(v)) => {
                self.pending = None;
                Some(RLlscResp::Val(v))
            }
            Some(LlscResult::Bool(b)) => {
                self.pending = None;
                Some(RLlscResp::Bool(b))
            }
            None => None,
        }
    }

    fn peeked_cell(&self) -> Option<CellId> {
        self.pending.as_ref().map(LlscOp::cell)
    }
}

impl Implementation<RLlscSpec> for SimRLlsc {
    type Process = SimRLlscProcess;

    fn spec(&self) -> &RLlscSpec {
        &self.spec
    }

    fn num_processes(&self) -> usize {
        self.spec.n()
    }

    fn init_memory(&self) -> SharedMem {
        self.mem.clone()
    }

    fn make_process(&self, pid: Pid) -> SimRLlscProcess {
        assert!(pid.0 < self.spec.n());
        SimRLlscProcess {
            pid: pid.0,
            cell: self.cell,
            layout: self.layout,
            pending: None,
        }
    }
}

impl SimObject<RLlscSpec> for SimRLlsc {
    type Machine = Self;

    fn spec(&self) -> &RLlscSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::MultiProcess { n: self.spec.n() }
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::Perfect
    }

    fn progress(&self) -> Progress {
        // Every R-LLSC operation is a bounded number of primitives on the
        // packed word; a failed SC reports failure instead of retrying.
        Progress::WaitFree
    }

    fn implementation(&self) -> &Self {
        self
    }

    fn hi_audit(&self) -> SimAudit<RLlscSpec, Self> {
        // The packed word is a bijection of `(val, context)`: decode it at
        // every configuration.
        let oracle = self.clone();
        SimAudit::from_snapshot(ObservationModel::Perfect, move |snap| oracle.decode(snap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_sim::Executor;

    #[test]
    fn ll_sc_solo() {
        let mut exec = Executor::new(SimRLlsc::new(8, 3, 2));
        assert_eq!(
            exec.run_op_solo(Pid(0), RLlscOp::Ll { pid: 0 }, 10)
                .unwrap(),
            RLlscResp::Val(3)
        );
        assert_eq!(
            exec.run_op_solo(Pid(0), RLlscOp::Sc { pid: 0, new: 5 }, 10)
                .unwrap(),
            RLlscResp::Bool(true)
        );
        assert_eq!(
            exec.run_op_solo(Pid(1), RLlscOp::Load, 10).unwrap(),
            RLlscResp::Val(5)
        );
    }

    #[test]
    fn sc_without_link_fails_fast() {
        let mut exec = Executor::new(SimRLlsc::new(4, 0, 2));
        exec.invoke(Pid(0), RLlscOp::Sc { pid: 0, new: 1 });
        let (_, resp) = exec.run_solo(Pid(0), 10).unwrap();
        assert_eq!(resp, RLlscResp::Bool(false));
        assert_eq!(exec.steps(), 1, "unlinked SC fails after one read");
    }

    #[test]
    fn interference_between_ll_and_sc() {
        // p0 LLs, p1 Stores, p0's SC must fail.
        let mut exec = Executor::new(SimRLlsc::new(4, 0, 2));
        exec.run_op_solo(Pid(0), RLlscOp::Ll { pid: 0 }, 10)
            .unwrap();
        exec.run_op_solo(Pid(1), RLlscOp::Store { new: 2 }, 10)
            .unwrap();
        assert_eq!(
            exec.run_op_solo(Pid(0), RLlscOp::Sc { pid: 0, new: 3 }, 10)
                .unwrap(),
            RLlscResp::Bool(false)
        );
    }

    #[test]
    fn memory_always_decodes_to_packed_state() {
        // Perfect HI: the single cell *is* the state, at every step of any
        // schedule. Drive a few interleaved operations and decode.
        let imp = SimRLlsc::new(4, 1, 3);
        let mut exec = Executor::new(imp.clone());
        exec.invoke(Pid(0), RLlscOp::Ll { pid: 0 });
        exec.invoke(Pid(1), RLlscOp::Ll { pid: 1 });
        exec.invoke(Pid(2), RLlscOp::Store { new: 3 });
        for pid in [0, 1, 0, 2, 1, 0, 1] {
            if exec.can_step(Pid(pid)) {
                exec.step(Pid(pid));
            }
            let (val, ctx) = imp.decode(&exec.snapshot());
            assert!(val < 4);
            assert!(ctx < 8);
        }
    }

    #[test]
    fn rl_on_empty_context_is_one_step() {
        let mut exec = Executor::new(SimRLlsc::new(4, 0, 2));
        exec.invoke(Pid(1), RLlscOp::Rl { pid: 1 });
        assert!(exec.step(Pid(1)).is_some());
    }
}
