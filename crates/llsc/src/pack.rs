//! Bit packing of `(val, context)` R-LLSC states into one `u64` word.

/// The layout of an R-LLSC cell: `val` in the low `val_bits` bits, one
/// context bit per process above them.
///
/// The paper's Algorithm 6 stores the state `(v, c_1, …, c_n)` in a single
/// CAS object; this is the concrete encoding. The constructor refuses
/// layouts that do not fit in 64 bits rather than truncating.
///
/// # Example
///
/// ```
/// use hi_llsc::LlscLayout;
///
/// let layout = LlscLayout::new(8, 4); // 8-bit values, 4 processes
/// let cell = layout.pack(0x7f, 0b0101);
/// assert_eq!(layout.val(cell), 0x7f);
/// assert!(layout.has(cell, 0) && layout.has(cell, 2));
/// assert!(!layout.has(cell, 1));
/// assert_eq!(layout.val(layout.with_pid(cell, 1)), 0x7f);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LlscLayout {
    val_bits: u32,
    n: usize,
}

impl LlscLayout {
    /// Creates a layout with `val_bits` value bits and `n` context bits.
    ///
    /// # Panics
    ///
    /// Panics if `val_bits + n > 64`, if `val_bits == 0`, or if `n == 0`.
    pub fn new(val_bits: u32, n: usize) -> Self {
        assert!(val_bits > 0, "values need at least one bit");
        assert!(n > 0, "at least one process required");
        assert!(
            val_bits as usize + n <= 64,
            "layout overflows 64 bits: {val_bits} value bits + {n} context bits"
        );
        LlscLayout { val_bits, n }
    }

    /// Number of value bits.
    pub fn val_bits(&self) -> u32 {
        self.val_bits
    }

    /// Number of processes (context bits).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct cell states, if representable (`None` for 64-bit
    /// layouts). Used by impossibility audits that need base-object sizes.
    pub fn states(&self) -> Option<u64> {
        let bits = self.val_bits as usize + self.n;
        (bits < 64).then(|| 1u64 << bits)
    }

    fn val_mask(&self) -> u64 {
        if self.val_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.val_bits) - 1
        }
    }

    fn pid_bit(&self, pid: usize) -> u64 {
        assert!(pid < self.n, "pid {pid} out of range (n = {})", self.n);
        1u64 << (self.val_bits as usize + pid)
    }

    /// Packs `(val, context)`; `context` is a bitmask over pids.
    ///
    /// # Panics
    ///
    /// Panics if `val` or `context` overflow their fields.
    pub fn pack(&self, val: u64, context: u64) -> u64 {
        assert!(
            val <= self.val_mask(),
            "value {val} overflows {} bits",
            self.val_bits
        );
        assert!(
            context < (1u64 << self.n),
            "context {context:#b} overflows {} bits",
            self.n
        );
        val | (context << self.val_bits)
    }

    /// The value field of a cell.
    pub fn val(&self, cell: u64) -> u64 {
        cell & self.val_mask()
    }

    /// The context field of a cell, as a bitmask over pids.
    pub fn context(&self, cell: u64) -> u64 {
        cell >> self.val_bits
    }

    /// Whether `pid` is in the cell's context.
    pub fn has(&self, cell: u64, pid: usize) -> bool {
        cell & self.pid_bit(pid) != 0
    }

    /// The cell with `pid` added to the context.
    pub fn with_pid(&self, cell: u64, pid: usize) -> u64 {
        cell | self.pid_bit(pid)
    }

    /// The cell with `pid` removed from the context.
    pub fn without_pid(&self, cell: u64, pid: usize) -> u64 {
        cell & !self.pid_bit(pid)
    }

    /// A cell holding `val` with an empty context (the result of `SC` and
    /// `Store`).
    pub fn reset(&self, val: u64) -> u64 {
        self.pack(val, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let l = LlscLayout::new(10, 6);
        for val in [0u64, 1, 555, 1023] {
            for ctx in [0u64, 1, 0b101010, 0b111111] {
                let cell = l.pack(val, ctx);
                assert_eq!(l.val(cell), val);
                assert_eq!(l.context(cell), ctx);
            }
        }
    }

    #[test]
    fn pid_membership() {
        let l = LlscLayout::new(4, 3);
        let mut cell = l.reset(9);
        assert_eq!(l.context(cell), 0);
        cell = l.with_pid(cell, 2);
        assert!(l.has(cell, 2));
        assert!(!l.has(cell, 0));
        cell = l.without_pid(cell, 2);
        assert_eq!(cell, l.reset(9));
    }

    #[test]
    fn states_counts() {
        assert_eq!(LlscLayout::new(2, 2).states(), Some(16));
        assert_eq!(LlscLayout::new(60, 4).states(), None);
    }

    #[test]
    #[should_panic(expected = "overflows 64 bits")]
    fn oversized_layout_rejected() {
        LlscLayout::new(60, 5);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn oversized_value_rejected() {
        LlscLayout::new(3, 2).pack(8, 0);
    }
}
