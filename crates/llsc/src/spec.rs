//! The abstract R-LLSC object `(Q, q0, O, R, Δ)` (paper §6.1), for checking
//! implementations against.

use hi_core::{EnumerableSpec, ObjectSpec};

/// Operations of the R-LLSC object. Operations carry the invoking process
/// because their semantics are process-relative (`LL` adds *the caller* to
/// the context).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RLlscOp {
    /// `LL`: add `pid` to the context, return the value.
    Ll {
        /// The invoking process.
        pid: usize,
    },
    /// `VL`: is `pid` in the context?
    Vl {
        /// The invoking process.
        pid: usize,
    },
    /// `SC`: if `pid` is in the context, install `new` and clear the
    /// context, returning `true`; else return `false`.
    Sc {
        /// The invoking process.
        pid: usize,
        /// The value to install.
        new: u64,
    },
    /// `RL`: remove `pid` from the context; always returns `true`.
    Rl {
        /// The invoking process.
        pid: usize,
    },
    /// `Load`: return the value without touching the context.
    Load,
    /// `Store`: install `new` and clear the context unconditionally.
    Store {
        /// The value to install.
        new: u64,
    },
}

impl RLlscOp {
    /// The invoking process, if the operation is process-relative.
    pub fn pid(&self) -> Option<usize> {
        match self {
            RLlscOp::Ll { pid }
            | RLlscOp::Vl { pid }
            | RLlscOp::Sc { pid, .. }
            | RLlscOp::Rl { pid } => Some(*pid),
            RLlscOp::Load | RLlscOp::Store { .. } => None,
        }
    }
}

/// Responses of the R-LLSC object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RLlscResp {
    /// Value returned by `LL`/`Load`.
    Val(u64),
    /// Boolean returned by `VL`/`SC`/`RL`/`Store`.
    Bool(bool),
}

/// The abstract R-LLSC object over values `0..v` shared by `n` processes.
/// State = `(val, context bitmask)`.
///
/// # Example
///
/// ```
/// use hi_core::ObjectSpec;
/// use hi_llsc::{RLlscSpec, RLlscOp, RLlscResp};
///
/// let spec = RLlscSpec::new(4, 0, 2);
/// let (q, r) = spec.apply(&(0, 0), &RLlscOp::Ll { pid: 1 });
/// assert_eq!((q, r), ((0, 0b10), RLlscResp::Val(0)));
/// let (q, r) = spec.apply(&q, &RLlscOp::Sc { pid: 1, new: 3 });
/// assert_eq!((q, r), ((3, 0), RLlscResp::Bool(true)));
/// let (_, r) = spec.apply(&q, &RLlscOp::Sc { pid: 1, new: 2 });
/// assert_eq!(r, RLlscResp::Bool(false), "context was cleared by the SC");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RLlscSpec {
    v: u64,
    v0: u64,
    n: usize,
}

impl RLlscSpec {
    /// Creates the spec: values `0..v`, initial value `v0`, `n` processes.
    ///
    /// # Panics
    ///
    /// Panics unless `v >= 2`, `v0 < v`, `1 <= n <= 16` (the enumeration is
    /// `v · 2^n` states; 16 keeps it tractable).
    pub fn new(v: u64, v0: u64, n: usize) -> Self {
        assert!(v >= 2, "at least two values required");
        assert!(v0 < v, "initial value out of range");
        assert!((1..=16).contains(&n), "1..=16 processes supported");
        RLlscSpec { v, v0, n }
    }

    /// The number of values.
    pub fn v(&self) -> u64 {
        self.v
    }

    /// The number of processes.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl ObjectSpec for RLlscSpec {
    /// `(val, context bitmask)`.
    type State = (u64, u64);
    type Op = RLlscOp;
    type Resp = RLlscResp;

    fn initial_state(&self) -> (u64, u64) {
        (self.v0, 0)
    }

    fn apply(&self, state: &(u64, u64), op: &RLlscOp) -> ((u64, u64), RLlscResp) {
        let (val, ctx) = *state;
        if let Some(pid) = op.pid() {
            assert!(pid < self.n, "pid {pid} out of range");
        }
        match op {
            RLlscOp::Ll { pid } => ((val, ctx | (1 << pid)), RLlscResp::Val(val)),
            RLlscOp::Vl { pid } => ((val, ctx), RLlscResp::Bool(ctx & (1 << pid) != 0)),
            RLlscOp::Sc { pid, new } => {
                assert!(*new < self.v, "SC of out-of-range value {new}");
                if ctx & (1 << pid) != 0 {
                    ((*new, 0), RLlscResp::Bool(true))
                } else {
                    ((val, ctx), RLlscResp::Bool(false))
                }
            }
            RLlscOp::Rl { pid } => ((val, ctx & !(1 << pid)), RLlscResp::Bool(true)),
            RLlscOp::Load => ((val, ctx), RLlscResp::Val(val)),
            RLlscOp::Store { new } => {
                assert!(*new < self.v, "store of out-of-range value {new}");
                ((*new, 0), RLlscResp::Bool(true))
            }
        }
    }

    fn is_read_only(&self, op: &RLlscOp) -> bool {
        matches!(op, RLlscOp::Vl { .. } | RLlscOp::Load)
    }

    fn op_owner(&self, op: &RLlscOp) -> Option<usize> {
        // LL/VL/SC/RL reference the caller's reservation: only the tagged
        // process may invoke them. Load/Store belong to everyone.
        op.pid()
    }
}

impl EnumerableSpec for RLlscSpec {
    fn states(&self) -> Vec<(u64, u64)> {
        let mut states = Vec::new();
        for val in 0..self.v {
            for ctx in 0..(1u64 << self.n) {
                states.push((val, ctx));
            }
        }
        states
    }

    fn ops(&self) -> Vec<RLlscOp> {
        let mut ops = vec![RLlscOp::Load];
        ops.extend((0..self.v).map(|new| RLlscOp::Store { new }));
        for pid in 0..self.n {
            ops.push(RLlscOp::Ll { pid });
            ops.push(RLlscOp::Vl { pid });
            ops.push(RLlscOp::Rl { pid });
            ops.extend((0..self.v).map(|new| RLlscOp::Sc { pid, new }));
        }
        ops
    }

    fn responses(&self) -> Vec<RLlscResp> {
        let mut rs = vec![RLlscResp::Bool(false), RLlscResp::Bool(true)];
        rs.extend((0..self.v).map(RLlscResp::Val));
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_closed() {
        RLlscSpec::new(2, 0, 2).check_closed();
    }

    #[test]
    fn ll_then_sc_succeeds_once() {
        let spec = RLlscSpec::new(3, 0, 2);
        let q = spec.apply(&spec.initial_state(), &RLlscOp::Ll { pid: 0 }).0;
        let (q, r) = spec.apply(&q, &RLlscOp::Sc { pid: 0, new: 2 });
        assert_eq!(r, RLlscResp::Bool(true));
        let (_, r) = spec.apply(&q, &RLlscOp::Sc { pid: 0, new: 1 });
        assert_eq!(r, RLlscResp::Bool(false));
    }

    #[test]
    fn interfering_store_invalidates_link() {
        let spec = RLlscSpec::new(3, 0, 2);
        let q = spec.apply(&spec.initial_state(), &RLlscOp::Ll { pid: 0 }).0;
        let q = spec.apply(&q, &RLlscOp::Store { new: 1 }).0;
        let (_, r) = spec.apply(&q, &RLlscOp::Sc { pid: 0, new: 2 });
        assert_eq!(r, RLlscResp::Bool(false));
    }

    #[test]
    fn rl_clears_only_caller() {
        let spec = RLlscSpec::new(2, 0, 3);
        let mut q = spec.initial_state();
        for pid in 0..3 {
            q = spec.apply(&q, &RLlscOp::Ll { pid }).0;
        }
        q = spec.apply(&q, &RLlscOp::Rl { pid: 1 }).0;
        assert_eq!(q.1, 0b101);
    }
}
