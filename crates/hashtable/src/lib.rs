#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! A phase-concurrent history-independent hash table, after Shun and
//! Blelloch — the only prior work on concurrent history independence the
//! paper identifies (§1, related work, reference [42]).
//!
//! The table stores keys by linear probing with the **Robin Hood** rule and
//! a deterministic tie-break, which makes the layout a *function of the key
//! set*: whatever the insertion order, and whatever interleaving a
//! concurrent insert phase takes, the memory converges to the same canonical
//! array — history independence by unique representability (the
//! Hartline et al. characterization the paper builds on).
//!
//! *Phase-concurrent* means only operations of the same type run
//! concurrently (the restriction the paper points out in [42]): the
//! [`phase::AtomicHashTable`] allows a concurrent **insert phase** and a
//! concurrent **lookup phase**; deletions are a sequential phase
//! (backward-shift deletion, canonical again afterwards). The paper's own
//! universal construction (Algorithm 5) is exactly what removes this
//! same-type restriction — at the cost of serializing through `head`.
//!
//! [`seq::TombstoneHashTable`] is the contrast: classic tombstone deletion
//! leaks deleted keys' past presence — the table equivalent of the §4
//! register leak.

pub mod phase;
pub mod seq;

pub use phase::AtomicHashTable;
pub use seq::{HiHashTable, TombstoneHashTable};

/// The hash function shared by all tables: a fixed multiplicative hash.
/// Fixed (not randomized) so the canonical layout is determined at
/// initialization, as Proposition 3 requires of deterministic HI structures.
pub fn slot_of(key: u32, capacity: usize) -> usize {
    debug_assert!(key != 0, "key 0 is reserved for empty slots");
    let h = (u64::from(key)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % capacity
}

/// The probe distance of `key` if stored at `slot` (wrapping).
pub fn displacement(key: u32, slot: usize, capacity: usize) -> usize {
    let home = slot_of(key, capacity);
    (slot + capacity - home) % capacity
}

/// The Robin Hood priority rule with deterministic tie-break: does `incumbent`
/// keep its slot against `candidate` probing at this slot?
///
/// An incumbent keeps the slot if its displacement is strictly larger, or on
/// equal displacement if its key is larger. (Any fixed total order works;
/// what matters for unique representability is that ties never depend on
/// arrival order.)
pub fn incumbent_wins(incumbent: u32, candidate: u32, slot: usize, capacity: usize) -> bool {
    let di = displacement(incumbent, slot, capacity);
    let dc = displacement(candidate, slot, capacity);
    di > dc || (di == dc && incumbent >= candidate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displacement_wraps() {
        let cap = 8;
        for key in 1..100u32 {
            let home = slot_of(key, cap);
            assert_eq!(displacement(key, home, cap), 0);
            assert_eq!(displacement(key, (home + 3) % cap, cap), 3);
        }
    }

    #[test]
    fn priority_is_total_and_antisymmetric() {
        let cap = 16;
        for a in 1..40u32 {
            for b in 1..40u32 {
                if a == b {
                    continue;
                }
                for slot in 0..cap {
                    let ab = incumbent_wins(a, b, slot, cap);
                    let ba = incumbent_wins(b, a, slot, cap);
                    assert!(ab != ba, "exactly one of {a},{b} wins slot {slot}");
                }
            }
        }
    }
}
