#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! A phase-concurrent history-independent hash table, after Shun and
//! Blelloch — the only prior work on concurrent history independence the
//! paper identifies (§1, related work, reference [42]).
//!
//! The table stores keys by linear probing with the **Robin Hood** rule and
//! a deterministic tie-break, which makes the layout a *function of the key
//! set*: whatever the insertion order, and whatever interleaving a
//! concurrent insert phase takes, the memory converges to the same canonical
//! array — history independence by unique representability (the
//! Hartline et al. characterization the paper builds on).
//!
//! *Phase-concurrent* means only operations of the same type run
//! concurrently (the restriction the paper points out in [42]): the
//! [`phase::AtomicHashTable`] allows a concurrent **insert phase** and a
//! concurrent **lookup phase**; deletions are a sequential phase
//! (backward-shift deletion, canonical again afterwards). The paper's own
//! universal construction (Algorithm 5) is exactly what removes this
//! same-type restriction — at the cost of serializing through `head`.
//!
//! [`threaded::AtomicHiHashTable`] removes the restriction *natively*,
//! following the authors' follow-up *History-Independent Concurrent Hash
//! Tables* (arXiv:2503.21016): insert, remove and lookup interleave
//! arbitrarily, lookups are lock-free, and the slot array is canonical at
//! every state-quiescent point. [`sim::SimHiHashTable`] is its slot-level
//! simulator twin, pluggable into `hi_sim`/`hi_spec` for scheduler-driven
//! auditing.
//!
//! [`seq::TombstoneHashTable`] is the contrast: classic tombstone deletion
//! leaks deleted keys' past presence — the table equivalent of the §4
//! register leak.

pub mod phase;
pub mod seq;
pub mod sim;
pub mod threaded;

pub use phase::AtomicHashTable;
pub use seq::{HiHashTable, TombstoneHashTable};
pub use sim::SimHiHashTable;
pub use threaded::AtomicHiHashTable;

/// The hash function shared by all tables: a fixed multiplicative hash.
/// Fixed (not randomized) so the canonical layout is determined at
/// initialization, as Proposition 3 requires of deterministic HI structures.
pub fn slot_of(key: u32, capacity: usize) -> usize {
    debug_assert!(key != 0, "key 0 is reserved for empty slots");
    let h = (u64::from(key)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % capacity
}

/// The probe distance of `key` if stored at `slot` (wrapping).
pub fn displacement(key: u32, slot: usize, capacity: usize) -> usize {
    let home = slot_of(key, capacity);
    (slot + capacity - home) % capacity
}

/// The Robin Hood priority rule with deterministic tie-break: does `incumbent`
/// keep its slot against `candidate` probing at this slot?
///
/// An incumbent keeps the slot if its displacement is strictly larger, or on
/// equal displacement if its key is larger. (Any fixed total order works;
/// what matters for unique representability is that ties never depend on
/// arrival order.)
pub fn incumbent_wins(incumbent: u32, candidate: u32, slot: usize, capacity: usize) -> bool {
    let di = displacement(incumbent, slot, capacity);
    let dc = displacement(candidate, slot, capacity);
    di > dc || (di == dc && incumbent >= candidate)
}

/// The canonical Robin Hood layout of a key set: every key inserted into a
/// fresh sequential [`HiHashTable`] — the unique representation the
/// concurrent backends, their sim twin and the test oracles all compare
/// against.
///
/// # Panics
///
/// Panics if any key is 0 or the keys do not fit in `capacity`.
pub fn canonical_layout(capacity: usize, keys: impl IntoIterator<Item = u32>) -> Vec<u32> {
    let mut oracle = HiHashTable::new(capacity);
    for k in keys {
        oracle.insert(k);
    }
    oracle.memory().to_vec()
}

/// [`canonical_layout`] of a `HashSetSpec`-style state bitmask (bit `e` set
/// iff element `e` of `1..=t` is present), widened to the `Vec<u64>` shape
/// all `mem(C)` snapshots use. The one oracle both the threaded facade
/// adapter and the sim twin audit against.
pub fn canonical_slots_of_mask(capacity: usize, t: u32, state: u64) -> Vec<u64> {
    canonical_layout(capacity, (1..=t).filter(|e| state & (1 << e) != 0))
        .into_iter()
        .map(u64::from)
        .collect()
}

/// The Robin Hood carry of `key` through the contiguous occupied `run`
/// starting at slot `a` (the run must end just before an empty slot): the
/// `(slot, value)` writes that turn the run into the post-insert layout.
///
/// The writes come **far-end first** — the duplicate-then-overwrite order:
/// the carry moves each displaced incumbent strictly forward, so every write
/// lands a key *before* the write that overwrites its old copy, and no
/// present key is ever absent from memory mid-rewrite. Shared by the
/// threaded backend and its sim twin so the two can never drift.
pub fn carry_writes(key: u32, a: usize, run: &[u32], capacity: usize) -> Vec<(usize, u32)> {
    // new[j] is the post-insert content of slot (a + j) % capacity.
    let mut new = Vec::with_capacity(run.len() + 1);
    let mut cur = key;
    for (j, &occ) in run.iter().enumerate() {
        let slot = (a + j) % capacity;
        if incumbent_wins(occ, cur, slot, capacity) {
            new.push(occ);
        } else {
            new.push(cur);
            cur = occ;
        }
    }
    new.push(cur); // lands in the empty slot after the run
    let mut writes = Vec::new();
    for j in (0..new.len()).rev() {
        let old = if j < run.len() { run[j] } else { 0 };
        if new[j] != old {
            writes.push(((a + j) % capacity, new[j]));
        }
    }
    writes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displacement_wraps() {
        let cap = 8;
        for key in 1..100u32 {
            let home = slot_of(key, cap);
            assert_eq!(displacement(key, home, cap), 0);
            assert_eq!(displacement(key, (home + 3) % cap, cap), 3);
        }
    }

    #[test]
    fn carry_writes_reproduce_the_sequential_insert() {
        // Applying the shared carry to a canonical array must yield exactly
        // the canonical array of the enlarged key set, for every insertion
        // point the probe can find.
        let cap = 16;
        let keys = [7u32, 15, 23, 31, 2, 18, 34];
        for new_key in (1..=40).filter(|k| !keys.contains(k)) {
            let mut mem = canonical_layout(cap, keys.iter().copied());
            // Find the insertion point and run exactly as the backends do.
            let mut a = slot_of(new_key, cap);
            while mem[a] != 0 && incumbent_wins(mem[a], new_key, a, cap) {
                a = (a + 1) % cap;
            }
            let mut run = Vec::new();
            let mut z = a;
            while mem[z] != 0 {
                run.push(mem[z]);
                z = (z + 1) % cap;
            }
            for (slot, val) in carry_writes(new_key, a, &run, cap) {
                mem[slot] = val;
            }
            let expected = canonical_layout(cap, keys.iter().copied().chain([new_key]));
            assert_eq!(mem, expected, "inserting {new_key}");
        }
    }

    #[test]
    fn priority_is_total_and_antisymmetric() {
        let cap = 16;
        for a in 1..40u32 {
            for b in 1..40u32 {
                if a == b {
                    continue;
                }
                for slot in 0..cap {
                    let ab = incumbent_wins(a, b, slot, cap);
                    let ba = incumbent_wins(b, a, slot, cap);
                    assert!(ab != ba, "exactly one of {a},{b} wins slot {slot}");
                }
            }
        }
    }
}
