//! Simulator twin of [`AtomicHiHashTable`](crate::threaded::AtomicHiHashTable):
//! the same phase-free protocol — seqlock-serialized updates with
//! duplicate-then-overwrite shifting, lock-free seqlock-validated lookups —
//! as a slot-level step machine over [`hi_sim`]'s shared memory, one
//! primitive per step, so the seeded scheduler can interleave it arbitrarily
//! and `hi_spec` can audit linearizability and canonical memory.
//!
//! Memory layout: cell 0 is the seqlock word, cells `1..=capacity` are the
//! slots (0 = empty, else a key in `1..=t`). As in the threaded backend, the
//! seqlock word is synchronization state, not part of the canonical
//! representation; use [`SimHiHashTable::slots_of`] to project a snapshot
//! onto the slot array before comparing against
//! [`SimHiHashTable::canonical_slots`].

use hi_core::objects::{HashSetOp, HashSetResp, HashSetSpec};
use hi_core::{HiLevel, Pid, Progress, Roles};
use hi_sim::{CellDomain, CellId, Implementation, MemCtx, ProcessHandle, SharedMem};
use hi_spec::{CanonicalView, ObservationModel, SimAudit, SimObject};

use crate::{carry_writes, displacement, incumbent_wins, slot_of};

/// The phase-free HI hash table as a simulator implementation of
/// [`HashSetSpec`]. Any of the `n` processes may run any operation.
#[derive(Clone, Debug)]
pub struct SimHiHashTable {
    spec: HashSetSpec,
    capacity: usize,
    n: usize,
    seq: CellId,
    slots: Vec<CellId>,
    mem: SharedMem,
}

impl SimHiHashTable {
    /// Creates a table over `{1..=t}` with `capacity` slots, shared by `n`
    /// processes.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity > t` (the domain must never fill the table).
    pub fn new(t: u32, capacity: usize, n: usize) -> Self {
        assert!(
            capacity > t as usize,
            "capacity {capacity} must exceed the domain size {t}"
        );
        let spec = HashSetSpec::new(t);
        let mut mem = SharedMem::new();
        let seq = mem.alloc("seq", CellDomain::Word, 0);
        let slots = (0..capacity)
            .map(|i| mem.alloc(format!("H[{i}]"), CellDomain::Bounded(u64::from(t) + 1), 0))
            .collect();
        SimHiHashTable {
            spec,
            capacity,
            n,
            seq,
            slots,
            mem,
        }
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Projects a full memory snapshot onto the slot array (drops the
    /// seqlock word).
    pub fn slots_of<'a>(&self, snap: &'a [u64]) -> &'a [u64] {
        &snap[1..]
    }

    /// The abstract state (bitmask) decoded from a snapshot's slot array.
    /// Only meaningful at state-quiescent points, where the array holds
    /// exactly the present keys.
    pub fn decode_state(&self, snap: &[u64]) -> u64 {
        self.slots_of(snap)
            .iter()
            .filter(|&&k| k != 0)
            .fold(0u64, |mask, &k| mask | (1 << k))
    }

    /// The canonical slot array of abstract state `state`, via the
    /// sequential oracle.
    pub fn canonical_slots(&self, state: u64) -> Vec<u64> {
        crate::canonical_slots_of_mask(self.capacity, self.spec.t(), state)
    }
}

/// What an update does once it finds its probe verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum UpdateKind {
    Insert(u32),
    Remove(u32),
}

impl UpdateKind {
    fn key(&self) -> u32 {
        match self {
            UpdateKind::Insert(k) | UpdateKind::Remove(k) => *k,
        }
    }
}

/// Program counter of one table operation.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Pc {
    Idle,
    /// Update path: read `seq`, hoping for an even value.
    AcquireRead {
        op: UpdateKind,
    },
    /// Update path: CAS `seq` from even `s` to `s + 1`.
    AcquireCas {
        op: UpdateKind,
        s: u64,
    },
    /// Update path: probe walk under the held lock.
    Probe {
        op: UpdateKind,
        s: u64,
        i: usize,
        travelled: usize,
    },
    /// Insert: collect the occupied run from the insertion point.
    Collect {
        key: u32,
        s: u64,
        a: usize,
        run: Vec<u32>,
    },
    /// Remove: collect the backward-shift run after the hole.
    ShiftScan {
        s: u64,
        hole: usize,
        writes: Vec<(usize, u32)>,
    },
    /// Apply the precomputed slot writes, one per step.
    Write {
        s: u64,
        writes: Vec<(usize, u32)>,
        idx: usize,
        resp: bool,
    },
    /// Store `s + 1` into `seq` and respond.
    Release {
        s: u64,
        resp: bool,
    },
    /// Lookup: read `seq` to open the validation window.
    LookSeq {
        key: u32,
    },
    /// Lookup: probe walk.
    LookScan {
        key: u32,
        s1: u64,
        i: usize,
        travelled: usize,
    },
    /// Lookup: re-read `seq`; absent verdict stands only if unchanged+even.
    LookValidate {
        key: u32,
        s1: u64,
    },
}

/// The per-process step machine of [`SimHiHashTable`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimHiHashTableProcess {
    capacity: usize,
    seq: CellId,
    slots: Vec<CellId>,
    pc: Pc,
}

impl SimHiHashTableProcess {
    fn slot(&self, i: usize) -> CellId {
        self.slots[i]
    }
}

impl ProcessHandle<HashSetSpec> for SimHiHashTableProcess {
    fn invoke(&mut self, op: HashSetOp) {
        assert!(self.is_idle(), "operation already pending");
        self.pc = match op {
            HashSetOp::Insert(e) => Pc::AcquireRead {
                op: UpdateKind::Insert(e),
            },
            HashSetOp::Remove(e) => Pc::AcquireRead {
                op: UpdateKind::Remove(e),
            },
            HashSetOp::Contains(e) => Pc::LookSeq { key: e },
        };
    }

    fn is_idle(&self) -> bool {
        self.pc == Pc::Idle
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<HashSetResp> {
        let cap = self.capacity;
        match self.pc.clone() {
            Pc::Idle => panic!("step of idle process"),
            Pc::AcquireRead { op } => {
                let s = ctx.read(self.seq);
                self.pc = if s % 2 == 0 {
                    Pc::AcquireCas { op, s }
                } else {
                    Pc::AcquireRead { op }
                };
                None
            }
            Pc::AcquireCas { op, s } => {
                self.pc = if ctx.cas(self.seq, s, s + 1) {
                    Pc::Probe {
                        op,
                        s: s + 1,
                        i: slot_of(op.key(), cap),
                        travelled: 0,
                    }
                } else {
                    Pc::AcquireRead { op }
                };
                None
            }
            Pc::Probe {
                op,
                s,
                i,
                travelled,
            } => {
                assert!(travelled < cap, "locked probe found no terminator");
                let occ = ctx.read(self.slot(i)) as u32;
                let key = op.key();
                if occ == key {
                    // Present: an insert is a duplicate, a remove starts its
                    // backward shift at this hole.
                    self.pc = match op {
                        UpdateKind::Insert(_) => Pc::Release { s, resp: false },
                        UpdateKind::Remove(_) => Pc::ShiftScan {
                            s,
                            hole: i,
                            writes: Vec::new(),
                        },
                    };
                } else if occ == 0 || !incumbent_wins(occ, key, i, cap) {
                    // Absent: an insert starts collecting its run here, a
                    // remove is a no-op.
                    self.pc = match op {
                        UpdateKind::Insert(_) => Pc::Collect {
                            key,
                            s,
                            a: i,
                            run: Vec::new(),
                        },
                        UpdateKind::Remove(_) => Pc::Release { s, resp: false },
                    };
                } else {
                    self.pc = Pc::Probe {
                        op,
                        s,
                        i: (i + 1) % cap,
                        travelled: travelled + 1,
                    };
                }
                None
            }
            Pc::Collect { key, s, a, mut run } => {
                assert!(run.len() < cap, "insert found no empty slot: table full");
                let occ = ctx.read(self.slot((a + run.len()) % cap)) as u32;
                if occ == 0 {
                    let writes = carry_writes(key, a, &run, cap);
                    self.pc = Pc::Write {
                        s,
                        writes,
                        idx: 0,
                        resp: true,
                    };
                } else {
                    run.push(occ);
                    self.pc = Pc::Collect { key, s, a, run };
                }
                None
            }
            Pc::ShiftScan {
                s,
                hole,
                mut writes,
            } => {
                let next = (hole + 1) % cap;
                let occ = ctx.read(self.slot(next)) as u32;
                if occ == 0 || displacement(occ, next, cap) == 0 {
                    writes.push((hole, 0));
                    self.pc = Pc::Write {
                        s,
                        writes,
                        idx: 0,
                        resp: true,
                    };
                } else {
                    writes.push((hole, occ));
                    self.pc = Pc::ShiftScan {
                        s,
                        hole: next,
                        writes,
                    };
                }
                None
            }
            Pc::Write {
                s,
                writes,
                idx,
                resp,
            } => {
                if idx < writes.len() {
                    let (slot, val) = writes[idx];
                    ctx.write(self.slot(slot), u64::from(val));
                    self.pc = Pc::Write {
                        s,
                        writes,
                        idx: idx + 1,
                        resp,
                    };
                    None
                } else {
                    // No primitive left to batch with the release; fall
                    // through to the release store on this step.
                    ctx.write(self.seq, s + 1);
                    self.pc = Pc::Idle;
                    Some(HashSetResp::Bool(resp))
                }
            }
            Pc::Release { s, resp } => {
                ctx.write(self.seq, s + 1);
                self.pc = Pc::Idle;
                Some(HashSetResp::Bool(resp))
            }
            Pc::LookSeq { key } => {
                let s1 = ctx.read(self.seq);
                self.pc = Pc::LookScan {
                    key,
                    s1,
                    i: slot_of(key, cap),
                    travelled: 0,
                };
                None
            }
            Pc::LookScan {
                key,
                s1,
                i,
                travelled,
            } => {
                if travelled >= cap {
                    // Full turn without a terminator: interference; retry.
                    self.pc = Pc::LookSeq { key };
                    return None;
                }
                let occ = ctx.read(self.slot(i)) as u32;
                if occ == key {
                    self.pc = Pc::Idle;
                    return Some(HashSetResp::Bool(true));
                }
                if occ == 0 || !incumbent_wins(occ, key, i, cap) {
                    self.pc = Pc::LookValidate { key, s1 };
                } else {
                    self.pc = Pc::LookScan {
                        key,
                        s1,
                        i: (i + 1) % cap,
                        travelled: travelled + 1,
                    };
                }
                None
            }
            Pc::LookValidate { key, s1 } => {
                let s2 = ctx.read(self.seq);
                if s1 % 2 == 0 && s2 == s1 {
                    self.pc = Pc::Idle;
                    Some(HashSetResp::Bool(false))
                } else {
                    self.pc = Pc::LookSeq { key };
                    None
                }
            }
        }
    }

    fn peeked_cell(&self) -> Option<CellId> {
        match &self.pc {
            Pc::Idle => None,
            Pc::AcquireRead { .. }
            | Pc::AcquireCas { .. }
            | Pc::Release { .. }
            | Pc::LookSeq { .. }
            | Pc::LookValidate { .. } => Some(self.seq),
            Pc::Probe { i, .. } | Pc::LookScan { i, .. } => Some(self.slot(*i)),
            Pc::Collect { a, run, .. } => Some(self.slot((a + run.len()) % self.capacity)),
            Pc::ShiftScan { hole, .. } => Some(self.slot((hole + 1) % self.capacity)),
            Pc::Write { writes, idx, .. } => Some(if *idx < writes.len() {
                self.slot(writes[*idx].0)
            } else {
                self.seq
            }),
        }
    }
}

impl Implementation<HashSetSpec> for SimHiHashTable {
    type Process = SimHiHashTableProcess;

    fn spec(&self) -> &HashSetSpec {
        &self.spec
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn init_memory(&self) -> SharedMem {
        self.mem.clone()
    }

    fn make_process(&self, _pid: Pid) -> SimHiHashTableProcess {
        SimHiHashTableProcess {
            capacity: self.capacity,
            seq: self.seq,
            slots: self.slots.clone(),
            pc: Pc::Idle,
        }
    }
}

impl SimObject<HashSetSpec> for SimHiHashTable {
    type Machine = Self;

    fn spec(&self) -> &HashSetSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::MultiProcess { n: self.n }
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::StateQuiescent
    }

    fn progress(&self) -> Progress {
        // An updater crashing inside the seqlock critical section leaves
        // the sequence word odd forever: every later update and every
        // absent-verdict lookup wedges. Migrating updates to lock-free
        // helping (arXiv:2503.21016) is the ROADMAP follow-up this class
        // will graduate from.
        Progress::Blocking
    }

    fn implementation(&self) -> &Self {
        self
    }

    /// Direct canonicity over the slot array: at every state-quiescent
    /// point the slots (the memory representation proper; cell 0 is the
    /// seqlock word) must equal the canonical Robin Hood layout of the
    /// decoded key set. Strictly stronger than same-state-same-memory
    /// monitoring, and what justifies excluding the synchronization word —
    /// the same exclusion the threaded adapter's `mem_snapshot` makes.
    fn hi_audit(&self) -> SimAudit<HashSetSpec, Self> {
        let oracle = self.clone();
        SimAudit::direct_canonical(ObservationModel::StateQuiescent, move |snap| {
            let state = oracle.decode_state(snap);
            CanonicalView {
                observed: oracle.slots_of(snap).to_vec(),
                canonical: oracle.canonical_slots(state),
                state: format!("{state:#b}"),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::ObjectSpec;
    use hi_sim::Executor;

    #[test]
    fn solo_ops_match_the_sequential_oracle() {
        let imp = SimHiHashTable::new(6, 8, 2);
        let mut exec = Executor::new(imp.clone());
        let script = [
            (HashSetOp::Insert(3), true),
            (HashSetOp::Insert(3), false),
            (HashSetOp::Insert(5), true),
            (HashSetOp::Contains(5), true),
            (HashSetOp::Remove(3), true),
            (HashSetOp::Remove(3), false),
            (HashSetOp::Contains(3), false),
        ];
        let mut state = 0u64;
        for (op, expect) in script {
            let resp = exec.run_op_solo(Pid(0), op, 1_000).unwrap();
            assert_eq!(resp, HashSetResp::Bool(expect), "{op:?}");
            state = exec.spec().apply(&state, &op).0;
            assert_eq!(
                imp.slots_of(&exec.snapshot()),
                imp.canonical_slots(state),
                "state-quiescent memory canonical after {op:?}"
            );
            assert_eq!(imp.decode_state(&exec.snapshot()), state);
        }
    }

    #[test]
    fn lookup_retries_while_an_update_is_in_flight() {
        let imp = SimHiHashTable::new(6, 8, 2);
        let mut exec = Executor::new(imp);
        exec.run_op_solo(Pid(0), HashSetOp::Insert(2), 1_000)
            .unwrap();
        // Start an insert on pid 0 and stall it right after lock acquisition.
        exec.invoke(Pid(0), HashSetOp::Insert(5));
        for _ in 0..3 {
            assert!(exec.step(Pid(0)).is_none());
        }
        // A lookup for an absent key cannot produce a verdict while the
        // seqlock is odd: it keeps cycling through its retry loop.
        exec.invoke(Pid(1), HashSetOp::Contains(4));
        for _ in 0..40 {
            assert!(
                exec.step(Pid(1)).is_none(),
                "absent verdict accepted while an update was in flight"
            );
        }
        // Present keys are still sighted mid-update.
        let resp = exec.run_solo(Pid(0), 1_000).unwrap().1;
        assert_eq!(resp, HashSetResp::Bool(true));
        let resp = exec.run_solo(Pid(1), 1_000).unwrap().1;
        assert_eq!(resp, HashSetResp::Bool(false));
    }
}
