//! The phase-free concurrent HI hash table: `insert`, `remove` and
//! `contains` may be invoked concurrently, in any mix, from any number of
//! threads — the restriction the paper points out in the phase-concurrent
//! tables of [42] is gone from the API, following the direction of the
//! authors' follow-up *History-Independent Concurrent Hash Tables*
//! (arXiv:2503.21016).
//!
//! # Design
//!
//! The memory representation is the same canonical Robin Hood array as
//! [`HiHashTable`](crate::seq::HiHashTable): linear probing, the fixed
//! priority rule of [`incumbent_wins`](crate::incumbent_wins), backward-shift
//! deletion, no tombstones. Unique representability makes the slot array a
//! function of the abstract key set, so the table is **state-quiescent HI**:
//! whenever no update is in flight, `memory()` equals the canonical layout.
//!
//! Concurrency is split by operation kind:
//!
//! * **Lookups never block and never write.** A `contains` walks the probe
//!   sequence; sighting the key anywhere is a valid *present* verdict at the
//!   instant of that read. An *absent* verdict is accepted only if a seqlock
//!   word (`seq`) is even and unchanged across the whole walk — i.e. the walk
//!   ran inside an update-free window, where the array is canonical and the
//!   Robin Hood terminator genuinely proves absence. Otherwise the walk
//!   retries; it can be starved only while updates keep completing, so
//!   lookups are lock-free.
//! * **Updates serialize through `seq`** (CAS even→odd to acquire, store +2
//!   to release) and perform their multi-slot rewrites in a
//!   *duplicate-then-overwrite* order chosen so that **no present key is
//!   ever absent from the array mid-update** — an insert's displacement
//!   chain is written far-end first, a removal's backward shift near-end
//!   first. A concurrent lookup can therefore never miss a present key
//!   without the seqlock also telling it to retry, and never sights a key
//!   that was not (at that instant) either present or mid-operation.
//!
//! This is an engineering reduction of the follow-up paper: their table
//! makes *updates* lock-free as well (a substantially more intricate
//! protocol); here updates are mutually exclusive and only lookups are
//! lock-free. One further honest caveat: the seqlock word is an operation
//! counter, so while the slot array — the memory representation proper,
//! what [`memory`](AtomicHiHashTable::memory) exposes — is canonical at
//! state-quiescent points, the synchronization word leaks an update count
//! (the paper's bounded-timestamp machinery would be needed to remove it).
//! Both gaps are recorded in the ROADMAP.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crate::seq::HiHashTable;
use crate::{carry_writes, displacement, incumbent_wins, slot_of};

const ORD: Ordering = Ordering::SeqCst;

/// The phase-free concurrent HI hash set over nonzero `u32` keys. All
/// operations take `&self` and may run from any number of threads in any
/// mix; see the module docs for the concurrency contract.
#[derive(Debug)]
pub struct AtomicHiHashTable {
    slots: Box<[AtomicU32]>,
    /// Seqlock over updates: odd while an update is rewriting slots.
    seq: AtomicU64,
    /// Number of stored keys; only updated under the seqlock. The table
    /// keeps at least one slot empty (see [`insert`](Self::insert)) so that
    /// every probe walk terminates.
    len: AtomicUsize,
}

impl AtomicHiHashTable {
    /// Creates an empty table with `capacity` slots. The table stores at
    /// most `capacity - 1` keys (one slot always stays empty so probe walks
    /// terminate).
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "a probe-terminating table needs 2+ slots");
        AtomicHiHashTable {
            slots: (0..capacity).map(|_| AtomicU32::new(0)).collect(),
            seq: AtomicU64::new(0),
            len: AtomicUsize::new(0),
        }
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of keys stored. Exact at state-quiescent points.
    pub fn len(&self) -> usize {
        self.len.load(ORD)
    }

    /// Whether the table is empty. Exact at state-quiescent points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The memory representation: the slot array (0 = empty). A consistent
    /// snapshot only at state-quiescent points (no update in flight), where
    /// it equals the canonical layout of the abstract key set.
    pub fn memory(&self) -> Vec<u32> {
        self.slots.iter().map(|s| s.load(ORD)).collect()
    }

    /// The keys currently stored, sorted (the abstract state). Only
    /// meaningful at state-quiescent points.
    pub fn keys(&self) -> Vec<u32> {
        let mut keys: Vec<u32> = self.memory().into_iter().filter(|&k| k != 0).collect();
        keys.sort_unstable();
        keys
    }

    /// Copies the current contents into a sequential [`HiHashTable`] (at
    /// state-quiescent points the layouts agree bit for bit).
    pub fn to_sequential(&self) -> HiHashTable {
        let mut seq = HiHashTable::new(self.capacity());
        for k in self.memory() {
            if k != 0 {
                seq.insert(k);
            }
        }
        seq
    }

    /// Acquires the update seqlock; returns the odd value now in `seq`.
    fn acquire(&self) -> u64 {
        loop {
            let s = self.seq.load(ORD);
            if s % 2 == 0 && self.seq.compare_exchange(s, s + 1, ORD, ORD).is_ok() {
                return s + 1;
            }
            std::hint::spin_loop();
        }
    }

    /// Releases the update seqlock acquired at odd value `s`.
    fn release(&self, s: u64) {
        self.seq.store(s + 1, ORD);
    }

    /// Walks `key`'s probe sequence under the held update lock. Returns
    /// `Ok(i)` if `key` sits at slot `i`, or `Err(i)` with the first slot at
    /// which `key` would be stored (empty, or an incumbent that loses).
    fn probe_locked(&self, key: u32) -> Result<usize, usize> {
        let cap = self.slots.len();
        let mut i = slot_of(key, cap);
        for _ in 0..cap {
            let occ = self.slots[i].load(ORD);
            if occ == key {
                return Ok(i);
            }
            if occ == 0 || !incumbent_wins(occ, key, i, cap) {
                return Err(i);
            }
            i = (i + 1) % cap;
        }
        panic!("probe of {key} found no terminator: table full?");
    }

    /// Adds `key`. Returns `true` if it was newly added, `false` if already
    /// present. Callable concurrently with any other operation.
    ///
    /// # Panics
    ///
    /// Panics if `key == 0`, or if the insert would fill the last empty
    /// slot — the table keeps one slot free so that every probe walk (its
    /// own, and every concurrent lookup's) terminates.
    pub fn insert(&self, key: u32) -> bool {
        assert!(key != 0, "key 0 is reserved");
        let cap = self.slots.len();
        let s = self.acquire();
        let a = match self.probe_locked(key) {
            Ok(_) => {
                self.release(s);
                return false;
            }
            Err(a) => a,
        };
        if self.len.load(ORD) + 1 >= cap {
            self.release(s);
            panic!(
                "insert of {key}: table of capacity {cap} already holds {} keys \
                 and must keep one slot empty",
                self.len.load(ORD)
            );
        }
        // Collect the contiguous occupied run from the insertion point to
        // the first empty slot (one exists: len < cap - 1), then apply the
        // shared Robin Hood carry in its duplicate-then-overwrite order, so
        // no present key is ever absent.
        let mut run = Vec::new();
        let mut z = a;
        loop {
            let occ = self.slots[z].load(ORD);
            if occ == 0 {
                break;
            }
            run.push(occ);
            z = (z + 1) % cap;
        }
        for (slot, val) in carry_writes(key, a, &run, cap) {
            self.slots[slot].store(val, ORD);
        }
        self.len.fetch_add(1, ORD);
        self.release(s);
        true
    }

    /// Removes `key`. Returns `true` if it was present. Callable
    /// concurrently with any other operation.
    ///
    /// # Panics
    ///
    /// Panics if `key == 0`.
    pub fn remove(&self, key: u32) -> bool {
        assert!(key != 0, "key 0 is reserved");
        let cap = self.slots.len();
        let s = self.acquire();
        let p = match self.probe_locked(key) {
            Ok(p) => p,
            Err(_) => {
                self.release(s);
                return false;
            }
        };
        // Backward shift, near-end first: each displaced successor is
        // written one slot back (duplicating it) before its old copy is
        // overwritten by the next step; the final slot of the shifted run
        // is cleared last. No present key is ever absent.
        let mut hole = p;
        loop {
            let next = (hole + 1) % cap;
            let occ = self.slots[next].load(ORD);
            if occ == 0 || displacement(occ, next, cap) == 0 {
                break;
            }
            self.slots[hole].store(occ, ORD);
            hole = next;
        }
        self.slots[hole].store(0, ORD);
        self.len.fetch_sub(1, ORD);
        self.release(s);
        true
    }

    /// Membership test: lock-free, never blocks updates.
    ///
    /// # Panics
    ///
    /// Panics if `key == 0`.
    pub fn contains(&self, key: u32) -> bool {
        assert!(key != 0, "key 0 is reserved");
        let cap = self.slots.len();
        'retry: loop {
            let s1 = self.seq.load(ORD);
            let mut i = slot_of(key, cap);
            for _ in 0..cap {
                let occ = self.slots[i].load(ORD);
                if occ == key {
                    // A sighting is a valid linearization point on its own:
                    // at the instant of this load the key was in memory.
                    return true;
                }
                if occ == 0 || !incumbent_wins(occ, key, i, cap) {
                    // Absence is provable only from a canonical array; the
                    // walk must have run inside an update-free window.
                    if s1 % 2 == 0 && self.seq.load(ORD) == s1 {
                        return false;
                    }
                    std::hint::spin_loop();
                    continue 'retry;
                }
                i = (i + 1) % cap;
            }
            // Walked a full turn without a terminator: an update was
            // rewriting under us (or the table is over-full). Retry.
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn sequential_equivalence_single_thread() {
        let table = AtomicHiHashTable::new(32);
        let mut reference = HiHashTable::new(32);
        for k in [5u32, 21, 37, 9, 13, 45] {
            assert!(table.insert(k));
            reference.insert(k);
        }
        assert!(!table.insert(21), "duplicate rejected");
        assert_eq!(table.memory(), reference.memory());
        assert!(table.contains(37));
        assert!(!table.contains(99));
        assert!(table.remove(21));
        assert!(!table.remove(21));
        reference.remove(21);
        assert_eq!(table.memory(), reference.memory());
    }

    #[test]
    fn len_tracks_the_key_count() {
        let table = AtomicHiHashTable::new(8);
        assert!(table.is_empty());
        for (i, k) in [4u32, 9, 13].into_iter().enumerate() {
            table.insert(k);
            assert_eq!(table.len(), i + 1);
        }
        table.insert(9); // duplicate: no growth
        assert_eq!(table.len(), 3);
        table.remove(4);
        table.remove(4); // absent: no shrink
        assert_eq!(table.len(), 2);
    }

    #[test]
    #[should_panic(expected = "must keep one slot empty")]
    fn filling_the_last_slot_is_rejected() {
        // The table must never become full: a full array has no probe
        // terminator, which would livelock concurrent lookups and leave
        // probe_locked without an answer. The last empty slot is reserved.
        let table = AtomicHiHashTable::new(4);
        for k in 1..=4u32 {
            table.insert(k);
        }
    }

    #[test]
    fn capacity_minus_one_keys_still_work() {
        let table = AtomicHiHashTable::new(4);
        for k in 1..=3u32 {
            assert!(table.insert(k));
        }
        assert!(table.contains(2));
        assert!(
            !table.contains(9),
            "absent lookup terminates at the reserved empty slot"
        );
        assert!(table.remove(2));
        assert!(table.insert(9));
        let mem = table.memory();
        assert_eq!(mem.iter().filter(|&&k| k == 0).count(), 1);
    }

    #[test]
    fn mixed_concurrent_workload_converges_to_canonical() {
        // The phase-free headline: inserts, removes and lookups from all
        // threads at once, no phase discipline anywhere; afterwards the
        // memory is the canonical layout of the surviving key set.
        for seed in 0..12u64 {
            let table = AtomicHiHashTable::new(64);
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let table = &table;
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(seed * 13 + t);
                        for _ in 0..400 {
                            let k = rng.gen_range(1u32..40);
                            match rng.gen_range(0u8..3) {
                                0 => {
                                    table.insert(k);
                                }
                                1 => {
                                    table.remove(k);
                                }
                                _ => {
                                    table.contains(k);
                                }
                            }
                        }
                    });
                }
            });
            let mem = table.memory();
            let canonical = crate::canonical_layout(64, mem.iter().copied().filter(|&k| k != 0));
            assert_eq!(
                mem, canonical,
                "seed {seed}: quiescent memory is not canonical for its own key set"
            );
        }
    }

    #[test]
    fn racing_duplicate_inserts_place_exactly_one_copy() {
        // The hazard the phase-concurrent table documents (and can only
        // debug-assert about) is handled here by construction: updates
        // serialize, so exactly one of the racing inserts reports success.
        for _ in 0..50 {
            let table = AtomicHiHashTable::new(16);
            let successes = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let table = &table;
                    let successes = &successes;
                    s.spawn(move || {
                        if table.insert(7) {
                            successes.fetch_add(1, ORD);
                        }
                    });
                }
            });
            assert_eq!(successes.load(ORD), 1, "exactly one insert wins");
            let copies = table.memory().iter().filter(|&&k| k == 7).count();
            assert_eq!(copies, 1, "exactly one copy in memory");
        }
    }

    #[test]
    fn lookups_never_miss_a_stable_key() {
        // Key 1 is inserted once and never removed; all other keys churn.
        // Every contains(1) must return true, however the updates shift the
        // array around it.
        let table = AtomicHiHashTable::new(32);
        assert!(table.insert(1));
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let table = &table;
            let stop = &stop;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(99);
                while !stop.load(ORD) {
                    let k = rng.gen_range(2u32..24);
                    if rng.gen_bool(0.5) {
                        table.insert(k);
                    } else {
                        table.remove(k);
                    }
                }
            });
            s.spawn(move || {
                for _ in 0..20_000 {
                    assert!(table.contains(1), "a present key was missed");
                }
                stop.store(true, ORD);
            });
        });
    }

    #[test]
    fn detour_histories_share_memory() {
        // History independence across real-thread histories: a table that
        // took detours (inserted and removed extra keys, concurrently) ends
        // with the same memory as one built directly.
        let direct = AtomicHiHashTable::new(32);
        for k in [3u32, 11, 19, 27] {
            direct.insert(k);
        }
        let detour = AtomicHiHashTable::new(32);
        std::thread::scope(|s| {
            let detour = &detour;
            s.spawn(move || {
                for k in [3u32, 11, 19, 27] {
                    detour.insert(k);
                }
            });
            s.spawn(move || {
                for k in 40u32..60 {
                    detour.insert(k);
                    detour.remove(k);
                }
            });
        });
        assert_eq!(direct.memory(), detour.memory());
    }
}
