//! Sequential canonical Robin Hood table and the leaky tombstone contrast.

use crate::{displacement, incumbent_wins, slot_of};

/// A sequential history-independent hash set over nonzero `u32` keys:
/// linear probing with the Robin Hood rule and deterministic tie-break,
/// backward-shift deletion. The array is a function of the key set alone —
/// a canonical representation in the sense of Proposition 3.
///
/// # Example
///
/// ```
/// use hi_hashtable::HiHashTable;
///
/// let mut a = HiHashTable::new(16);
/// let mut b = HiHashTable::new(16);
/// for k in [3, 9, 14] { a.insert(k); }
/// for k in [14, 3, 9] { b.insert(k); }
/// b.insert(77);
/// b.remove(77);
/// assert_eq!(a.memory(), b.memory(), "same set, same memory");
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HiHashTable {
    slots: Vec<u32>, // 0 = empty
    len: usize,
}

impl HiHashTable {
    /// Creates an empty table with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        HiHashTable {
            slots: vec![0; capacity],
            len: 0,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The memory representation: the slot array itself.
    pub fn memory(&self) -> &[u32] {
        &self.slots
    }

    /// Inserts `key`; returns `false` if it was already present.
    ///
    /// # Panics
    ///
    /// Panics if `key == 0` or the table is full.
    pub fn insert(&mut self, key: u32) -> bool {
        assert!(key != 0, "key 0 is reserved");
        assert!(self.len < self.slots.len(), "table full");
        let cap = self.slots.len();
        let mut cur = key;
        let mut i = slot_of(cur, cap);
        loop {
            let occupant = self.slots[i];
            if occupant == 0 {
                self.slots[i] = cur;
                self.len += 1;
                return true;
            }
            if occupant == cur {
                return false; // duplicate (only possible for the original key)
            }
            if !incumbent_wins(occupant, cur, i, cap) {
                // Robin Hood: the candidate evicts the incumbent and the
                // incumbent continues probing.
                self.slots[i] = cur;
                cur = occupant;
            }
            i = (i + 1) % cap;
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u32) -> bool {
        assert!(key != 0);
        let cap = self.slots.len();
        let mut i = slot_of(key, cap);
        loop {
            let occupant = self.slots[i];
            if occupant == key {
                return true;
            }
            // Robin Hood search cutoff: once we meet an empty slot or an
            // occupant that would have lost to `key`, the key cannot be
            // further along.
            if occupant == 0 || !incumbent_wins(occupant, key, i, cap) {
                return false;
            }
            i = (i + 1) % cap;
        }
    }

    /// Removes `key`; returns `false` if absent. Backward-shift deletion
    /// restores the canonical layout (no tombstones).
    pub fn remove(&mut self, key: u32) -> bool {
        assert!(key != 0);
        let cap = self.slots.len();
        let mut i = slot_of(key, cap);
        loop {
            let occupant = self.slots[i];
            if occupant == key {
                break;
            }
            if occupant == 0 || !incumbent_wins(occupant, key, i, cap) {
                return false;
            }
            i = (i + 1) % cap;
        }
        // Backward shift: pull each displaced successor one slot back until
        // an empty slot or a zero-displacement entry.
        self.slots[i] = 0;
        let mut hole = i;
        let mut j = (i + 1) % cap;
        loop {
            let occupant = self.slots[j];
            if occupant == 0 || displacement(occupant, j, cap) == 0 {
                break;
            }
            self.slots[hole] = occupant;
            self.slots[j] = 0;
            hole = j;
            j = (j + 1) % cap;
        }
        self.len -= 1;
        true
    }

    /// The keys currently stored, sorted (the abstract state).
    pub fn keys(&self) -> Vec<u32> {
        let mut keys: Vec<u32> = self.slots.iter().copied().filter(|&k| k != 0).collect();
        keys.sort_unstable();
        keys
    }
}

/// The non-HI contrast: linear probing with **tombstones**. A deleted key
/// leaves a marker so probe chains stay intact — and so the memory betrays
/// that something was deleted, and where.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TombstoneHashTable {
    slots: Vec<u32>,
    len: usize,
}

/// The tombstone marker (`u32::MAX` cannot be a key).
pub const TOMBSTONE: u32 = u32::MAX;

impl TombstoneHashTable {
    /// Creates an empty table with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        TombstoneHashTable {
            slots: vec![0; capacity],
            len: 0,
        }
    }

    /// The memory representation, tombstones and all.
    pub fn memory(&self) -> &[u32] {
        &self.slots
    }

    /// Inserts `key` by first-fit linear probing (reusing tombstones).
    pub fn insert(&mut self, key: u32) -> bool {
        assert!(key != 0 && key != TOMBSTONE);
        assert!(self.len < self.slots.len(), "table full");
        let cap = self.slots.len();
        let mut i = slot_of(key, cap);
        let mut target = None;
        loop {
            let occupant = self.slots[i];
            if occupant == 0 {
                let t = target.unwrap_or(i);
                self.slots[t] = key;
                self.len += 1;
                return true;
            }
            if occupant == TOMBSTONE {
                target.get_or_insert(i);
            } else if occupant == key {
                return false;
            }
            i = (i + 1) % cap;
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u32) -> bool {
        let cap = self.slots.len();
        let mut i = slot_of(key, cap);
        loop {
            match self.slots[i] {
                0 => return false,
                k if k == key => return true,
                _ => i = (i + 1) % cap,
            }
        }
    }

    /// Removes `key`, leaving a tombstone.
    pub fn remove(&mut self, key: u32) -> bool {
        let cap = self.slots.len();
        let mut i = slot_of(key, cap);
        loop {
            match self.slots[i] {
                0 => return false,
                k if k == key => {
                    self.slots[i] = TOMBSTONE;
                    self.len -= 1;
                    return true;
                }
                _ => i = (i + 1) % cap,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_lookup_remove_round_trip() {
        let mut t = HiHashTable::new(16);
        assert!(t.insert(5));
        assert!(t.insert(21)); // likely colliding with 5 (same mod class)
        assert!(!t.insert(5));
        assert!(t.contains(5) && t.contains(21));
        assert!(!t.contains(99));
        assert!(t.remove(5));
        assert!(!t.remove(5));
        assert!(t.contains(21));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn layout_is_insertion_order_independent() {
        let keys = [7u32, 15, 23, 31, 2, 18];
        let mut a = HiHashTable::new(8);
        for &k in &keys {
            a.insert(k);
        }
        let mut b = HiHashTable::new(8);
        for &k in keys.iter().rev() {
            b.insert(k);
        }
        assert_eq!(a.memory(), b.memory());
    }

    #[test]
    fn deletion_restores_canonical_layout() {
        let mut with_detour = HiHashTable::new(8);
        for k in [7u32, 15, 23] {
            with_detour.insert(k);
        }
        with_detour.insert(31);
        with_detour.remove(31);
        let mut direct = HiHashTable::new(8);
        for k in [7u32, 15, 23] {
            direct.insert(k);
        }
        assert_eq!(with_detour.memory(), direct.memory());
    }

    #[test]
    fn tombstone_table_leaks_deletions() {
        let mut with_detour = TombstoneHashTable::new(8);
        for k in [7u32, 15, 23] {
            with_detour.insert(k);
        }
        with_detour.insert(31);
        with_detour.remove(31);
        let mut direct = TombstoneHashTable::new(8);
        for k in [7u32, 15, 23] {
            direct.insert(k);
        }
        assert_ne!(
            with_detour.memory(),
            direct.memory(),
            "the tombstone betrays the deleted key"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Canonicity: any permutation of inserts yields the same memory.
        #[test]
        fn canonical_under_permutation(mut keys in prop::collection::hash_set(1u32..200, 0..12)) {
            let keys: Vec<u32> = keys.drain().collect();
            let mut a = HiHashTable::new(16);
            for &k in &keys {
                a.insert(k);
            }
            let mut rev = HiHashTable::new(16);
            for &k in keys.iter().rev() {
                rev.insert(k);
            }
            prop_assert_eq!(a.memory(), rev.memory());
        }

        /// History independence: interleaving extra insert+remove pairs never
        /// changes the final memory.
        #[test]
        fn canonical_under_detours(
            keys in prop::collection::hash_set(1u32..200, 0..10),
            detours in prop::collection::vec(200u32..400, 0..5),
        ) {
            let keys: Vec<u32> = keys.into_iter().collect();
            let mut direct = HiHashTable::new(32);
            for &k in &keys {
                direct.insert(k);
            }
            let mut with_detours = HiHashTable::new(32);
            for (i, &k) in keys.iter().enumerate() {
                if let Some(&d) = detours.get(i % detours.len().max(1)) {
                    with_detours.insert(d);
                    with_detours.remove(d);
                }
                with_detours.insert(k);
            }
            for &d in &detours {
                with_detours.insert(d);
            }
            for &d in &detours {
                with_detours.remove(d);
            }
            prop_assert_eq!(direct.memory(), with_detours.memory());
        }

        /// The table agrees with a reference set on membership.
        #[test]
        fn matches_reference_set(ops in prop::collection::vec((0u8..3, 1u32..60), 0..60)) {
            let mut t = HiHashTable::new(64);
            let mut model = std::collections::BTreeSet::new();
            for (kind, k) in ops {
                match kind {
                    0 => {
                        prop_assert_eq!(t.insert(k), model.insert(k));
                    }
                    1 => {
                        prop_assert_eq!(t.remove(k), model.remove(&k));
                    }
                    _ => {
                        prop_assert_eq!(t.contains(k), model.contains(&k));
                    }
                }
            }
            prop_assert_eq!(t.keys(), model.into_iter().collect::<Vec<_>>());
        }
    }
}
