//! The phase-concurrent table: concurrent insert phases and lookup phases
//! on atomic slots, sequential delete phases.
//!
//! The insert phase runs the Robin Hood displacement rule with per-slot CAS:
//! a thread claims an empty slot, or evicts a lower-priority incumbent and
//! continues inserting the evictee. Because the priority rule is a fixed
//! total order (no arrival-time tie-breaks), the final array is the unique
//! canonical layout of the inserted key set *regardless of interleaving* —
//! the determinism Shun and Blelloch prove for their phase-concurrent
//! tables, checked here empirically against the sequential layout.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::seq::HiHashTable;
use crate::{incumbent_wins, slot_of};

const ORD: Ordering = Ordering::SeqCst;

/// The phase-concurrent HI hash set. Within one phase, any number of
/// threads may call the phase's operation concurrently; phases are switched
/// by the single owner of the `&mut` reference (the *phase-concurrent*
/// discipline of [42]).
#[derive(Debug)]
pub struct AtomicHashTable {
    slots: Box<[AtomicU32]>,
}

impl AtomicHashTable {
    /// Creates an empty table with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        AtomicHashTable {
            slots: (0..capacity).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The memory representation. An atomic snapshot only between phases.
    pub fn memory(&self) -> Vec<u32> {
        self.slots.iter().map(|s| s.load(ORD)).collect()
    }

    /// Insert-phase operation: adds `key`, callable concurrently from any
    /// number of threads. Lock-free; the caller must ensure the table cannot
    /// fill (keys inserted < capacity), as a full table would spin.
    ///
    /// Within one phase, each key must be inserted by at most one thread:
    /// a duplicate insert racing an eviction that momentarily holds the
    /// first copy out of memory could double-place the key. (Re-inserting a
    /// key in a later phase, or repeatedly from the same thread, is fine
    /// and idempotent.)
    ///
    /// # Panics
    ///
    /// Panics if `key == 0`.
    pub fn insert(&self, key: u32) {
        assert!(key != 0, "key 0 is reserved");
        let cap = self.slots.len();
        let mut cur = key;
        let mut i = slot_of(cur, cap);
        let mut travelled = 0usize;
        loop {
            assert!(
                travelled <= 2 * cap,
                "insert of {key} probed {travelled} slots: table over-full?"
            );
            let occupant = self.slots[i].load(ORD);
            if occupant == cur {
                return; // duplicate already placed
            }
            if occupant == 0 {
                match self.slots[i].compare_exchange(0, cur, ORD, ORD) {
                    Ok(_) => return,
                    Err(_) => continue, // slot changed under us: re-examine it
                }
            }
            if !incumbent_wins(occupant, cur, i, cap) {
                // Evict the incumbent and carry it forward.
                match self.slots[i].compare_exchange(occupant, cur, ORD, ORD) {
                    Ok(_) => {
                        cur = occupant;
                        i = (i + 1) % cap;
                        travelled += 1;
                    }
                    Err(_) => continue,
                }
            } else {
                i = (i + 1) % cap;
                travelled += 1;
            }
        }
    }

    /// Lookup-phase operation: membership test, callable concurrently.
    ///
    /// Sound only within a lookup phase (no concurrent inserts/deletes),
    /// exactly the same-type restriction the paper describes for [42].
    pub fn contains(&self, key: u32) -> bool {
        assert!(key != 0);
        let cap = self.slots.len();
        let mut i = slot_of(key, cap);
        loop {
            let occupant = self.slots[i].load(ORD);
            if occupant == key {
                return true;
            }
            if occupant == 0 || !incumbent_wins(occupant, key, i, cap) {
                return false;
            }
            i = (i + 1) % cap;
        }
    }

    /// Delete-phase operation: sequential (requires `&mut self`), using the
    /// canonical backward-shift of the sequential table.
    pub fn remove(&mut self, key: u32) -> bool {
        let mut seq = self.to_sequential();
        let removed = seq.remove(key);
        if removed {
            for (slot, &v) in self.slots.iter().zip(seq.memory()) {
                slot.store(v, ORD);
            }
        }
        removed
    }

    /// Copies the current contents into a sequential [`HiHashTable`]
    /// (between phases the layouts agree bit for bit).
    pub fn to_sequential(&self) -> HiHashTable {
        let mut seq = HiHashTable::new(self.capacity());
        for slot in self.slots.iter() {
            let v = slot.load(ORD);
            if v != 0 {
                seq.insert(v);
            }
        }
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn sequential_equivalence_single_thread() {
        let table = AtomicHashTable::new(32);
        let mut reference = HiHashTable::new(32);
        for k in [5u32, 21, 37, 9, 13, 45] {
            table.insert(k);
            reference.insert(k);
        }
        assert_eq!(table.memory(), reference.memory());
    }

    #[test]
    fn concurrent_insert_phase_is_deterministic() {
        // The headline property: whatever the thread interleaving, the
        // insert phase converges to the canonical layout.
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut keys: Vec<u32> = (1..=48).collect();
            keys.shuffle(&mut rng);
            let table = AtomicHashTable::new(64);
            std::thread::scope(|s| {
                for chunk in keys.chunks(12) {
                    let table = &table;
                    s.spawn(move || {
                        for &k in chunk {
                            table.insert(k);
                        }
                    });
                }
            });
            let mut reference = HiHashTable::new(64);
            for k in 1..=48 {
                reference.insert(k);
            }
            assert_eq!(table.memory(), reference.memory(), "seed {seed}");
        }
    }

    #[test]
    fn lookup_phase_finds_everything() {
        let table = AtomicHashTable::new(64);
        std::thread::scope(|s| {
            for base in [1u32, 17, 33] {
                let table = &table;
                s.spawn(move || {
                    for k in base..base + 16 {
                        table.insert(k);
                    }
                });
            }
        });
        std::thread::scope(|s| {
            for base in [1u32, 17, 33] {
                let table = &table;
                s.spawn(move || {
                    for k in base..base + 16 {
                        assert!(table.contains(k));
                        assert!(!table.contains(k + 100));
                    }
                });
            }
        });
    }

    #[test]
    fn delete_phase_restores_canonical_layout() {
        let mut table = AtomicHashTable::new(32);
        for k in [5u32, 21, 37, 9] {
            table.insert(k);
        }
        table.insert(53);
        assert!(table.remove(53));
        let mut reference = HiHashTable::new(32);
        for k in [5u32, 21, 37, 9] {
            reference.insert(k);
        }
        assert_eq!(table.memory(), reference.memory());
    }

    #[test]
    fn repeated_inserts_by_one_thread_are_idempotent() {
        let table = AtomicHashTable::new(16);
        std::thread::scope(|s| {
            let table = &table;
            // Distinct key ranges per thread (the phase contract); each
            // thread re-inserts its own keys several times.
            for base in [1u32, 5, 9] {
                s.spawn(move || {
                    for _ in 0..3 {
                        for k in base..base + 4 {
                            table.insert(k);
                        }
                    }
                });
            }
        });
        let mut reference = HiHashTable::new(16);
        for k in 1..=12 {
            reference.insert(k);
        }
        assert_eq!(table.memory(), reference.memory());
        assert_eq!(table.to_sequential().len(), 12);
    }
}
