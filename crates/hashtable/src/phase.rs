//! The phase-concurrent table: concurrent insert phases and lookup phases
//! on atomic slots, sequential delete phases.
//!
//! The insert phase runs the Robin Hood displacement rule with per-slot CAS:
//! a thread claims an empty slot, or evicts a lower-priority incumbent and
//! continues inserting the evictee. Because the priority rule is a fixed
//! total order (no arrival-time tie-breaks), the final array is the unique
//! canonical layout of the inserted key set *regardless of interleaving* —
//! the determinism Shun and Blelloch prove for their phase-concurrent
//! tables, checked here empirically against the sequential layout.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::seq::HiHashTable;
use crate::{incumbent_wins, slot_of};

const ORD: Ordering = Ordering::SeqCst;

/// The phase-concurrent HI hash set. Within one phase, any number of
/// threads may call the phase's operation concurrently; phases are switched
/// by the single owner of the `&mut` reference (the *phase-concurrent*
/// discipline of [42]).
#[derive(Debug)]
pub struct AtomicHashTable {
    slots: Box<[AtomicU32]>,
}

impl AtomicHashTable {
    /// Creates an empty table with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        AtomicHashTable {
            slots: (0..capacity).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The memory representation. An atomic snapshot only between phases.
    pub fn memory(&self) -> Vec<u32> {
        self.slots.iter().map(|s| s.load(ORD)).collect()
    }

    /// Insert-phase operation: adds `key`, callable concurrently from any
    /// number of threads. Lock-free; the caller must ensure the table cannot
    /// fill (keys inserted < capacity), as a full table would spin.
    ///
    /// # Contract (enforced in debug builds at phase boundaries)
    ///
    /// Within one phase, each key must be inserted by at most one thread:
    /// a duplicate insert racing an eviction that momentarily holds the
    /// first copy out of memory could double-place the key. (Re-inserting a
    /// key in a later phase, or repeatedly from the same thread, is fine
    /// and idempotent.) A violation cannot be detected reliably *during*
    /// the phase — a slot-by-slot scan can sight a key twice while an
    /// eviction legally moves it forward past the scan front — so
    /// enforcement happens where the table is quiescent: every phase switch
    /// through [`remove`](AtomicHashTable::remove) (whose `&mut self` proves
    /// exclusivity) debug-checks the whole table, and drivers can call
    /// [`debug_enforce_unique`](AtomicHashTable::debug_enforce_unique)
    /// between phases. Callers that need racing duplicate inserts should
    /// use the phase-free
    /// [`threaded::AtomicHiHashTable`](crate::threaded::AtomicHiHashTable),
    /// which serializes updates and handles them by construction.
    ///
    /// # Panics
    ///
    /// Panics if `key == 0`.
    pub fn insert(&self, key: u32) {
        assert!(key != 0, "key 0 is reserved");
        let cap = self.slots.len();
        let mut cur = key;
        let mut i = slot_of(cur, cap);
        let mut travelled = 0usize;
        loop {
            assert!(
                travelled <= 2 * cap,
                "insert of {key} probed {travelled} slots: table over-full?"
            );
            let occupant = self.slots[i].load(ORD);
            if occupant == cur {
                return; // duplicate already placed
            }
            if occupant == 0 {
                match self.slots[i].compare_exchange(0, cur, ORD, ORD) {
                    Ok(_) => return,
                    Err(_) => continue, // slot changed under us: re-examine it
                }
            }
            if !incumbent_wins(occupant, cur, i, cap) {
                // Evict the incumbent and carry it forward.
                match self.slots[i].compare_exchange(occupant, cur, ORD, ORD) {
                    Ok(_) => {
                        cur = occupant;
                        i = (i + 1) % cap;
                        travelled += 1;
                    }
                    Err(_) => continue,
                }
            } else {
                i = (i + 1) % cap;
                travelled += 1;
            }
        }
    }

    /// The number of slots currently holding `key`. **Exact only while no
    /// insert is in flight** (between phases): no instant ever has two
    /// copies of a key in memory, but this is a slot-by-slot scan, and a
    /// key legally evicted from behind the scan front and re-placed ahead
    /// of it can be sighted twice mid-phase.
    pub fn copies_of(&self, key: u32) -> usize {
        assert!(key != 0);
        self.slots.iter().filter(|s| s.load(ORD) == key).count()
    }

    /// Debug enforcement of the insert-phase contract: panics if `key` is
    /// double-placed. Call **between phases** (no insert in flight), where
    /// [`copies_of`](AtomicHashTable::copies_of) is exact;
    /// [`remove`](AtomicHashTable::remove) runs the table-wide equivalent
    /// automatically at every delete-phase entry in debug builds.
    pub fn debug_enforce_unique(&self, key: u32) {
        let copies = self.copies_of(key);
        assert!(
            copies <= 1,
            "phase contract violated: key {key} occupies {copies} slots \
             (racing duplicate inserts within one phase?)"
        );
    }

    /// Table-wide duplicate check, used by the debug phase-boundary
    /// enforcement: the first key occupying two slots, if any.
    fn first_duplicate(&self) -> Option<u32> {
        let mut seen = std::collections::HashSet::new();
        self.slots
            .iter()
            .map(|s| s.load(ORD))
            .find(|&k| k != 0 && !seen.insert(k))
    }

    /// Lookup-phase operation: membership test, callable concurrently.
    ///
    /// Sound only within a lookup phase (no concurrent inserts/deletes),
    /// exactly the same-type restriction the paper describes for [42].
    pub fn contains(&self, key: u32) -> bool {
        assert!(key != 0);
        let cap = self.slots.len();
        let mut i = slot_of(key, cap);
        loop {
            let occupant = self.slots[i].load(ORD);
            if occupant == key {
                return true;
            }
            if occupant == 0 || !incumbent_wins(occupant, key, i, cap) {
                return false;
            }
            i = (i + 1) % cap;
        }
    }

    /// Delete-phase operation: sequential (requires `&mut self`), using the
    /// canonical backward-shift of the sequential table.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the preceding insert phase double-placed a
    /// key (the `&mut self` receiver proves the table is quiescent here, so
    /// the table-wide scan is exact — see
    /// [`insert`](AtomicHashTable::insert)'s contract).
    pub fn remove(&mut self, key: u32) -> bool {
        #[cfg(debug_assertions)]
        if let Some(dup) = self.first_duplicate() {
            panic!(
                "phase contract violated: key {dup} occupies multiple slots \
                 (racing duplicate inserts in the preceding phase?)"
            );
        }
        let mut seq = self.to_sequential();
        let removed = seq.remove(key);
        if removed {
            for (slot, &v) in self.slots.iter().zip(seq.memory()) {
                slot.store(v, ORD);
            }
        }
        removed
    }

    /// Copies the current contents into a sequential [`HiHashTable`]
    /// (between phases the layouts agree bit for bit).
    pub fn to_sequential(&self) -> HiHashTable {
        let mut seq = HiHashTable::new(self.capacity());
        for slot in self.slots.iter() {
            let v = slot.load(ORD);
            if v != 0 {
                seq.insert(v);
            }
        }
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn sequential_equivalence_single_thread() {
        let table = AtomicHashTable::new(32);
        let mut reference = HiHashTable::new(32);
        for k in [5u32, 21, 37, 9, 13, 45] {
            table.insert(k);
            reference.insert(k);
        }
        assert_eq!(table.memory(), reference.memory());
    }

    #[test]
    fn concurrent_insert_phase_is_deterministic() {
        // The headline property: whatever the thread interleaving, the
        // insert phase converges to the canonical layout.
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut keys: Vec<u32> = (1..=48).collect();
            keys.shuffle(&mut rng);
            let table = AtomicHashTable::new(64);
            std::thread::scope(|s| {
                for chunk in keys.chunks(12) {
                    let table = &table;
                    s.spawn(move || {
                        for &k in chunk {
                            table.insert(k);
                        }
                    });
                }
            });
            let mut reference = HiHashTable::new(64);
            for k in 1..=48 {
                reference.insert(k);
            }
            assert_eq!(table.memory(), reference.memory(), "seed {seed}");
        }
    }

    #[test]
    fn lookup_phase_finds_everything() {
        let table = AtomicHashTable::new(64);
        std::thread::scope(|s| {
            for base in [1u32, 17, 33] {
                let table = &table;
                s.spawn(move || {
                    for k in base..base + 16 {
                        table.insert(k);
                    }
                });
            }
        });
        std::thread::scope(|s| {
            for base in [1u32, 17, 33] {
                let table = &table;
                s.spawn(move || {
                    for k in base..base + 16 {
                        assert!(table.contains(k));
                        assert!(!table.contains(k + 100));
                    }
                });
            }
        });
    }

    #[test]
    fn delete_phase_restores_canonical_layout() {
        let mut table = AtomicHashTable::new(32);
        for k in [5u32, 21, 37, 9] {
            table.insert(k);
        }
        table.insert(53);
        assert!(table.remove(53));
        let mut reference = HiHashTable::new(32);
        for k in [5u32, 21, 37, 9] {
            reference.insert(k);
        }
        assert_eq!(table.memory(), reference.memory());
    }

    #[test]
    fn copies_of_counts_and_the_debug_check_accepts_unique_keys() {
        let table = AtomicHashTable::new(16);
        for k in [3u32, 7, 11] {
            table.insert(k);
        }
        assert_eq!(table.copies_of(3), 1);
        assert_eq!(table.copies_of(5), 0);
        for k in [3u32, 7, 11] {
            table.debug_enforce_unique(k); // must not panic
        }
    }

    #[test]
    #[should_panic(expected = "phase contract violated")]
    fn debug_check_detects_a_double_placed_key() {
        // Regression test for the documented duplicate-insert hazard: build
        // the corrupted layout a racing duplicate insert can produce (the
        // same key placed in two slots) and verify the detector fires.
        let table = AtomicHashTable::new(8);
        table.slots[1].store(7, ORD);
        table.slots[5].store(7, ORD);
        table.debug_enforce_unique(7);
    }

    #[test]
    #[should_panic(expected = "phase contract violated")]
    fn delete_phase_rejects_a_double_placed_table() {
        // The automatic boundary enforcement: entering a delete phase with
        // a double-placed key must refuse rather than bake the corruption
        // into a "canonical" rebuild.
        let mut table = AtomicHashTable::new(8);
        table.slots[1].store(7, ORD);
        table.slots[5].store(7, ORD);
        table.remove(7);
    }

    #[test]
    fn racing_duplicate_inserts_never_corrupt_silently() {
        // Hammer the exact race the contract forbids: two threads inserting
        // the same fresh key amid contract-clean filler inserts. At the
        // phase boundary (threads joined, so the scan is exact) the outcome
        // must be accounted for: either the key sits in exactly one slot,
        // or it was double-placed — and then both the explicit check and
        // the delete-phase entry must report the violation rather than let
        // it corrupt the canonical layout silently.
        use std::panic::{catch_unwind, AssertUnwindSafe};

        for round in 0..200u32 {
            let mut table = AtomicHashTable::new(16);
            let dup_key = 4 + (round % 3); // vary collision patterns
            std::thread::scope(|s| {
                for t in 0..2 {
                    let table = &table;
                    s.spawn(move || {
                        // Per-thread distinct filler keys (contract-clean),
                        // then the contested duplicate.
                        let base = 20 + t * 8;
                        for k in base..base + 3 {
                            table.insert(k);
                        }
                        table.insert(dup_key);
                    });
                }
            });
            let copies = table.copies_of(dup_key);
            if copies > 1 {
                assert!(
                    catch_unwind(AssertUnwindSafe(|| table.debug_enforce_unique(dup_key))).is_err(),
                    "round {round}: double-place of {dup_key} went undetected"
                );
                assert!(
                    catch_unwind(AssertUnwindSafe(|| table.remove(dup_key))).is_err(),
                    "round {round}: the delete phase accepted a double-placed table"
                );
            } else {
                assert_eq!(copies, 1, "round {round}: key {dup_key} lost entirely");
            }
        }
    }

    #[test]
    fn repeated_inserts_by_one_thread_are_idempotent() {
        let table = AtomicHashTable::new(16);
        std::thread::scope(|s| {
            let table = &table;
            // Distinct key ranges per thread (the phase contract); each
            // thread re-inserts its own keys several times.
            for base in [1u32, 5, 9] {
                s.spawn(move || {
                    for _ in 0..3 {
                        for k in base..base + 4 {
                            table.insert(k);
                        }
                    }
                });
            }
        });
        let mut reference = HiHashTable::new(16);
        for k in 1..=12 {
            reference.insert(k);
        }
        assert_eq!(table.memory(), reference.memory());
        assert_eq!(table.to_sequential().len(), 12);
    }
}
