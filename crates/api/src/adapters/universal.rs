//! [`ConcurrentObject`] adapter for the universal construction
//! (Algorithm 5): any enumerable object, wait-free and state-quiescent HI.

use hi_core::EnumerableSpec;
use hi_universal::{AtomicUniversal, UniversalHandle};

use crate::object::{ConcurrentObject, HiLevel, ObjectHandle, Progress, Roles};

/// Algorithm 5 over any [`EnumerableSpec`], through the unified facade:
/// `n` symmetric wait-free handles, state-quiescent HI.
#[derive(Debug)]
pub struct UniversalObject<S: EnumerableSpec> {
    u: AtomicUniversal<S>,
}

impl<S: EnumerableSpec> UniversalObject<S> {
    /// Creates the object implementing `spec`, shared by `n` processes.
    pub fn new(spec: S, n: usize) -> Self {
        UniversalObject {
            u: AtomicUniversal::new(spec, n),
        }
    }

    /// The §6.1 ablation — Algorithm 5 without the `RL` clearing lines.
    /// Still linearizable and wait-free, but no longer HI: leftover context
    /// bits leak history, so [`ConcurrentObject::canonical`] returns `None`
    /// and drivers skip the audit.
    pub fn without_release(spec: S, n: usize) -> Self {
        UniversalObject {
            u: AtomicUniversal::without_release(spec, n),
        }
    }

    /// The underlying backend, for backend-specific inspection.
    pub fn backend(&self) -> &AtomicUniversal<S> {
        &self.u
    }

    fn is_hi(&self) -> bool {
        // `without_release` drops the clearing that buys HI.
        self.u.releases()
    }
}

/// Per-process handle of [`UniversalObject`]; every handle may invoke every
/// operation (helping makes the roles symmetric).
#[derive(Debug)]
pub struct UniversalObjectHandle<'a, S: EnumerableSpec> {
    h: UniversalHandle<'a, S>,
}

impl<S: EnumerableSpec> ObjectHandle<S> for UniversalObjectHandle<'_, S> {
    fn apply(&mut self, op: S::Op) -> S::Resp {
        self.h.apply(op)
    }

    fn supports(&self, _op: &S::Op) -> bool {
        true
    }
}

impl<S> ConcurrentObject<S> for UniversalObject<S>
where
    S: EnumerableSpec + Send + Sync,
    S::State: Send + Sync,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
{
    type Handle<'a>
        = UniversalObjectHandle<'a, S>
    where
        S: 'a;

    fn spec(&self) -> &S {
        self.u.spec()
    }

    fn roles(&self) -> Roles {
        Roles::MultiProcess { n: self.u.n() }
    }

    fn progress(&self) -> Progress {
        // Announce-and-help: every process helps the whole announce array
        // before swinging the head, with or without the release step.
        Progress::Helping
    }

    fn hi_level(&self) -> HiLevel {
        if self.u.releases() {
            HiLevel::StateQuiescent
        } else {
            HiLevel::NotHi
        }
    }

    fn handles(&mut self) -> Vec<UniversalObjectHandle<'_, S>> {
        self.u
            .handles()
            .into_iter()
            .map(|h| UniversalObjectHandle { h })
            .collect()
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        self.u.snapshot()
    }

    fn canonical(&self, state: &S::State) -> Option<Vec<u64>> {
        self.is_hi().then(|| self.u.canonical(state))
    }

    fn abstract_state(&self) -> S::State {
        self.u.abstract_state()
    }
}
