//! [`ConcurrentObject`](crate::ConcurrentObject) adapters for every
//! threaded backend in the workspace.
//!
//! | Adapter | Backend | Paper | Roles | HI level |
//! |---|---|---|---|---|
//! | [`VidyasankarObject`] | `AtomicVidyasankar` | Algorithm 1 | SWSR | none |
//! | [`LockFreeHiObject`] | `AtomicLockFreeHi` | Algorithms 2+3 | SWSR | state-quiescent |
//! | [`WaitFreeHiObject`] | `AtomicWaitFreeHi` | Algorithm 4 | SWSR | quiescent |
//! | [`QueueObject`] | `AtomicPositionalQueue` | §5.4 companion | SWSR | state-quiescent |
//! | [`LlscObject`] | `PackedRLlsc` | Algorithm 6 | `n` symmetric | perfect |
//! | [`UniversalObject`] | `AtomicUniversal` | Algorithm 5 | `n` symmetric | state-quiescent |
//! | [`MaxRegisterObject`] | `AtomicMaxRegister` | §5.1 | SWSR | state-quiescent |
//! | [`HiSetObject`] | `AtomicHiSet` | §5.1 | `n` symmetric | perfect |
//! | [`HashTableObject`] | `AtomicHiHashTable` | follow-up (2503.21016) | `n` symmetric | state-quiescent |
//! | [`ShardedTableObject`] | `ShardedHiHashTable` | scale-out (online resize) | `n` symmetric | state-quiescent |

pub mod hashtable;
pub mod llsc;
pub mod queue;
pub mod registers;
pub mod sharded;
pub mod universal;

pub use hashtable::{HashTableHandle, HashTableObject};
pub use llsc::{LlscHandle, LlscObject};
pub use queue::{QueueHandle, QueueObject};
pub use registers::{
    HiSetHandle, HiSetObject, LockFreeHiHandle, LockFreeHiObject, MaxRegisterHandle,
    MaxRegisterObject, VidyasankarHandle, VidyasankarObject, WaitFreeHiHandle, WaitFreeHiObject,
};
pub use sharded::{ShardedTableHandle, ShardedTableObject, SAMPLED_AUDIT_DOMAIN};
pub use universal::{UniversalObject, UniversalObjectHandle};
